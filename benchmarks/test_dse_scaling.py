"""Sec VI-A2 — DSE cost scaling with candidate count.

The paper reports DSE wall-clock growing with the target computing
power (2280 s for 72 TOPs to 23907 s for 512 TOPs on 80-100 threads).
This bench measures our per-candidate evaluation time at two
accelerator scales and checks the expected growth with core count, plus
the SA-iteration scaling of the mapping engine itself.
"""

import time

from conftest import print_banner, sa_settings

from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.reporting import format_table

SMALL = DseGrid(
    tops=72, cuts=(1, 2), dram_bw_per_tops=(2.0,), noc_bw_gbps=(32,),
    d2d_ratio=(0.5,), glb_kb=(2048,), macs_per_core=(4096,),
)  # 9-core candidates
LARGE = DseGrid(
    tops=72, cuts=(1, 2), dram_bw_per_tops=(2.0,), noc_bw_gbps=(32,),
    d2d_ratio=(0.5,), glb_kb=(2048,), macs_per_core=(1024,),
)  # 36-core candidates


def time_grid(tf_model, grid, iters):
    explorer = DesignSpaceExplorer(
        [Workload(tf_model, batch=16)],
        sa_settings=sa_settings(iters),
    )
    candidates = enumerate_candidates(grid)
    t0 = time.perf_counter()
    report = explorer.explore(candidates)
    wall = time.perf_counter() - t0
    return wall / len(candidates), len(candidates), report


def test_dse_scaling(tf_model, benchmark):
    def run():
        small = time_grid(tf_model, SMALL, iters=40)
        large = time_grid(tf_model, LARGE, iters=40)
        return small, large

    (small, large) = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["9-core candidates", small[1], small[0]],
        ["36-core candidates", large[1], large[0]],
    ]
    print_banner("Sec VI-A2: DSE per-candidate evaluation cost")
    print(format_table(
        ["grid", "candidates", "seconds/candidate"], rows, floatfmt=".2f"
    ))
    print(
        f"\nscaling factor {large[0] / small[0]:.1f}x per candidate "
        "(paper: 2280s -> 23907s total, 72 -> 512 TOPs)"
    )
    # Bigger accelerators cost more to evaluate per candidate.
    assert large[0] > small[0]
    # And both DSEs found a best candidate.
    assert small[2].best is not None
    assert large[2].best is not None
