"""Sec VI-A2 — DSE cost scaling with candidate count.

The paper reports DSE wall-clock growing with the target computing
power (2280 s for 72 TOPs to 23907 s for 512 TOPs on 80-100 threads).
This bench measures our per-candidate evaluation time at two
accelerator scales and checks the expected growth with core count, plus
the SA-iteration scaling of the mapping engine itself.
"""

import time

from conftest import print_banner, sa_settings

from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.reporting import format_table

SMALL = DseGrid(
    tops=72, cuts=(1, 2), dram_bw_per_tops=(2.0,), noc_bw_gbps=(32,),
    d2d_ratio=(0.5,), glb_kb=(2048,), macs_per_core=(4096,),
)  # 9-core candidates
LARGE = DseGrid(
    tops=72, cuts=(1, 2), dram_bw_per_tops=(2.0,), noc_bw_gbps=(32,),
    d2d_ratio=(0.5,), glb_kb=(2048,), macs_per_core=(1024,),
)  # 36-core candidates


def time_grid(tf_model, grid, iters):
    explorer = DesignSpaceExplorer(
        [Workload(tf_model, batch=16)],
        sa_settings=sa_settings(iters),
    )
    candidates = enumerate_candidates(grid)
    # Untimed warm-up of the first candidate: the small grid can hold a
    # single candidate, and charging it the one-time process costs
    # (graph compile, parse caches) would drown the scaling signal.
    explorer.prepare()
    explorer.evaluate_candidate(candidates[0])
    # CPU time, not wall clock: the grids are sub-second each, and host
    # contention can invert a wall-clock comparison (the same reason
    # test_perf_regression computes its ratios from CPU time).
    t0 = time.process_time()
    report = explorer.explore(candidates)
    cpu = time.process_time() - t0
    return cpu / len(candidates), len(candidates), report


def test_dse_scaling(tf_model, benchmark):
    def run():
        # Enough SA iterations that the per-candidate cost is search-
        # dominated (fixed per-candidate setup is similar across core
        # counts and would thin the margin into the noise floor).
        small = time_grid(tf_model, SMALL, iters=120)
        large = time_grid(tf_model, LARGE, iters=120)
        return small, large

    (small, large) = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["9-core candidates", small[1], small[0]],
        ["36-core candidates", large[1], large[0]],
    ]
    print_banner("Sec VI-A2: DSE per-candidate evaluation cost")
    print(format_table(
        ["grid", "candidates", "seconds/candidate"], rows, floatfmt=".2f"
    ))
    print(
        f"\nscaling factor {large[0] / small[0]:.1f}x per candidate "
        "(paper: 2280s -> 23907s total, 72 -> 512 TOPs)"
    )
    # Bigger accelerators cost more to evaluate per candidate.
    assert large[0] > small[0]
    # And both DSEs found a best candidate.
    assert small[2].best is not None
    assert large[2].best is not None
