"""Fig 6(a) — chiplet granularity (Sec VII-A1).

The paper plots EDP and MC of all DSE candidates grouped by chiplet
count; each category is represented by its best members.  We reproduce
that by running a small per-category DSE of a 128-TOPs accelerator
(64 cores x 2048 MACs) over NoC/D2D bandwidth choices and keeping each
chiplet count's best-EDP candidate, on the Transformer at batch 64.

Paper shape: moderate partitioning (2-4 chiplets) is nearly free in EDP
while reducing MC; excessively fine granularity (dozens of chiplets)
worsens MC, energy and performance simultaneously.
"""

from conftest import print_banner, sa_settings, write_artifact

from repro.arch import ArchConfig
from repro.core import MappingEngine, MappingEngineSettings
from repro.cost import DEFAULT_MC
from repro.reporting import format_table
from repro.units import GB, MB

#: (xcut, ycut) partitions of the 8x8 core array.
CUTS = ((1, 1), (2, 1), (2, 2), (4, 2), (4, 4), (8, 8))
NOC_GBPS = (32, 64)
D2D_RATIOS = (0.5, 1.0)
SA_ITERS = 150


def candidates_for(xcut, ycut):
    for noc in NOC_GBPS:
        for ratio in D2D_RATIOS:
            monolithic = xcut * ycut == 1
            yield ArchConfig(
                cores_x=8, cores_y=8, xcut=xcut, ycut=ycut,
                dram_bw=128 * GB, noc_bw=noc * GB,
                d2d_bw=noc * GB * (1.0 if monolithic else ratio),
                glb_bytes=2 * MB, macs_per_core=2048,
            )
            if monolithic:
                break  # D2D ratio is meaningless without chiplets


def run_sweep(tf_model):
    best = {}
    for seed, (xcut, ycut) in enumerate(CUTS):
        n = xcut * ycut
        for arch in candidates_for(xcut, ycut):
            engine = MappingEngine(
                arch,
                settings=MappingEngineSettings(
                    sa=sa_settings(SA_ITERS, seed=seed)
                ),
            )
            mapped = engine.map(tf_model, batch=64)
            mc = DEFAULT_MC.evaluate(arch).total
            record = (mapped.edp, mc, arch.paper_tuple())
            if n not in best or record[0] < best[n][0]:
                best[n] = record
    return best


def test_fig6a_chiplet_granularity(tf_model, benchmark):
    results = benchmark.pedantic(
        run_sweep, args=(tf_model,), rounds=1, iterations=1
    )
    base_edp, base_mc = results[1][0], results[1][1]
    rows = [
        [n, edp / base_edp, mc / base_mc, tup]
        for n, (edp, mc, tup) in sorted(results.items())
    ]
    print_banner(
        "Fig 6(a): chiplet granularity, 128 TOPs, Transformer "
        "(best candidate per category, normalized to monolithic)"
    )
    print(format_table(["chiplets", "EDP", "MC", "best arch"], rows,
                       floatfmt=".3f"))
    write_artifact("fig6a.csv", ["chiplets", "edp", "mc", "arch"], rows)
    # Moderate partitioning (2-4 chiplets) keeps the EDP penalty bounded;
    # with our (GRS-energy-dominated) constants it costs somewhat more
    # than the paper's near-zero, but remains clearly affordable...
    assert results[2][0] < 1.6 * base_edp
    assert results[4][0] < 1.6 * base_edp
    # ...while excessively fine granularity is far worse than any
    # moderate point on EDP *and* the worst multi-chiplet MC — the
    # paper's "worsen MC, performance and energy simultaneously".
    assert results[64][0] > 2.0 * base_edp
    assert results[64][0] > 1.5 * results[2][0]
    multi = {n: mc for n, (_, mc, _) in results.items() if n > 1}
    assert multi[64] == max(multi.values())
