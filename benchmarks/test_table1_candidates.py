"""Table I — the DSE parameter grid and its valid candidates (Sec VI-A1).

Enumerates the full Table-I grids for the three computing-power targets
and reports how many valid architecture candidates each yields, broken
down by chiplet count — the population Figs 6-8 sample from.  Also
verifies the validity rules (integer core counts, cuts dividing edges)
and that the paper's explored G-Arch is a member of the 72-TOPs grid.
"""

from conftest import print_banner

from repro.arch import g_arch
from repro.dse import DseGrid, enumerate_candidates
from repro.reporting import format_table


def run_enumeration():
    out = {}
    for tops in (72, 128, 512):
        out[tops] = enumerate_candidates(DseGrid.paper_grid(tops))
    return out


def test_table1_candidates(benchmark):
    grids = benchmark.pedantic(run_enumeration, rounds=1, iterations=1)
    rows = []
    for tops, candidates in grids.items():
        by_chiplets = {}
        for c in candidates:
            by_chiplets[c.n_chiplets] = by_chiplets.get(c.n_chiplets, 0) + 1
        rows.append([
            tops,
            len(candidates),
            len({c.n_cores for c in candidates}),
            ", ".join(f"{k}:{v}" for k, v in sorted(by_chiplets.items())),
        ])
    print_banner("Table I: valid candidates per DSE grid")
    print(format_table(
        ["TOPs", "candidates", "core-count options", "by chiplet count"],
        rows,
    ))
    # Every candidate respects the validity rules.
    for tops, candidates in grids.items():
        for c in candidates:
            assert round(c.tops) == tops
            assert c.cores_x % c.xcut == 0
            assert c.cores_y % c.ycut == 0
            assert c.d2d_bw <= c.noc_bw
    # 72 TOPs admits the 8192-MAC choice only as invalid (4.5 cores).
    assert all(c.macs_per_core != 8192 for c in grids[72])
    # The paper's explored G-Arch shape is in the 72-TOPs grid.
    target = g_arch()
    assert any(
        (c.n_chiplets, c.n_cores, c.glb_bytes, c.macs_per_core,
         c.noc_bw, c.d2d_bw, c.dram_bw) ==
        (2, 36, target.glb_bytes, 1024, target.noc_bw, target.d2d_bw,
         target.dram_bw)
        for c in grids[72]
    )
    # Grid sizes grow with computing power (more valid cut options).
    assert len(grids[72]) > 100
