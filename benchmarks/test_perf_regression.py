"""SA-loop throughput guard and evaluation-path equivalence.

Three evaluator configurations are raced on the Fig 5 workloads:

* **uncached** — the object path with every cache off (the reference
  semantics);
* **cached** — the PR-3 object path with its four cache layers (the
  baseline the compiled path is measured against);
* **compiled** — the array-native evaluation core with delta sessions.

The bench asserts (a) the three paths produce *identical* annealing
trajectories, (b) conservative speedup floors that machine noise cannot
flake, and records the measured ratios (including how many models meet
the 2x compiled-vs-cached target) in ``BENCH_perf.json``.

``seed_reference_iters_per_sec`` are the throughputs of the
pre-refactor seed evaluator measured on the development machine
(single-CPU container, best of 3); they anchor the recorded
``speedup_vs_seed`` ratios.  On other machines the same-process ratios
are the robust numbers — all configurations run seconds apart.

The DSE scaling bench uses the persistent worker pool: spawn cost is
paid once, so the *warm* wall time is the honest per-batch number.
Worker counts above ``os.cpu_count()`` only add contention and are
flagged as skipped instead of timed; on single-CPU boxes the recorded
number is the amortized per-candidate dispatch overhead, not a
meaningless "speedup".
"""

import os
import time

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SASettings
from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.evalmodel import Evaluator
from repro.perf import emit_bench
from repro.reporting import format_table

#: Seed-evaluator throughput (iterations/sec) on the dev container,
#: measured before the PR-1 refactor (batch 64, g-arch, seed 3); only
#: the models benchmarked back then have a reference.
SEED_REFERENCE_ITERS_PER_SEC = {"RN-50": 341, "IRes": 334, "TF": 620}

#: Conservative floors asserted in CI (measured ratios are recorded,
#: and sit well above these on every machine tried).  Ratios are
#: computed from process CPU time — wall clock on shared runners can
#: stall one configuration's run by 2x and flake any floor.
MIN_CACHED_SPEEDUP = 1.25          # cached object path vs uncached
MIN_COMPILED_SPEEDUP = 1.6         # compiled path vs uncached
MIN_COMPILED_VS_CACHED = 1.1       # compiled path vs cached baseline

#: The tentpole target recorded (not asserted — wall-clock on shared
#: runners is too noisy to gate on): compiled >= 2x cached.
COMPILED_TARGET_VS_CACHED = 2.0

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

CONFIGS = (
    ("uncached", dict(cache=False)),
    ("cached", dict(cache=True, compiled=False)),
    ("compiled", dict(cache=True)),
)


def _sa_run(graph, arch, lmss, batch, iterations, **evkw):
    """Run one annealing loop; returns (controller, CPU iters/sec)."""
    evaluator = Evaluator(arch, **evkw)
    controller = SAController(
        graph, evaluator, list(lmss), batch,
        SASettings(iterations=iterations, seed=3),
    )
    t0 = time.process_time()
    controller.run()
    cpu = time.process_time() - t0
    return controller, iterations / cpu if cpu > 0 else 0.0


def test_sa_throughput_and_equivalence(models, benchmark):
    arch = g_arch()
    iterations = max(50, int(sa_settings(300).iterations))
    batch = 64

    def run():
        rows, record = [], {}
        for name in ("RN-50", "RNX", "IRes", "PNas", "TF"):
            graph = models[name]
            groups = partition_graph(graph, arch, batch=batch)
            lmss = [initial_lms(graph, g, arch) for g in groups]
            best = {label: 0.0 for label, _ in CONFIGS}
            wall = {label: 0.0 for label, _ in CONFIGS}
            samples = {label: [] for label, _ in CONFIGS}
            ctls = {}
            # Interleave the configurations so host-speed drift hits
            # them equally; keep the best of three runs each (the
            # asserted ratios) plus every sample (the recorded
            # mean/variance — run-to-run spread is itself a signal).
            for _ in range(3):
                for label, kw in CONFIGS:
                    ctl, cpu_ips = _sa_run(
                        graph, arch, lmss, batch, iterations, **kw
                    )
                    ctls[label] = ctl
                    best[label] = max(best[label], cpu_ips)
                    wall[label] = max(wall[label], ctl.stats.iters_per_sec)
                    samples[label].append(cpu_ips)
            # All three paths: identical trajectories, bit for bit.
            for label in ("cached", "compiled"):
                assert ctls[label].best_costs == ctls["uncached"].best_costs
                assert ctls[label].stats.final_cost == \
                    ctls["uncached"].stats.final_cost
                assert ctls[label].stats.accepted == \
                    ctls["uncached"].stats.accepted
            seed_ref = SEED_REFERENCE_ITERS_PER_SEC.get(name)
            record[name] = {
                "uncached_iters_per_sec": best["uncached"],
                "cached_iters_per_sec": best["cached"],
                "compiled_iters_per_sec": best["compiled"],
                "compiled_wall_iters_per_sec": wall["compiled"],
                "speedup_cached_vs_uncached": best["cached"] / best["uncached"],
                "speedup_compiled_vs_uncached":
                    best["compiled"] / best["uncached"],
                "speedup_compiled_vs_cached":
                    best["compiled"] / best["cached"],
            }
            for label, _ in CONFIGS:
                vals = samples[label]
                mean = sum(vals) / len(vals)
                var = sum((v - mean) ** 2 for v in vals) / len(vals)
                record[name][f"{label}_iters_per_sec_samples"] = vals
                record[name][f"{label}_iters_per_sec_mean"] = mean
                record[name][f"{label}_iters_per_sec_var"] = var
            if seed_ref is not None:
                record[name]["seed_reference_iters_per_sec"] = seed_ref
                record[name]["speedup_vs_seed"] = best["compiled"] / seed_ref
            rows.append([
                name, f"{best['uncached']:.0f}", f"{best['cached']:.0f}",
                f"{best['compiled']:.0f}",
                f"{best['compiled'] / best['cached']:.2f}x",
                f"{best['compiled'] / seed_ref:.2f}x" if seed_ref else "-",
            ])
        return rows, record

    rows, record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("SA-loop throughput: uncached vs cached vs compiled")
    print(format_table(
        ["model", "uncached it/s", "cached it/s", "compiled it/s",
         "compiled/cached", "vs seed ref"],
        rows,
    ))
    met_2x = [
        name for name, rec in record.items()
        if rec["speedup_compiled_vs_cached"] >= COMPILED_TARGET_VS_CACHED
    ]
    print(f"models meeting the {COMPILED_TARGET_VS_CACHED}x "
          f"compiled-vs-cached target: {met_2x or 'none this run'}")
    emit_bench("sa_throughput", {
        "iterations": iterations,
        "batch": batch,
        "arch": "g-arch",
        "models": record,
        "compiled_vs_cached_target": COMPILED_TARGET_VS_CACHED,
        "models_meeting_target": met_2x,
    }, BENCH_PATH)
    for name, rec in record.items():
        assert rec["speedup_cached_vs_uncached"] >= MIN_CACHED_SPEEDUP, (
            f"{name}: cached SA loop only "
            f"{rec['speedup_cached_vs_uncached']:.2f}x faster than uncached"
        )
        assert rec["speedup_compiled_vs_uncached"] >= MIN_COMPILED_SPEEDUP, (
            f"{name}: compiled SA loop only "
            f"{rec['speedup_compiled_vs_uncached']:.2f}x faster than uncached"
        )
        assert rec["speedup_compiled_vs_cached"] >= MIN_COMPILED_VS_CACHED, (
            f"{name}: compiled SA loop only "
            f"{rec['speedup_compiled_vs_cached']:.2f}x faster than cached"
        )


def test_group_eval_identity_on_seeded_run(tf_model):
    """Every group eval of an annealed state matches the full path."""
    arch = g_arch()
    graph = tf_model
    groups = partition_graph(graph, arch, batch=16)
    lmss = [initial_lms(graph, g, arch) for g in groups]
    compiled_ev = Evaluator(arch, cache=True)
    controller = SAController(
        graph, compiled_ev, lmss, 16,
        SASettings(iterations=max(20, int(sa_settings(60).iterations)), seed=5),
    )
    annealed = controller.run()
    uncached_ev = Evaluator(arch, cache=False)
    stored = {}
    for lms in annealed:
        a = compiled_ev.evaluate_group(graph, lms, 16, stored)
        b = uncached_ev.evaluate_group(graph, lms, 16, stored)
        assert a.delay == b.delay
        assert a.energy.total == b.energy.total
        assert a.energy.noc == b.energy.noc
        assert a.energy.d2d == b.energy.d2d
        assert a.energy.dram == b.energy.dram
        assert a.stage_time == b.stage_time
        assert a.compute_time == b.compute_time
        assert a.network_time == b.network_time
        assert a.dram_time == b.dram_time
        assert tuple(a.dram_round_bytes) == tuple(b.dram_round_bytes)
        assert a.fits == b.fits
        for name in lms.group.layers:
            of = lms.scheme(name).fd.ofmap
            if of >= 0:
                stored[name] = of


def test_fabric_sweep_throughput(tf_model, benchmark):
    """Per-fabric compiled SA throughput (the `fabric_sweep` section).

    Swapping the interconnect must keep the compiled hot path fast:
    every registered fabric runs the same annealing loop on TF and the
    measured iterations/sec land in ``BENCH_perf.json`` alongside each
    fabric's route-table build time.  Identity is asserted per fabric
    (compiled vs. uncached object path, same trajectory) — the fabric
    axis must never cost correctness.
    """
    from repro.fabric import apply_fabric, build_topology
    from repro.perf import PERF

    fabrics = ("mesh", "folded-torus", "cmesh:c2", "ring")
    iterations = max(30, int(sa_settings(120).iterations))
    batch = 16
    graph = tf_model

    def run():
        rows, record = [], {}
        for fabric in fabrics:
            arch = apply_fabric(g_arch(), fabric)
            groups = partition_graph(graph, arch, batch=batch)
            lmss = [initial_lms(graph, g, arch) for g in groups]
            PERF.reset()
            t0 = time.perf_counter()
            build_topology(arch).core_route_table()
            table_s = time.perf_counter() - t0
            compiled, ips = _sa_run(
                graph, arch, lmss, batch, iterations, cache=True
            )
            uncached, _ = _sa_run(
                graph, arch, lmss, batch, iterations, cache=False
            )
            assert compiled.best_costs == uncached.best_costs, fabric
            assert compiled.stats.final_cost == uncached.stats.final_cost
            record[fabric] = {
                "compiled_iters_per_sec": ips,
                "route_table_build_s": table_s,
            }
            rows.append([fabric, f"{ips:.0f}", f"{table_s * 1000:.1f}ms"])
        return rows, record

    rows, record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Fabric sweep: compiled SA throughput per interconnect")
    print(format_table(
        ["fabric", "compiled it/s", "route tables"], rows,
    ))
    emit_bench("fabric_sweep", {
        "iterations": iterations,
        "batch": batch,
        "arch": "g-arch",
        "model": "TF",
        "fabrics": record,
    }, BENCH_PATH)
    for fabric, rec in record.items():
        assert rec["compiled_iters_per_sec"] > 0, fabric


def test_dse_worker_scaling(tf_model, benchmark):
    """Parallel DSE equivalence + amortized persistent-pool scaling."""
    grid = DseGrid(
        tops=72, cuts=(1, 2, 3), dram_bw_per_tops=(2.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(2048,), macs_per_core=(1024, 2048),
    )
    candidates = enumerate_candidates(grid)
    explorer = DesignSpaceExplorer(
        [Workload(tf_model, batch=8)], sa_settings=sa_settings(25),
    )
    cpus = os.cpu_count() or 1
    requested = (2, 4)
    # Worker counts beyond the visible CPUs only measure contention —
    # flag them as skipped; on a single-CPU box measure a 1-worker
    # pool instead, whose only honest number is dispatch overhead.
    usable = [w for w in requested if w <= cpus] or [1]
    skipped = [w for w in requested if w > cpus]

    def run():
        t0 = time.perf_counter()
        serial = explorer.explore(candidates, workers=1)
        t_serial = time.perf_counter() - t0
        timings = {}
        reports = {}
        for w in usable:
            t0 = time.perf_counter()
            explorer.explore(candidates, workers=w, force_pool=True)
            cold = time.perf_counter() - t0  # pool spawn + run
            t0 = time.perf_counter()
            reports[w] = explorer.explore(
                candidates, workers=w, force_pool=True
            )
            warm = time.perf_counter() - t0
            timings[w] = (cold, warm)
        explorer.close()
        return serial, t_serial, timings, reports

    serial, t_serial, timings, reports = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    for w, report in reports.items():
        assert [r.score for r in report.results] == \
            [r.score for r in serial.results]
        assert report.best.arch == serial.best.arch

    print_banner("DSE worker scaling (persistent pool, amortized)")
    rows = [["serial", f"{t_serial:.2f}s", "", "1.00x"]]
    record = {
        "cpus": cpus,
        "candidates": len(candidates),
        "serial_wall_s": t_serial,
        "skipped_over_cpu_count": skipped,
        "workers": {},
    }
    for w, (cold, warm) in sorted(timings.items()):
        speedup = t_serial / warm
        parallelism = min(w, cpus)
        # What each dispatched candidate pays beyond its share of the
        # serial work once the pool is warm — the honest number on
        # boxes where real parallel speedup is impossible.
        overhead = max(0.0, warm - t_serial / parallelism) / len(candidates)
        record["workers"][str(w)] = {
            "cold_wall_s": cold,
            "warm_wall_s": warm,
            "pool_spawn_overhead_s": max(0.0, cold - warm),
            "amortized_dispatch_overhead_s_per_candidate": overhead,
            "speedup_vs_serial": speedup,
        }
        rows.append([
            f"{w} workers", f"{warm:.2f}s (cold {cold:.2f}s)",
            f"{overhead * 1000:.1f}ms/cand", f"{speedup:.2f}x",
        ])
    print(format_table(
        ["config", "wall (warm pool)", "dispatch overhead", "speedup"], rows,
    ))
    if skipped:
        print(f"skipped worker counts beyond the {cpus} visible CPU(s): "
              f"{skipped}")
    emit_bench("dse_worker_scaling", record, BENCH_PATH)
    if cpus >= 2 and 2 in timings:
        speedup = t_serial / timings[2][1]
        assert speedup >= 1.0, (
            f"2-worker DSE with a warm persistent pool is slower than "
            f"serial ({speedup:.2f}x) despite {cpus} CPUs"
        )
