"""SA-loop throughput guard and incremental-evaluation equivalence.

The incremental evaluation path (parse/intra/traffic-block/GroupEval
caches) must (a) return *identical* results to the full path and (b)
keep the SA hot loop fast.  This bench measures iterations/sec on the
Fig 5 workloads with caching off and on, asserts a conservative
speedup floor (the measured factor is recorded, not asserted, so CI
noise cannot flake the suite), and writes everything to
``BENCH_perf.json``.

``seed_reference_iters_per_sec`` are the throughputs of the pre-refactor
seed evaluator measured on the development machine (single-CPU
container, best of 3); they anchor the recorded ``speedup_vs_seed``
ratios.  On other machines the cached/uncached ratio is the robust
number — both sides run in the same process seconds apart.
"""

import os
import time

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SASettings
from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.evalmodel import Evaluator
from repro.perf import emit_bench
from repro.reporting import format_table

#: Seed-evaluator throughput (iterations/sec) on the dev container,
#: Fig 5 models at batch 64, g-arch, SASettings(iterations=400, seed=3).
SEED_REFERENCE_ITERS_PER_SEC = {"RN-50": 341, "TF": 620, "IRes": 334}

#: Conservative floor for cached-vs-uncached speedup asserted in CI.
MIN_CACHED_SPEEDUP = 1.3

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")


def _sa_run(graph, arch, lmss, batch, iterations, cache):
    evaluator = Evaluator(arch, cache=cache)
    controller = SAController(
        graph, evaluator, list(lmss), batch,
        SASettings(iterations=iterations, seed=3),
    )
    controller.run()
    return controller


def test_sa_throughput_and_equivalence(models, benchmark):
    arch = g_arch()
    iterations = max(50, int(sa_settings(300).iterations))
    batch = 64

    def run():
        rows, record = [], {}
        for name in ("RN-50", "TF", "IRes"):
            graph = models[name]
            groups = partition_graph(graph, arch, batch=batch)
            lmss = [initial_lms(graph, g, arch) for g in groups]
            # Warm-up parse/graph state so both timed runs start equal.
            best = {False: 0.0, True: 0.0}
            ctls = {}
            for _ in range(2):
                for cache in (False, True):
                    ctl = _sa_run(graph, arch, lmss, batch, iterations, cache)
                    ctls[cache] = ctl
                    best[cache] = max(best[cache], ctl.stats.iters_per_sec)
            # Incremental path == full path, bit for bit.
            assert ctls[True].best_costs == ctls[False].best_costs
            assert ctls[True].stats.final_cost == ctls[False].stats.final_cost
            assert ctls[True].stats.accepted == ctls[False].stats.accepted
            seed_ref = SEED_REFERENCE_ITERS_PER_SEC[name]
            record[name] = {
                "uncached_iters_per_sec": best[False],
                "cached_iters_per_sec": best[True],
                "speedup_cached_vs_uncached": best[True] / best[False],
                "seed_reference_iters_per_sec": seed_ref,
                "speedup_vs_seed": best[True] / seed_ref,
            }
            rows.append([
                name, f"{best[False]:.0f}", f"{best[True]:.0f}",
                f"{best[True] / best[False]:.2f}x",
                f"{best[True] / seed_ref:.2f}x",
            ])
        return rows, record

    rows, record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("SA-loop throughput: incremental vs full evaluation")
    print(format_table(
        ["model", "full it/s", "incremental it/s", "speedup", "vs seed ref"],
        rows,
    ))
    emit_bench("sa_throughput", {
        "iterations": iterations,
        "batch": batch,
        "arch": "g-arch",
        "models": record,
    }, BENCH_PATH)
    for name, rec in record.items():
        assert rec["speedup_cached_vs_uncached"] >= MIN_CACHED_SPEEDUP, (
            f"{name}: cached SA loop only "
            f"{rec['speedup_cached_vs_uncached']:.2f}x faster than uncached"
        )


def test_group_eval_identity_on_seeded_run(tf_model):
    """Every group eval of an annealed state matches the full path."""
    arch = g_arch()
    graph = tf_model
    groups = partition_graph(graph, arch, batch=16)
    lmss = [initial_lms(graph, g, arch) for g in groups]
    cached_ev = Evaluator(arch, cache=True)
    controller = SAController(
        graph, cached_ev, lmss, 16,
        SASettings(iterations=max(20, int(sa_settings(60).iterations)), seed=5),
    )
    annealed = controller.run()
    uncached_ev = Evaluator(arch, cache=False)
    stored = {}
    for lms in annealed:
        a = cached_ev.evaluate_group(graph, lms, 16, stored)
        b = uncached_ev.evaluate_group(graph, lms, 16, stored)
        assert a.delay == b.delay
        assert a.energy.total == b.energy.total
        assert a.energy.noc == b.energy.noc
        assert a.energy.d2d == b.energy.d2d
        assert a.energy.dram == b.energy.dram
        assert a.stage_time == b.stage_time
        assert a.compute_time == b.compute_time
        assert a.network_time == b.network_time
        assert a.dram_time == b.dram_time
        assert tuple(a.dram_round_bytes) == tuple(b.dram_round_bytes)
        assert a.fits == b.fits
        for name in lms.group.layers:
            of = lms.scheme(name).fd.ofmap
            if of >= 0:
                stored[name] = of


def test_dse_worker_scaling(tf_model, benchmark):
    """Parallel DSE equivalence + recorded (not asserted) scaling."""
    grid = DseGrid(
        tops=72, cuts=(1, 2), dram_bw_per_tops=(2.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(2048,), macs_per_core=(2048,),
    )
    candidates = enumerate_candidates(grid)
    explorer = DesignSpaceExplorer(
        [Workload(tf_model, batch=8)], sa_settings=sa_settings(30),
    )

    def run():
        times = {}
        reports = {}
        for workers in (1, 2, 4):
            t0 = time.perf_counter()
            reports[workers] = explorer.explore(candidates, workers=workers)
            times[workers] = time.perf_counter() - t0
        return times, reports

    times, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for workers in (2, 4):
        assert [r.score for r in reports[workers].results] == \
            [r.score for r in reports[1].results]
        assert reports[workers].best.arch == reports[1].best.arch
    print_banner("DSE worker scaling (bounded by available CPUs)")
    rows = [[w, f"{t:.2f}s", f"{times[1] / t:.2f}x"]
            for w, t in sorted(times.items())]
    print(format_table(["workers", "wall", "speedup"], rows))
    print(f"cpus available: {os.cpu_count()}")
    emit_bench("dse_worker_scaling", {
        "cpus": os.cpu_count(),
        "candidates": len(candidates),
        "wall_time_s": {str(w): t for w, t in times.items()},
        "speedup_vs_serial": {str(w): times[1] / t for w, t in times.items()},
    }, BENCH_PATH)
