"""Fig 5 — overall comparison (Sec VI-B1).

Regenerates the paper's headline experiment: G-Arch + G-Map vs the
S-Arch + T-Map baseline (and the S-Arch + G-Map ablation) across the
five DNNs and batch sizes {64, 1}, reporting normalized delay and energy
plus the monetary-cost delta.

Paper numbers: 1.98x performance, 1.41x energy efficiency on average,
with +14.3 % MC.  Shape expectations here: G-Arch + G-Map wins both
delay and energy on (geomean) average, S-Arch + G-Map sits between the
baseline and the co-optimized design, and MC rises by a modest fraction.
"""

from conftest import print_banner, sa_settings, write_artifact

from repro.arch import g_arch, s_arch
from repro.baselines import tangram_map
from repro.core import MappingEngine, MappingEngineSettings
from repro.cost import DEFAULT_MC
from repro.dse import geomean
from repro.reporting import format_table

BATCHES = (64, 1)
SA_ITERS = 150


def gemini_map(graph, arch, batch, seed):
    engine = MappingEngine(
        arch,
        settings=MappingEngineSettings(sa=sa_settings(SA_ITERS, seed=seed)),
    )
    return engine.map(graph, batch)


def run_comparison(models):
    rows = []
    ratios = {"sg_delay": [], "sg_energy": [], "gg_delay": [], "gg_energy": []}
    s, g = s_arch(), g_arch()
    for seed, name in enumerate(sorted(models)):
        graph = models[name]
        for batch in BATCHES:
            base = tangram_map(graph, s, batch)
            s_gmap = gemini_map(graph, s, batch, seed=seed)
            g_gmap = gemini_map(graph, g, batch, seed=seed + 100)
            row = [
                name, batch,
                s_gmap.delay / base.delay, s_gmap.energy / base.energy,
                g_gmap.delay / base.delay, g_gmap.energy / base.energy,
            ]
            rows.append(row)
            ratios["sg_delay"].append(row[2])
            ratios["sg_energy"].append(row[3])
            ratios["gg_delay"].append(row[4])
            ratios["gg_energy"].append(row[5])
    return rows, {k: geomean(v) for k, v in ratios.items()}


def test_fig5_overall(models, benchmark):
    rows, means = benchmark.pedantic(
        run_comparison, args=(models,), rounds=1, iterations=1
    )
    print_banner("Fig 5: normalized delay / energy vs S-Arch + T-Map (=1.0)")
    headers = ["DNN", "batch", "S+G-Map D", "S+G-Map E",
               "G+G-Map D", "G+G-Map E"]
    print(format_table(headers, rows))
    write_artifact("fig5.csv", headers, rows)
    mc_s = DEFAULT_MC.evaluate(s_arch()).total
    mc_g = DEFAULT_MC.evaluate(g_arch()).total
    speedup = 1.0 / means["gg_delay"]
    eff = 1.0 / means["gg_energy"]
    print(
        f"\ngeomean: G-Arch+G-Map {speedup:.2f}x performance, "
        f"{eff:.2f}x energy efficiency (paper: 1.98x, 1.41x)\n"
        f"MC: S-Arch ${mc_s:.2f} -> G-Arch ${mc_g:.2f} "
        f"({mc_g / mc_s - 1:+.1%}, paper: +14.3%)"
    )
    # Shape assertions (who wins, roughly by how much).
    assert speedup > 1.25, "co-optimized design must clearly win delay"
    assert eff > 1.05, "co-optimized design must win energy"
    # The mapping-only ablation already helps on the Simba architecture.
    assert means["sg_delay"] < 1.0
    # And the MC increase stays modest.
    assert 1.00 < mc_g / mc_s < 1.30
