"""Shared fixtures and scaling knobs for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
laptop-scale budget.  ``REPRO_BENCH_SCALE`` (float, default 1.0)
multiplies the SA iteration budgets — raise it on a bigger machine for
results closer to the paper's converged search.
"""

from __future__ import annotations

import os

import pytest

from repro.core.sa import SASettings
from repro.workloads.models import build

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def sa_settings(iterations: int, seed: int = 0) -> SASettings:
    """SA settings with the global benchmark scale applied."""
    return SASettings(iterations=max(1, int(iterations * SCALE)), seed=seed)


@pytest.fixture(scope="session")
def models():
    """The paper's five evaluation DNNs, built once per session."""
    return {name: build(name) for name in ("RN-50", "RNX", "IRes", "PNas", "TF")}


@pytest.fixture(scope="session")
def tf_model():
    return build("TF")


def print_banner(title: str):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def write_artifact(name: str, headers, rows) -> str:
    """Persist a bench's table as CSV under benchmarks/artifacts/."""
    from repro.reporting import write_csv

    outdir = os.path.join(os.path.dirname(__file__), "artifacts")
    os.makedirs(outdir, exist_ok=True)
    path = os.path.join(outdir, name)
    write_csv(path, headers, rows)
    return path
