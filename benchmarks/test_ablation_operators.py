"""Ablation — the five SA operators (Sec V-B1).

The paper designs five operators so that every point of the encoding
space is reachable (their comprehensiveness proof [1]).  This ablation
removes one operator at a time from the search and measures the
best-cost degradation on the Transformer mapped to G-Arch, plus a
leave-only-one sanity row showing core-movement (OP4) alone cannot
match the full set.

Shape expectations: the full operator set is at least as good as every
leave-one-out variant on average, and dramatically better than
no-search.
"""

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import MappingEngine, MappingEngineSettings
from repro.core.operators import OPERATORS
from repro.dse import geomean
from repro.reporting import format_table

SA_ITERS = 250
ALL_NAMES = tuple(name for name, _ in OPERATORS)


def run_ablation(tf_model):
    arch = g_arch()
    results = {}

    def run(tag, names, seed=11):
        settings = sa_settings(SA_ITERS, seed=seed)
        settings.operators = names
        engine = MappingEngine(
            arch, settings=MappingEngineSettings(sa=settings)
        )
        mapped = engine.map(tf_model, batch=16)
        results[tag] = mapped.edp

    run("all five", None)
    for name in ALL_NAMES:
        kept = tuple(n for n in ALL_NAMES if n != name)
        run(f"without {name}", kept)
    run("only OP4", ("OP4",))
    # iterations=0 would be clamped to >=1 by the scale helper, so the
    # no-search baseline builds its settings directly.
    from repro.core.sa import SASettings
    no_sa = MappingEngine(
        arch, settings=MappingEngineSettings(sa=SASettings(iterations=0))
    )
    results["no search (T-Map)"] = no_sa.map(tf_model, batch=16).edp
    return results


def test_ablation_operators(tf_model, benchmark):
    results = benchmark.pedantic(
        run_ablation, args=(tf_model,), rounds=1, iterations=1
    )
    full = results["all five"]
    rows = [[tag, edp / full] for tag, edp in results.items()]
    print_banner(
        "Ablation: SA operator set (EDP normalized to the full five)"
    )
    print(format_table(["operator set", "EDP vs full"], rows, floatfmt=".3f"))
    # The full set clearly beats no-search.
    assert full < 0.9 * results["no search (T-Map)"]
    # Leave-one-out variants do not beat the full set on (geo)average.
    loo = [v for k, v in results.items() if k.startswith("without")]
    assert geomean(loo) > 0.95 * full
