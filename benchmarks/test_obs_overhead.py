"""Tracing overhead guard: spans must be ~free on the SA hot path.

Two numbers are asserted (the observability budget):

* **disabled** — the cost of the dormant ``trace()`` call sites during
  one compiled SA run must stay under 0.5% of the run's CPU time;
* **enabled** — recording every span of the run must stay under 3%.

Both are *computed* overheads: per-call cost of the trace fast paths
(measured over many thousands of calls) times the span volume one real
run produces, divided by the run's CPU time.  That product is
deterministic up to clock resolution, unlike an end-to-end A/B on a
shared runner where 3% is indistinguishable from scheduler noise — the
end-to-end interleaved best-of-3 CPU ratio is recorded in
``BENCH_perf.json`` but only sanity-checked loosely.

The guard holds by design, not by luck: span sites are per run / per
restart / per candidate, never per SA iteration, so a run contributes
a handful of spans against seconds of annealing.
"""

import os
import time

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SASettings
from repro.evalmodel import Evaluator
from repro.obs.trace import TRACER, trace
from repro.perf import emit_bench

#: The asserted budgets (fractions of one compiled SA run's CPU time).
MAX_DISABLED_OVERHEAD = 0.005
MAX_ENABLED_OVERHEAD = 0.03

#: End-to-end sanity ceiling (recorded ratio, loosely checked — CPU
#: scheduling noise on shared runners swamps the real sub-1% effect).
MAX_END_TO_END_RATIO = 1.25

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")


def _sa_cpu(graph, arch, lmss, batch, iterations) -> float:
    """CPU seconds of one compiled SA run."""
    evaluator = Evaluator(arch, cache=True)
    controller = SAController(
        graph, evaluator, list(lmss), batch,
        SASettings(iterations=iterations, seed=3),
    )
    t0 = time.process_time()
    controller.run()
    return time.process_time() - t0


def test_tracing_overhead_guard(tf_model):
    arch = g_arch()
    batch = 16
    iterations = max(30, int(sa_settings(120).iterations))
    graph = tf_model
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]

    was_enabled = TRACER.enabled
    try:
        # Per-call cost of the two fast paths, amortized over enough
        # calls that process_time resolution is irrelevant.
        TRACER.disable()
        n_off = 200_000
        t0 = time.process_time()
        for _ in range(n_off):
            with trace("bench.noop"):
                pass
        cost_off = (time.process_time() - t0) / n_off

        TRACER.enable()
        TRACER.clear()
        n_on = 20_000
        t0 = time.process_time()
        for _ in range(n_on):
            with trace("bench.span"):
                pass
        cost_on = (time.process_time() - t0) / n_on
        TRACER.clear()

        # Span volume of one real run (call sites fired, empirically).
        spans_before = len(TRACER.spans)
        _sa_cpu(graph, arch, lmss, batch, iterations)
        spans_per_run = len(TRACER.spans) - spans_before
        TRACER.clear()
        TRACER.disable()

        # End-to-end A/B, interleaved best-of-3 CPU time (recorded).
        cpu = {"disabled": float("inf"), "enabled": float("inf")}
        for _ in range(3):
            TRACER.disable()
            cpu["disabled"] = min(
                cpu["disabled"], _sa_cpu(graph, arch, lmss, batch, iterations)
            )
            TRACER.enable()
            cpu["enabled"] = min(
                cpu["enabled"], _sa_cpu(graph, arch, lmss, batch, iterations)
            )
            TRACER.clear()
    finally:
        TRACER.clear()
        TRACER.enabled = was_enabled

    run_cpu = cpu["disabled"]
    assert run_cpu > 0 and spans_per_run > 0
    disabled_overhead = spans_per_run * cost_off / run_cpu
    enabled_overhead = spans_per_run * cost_on / run_cpu
    end_to_end_ratio = cpu["enabled"] / cpu["disabled"]

    print_banner("Tracing overhead on the compiled SA hot path")
    print(f"spans per run:        {spans_per_run}")
    print(f"disabled trace() cost: {cost_off * 1e9:.0f} ns/call "
          f"-> {disabled_overhead:.5%} of the run "
          f"(budget {MAX_DISABLED_OVERHEAD:.1%})")
    print(f"enabled span cost:     {cost_on * 1e6:.2f} us/span "
          f"-> {enabled_overhead:.5%} of the run "
          f"(budget {MAX_ENABLED_OVERHEAD:.0%})")
    print(f"end-to-end CPU ratio (enabled/disabled, best of 3): "
          f"{end_to_end_ratio:.4f}")

    emit_bench("obs_overhead", {
        "iterations": iterations,
        "batch": batch,
        "model": "TF",
        "spans_per_run": spans_per_run,
        "disabled_cost_s_per_call": cost_off,
        "enabled_cost_s_per_span": cost_on,
        "run_cpu_s": run_cpu,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_overhead_fraction": enabled_overhead,
        "end_to_end_cpu_ratio": end_to_end_ratio,
        "budget_disabled": MAX_DISABLED_OVERHEAD,
        "budget_enabled": MAX_ENABLED_OVERHEAD,
    }, BENCH_PATH)

    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"dormant trace() sites cost {disabled_overhead:.4%} of a compiled "
        f"SA run (budget {MAX_DISABLED_OVERHEAD:.1%})"
    )
    assert enabled_overhead <= MAX_ENABLED_OVERHEAD, (
        f"span recording costs {enabled_overhead:.4%} of a compiled SA run "
        f"(budget {MAX_ENABLED_OVERHEAD:.0%})"
    )
    assert end_to_end_ratio <= MAX_END_TO_END_RATIO, (
        f"enabled tracing made the whole run {end_to_end_ratio:.2f}x "
        "slower end to end — far beyond its computed cost"
    )


#: Search-diagnostics budgets (same method as the tracing guard).
#: Tighter than tracing: the dormant path is a ``None`` check and even
#: the enabled path is dict lookups + integer adds, never an object
#: allocation per iteration.
MAX_DIAG_DISABLED_OVERHEAD = 0.001
MAX_DIAG_ENABLED_OVERHEAD = 0.01


def test_diag_overhead_guard(tf_model):
    from repro.obs.diag import SARunDiag

    arch = g_arch()
    batch = 16
    iterations = max(30, int(sa_settings(120).iterations))
    graph = tf_model
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]

    # Dormant path: the controller holds ``_diag = None`` and guards
    # every hook with one identity check.  Per-iteration volume: one in
    # the run loop, one per operator draw, one per scored proposal.
    class _Holder:
        __slots__ = ("_diag",)

        def __init__(self):
            self._diag = None

    holder = _Holder()
    n_off = 1_000_000
    sink = 0
    t0 = time.process_time()
    for _ in range(n_off):
        if holder._diag is not None:
            sink += 1
    cost_off = (time.process_time() - t0) / n_off
    assert sink == 0
    checks_per_iter = 3

    # Enabled path: one draw + one proposal + one want/sample gate per
    # iteration, against a live recorder.
    diag = SARunDiag(iterations=iterations, seed=0)
    n_on = 100_000
    t0 = time.process_time()
    for i in range(n_on):
        diag.draw("OP1")
        diag.proposal("OP1", 0.01, i % 3 == 0, i % 7 == 0)
        if diag.want(i):
            diag.sample(i, 10.0, 11.0, 0.1)
    cost_on = (time.process_time() - t0) / n_on

    run_cpu = _sa_cpu(graph, arch, lmss, batch, iterations)
    assert run_cpu > 0
    per_iter_cpu = run_cpu / iterations
    disabled_overhead = checks_per_iter * cost_off / per_iter_cpu
    enabled_overhead = cost_on / per_iter_cpu

    print_banner("Search-diagnostics overhead on the compiled SA hot path")
    print(f"dormant None check:    {cost_off * 1e9:.1f} ns/check x "
          f"{checks_per_iter}/iter -> {disabled_overhead:.5%} of an "
          f"iteration (budget {MAX_DIAG_DISABLED_OVERHEAD:.1%})")
    print(f"enabled record cost:   {cost_on * 1e9:.0f} ns/iter "
          f"-> {enabled_overhead:.5%} of an iteration "
          f"(budget {MAX_DIAG_ENABLED_OVERHEAD:.0%})")
    print(f"SA iteration CPU:      {per_iter_cpu * 1e6:.1f} us")

    emit_bench("diag_overhead", {
        "iterations": iterations,
        "batch": batch,
        "model": "TF",
        "disabled_cost_s_per_check": cost_off,
        "enabled_cost_s_per_iter": cost_on,
        "run_cpu_s": run_cpu,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_overhead_fraction": enabled_overhead,
        "budget_disabled": MAX_DIAG_DISABLED_OVERHEAD,
        "budget_enabled": MAX_DIAG_ENABLED_OVERHEAD,
    }, BENCH_PATH)

    assert disabled_overhead <= MAX_DIAG_DISABLED_OVERHEAD, (
        f"dormant diag hooks cost {disabled_overhead:.4%} of an SA "
        f"iteration (budget {MAX_DIAG_DISABLED_OVERHEAD:.1%})"
    )
    assert enabled_overhead <= MAX_DIAG_ENABLED_OVERHEAD, (
        f"diag recording costs {enabled_overhead:.4%} of an SA iteration "
        f"(budget {MAX_DIAG_ENABLED_OVERHEAD:.0%})"
    )
