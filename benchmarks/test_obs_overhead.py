"""Tracing overhead guard: spans must be ~free on the SA hot path.

Two numbers are asserted (the observability budget):

* **disabled** — the cost of the dormant ``trace()`` call sites during
  one compiled SA run must stay under 0.5% of the run's CPU time;
* **enabled** — recording every span of the run must stay under 3%.

Both are *computed* overheads: per-call cost of the trace fast paths
(measured over many thousands of calls) times the span volume one real
run produces, divided by the run's CPU time.  That product is
deterministic up to clock resolution, unlike an end-to-end A/B on a
shared runner where 3% is indistinguishable from scheduler noise — the
end-to-end interleaved best-of-3 CPU ratio is recorded in
``BENCH_perf.json`` but only sanity-checked loosely.

The guard holds by design, not by luck: span sites are per run / per
restart / per candidate, never per SA iteration, so a run contributes
a handful of spans against seconds of annealing.
"""

import os
import time

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SASettings
from repro.evalmodel import Evaluator
from repro.obs.trace import TRACER, trace
from repro.perf import emit_bench

#: The asserted budgets (fractions of one compiled SA run's CPU time).
MAX_DISABLED_OVERHEAD = 0.005
MAX_ENABLED_OVERHEAD = 0.03

#: End-to-end sanity ceiling (recorded ratio, loosely checked — CPU
#: scheduling noise on shared runners swamps the real sub-1% effect).
MAX_END_TO_END_RATIO = 1.25

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")


def _sa_cpu(graph, arch, lmss, batch, iterations) -> float:
    """CPU seconds of one compiled SA run."""
    evaluator = Evaluator(arch, cache=True)
    controller = SAController(
        graph, evaluator, list(lmss), batch,
        SASettings(iterations=iterations, seed=3),
    )
    t0 = time.process_time()
    controller.run()
    return time.process_time() - t0


def test_tracing_overhead_guard(tf_model):
    arch = g_arch()
    batch = 16
    iterations = max(30, int(sa_settings(120).iterations))
    graph = tf_model
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]

    was_enabled = TRACER.enabled
    try:
        # Per-call cost of the two fast paths, amortized over enough
        # calls that process_time resolution is irrelevant.
        TRACER.disable()
        n_off = 200_000
        t0 = time.process_time()
        for _ in range(n_off):
            with trace("bench.noop"):
                pass
        cost_off = (time.process_time() - t0) / n_off

        TRACER.enable()
        TRACER.clear()
        n_on = 20_000
        t0 = time.process_time()
        for _ in range(n_on):
            with trace("bench.span"):
                pass
        cost_on = (time.process_time() - t0) / n_on
        TRACER.clear()

        # Span volume of one real run (call sites fired, empirically).
        spans_before = len(TRACER.spans)
        _sa_cpu(graph, arch, lmss, batch, iterations)
        spans_per_run = len(TRACER.spans) - spans_before
        TRACER.clear()
        TRACER.disable()

        # End-to-end A/B, interleaved best-of-3 CPU time (recorded).
        cpu = {"disabled": float("inf"), "enabled": float("inf")}
        for _ in range(3):
            TRACER.disable()
            cpu["disabled"] = min(
                cpu["disabled"], _sa_cpu(graph, arch, lmss, batch, iterations)
            )
            TRACER.enable()
            cpu["enabled"] = min(
                cpu["enabled"], _sa_cpu(graph, arch, lmss, batch, iterations)
            )
            TRACER.clear()
    finally:
        TRACER.clear()
        TRACER.enabled = was_enabled

    run_cpu = cpu["disabled"]
    assert run_cpu > 0 and spans_per_run > 0
    disabled_overhead = spans_per_run * cost_off / run_cpu
    enabled_overhead = spans_per_run * cost_on / run_cpu
    end_to_end_ratio = cpu["enabled"] / cpu["disabled"]

    print_banner("Tracing overhead on the compiled SA hot path")
    print(f"spans per run:        {spans_per_run}")
    print(f"disabled trace() cost: {cost_off * 1e9:.0f} ns/call "
          f"-> {disabled_overhead:.5%} of the run "
          f"(budget {MAX_DISABLED_OVERHEAD:.1%})")
    print(f"enabled span cost:     {cost_on * 1e6:.2f} us/span "
          f"-> {enabled_overhead:.5%} of the run "
          f"(budget {MAX_ENABLED_OVERHEAD:.0%})")
    print(f"end-to-end CPU ratio (enabled/disabled, best of 3): "
          f"{end_to_end_ratio:.4f}")

    emit_bench("obs_overhead", {
        "iterations": iterations,
        "batch": batch,
        "model": "TF",
        "spans_per_run": spans_per_run,
        "disabled_cost_s_per_call": cost_off,
        "enabled_cost_s_per_span": cost_on,
        "run_cpu_s": run_cpu,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_overhead_fraction": enabled_overhead,
        "end_to_end_cpu_ratio": end_to_end_ratio,
        "budget_disabled": MAX_DISABLED_OVERHEAD,
        "budget_enabled": MAX_ENABLED_OVERHEAD,
    }, BENCH_PATH)

    assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
        f"dormant trace() sites cost {disabled_overhead:.4%} of a compiled "
        f"SA run (budget {MAX_DISABLED_OVERHEAD:.1%})"
    )
    assert enabled_overhead <= MAX_ENABLED_OVERHEAD, (
        f"span recording costs {enabled_overhead:.4%} of a compiled SA run "
        f"(budget {MAX_ENABLED_OVERHEAD:.0%})"
    )
    assert end_to_end_ratio <= MAX_END_TO_END_RATIO, (
        f"enabled tracing made the whole run {end_to_end_ratio:.2f}x "
        "slower end to end — far beyond its computed cost"
    )


#: Search-diagnostics budgets (same method as the tracing guard).
#: Tighter than tracing: the dormant path is a ``None`` check and even
#: the enabled path is dict lookups + integer adds, never an object
#: allocation per iteration.
MAX_DIAG_DISABLED_OVERHEAD = 0.001
MAX_DIAG_ENABLED_OVERHEAD = 0.01


def test_diag_overhead_guard(tf_model):
    from repro.obs.diag import SARunDiag

    arch = g_arch()
    batch = 16
    iterations = max(30, int(sa_settings(120).iterations))
    graph = tf_model
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]

    # Dormant path: the controller holds ``_diag = None`` and guards
    # every hook with one identity check.  Per-iteration volume: one in
    # the run loop, one per operator draw, one per scored proposal.
    class _Holder:
        __slots__ = ("_diag",)

        def __init__(self):
            self._diag = None

    holder = _Holder()
    n_off = 1_000_000
    sink = 0
    t0 = time.process_time()
    for _ in range(n_off):
        if holder._diag is not None:
            sink += 1
    cost_off = (time.process_time() - t0) / n_off
    assert sink == 0
    checks_per_iter = 3

    # Enabled path: one draw + one proposal + one want/sample gate per
    # iteration, against a live recorder.
    diag = SARunDiag(iterations=iterations, seed=0)
    n_on = 100_000
    t0 = time.process_time()
    for i in range(n_on):
        diag.draw("OP1")
        diag.proposal("OP1", 0.01, i % 3 == 0, i % 7 == 0)
        if diag.want(i):
            diag.sample(i, 10.0, 11.0, 0.1)
    cost_on = (time.process_time() - t0) / n_on

    run_cpu = _sa_cpu(graph, arch, lmss, batch, iterations)
    assert run_cpu > 0
    per_iter_cpu = run_cpu / iterations
    disabled_overhead = checks_per_iter * cost_off / per_iter_cpu
    enabled_overhead = cost_on / per_iter_cpu

    print_banner("Search-diagnostics overhead on the compiled SA hot path")
    print(f"dormant None check:    {cost_off * 1e9:.1f} ns/check x "
          f"{checks_per_iter}/iter -> {disabled_overhead:.5%} of an "
          f"iteration (budget {MAX_DIAG_DISABLED_OVERHEAD:.1%})")
    print(f"enabled record cost:   {cost_on * 1e9:.0f} ns/iter "
          f"-> {enabled_overhead:.5%} of an iteration "
          f"(budget {MAX_DIAG_ENABLED_OVERHEAD:.0%})")
    print(f"SA iteration CPU:      {per_iter_cpu * 1e6:.1f} us")

    emit_bench("diag_overhead", {
        "iterations": iterations,
        "batch": batch,
        "model": "TF",
        "disabled_cost_s_per_check": cost_off,
        "enabled_cost_s_per_iter": cost_on,
        "run_cpu_s": run_cpu,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_overhead_fraction": enabled_overhead,
        "budget_disabled": MAX_DIAG_DISABLED_OVERHEAD,
        "budget_enabled": MAX_DIAG_ENABLED_OVERHEAD,
    }, BENCH_PATH)

    assert disabled_overhead <= MAX_DIAG_DISABLED_OVERHEAD, (
        f"dormant diag hooks cost {disabled_overhead:.4%} of an SA "
        f"iteration (budget {MAX_DIAG_DISABLED_OVERHEAD:.1%})"
    )
    assert enabled_overhead <= MAX_DIAG_ENABLED_OVERHEAD, (
        f"diag recording costs {enabled_overhead:.4%} of an SA iteration "
        f"(budget {MAX_DIAG_ENABLED_OVERHEAD:.0%})"
    )


#: Fault-handling budgets (same method again).  Both seams and the
#: armed supervision loop charge per *candidate* (seconds of SA), never
#: per iteration, so the budgets are comfortably tight.
MAX_FAULT_DORMANT_OVERHEAD = 0.001
MAX_FAULT_ARMED_OVERHEAD = 0.01


def test_fault_overhead_guard(tf_model):
    """Fault tolerance must be ~free when nothing faults.

    Three computed costs, all divided by one candidate evaluation's CPU
    (a candidate evaluation is one compiled SA run per workload):

    * the dormant chaos seams — one ``_EVAL_HOOK`` identity check per
      worker evaluation plus one ``_PUT_HOOK`` check per checkpoint
      put (~2 puts/candidate);
    * the armed-policy supervision bookkeeping the pool loop pays per
      fault-free candidate: a ``time.monotonic`` deadline, the
      in-flight dict insert/pop, and the deadline-min wait bound;
    * (recorded only) one deterministic ``RetryPolicy.delay_s``
      derivation — paid per *retry*, so it never touches the fault-free
      path at all.
    """
    from repro.campaign.faults import RetryPolicy

    arch = g_arch()
    batch = 16
    iterations = max(30, int(sa_settings(120).iterations))
    graph = tf_model
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]

    # Dormant seams: module-global None checks (identical shape to the
    # real sites in explorer._evaluate_in_worker and store.put).
    class _Seam:
        __slots__ = ("hook",)

        def __init__(self):
            self.hook = None

    seam = _Seam()
    n_off = 1_000_000
    sink = 0
    t0 = time.process_time()
    for _ in range(n_off):
        if seam.hook is not None:
            sink += 1
    cost_seam = (time.process_time() - t0) / n_off
    assert sink == 0
    checks_per_candidate = 3  # 1 eval hook + ~2 put hooks

    # Armed supervision bookkeeping, per fault-free candidate: what
    # CampaignRunner._run_pool adds over the old fire-and-forget map.
    policy = RetryPolicy(max_attempts=3, timeout_s=300.0)
    inflight = {}
    n_sup = 200_000
    t0 = time.process_time()
    for i in range(n_sup):
        deadline = time.monotonic() + policy.timeout_s
        inflight[i] = ((i, None, None), 1, deadline, False)
        bounds = [d for _, _, d, _ in inflight.values() if d is not None]
        min(bounds)
        inflight.pop(i)
    cost_armed = (time.process_time() - t0) / n_sup

    # Per-retry cost (never on the fault-free path): one seeded jitter
    # derivation.  Recorded so a regression is visible in BENCH_perf.
    n_delay = 50_000
    t0 = time.process_time()
    for i in range(n_delay):
        policy.delay_s("bench-key", 2 + (i & 3))
    cost_delay = (time.process_time() - t0) / n_delay

    run_cpu = _sa_cpu(graph, arch, lmss, batch, iterations)
    assert run_cpu > 0
    dormant_overhead = checks_per_candidate * cost_seam / run_cpu
    armed_overhead = cost_armed / run_cpu

    print_banner("Fault-handling overhead on the fault-free campaign path")
    print(f"dormant seam check:    {cost_seam * 1e9:.1f} ns/check x "
          f"{checks_per_candidate}/candidate -> {dormant_overhead:.6%} "
          f"of a candidate (budget {MAX_FAULT_DORMANT_OVERHEAD:.1%})")
    print(f"armed supervision:     {cost_armed * 1e6:.2f} us/candidate "
          f"-> {armed_overhead:.5%} of a candidate "
          f"(budget {MAX_FAULT_ARMED_OVERHEAD:.0%})")
    print(f"delay derivation:      {cost_delay * 1e6:.2f} us/retry "
          "(off the fault-free path)")
    print(f"candidate CPU:         {run_cpu:.3f} s")

    emit_bench("fault_overhead", {
        "iterations": iterations,
        "batch": batch,
        "model": "TF",
        "seam_cost_s_per_check": cost_seam,
        "seam_checks_per_candidate": checks_per_candidate,
        "armed_cost_s_per_candidate": cost_armed,
        "delay_cost_s_per_retry": cost_delay,
        "run_cpu_s": run_cpu,
        "dormant_overhead_fraction": dormant_overhead,
        "armed_overhead_fraction": armed_overhead,
        "budget_dormant": MAX_FAULT_DORMANT_OVERHEAD,
        "budget_armed": MAX_FAULT_ARMED_OVERHEAD,
    }, BENCH_PATH)

    assert dormant_overhead <= MAX_FAULT_DORMANT_OVERHEAD, (
        f"dormant chaos seams cost {dormant_overhead:.4%} of a candidate "
        f"evaluation (budget {MAX_FAULT_DORMANT_OVERHEAD:.1%})"
    )
    assert armed_overhead <= MAX_FAULT_ARMED_OVERHEAD, (
        f"armed-policy supervision costs {armed_overhead:.4%} of a "
        f"candidate evaluation (budget {MAX_FAULT_ARMED_OVERHEAD:.0%})"
    )
