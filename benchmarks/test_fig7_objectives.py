"""Fig 7 — optimal architectures under four objectives (Sec VII-A2).

Runs a reduced 128-TOPs DSE under each of the paper's four objectives
(E, D, MC, MC*E*D) and reports the winning architecture with its energy,
delay and MC breakdown, normalized to the MC*E*D winner.

Paper shape: the pure-delay objective picks a resource-rich design, the
pure-MC objective picks the cheapest, and each winner is (weakly) the
best of the four under its own metric.
"""

from conftest import print_banner, sa_settings

from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    FIG7_OBJECTIVES,
    Workload,
    enumerate_candidates,
)
from repro.reporting import format_table

SA_ITERS = 60

#: Reduced 128-TOPs grid (documented subsample of Table I).
GRID = DseGrid(
    tops=128,
    cuts=(1, 2, 4),
    dram_bw_per_tops=(2.0,),
    noc_bw_gbps=(32, 64),
    d2d_ratio=(0.5,),
    glb_kb=(2048, 4096),
    macs_per_core=(2048, 4096, 8192),
)


def run_dse(tf_model):
    """Evaluate every candidate once, then rank under each objective.

    Energy/delay of a candidate do not depend on the DSE objective (the
    mapping engine's own cost is E*D throughout, as in the paper), so a
    single exhaustive pass serves all four rankings.
    """
    candidates = enumerate_candidates(GRID)
    explorer = DesignSpaceExplorer(
        [Workload(tf_model, batch=64)],
        sa_settings=sa_settings(SA_ITERS),
    )
    report = explorer.explore(candidates)
    winners = {}
    for objective in FIG7_OBJECTIVES:
        winners[objective.name] = min(
            report.results,
            key=lambda r: objective.score(r.mc.total, r.energy, r.delay),
        )
    return winners, len(candidates)


def test_fig7_objectives(tf_model, benchmark):
    winners, n_candidates = benchmark.pedantic(
        run_dse, args=(tf_model,), rounds=1, iterations=1
    )
    ref = winners["MC*E*D"]
    rows = [
        [
            name,
            r.arch.paper_tuple(),
            r.energy / ref.energy,
            r.delay / ref.delay,
            r.mc.total / ref.mc.total,
        ]
        for name, r in winners.items()
    ]
    print_banner(
        f"Fig 7: optimal 128-TOPs architectures under four objectives "
        f"({n_candidates} candidates; normalized to the MC*E*D winner)"
    )
    print(format_table(
        ["objective", "arch", "Energy", "Delay", "MC"], rows, floatfmt=".3f"
    ))
    # Each winner is the best of the four under its own metric.
    assert winners["E"].energy == min(r.energy for r in winners.values())
    assert winners["D"].delay == min(r.delay for r in winners.values())
    assert winners["MC"].mc.total == min(r.mc.total for r in winners.values())
    # The product objective compromises: never the worst in everything.
    assert not (
        ref.energy == max(r.energy for r in winners.values())
        and ref.delay == max(r.delay for r in winners.values())
        and ref.mc.total == max(r.mc.total for r in winners.values())
    )
