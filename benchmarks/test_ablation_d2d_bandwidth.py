"""Ablation — MC breakdown, yield and area vs chiplet count and D2D BW.

Reproduces the paper's Fig 8(a) side panel: for the 72-TOPs G-Arch
resource budget (36 cores x 1024 MACs, 2 MB GLB), sweep the chiplet
partition from 1 to 36 dies under two D2D bandwidths (16 and 32 GB/s)
and report the monetary-cost breakdown, compute-die yield and total
silicon area.

Shape expectations: yield improves monotonically as dies shrink; total
area and substrate cost grow (every extra die adds D2D interfaces, and
higher D2D bandwidth makes each interface bigger); the total MC curve
is U-shaped-to-rising, with 36 single-core chiplets clearly expensive.
"""

from conftest import print_banner

from repro.arch import ArchConfig, DEFAULT_AREA
from repro.cost import DEFAULT_MC, DEFAULT_YIELD
from repro.reporting import format_table
from repro.units import GB, MB

#: (xcut, ycut) partitions of the 6x6 array: 1, 2, 4, 9, 18, 36 dies.
CUTS = ((1, 1), (2, 1), (2, 2), (3, 3), (3, 6), (6, 6))
D2D_GBPS = (16, 32)


def arch_for(xcut, ycut, d2d_gbps):
    mono = xcut * ycut == 1
    return ArchConfig(
        cores_x=6, cores_y=6, xcut=xcut, ycut=ycut,
        dram_bw=144 * GB, noc_bw=32 * GB,
        d2d_bw=(32 if mono else d2d_gbps) * GB,
        glb_bytes=2 * MB, macs_per_core=1024,
    )


def run_sweep():
    rows = []
    for d2d in D2D_GBPS:
        for xcut, ycut in CUTS:
            arch = arch_for(xcut, ycut, d2d)
            mc = DEFAULT_MC.evaluate(arch)
            compute_die = DEFAULT_AREA.compute_chiplet_area(arch)
            rows.append([
                d2d, arch.n_chiplets,
                mc.silicon, mc.packaging, mc.dram, mc.total,
                DEFAULT_YIELD.die_yield(compute_die),
                mc.total_silicon_area_mm2,
            ])
    return rows


def test_ablation_d2d_bandwidth(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_banner(
        "Fig 8(a) panel: MC breakdown / yield / area, 72-TOPs G-Arch "
        "budget, 1-36 chiplets x D2D bandwidth"
    )
    print(format_table(
        ["D2D GB/s", "chiplets", "silicon $", "package $", "DRAM $",
         "total $", "compute-die yield", "area mm^2"],
        rows, floatfmt=".3g",
    ))
    by = {(r[0], r[1]): r for r in rows}
    for d2d in D2D_GBPS:
        yields = [by[(d2d, n)][6] for n in (1, 2, 4, 9, 18, 36)]
        # Yield improves monotonically with finer partitioning.
        assert all(a <= b + 1e-12 for a, b in zip(yields, yields[1:]))
        # Total area grows with die count (D2D interfaces multiply).
        areas = [by[(d2d, n)][7] for n in (2, 4, 9, 18, 36)]
        assert areas[-1] > areas[0]
    # Higher D2D bandwidth means bigger interfaces => more area & MC
    # at every multi-chiplet point.
    for n in (2, 4, 9, 18, 36):
        assert by[(32, n)][7] > by[(16, n)][7]
        assert by[(32, n)][5] > by[(16, n)][5]
    # 36 single-core chiplets are clearly more expensive than moderate
    # partitioning at the same D2D bandwidth.
    assert by[(16, 36)][5] > by[(16, 2)][5]
