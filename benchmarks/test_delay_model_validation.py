"""Validation — the three delay-model fidelities agree on ordering.

The Evaluator's analytic stage-time bound drives the SA search
(Sec V-B2); this bench validates it against the two higher-fidelity
models shipped here — max–min-fair flow rates and the store-and-forward
discrete-event simulator — across Tangram and Gemini schemes of several
Transformer layer groups on G-Arch.

Expectations: ``bound <= maxmin <= event-sim`` for each scheme (fluid
lower bound, fair-shared fluid, then per-hop serialization + queueing),
and the *ranking* of schemes (Gemini better than Tangram) is preserved
by every model — i.e., the cheap bound the search uses does not mislead
it.
"""

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.evalmodel import Evaluator
from repro.reporting import format_table
from repro.sim import simulate_group_round

SA_ITERS = 250


def network_times(graph, arch, lms):
    bound_ev = Evaluator(arch).evaluate_group(graph, lms, batch=8)
    maxmin_ev = Evaluator(arch, network_model="maxmin").evaluate_group(
        graph, lms, batch=8
    )
    stats, _ = simulate_group_round(graph, arch, lms)
    return bound_ev.network_time, maxmin_ev.network_time, stats.makespan


def run_validation(tf_model):
    arch = g_arch()
    evaluator = Evaluator(arch)
    groups = partition_graph(tf_model, arch, batch=8)
    heavy = sorted(groups, key=len, reverse=True)[:3]
    rows = []
    for i, group in enumerate(heavy):
        tangram = initial_lms(tf_model, group, arch)
        gemini = SAController(
            tf_model, evaluator, [tangram], batch=8,
            settings=sa_settings(SA_ITERS, seed=i),
        ).run()[0]
        for label, lms in (("tangram", tangram), ("gemini", gemini)):
            b, m, s = network_times(tf_model, arch, lms)
            rows.append([f"group{i}", label, b * 1e6, m * 1e6, s * 1e6])
    return rows


def test_delay_model_validation(tf_model, benchmark):
    rows = benchmark.pedantic(
        run_validation, args=(tf_model,), rounds=1, iterations=1
    )
    print_banner(
        "Delay-model validation: analytic bound vs max-min vs event sim "
        "(network/stage times, us)"
    )
    print(format_table(
        ["group", "scheme", "bound", "max-min", "event sim"],
        rows, floatfmt=".2f",
    ))
    by = {(r[0], r[1]): (r[2], r[3], r[4]) for r in rows}
    for key, (bound, maxmin, sim) in by.items():
        # Fidelity ordering within each scheme.
        assert bound <= maxmin * (1 + 1e-9), key
        assert maxmin <= sim * (1 + 1e-6), key
    # Scheme ranking is preserved by every model: the SA-optimized
    # scheme never looks worse under a finer model than the stripe one.
    groups = {r[0] for r in rows}
    for g in groups:
        for idx in range(3):
            assert by[(g, "gemini")][idx] <= by[(g, "tangram")][idx] * 1.05, \
                (g, idx)
