"""Sec VI-B2 — comparison against T-Arch (folded torus) with T-Map.

Demonstrates the framework's topology generality: a Grayskull-like
120-core monolithic folded-torus accelerator with Tangram mapping vs
the Gemini-explored torus architecture (6, 60, 480 GB/s, 64 GB/s,
32 GB/s, 2 MB, 2048) with Gemini mapping, on the Transformer.

Paper numbers: 1.74x performance, 1.13x energy efficiency, -40.1 % MC.
Shape expectations: G wins delay and energy, at clearly lower MC.
"""

from conftest import print_banner, sa_settings

from repro.arch import g_arch_120, t_arch
from repro.baselines import tangram_map
from repro.core import MappingEngine, MappingEngineSettings
from repro.cost import DEFAULT_MC
from repro.reporting import format_table

SA_ITERS = 300


def run_comparison(tf_model):
    # Both presets declare their folded-torus fabric, so the engines
    # build the right topology without hand-constructed overrides.
    t = t_arch()
    g = g_arch_120()
    assert t.fabric.kind == g.fabric.kind == "folded-torus"
    baseline = tangram_map(tf_model, t, batch=64)
    engine = MappingEngine(
        g,
        settings=MappingEngineSettings(sa=sa_settings(SA_ITERS, seed=5)),
    )
    gemini = engine.map(tf_model, batch=64)
    return baseline, gemini


def test_tarch_comparison(tf_model, benchmark):
    baseline, gemini = benchmark.pedantic(
        run_comparison, args=(tf_model,), rounds=1, iterations=1
    )
    mc_t = DEFAULT_MC.evaluate(t_arch()).total
    mc_g = DEFAULT_MC.evaluate(g_arch_120()).total
    speedup = baseline.delay / gemini.delay
    eff = baseline.energy / gemini.energy
    rows = [
        ["T-Arch + T-Map", baseline.delay * 1e3, baseline.energy * 1e3, mc_t],
        ["G-Arch + G-Map", gemini.delay * 1e3, gemini.energy * 1e3, mc_g],
    ]
    print_banner("Sec VI-B2: folded-torus comparison (Transformer, batch 64)")
    print(format_table(
        ["configuration", "delay (ms)", "energy (mJ)", "MC ($)"], rows,
    ))
    print(
        f"\nGemini: {speedup:.2f}x performance (paper 1.74x), "
        f"{eff:.2f}x energy efficiency (paper 1.13x), "
        f"{mc_g / mc_t - 1:+.1%} MC (paper -40.1%)"
    )
    assert speedup > 1.2
    assert eff > 1.0
    assert 0.45 < mc_g / mc_t < 0.75
