"""Fig 9 — network-traffic heatmap, Tangram vs Gemini SPM (Sec VII-C).

Maps a heavy Transformer layer group onto the 72-TOPs G-Arch with (a)
the Tangram stripe heuristic and (b) Gemini's SA-optimized scheme, then
compares the per-link traffic of one pipeline round.

Paper numbers for their example: total hop count -34.2 %, hops on the
intermediate D2D links -74 %, red/orange (hottest) links eliminated.
Shape expectations: Gemini reduces total byte-hops, D2D bytes and the
peak-link load; the serialization time of the most-loaded link drops.
"""

from conftest import print_banner, sa_settings

from repro.arch import g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.parser import parse_lms
from repro.evalmodel import Evaluator, GroupTrafficAnalyzer
from repro.reporting import format_table, heat_summary, render_ascii

SA_ITERS = 400


def group_traffic(graph, arch, evaluator, lms):
    parsed = parse_lms(graph, lms)
    intra = evaluator._intra_results(parsed)
    analyzer = GroupTrafficAnalyzer(graph, arch, evaluator.topo)
    return analyzer.analyze(parsed, lms, intra, {})


def run_fig9(tf_model):
    arch = g_arch()
    evaluator = Evaluator(arch)
    groups = partition_graph(tf_model, arch, batch=64)
    # Pick the group with the largest inter-layer data volume (the
    # paper's example is the QKV/attention slice of the Transformer).
    group = max(
        groups,
        key=lambda g: sum(
            tf_model.layer(n).ofmap_bytes(g.batch_unit) for n in g.layers
        ),
    )
    tangram_lms = initial_lms(tf_model, group, arch)
    controller = SAController(
        tf_model, evaluator, [tangram_lms], batch=64,
        settings=sa_settings(SA_ITERS, seed=3),
    )
    gemini_lms = controller.run()[0]
    t_traffic = group_traffic(tf_model, arch, evaluator, tangram_lms)
    g_traffic = group_traffic(tf_model, arch, evaluator, gemini_lms)
    return t_traffic, g_traffic


def test_fig9_traffic_heatmap(tf_model, benchmark):
    t_traffic, g_traffic = benchmark.pedantic(
        run_fig9, args=(tf_model,), rounds=1, iterations=1
    )
    t_sum = heat_summary(t_traffic.traffic)
    g_sum = heat_summary(g_traffic.traffic)
    rows = [
        [key, t_sum[key], g_sum[key],
         (g_sum[key] / t_sum[key] - 1) if t_sum[key] else 0.0]
        for key in t_sum
    ]
    print_banner("Fig 9: per-round link traffic on 72-TOPs G-Arch "
                 "(Tangram vs Gemini SPM)")
    print(format_table(
        ["metric (bytes)", "Tangram", "Gemini", "change"], rows,
        floatfmt=".3g",
    ))
    print("\nTangram heatmap:")
    print(render_ascii(t_traffic.traffic))
    print("\nGemini heatmap:")
    print(render_ascii(g_traffic.traffic))
    # Gemini disperses congestion: peak link load drops...
    assert g_sum["max_link_bytes"] < t_sum["max_link_bytes"]
    # ...and the total hop count decreases (paper: -34.2%).
    assert g_sum["total_hop_bytes"] < t_sum["total_hop_bytes"]
    # D2D pressure is reduced (paper: -74% on the middle D2D links).
    assert g_sum["d2d_bytes"] < t_sum["d2d_bytes"]
    # Bottleneck serialization time (network stage time) improves.
    assert g_traffic.traffic.serialization_time() < \
        t_traffic.traffic.serialization_time()
