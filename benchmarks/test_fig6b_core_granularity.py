"""Fig 6(b) — core granularity (Sec VII-A2).

Holds computing power at 128 TOPs while sweeping MAC/core (8192 down to
512), i.e. core count from 8 up to 128, and reports EDP and MC on the
Transformer.

Paper shape: EDP first improves with more (finer) cores — longer
pipelines cut DRAM traffic — then declines slightly; MC rises as cores
multiply (more per-core overheads).
"""

from conftest import print_banner, sa_settings, write_artifact

from repro.arch import ArchConfig, arrange_cores, cores_for_tops
from repro.core import MappingEngine, MappingEngineSettings
from repro.cost import DEFAULT_MC
from repro.reporting import format_table
from repro.units import GB, MB

MACS = (8192, 4096, 2048, 1024)
SA_ITERS = 80


def arch_for(macs):
    n = cores_for_tops(128, macs)
    x, y = arrange_cores(n)
    xcut = 2 if x % 2 == 0 else 1
    return ArchConfig(
        cores_x=x, cores_y=y, xcut=xcut, ycut=1,
        dram_bw=128 * GB, noc_bw=32 * GB,
        d2d_bw=(16 * GB if xcut > 1 else 32 * GB),
        glb_bytes=2 * MB, macs_per_core=macs,
    )


def run_sweep(tf_model):
    results = {}
    for seed, macs in enumerate(MACS):
        arch = arch_for(macs)
        engine = MappingEngine(
            arch,
            settings=MappingEngineSettings(sa=sa_settings(SA_ITERS, seed=seed)),
        )
        mapped = engine.map(tf_model, batch=64)
        mc = DEFAULT_MC.evaluate(arch)
        depth = max(len(g) for g in mapped.groups)
        results[arch.n_cores] = (mapped.edp, mc.total, depth)
    return results


def test_fig6b_core_granularity(tf_model, benchmark):
    results = benchmark.pedantic(
        run_sweep, args=(tf_model,), rounds=1, iterations=1
    )
    counts = sorted(results)
    base_edp, base_mc = results[counts[0]][0], results[counts[0]][1]
    rows = [
        [n, results[n][0] / base_edp, results[n][1] / base_mc, results[n][2]]
        for n in counts
    ]
    print_banner(
        "Fig 6(b): core granularity, 128 TOPs, Transformer "
        f"(normalized to {counts[0]} cores)"
    )
    print(format_table(
        ["cores", "EDP", "MC", "max pipeline depth"], rows, floatfmt=".3f"
    ))
    write_artifact("fig6b.csv", ["cores", "edp", "mc", "depth"], rows)
    mcs = [results[n][1] for n in counts]
    # MC rises with core count (monotone across the sweep ends).
    assert mcs[-1] > mcs[0]
    # EDP improves somewhere past the coarsest point (pipelining pays)...
    edps = [results[n][0] for n in counts]
    assert min(edps[1:]) < edps[0]
    # ...and deeper pipelines become available with more cores.
    assert results[counts[-1]][2] >= results[counts[0]][2]
