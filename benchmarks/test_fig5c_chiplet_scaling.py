"""Fig 5(c) panel — delay & energy breakdown while scaling chiplets.

The paper's chiplet-scaling panel sweeps the 72-TOPs G-Arch resource
budget from 1 to 36 chiplets under two D2D bandwidths (16 and 32 GB/s)
and stacks the energy into router / intra-tile / DRAM / D2D buckets
next to the delay bars.

Shape expectations: intra-tile and DRAM energy stay roughly flat (the
workload doesn't change); D2D energy appears with the first cut and
grows with chiplet count; the doubled D2D bandwidth softens the delay
penalty of fine-grained partitions but not their energy.
"""

from conftest import print_banner, sa_settings, write_artifact

from repro.arch import ArchConfig
from repro.core import MappingEngine, MappingEngineSettings
from repro.reporting import format_table
from repro.units import GB, MB

CUTS = ((1, 1), (2, 1), (2, 2), (3, 3), (3, 6), (6, 6))
D2D_GBPS = (16, 32)
SA_ITERS = 120


def arch_for(xcut, ycut, d2d_gbps):
    mono = xcut * ycut == 1
    return ArchConfig(
        cores_x=6, cores_y=6, xcut=xcut, ycut=ycut,
        dram_bw=144 * GB, noc_bw=32 * GB,
        d2d_bw=(32 if mono else d2d_gbps) * GB,
        glb_bytes=2 * MB, macs_per_core=1024,
    )


def run_sweep(tf_model):
    rows = {}
    for d2d in D2D_GBPS:
        for seed, (xcut, ycut) in enumerate(CUTS):
            arch = arch_for(xcut, ycut, d2d)
            engine = MappingEngine(
                arch,
                settings=MappingEngineSettings(
                    sa=sa_settings(SA_ITERS, seed=seed)
                ),
            )
            mapped = engine.map(tf_model, batch=16)
            e = mapped.evaluation.energy
            rows[(d2d, arch.n_chiplets)] = (
                mapped.delay, e.noc, e.intra, e.dram, e.d2d, e.total
            )
    return rows


def test_fig5c_chiplet_scaling(tf_model, benchmark):
    rows = benchmark.pedantic(
        run_sweep, args=(tf_model,), rounds=1, iterations=1
    )
    base_delay = rows[(16, 1)][0]
    base_energy = rows[(16, 1)][5]
    table = [
        [f"{d2d}-{n}", delay / base_delay, noc / base_energy,
         intra / base_energy, dram / base_energy, d2dj / base_energy,
         total / base_energy]
        for (d2d, n), (delay, noc, intra, dram, d2dj, total)
        in sorted(rows.items())
    ]
    print_banner(
        "Fig 5(c) panel: delay & energy breakdown, 1-36 chiplets x D2D "
        "BW, 72-TOPs budget (normalized to the monolithic point)"
    )
    headers = ["D2D-chiplets", "Delay", "Router E", "Intra-tile E",
               "DRAM E", "D2D E", "Total E"]
    print(format_table(headers, table, floatfmt=".3f"))
    write_artifact("fig5c.csv", headers, table)
    for d2d in D2D_GBPS:
        # D2D energy is zero monolithic and grows with chiplet count.
        assert rows[(d2d, 1)][4] == 0.0
        assert rows[(d2d, 36)][4] > rows[(d2d, 2)][4]
        # Intra-tile energy is workload-bound: roughly flat (+-30%).
        intras = [rows[(d2d, n)][2] for n in (1, 2, 4, 9, 18, 36)]
        assert max(intras) < 1.3 * min(intras)
        # 36 single-core chiplets cost clearly more total energy.
        assert rows[(d2d, 36)][5] > rows[(d2d, 1)][5]
    # Extra D2D bandwidth helps fine-grained delay...
    assert rows[(32, 36)][0] < 1.2 * rows[(16, 36)][0]
    # ...but cannot remove the D2D energy (same crossings, same pJ/bit).
    assert rows[(32, 36)][4] > 0.5 * rows[(16, 36)][4]
