"""Population-batched evaluation throughput (the PR-10 tentpole).

The batched core stacks N resident mappings into ``(nb, N, lanes)``
row buffers and evaluates all of them with one vectorized fold
(:meth:`PopulationGroupState.evaluate_current`); the per-mapping path
(:meth:`CompiledEval.evaluate_group`) rebuilds and folds one mapping
at a time.  This bench measures the *warm evaluation core* — the
mappings-evaluated/sec of N annealed, resident states — which is the
regime the batched fold actually accelerates: both paths share the
block-construction caches, so on a cold SA walk the per-candidate
novel-block cost dominates either way and the two walks run within
noise of each other (that walk-level throughput is recorded alongside
for transparency, not asserted).

Methodology: anneal one population of 256 walkers per model (so the
states are *distinct*, genuinely annealed mappings, not copies), take
the first N walkers' group-0 states for each batch size, assert the
batched results are bit-identical to the per-mapping path, then time
repeated warm evaluations of both.  Ratios use process CPU time —
wall clock on shared runners can stall one side by 2x and flake any
floor.  Samples (mean/var/n) land in the history file so the Welch
regression gate tracks run-to-run drift.
"""

import os
import time

from conftest import SCALE, print_banner

from repro.arch import g_arch
from repro.compiled.batch import PopulationGroupState
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SASettings
from repro.evalmodel import Evaluator
from repro.perf import emit_bench
from repro.reporting import format_table
from repro.workloads.models import build

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

MODELS = ("RN-50", "TF", "GN", "MBV2")
BATCH_SIZES = (1, 16, 64, 256)
POPULATION = max(BATCH_SIZES)
BATCH = 4

#: The tentpole target recorded (which models meet it is in the
#: payload): batched warm evaluation >= 5x the per-mapping path at
#: population 256.
TARGET_SPEEDUP = 5.0

#: Conservative floor asserted in CI for the *best* model at
#: population 256 — measured ratios sit at 5.0-6.8x on every machine
#: tried, but single-CPU container noise gets a wide berth.
MIN_BEST_SPEEDUP_AT_256 = 3.0


def _identical(a, b) -> bool:
    return a.delay == b.delay and a.energy.total == b.energy.total


def _anneal(name: str, iterations: int):
    """Anneal a population of POPULATION walkers; returns the walk's
    per-walker group-0 states plus walk-level throughput numbers."""
    graph = build(name)
    arch = g_arch()
    groups = partition_graph(graph, arch, batch=BATCH)
    lmss = [initial_lms(graph, g, arch) for g in groups]
    ev = Evaluator(arch, cache=True)
    ctrl = SAController(
        graph, ev, lmss, BATCH,
        SASettings(iterations=iterations, seed=3, population=POPULATION),
    )
    t0 = time.process_time()
    ctrl.run()
    cpu = time.process_time() - t0
    walk = ctrl._population_walk
    candidates = iterations * POPULATION
    return (
        ev.compiled_for(graph),
        [walk.lms[w][0] for w in range(POPULATION)],
        list(walk.stored),
        candidates / cpu if cpu > 0 else 0.0,
    )


def test_population_eval_throughput(benchmark):
    iterations = max(8, int(40 * SCALE))

    def run():
        rows, record = [], {}
        for name in MODELS:
            ceval, states, stored, walk_cps = _anneal(name, iterations)
            record[name] = {"walk_candidates_per_sec": walk_cps}
            for n in BATCH_SIZES:
                sub, sub_stored = states[:n], stored[:n]
                pgs = PopulationGroupState(ceval, sub, BATCH, sub_stored)
                batched = pgs.evaluate_current()
                serial = [
                    ceval.evaluate_group(sub[w], BATCH, sub_stored[w])
                    for w in range(n)
                ]
                for w in range(n):
                    assert _identical(batched[w], serial[w]), (
                        f"{name} n={n} walker {w}: batched result "
                        f"diverges from the per-mapping path"
                    )
                rep = max(1, int(6000 * SCALE) // n)
                samples = {"batched": [], "serial": []}
                # Interleave the two paths so host-speed drift hits
                # them equally; keep the best of three (the asserted
                # ratio) plus every sample (the Welch-gated history).
                for _ in range(3):
                    t0 = time.process_time()
                    for _ in range(rep):
                        pgs.evaluate_current()
                    cpu = time.process_time() - t0
                    samples["batched"].append(
                        n * rep / cpu if cpu > 0 else 0.0
                    )
                    t0 = time.process_time()
                    for _ in range(rep):
                        for w in range(n):
                            ceval.evaluate_group(
                                sub[w], BATCH, sub_stored[w]
                            )
                    cpu = time.process_time() - t0
                    samples["serial"].append(
                        n * rep / cpu if cpu > 0 else 0.0
                    )
                best = {k: max(v) for k, v in samples.items()}
                rec = {
                    "serial_mappings_per_sec": best["serial"],
                    "batched_mappings_per_sec": best["batched"],
                    "speedup": best["batched"] / best["serial"],
                }
                for label, vals in samples.items():
                    mean = sum(vals) / len(vals)
                    var = sum((v - mean) ** 2 for v in vals) / len(vals)
                    rec[f"{label}_mappings_per_sec_samples"] = vals
                    rec[f"{label}_mappings_per_sec_mean"] = mean
                    rec[f"{label}_mappings_per_sec_var"] = var
                record[name][f"population_{n}"] = rec
                rows.append([
                    name, str(n), f"{best['serial']:.0f}",
                    f"{best['batched']:.0f}",
                    f"{best['batched'] / best['serial']:.2f}x",
                ])
        return rows, record

    rows, record = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner(
        "Population-batched warm evaluation: per-mapping vs batched fold"
    )
    print(format_table(
        ["model", "population", "per-mapping m/s", "batched m/s",
         "speedup"],
        rows,
    ))
    met = [
        name for name, rec in record.items()
        if rec[f"population_{POPULATION}"]["speedup"] >= TARGET_SPEEDUP
    ]
    print(f"models meeting the {TARGET_SPEEDUP}x batched-eval target at "
          f"population {POPULATION}: {met or 'none this run'}")
    emit_bench("population_sa", {
        "arch": "g-arch",
        "batch": BATCH,
        "population": POPULATION,
        "anneal_iterations": iterations,
        "target_speedup": TARGET_SPEEDUP,
        "models": record,
        "models_meeting_target": met,
    }, BENCH_PATH)
    best_at_256 = max(
        rec[f"population_{POPULATION}"]["speedup"]
        for rec in record.values()
    )
    assert best_at_256 >= MIN_BEST_SPEEDUP_AT_256, (
        f"batched warm evaluation only {best_at_256:.2f}x the "
        f"per-mapping path at population {POPULATION} on the best model"
    )
