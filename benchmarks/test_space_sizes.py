"""Sec IV-B — optimization-space sizes, Gemini encoding vs Tangram.

Regenerates the space-size tables the paper links ([2]): for a range of
(cores M, layers N) points, the exact lower bound of the Gemini LP SPM
space against the upper bound of Tangram's heuristic space, in log10.

Shape expectations: the Gemini space dwarfs Tangram's everywhere, and
the gap widens with both M and N.
"""

from conftest import print_banner

from repro.core import gemini_space_size, log10_size, tangram_space_size
from repro.reporting import format_table

POINTS = [
    (16, 4), (36, 4), (36, 8), (64, 8), (100, 10), (144, 12), (256, 12),
]


def run_table():
    rows = []
    for m, n in POINTS:
        g = log10_size(gemini_space_size(m, n))
        t = log10_size(tangram_space_size(m, n))
        rows.append([m, n, g, t, g - t])
    return rows


def test_space_sizes(benchmark):
    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)
    print_banner(
        "Sec IV-B: LP SPM optimization-space sizes (log10 of schemes)"
    )
    print(format_table(
        ["cores M", "layers N", "Gemini (lower bd)", "Tangram (upper bd)",
         "gap (decades)"],
        rows, floatfmt=".1f",
    ))
    # Gemini's space dwarfs Tangram's at every tabulated point...
    assert all(r[4] > 3 for r in rows)
    # ...and the gap widens with scale.
    assert rows[-1][4] > rows[0][4]
    # Sanity anchor: the Simba-scale point is astronomically large.
    assert dict(((m, n), g) for m, n, g, _, _ in rows)[(36, 8)] > 40
