"""Fig 8 — reuse of a single chiplet for multiple accelerators (VII-B).

Builds 128-TOPs and 512-TOPs accelerators four ways and compares their
``MC x E x D``:

* **Simba** — scaled out of Simba's 2-TOPs single-core chiplets;
* **cross reuse** — built from the chiplet of the *other* level's
  optimal design;
* **Joint Optimal** — the best single chiplet across both levels found
  by the joint DSE;
* **Optimal** — each level's own best design.

Paper shape: Simba chiplets scale terribly (one-size-fits-all fails);
cross reuse is better but unsatisfactory; the joint optimum lands within
a modest factor (paper: ~34 % on average) of the per-level optima.
"""

from conftest import print_banner, sa_settings

from repro.arch import s_arch
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    JointExplorer,
    Workload,
    enumerate_candidates,
    geomean,
    scale_with_chiplets,
)
from repro.reporting import format_table

SA_ITERS = 50
LEVELS = (128.0, 512.0)

#: Reduced per-level grids: modest core counts keep the 512-TOPs
#: evaluations tractable (documented subsample of Table I).
def grid_for(tops: int) -> DseGrid:
    return DseGrid(
        tops=tops,
        cuts=(1, 2, 4),
        dram_bw_per_tops=(1.0,),
        noc_bw_gbps=(64,),
        d2d_ratio=(0.5,),
        glb_kb=(2048,),
        macs_per_core=(4096, 8192),
    )


def run_fig8(tf_model):
    workloads = [Workload(tf_model, batch=64)]

    def explorer():
        return DesignSpaceExplorer(workloads, sa_settings=sa_settings(SA_ITERS))

    # Per-level optima (and the best multi-chiplet design per level —
    # the paper's optima happened to be 2- and 4-chiplet designs, which
    # is what makes cross reuse constructible at all).
    optimal = {}
    best_multi = {}
    for tops in LEVELS:
        report = explorer().explore(enumerate_candidates(grid_for(int(tops))))
        optimal[tops] = report.best
        multi = [r for r in report.results if r.arch.n_chiplets > 1]
        best_multi[tops] = min(multi, key=lambda r: r.score)

    # Simba chiplets scaled to each level.
    simba = {}
    for tops in LEVELS:
        arch = scale_with_chiplets(s_arch(), tops)
        simba[tops] = explorer().evaluate_candidate(arch)

    # Cross reuse: each level built from the other level's chiplet.
    cross = {}
    for tops, other in ((LEVELS[0], LEVELS[1]), (LEVELS[1], LEVELS[0])):
        arch = scale_with_chiplets(best_multi[other].arch, tops)
        cross[tops] = (
            explorer().evaluate_candidate(arch) if arch is not None else None
        )

    # Joint optimum over multi-chiplet bases of the lower level.
    bases = [
        c for c in enumerate_candidates(grid_for(int(LEVELS[0])))
        if c.n_chiplets > 1
    ]
    joint = JointExplorer(
        {tops: workloads for tops in LEVELS},
        sa_settings=sa_settings(SA_ITERS),
    ).explore(bases)

    return optimal, simba, cross, joint


def mced(result):
    return result.mc.total * result.energy * result.delay


def test_fig8_chiplet_reuse(tf_model, benchmark):
    optimal, simba, cross, joint = benchmark.pedantic(
        run_fig8, args=(tf_model,), rounds=1, iterations=1
    )
    rows = []
    ratios = {"simba": [], "cross": [], "joint": []}
    for tops in LEVELS:
        base = mced(optimal[tops])
        j = mced(joint.best.per_level[tops])
        s = mced(simba[tops])
        c = mced(cross[tops]) if cross[tops] else float("nan")
        rows.append([
            int(tops), s / base, c / base, j / base, 1.0,
        ])
        ratios["simba"].append(s / base)
        ratios["joint"].append(j / base)
        if cross[tops]:
            ratios["cross"].append(c / base)
    print_banner(
        "Fig 8: MC*E*D of four construction schemes "
        "(normalized to each level's Optimal)"
    )
    print(format_table(
        ["TOPs", "Simba chiplets", "cross reuse", "Joint Optimal", "Optimal"],
        rows, floatfmt=".2f",
    ))
    joint_gap = geomean(ratios["joint"])
    simba_gap = geomean(ratios["simba"])
    print(
        f"\nJoint Optimal is {joint_gap:.2f}x the per-level optimum "
        f"(paper: ~1.34x); Simba chiplets are {simba_gap:.2f}x"
    )
    # One-size-fits-all fails: Simba chiplets are far off the optimum
    # (the magnitude is exaggerated at small SA budgets; the paper's own
    # 512-TOPs Simba bar needs an axis break at 8.4x).
    assert simba_gap > 1.5
    # The joint optimum is much closer to per-level optima than naive
    # reuse of another platform's chiplet, and within a modest factor of
    # the per-level optima.
    assert joint_gap < simba_gap
    if ratios["cross"]:
        assert joint_gap < geomean(ratios["cross"])
    assert joint_gap < 6.0
    # Per-level optimal is optimal.
    assert all(r[3] >= 0.999 for r in rows)
