"""One-time lowering of a :class:`DNNGraph` into flat array tables.

The SA hot loop used to re-walk Python object graphs (layers, input
slices, schemes) on every evaluation.  :class:`CompiledGraph` lowers a
DNN once into structure-of-arrays numpy tables plus plain-int rows so
the evaluation core addresses layers by integer id and never touches
the ``DNNGraph`` / ``Layer`` objects inside the loop.

Compilation is memoized per graph in a module-level weak map, so every
evaluator bound to the same graph — including pool workers that
inherit the parent's memory via ``fork`` — shares one set of tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType

#: Ceiling for flattened ``slots x links`` scatter lane spaces.  The
#: population-batched kernels give every (slot, link) pair its own
#: bincount lane; 2**40 lanes is already a multi-terabyte accumulator,
#: so anything larger is a sizing bug, not a workload.
MAX_STACKED_LANES = 1 << 40

#: Dimension products (extents x bytes-per-element) beyond this lose
#: exactness long before int64 overflows — volumes are carried as
#: float64 whose integer range ends at 2**53.
_MAX_DIM_PRODUCT = 1 << 53


def stacked_offsets(n_slots: int, n_links: int) -> np.ndarray:
    """Per-slot bin offsets for a stacked ``(N, links)`` scatter.

    The product is taken over Python ints and the offsets are built as
    int64 *before* any multiply, so platforms whose default numpy int
    is 32-bit cannot silently wrap when ``N x links`` exceeds 2**31.
    """
    lanes = int(n_slots) * int(n_links)
    if lanes > MAX_STACKED_LANES:
        raise ValueError(
            f"stacked scatter of {n_slots} slots x {n_links} links needs "
            f"{lanes} lanes (> {MAX_STACKED_LANES}); reduce the population "
            "or split the batch"
        )
    return np.arange(n_slots, dtype=np.int64) * np.int64(n_links)


#: The int64 dimension tables of a :class:`CompiledGraph`, in the
#: canonical order shared-memory arenas publish them.
TABLE_KEYS = (
    "out_h", "out_w", "out_k", "in_c", "kernel_r", "kernel_s",
    "stride", "groups", "bytes_per_elem",
)


def as_index_table(arr: np.ndarray) -> np.ndarray:
    """An index table promoted to int64 (no-op when already int64).

    Every table that participates in stacked slot-offset arithmetic
    must be int64: adding an int64 offset to an int32 table would
    upcast, but an int32 table multiplied by int32 counts first (as
    route-table builders on 32-bit-default platforms could produce)
    wraps silently.  Centralizing the promotion makes the contract
    checkable.
    """
    if arr.dtype == np.int64:
        return arr
    return arr.astype(np.int64)


@dataclass(frozen=True)
class InputRef:
    """One input slice of a layer, by producer layer id.

    ``producer_lid`` is ``-1`` when the slice reads the DNN input
    activation; ``c_lo:c_hi`` is the consumer-channel placement (see
    :class:`repro.workloads.graph.InputSlice`).
    """

    op_idx: int
    producer_lid: int
    c_lo: int
    c_hi: int


class CompiledGraph:
    """Structure-of-arrays view of a DNN, indexed by layer id.

    The int64 dimension tables exist for vectorized consumers; the
    ``*_i`` lists hold the same values as plain Python ints for scalar
    hot-path reads (numpy scalar extraction is slower than list
    indexing and changes dtype-promotion rules).
    """

    def __init__(self, graph: DNNGraph,
                 tables: "dict[str, np.ndarray] | None" = None):
        self.name = graph.name
        names = tuple(graph.layer_names())
        self.names = names
        self.lid = {name: i for i, name in enumerate(names)}
        layers = tuple(graph.layer(name) for name in names)
        #: The frozen Layer records, for code shared with the object
        #: path (receptive-field arithmetic reads their attributes).
        self.layer_refs: tuple[Layer, ...] = layers

        if tables is None:
            def table(fn) -> np.ndarray:
                # Explicit int64 regardless of platform default int
                # width; np.array raises OverflowError for values past
                # 2**63, so out-of-range specs fail loudly instead of
                # wrapping.
                return np.array([fn(l) for l in layers], dtype=np.int64)

            self.out_h = table(lambda l: l.out_h)
            self.out_w = table(lambda l: l.out_w)
            self.out_k = table(lambda l: l.out_k)
            self.in_c = table(lambda l: l.in_c)
            self.kernel_r = table(lambda l: l.kernel_r)
            self.kernel_s = table(lambda l: l.kernel_s)
            self.stride = table(lambda l: l.stride)
            self.groups = table(lambda l: l.groups)
            self.bytes_per_elem = table(lambda l: l.bytes_per_elem)
        else:
            # Adopt externally published tables (shared-memory views):
            # the arrays are used as-is — zero-copy — after a shape and
            # dtype check against the graph they claim to describe.
            for key in TABLE_KEYS:
                arr = tables[key]
                if arr.dtype != np.int64 or arr.shape != (len(names),):
                    raise ValueError(
                        f"shared table {key!r} has dtype {arr.dtype} "
                        f"shape {arr.shape}; expected int64 "
                        f"({len(names)},) for graph {graph.name!r}"
                    )
                setattr(self, key, arr)

        self.out_h_i = self.out_h.tolist()
        self.out_w_i = self.out_w.tolist()
        self.out_k_i = self.out_k.tolist()
        self.in_c_i = self.in_c.tolist()
        self.kernel_r_i = self.kernel_r.tolist()
        self.kernel_s_i = self.kernel_s.tolist()
        self.stride_i = self.stride.tolist()
        self.groups_i = self.groups.tolist()
        self.bytes_per_elem_i = self.bytes_per_elem.tolist()

        # Volume arithmetic downstream multiplies up to four extents by
        # bytes-per-element in int64 and then carries the product as
        # float64; guard the worst-case per-layer product once at
        # compile time so oversized synthetic specs fail with a clear
        # message instead of silently losing bits.
        for i, name in enumerate(names):
            worst = (
                self.out_h_i[i] * self.out_w_i[i]
                * max(1, self.out_k_i[i]) * max(1, self.in_c_i[i])
                * self.bytes_per_elem_i[i]
            )
            if worst > _MAX_DIM_PRODUCT:
                raise ValueError(
                    f"layer {name!r}: dimension product {worst} exceeds "
                    f"the exact float64 range (2**53); the compiled "
                    "tables cannot represent its volumes losslessly"
                )

        self.kinds: tuple[LayerType, ...] = tuple(l.kind for l in layers)
        self.channelwise = tuple(l.is_channelwise for l in layers)
        self.has_weights = tuple(l.has_weights for l in layers)

        #: Per-layer input slices with producers resolved to layer ids.
        self.inputs: tuple[tuple[InputRef, ...], ...] = tuple(
            tuple(
                InputRef(
                    op_idx,
                    -1 if s.producer is None else self.lid[s.producer],
                    s.c_lo,
                    s.c_hi,
                )
                for op_idx, s in enumerate(graph.input_slices(name))
            )
            for name in names
        )

    def __len__(self) -> int:
        return len(self.names)


_COMPILED: "WeakKeyDictionary[DNNGraph, CompiledGraph]" = WeakKeyDictionary()


def compile_graph(graph: DNNGraph) -> CompiledGraph:
    """The (memoized) compiled tables of ``graph``.

    The first call per graph pays the lowering; every later call — and
    every forked pool worker — gets the same object back.
    """
    compiled = _COMPILED.get(graph)
    if compiled is None:
        from repro.obs.trace import trace

        with PERF.time("compiled.compile_graph"), \
                trace("compile_graph", layers=len(graph.layer_names())):
            compiled = CompiledGraph(graph)
        _COMPILED[graph] = compiled
        PERF.add("compiled.graphs")
    return compiled
