"""Shared-memory arenas for compiled graph tables.

``PersistentEvalPool`` used to rely on Linux ``fork`` semantics to hand
workers the parent's compiled tables (copy-on-write inheritance); under
``spawn`` every worker would rebuild them from the pickled graph.  An
:class:`ShmArena` instead publishes the tables once into one
``multiprocessing.shared_memory`` segment; workers attach the segment
and wrap zero-copy numpy views around it, so the tables exist once in
physical memory regardless of start method or worker count.

Lifetime is parent-owned and refcounted: each pool (or any other
publisher caller) holds a reference, :meth:`ShmArena.release` drops
one, and the segment is closed + unlinked when the count reaches zero
— with a ``weakref.finalize`` safety net for arenas abandoned without
release.  Workers only ever *attach*: their handles are unregistered
from the per-process ``resource_tracker`` so a worker exit (including a
SIGKILL'd chaos casualty) can never unlink a segment the parent still
serves to its siblings.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from weakref import WeakKeyDictionary

import numpy as np

from repro.compiled.graph import TABLE_KEYS, CompiledGraph, _COMPILED
from repro.perf import PERF

#: Table rows are 64-byte aligned inside the segment so every view
#: starts on a cache-line boundary.
_ALIGN = 64


@dataclass(frozen=True)
class TableSpec:
    """Location of one table inside an arena segment."""

    key: str
    offset: int
    dtype: str
    shape: tuple[int, ...]


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable pointer to a published arena (ships via initargs)."""

    name: str
    graph_name: str
    tables: tuple[TableSpec, ...]


def _finalize_arena(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Last-resort cleanup for arenas dropped without release()."""
    try:
        shm.close()
        if owner:
            shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - racing
        pass


class ShmArena:
    """One shared-memory segment holding a set of named numpy tables."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: ArenaHandle, owner: bool):
        self._shm = shm
        self.handle = handle
        self.owner = owner
        self.refs = 1 if owner else 0
        self.released = False
        self._finalizer = weakref.finalize(
            self, _finalize_arena, shm, owner
        )

    # -- construction --------------------------------------------------

    @classmethod
    def publish(cls, graph_name: str,
                tables: dict[str, np.ndarray]) -> "ShmArena":
        """Copy ``tables`` into a fresh segment (parent side)."""
        layout = []
        offset = 0
        for key, arr in tables.items():
            arr = np.ascontiguousarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN
            layout.append((key, offset, arr))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        specs = []
        for key, off, arr in layout:
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off
            )
            view[...] = arr
            specs.append(TableSpec(key, off, arr.dtype.str, arr.shape))
        PERF.add("compiled.shm.published")
        PERF.add("compiled.shm.bytes", float(shm.size))
        return cls(
            shm, ArenaHandle(shm.name, graph_name, tuple(specs)), True
        )

    @classmethod
    def attach(cls, handle: ArenaHandle) -> "ShmArena":
        """Map an already-published segment (worker side, zero-copy)."""
        # SharedMemory(name=...) registers the segment with the
        # resource tracker as if this process owned it — under spawn
        # all processes share one tracker, so a worker's claim would
        # either unlink a segment the parent still serves or leave
        # "leaked resource" noise at shutdown.  Python 3.13 grows a
        # ``track=False`` knob; until then, suppress the registration
        # for the duration of the constructor (worker init is
        # single-threaded).
        original = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = original
        PERF.add("compiled.shm.attached")
        return cls(shm, handle, False)

    # -- access --------------------------------------------------------

    def views(self, writeable: bool = False) -> dict[str, np.ndarray]:
        """Numpy views over the segment, one per published table."""
        out = {}
        for spec in self.handle.tables:
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf, offset=spec.offset,
            )
            if not writeable:
                view.flags.writeable = False
            out[spec.key] = view
        return out

    # -- lifetime ------------------------------------------------------

    def acquire(self) -> "ShmArena":
        """Take one more parent-side reference (publisher only)."""
        self.refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last one closes + unlinks."""
        if self.released:
            return
        self.refs -= 1
        if self.refs <= 0:
            self.released = True
            self._finalizer.detach()
            _finalize_arena(self._shm, self.owner)
            PERF.add("compiled.shm.unlinked")

    def close(self) -> None:
        """Unconditionally drop this process's mapping (worker side)."""
        if not self.released:
            self.released = True
            self._finalizer.detach()
            _finalize_arena(self._shm, self.owner)


#: Published arenas per compiled graph: pools sharing an explorer (or
#: respawning) reuse one segment per graph instead of stacking copies.
_PUBLISHED: "WeakKeyDictionary[CompiledGraph, ShmArena]" = (
    WeakKeyDictionary()
)

#: Worker-side pins: attached arenas (and therefore their mapped
#: buffers) must outlive every compiled-table view handed out.
_WORKER_ARENAS: list[ShmArena] = []


def publish_graph_tables(compiled: CompiledGraph) -> ShmArena:
    """The (refcounted, memoized) arena publishing ``compiled``'s tables.

    Every call takes one reference; pair each with
    :meth:`ShmArena.release`.
    """
    arena = _PUBLISHED.get(compiled)
    if arena is not None and not arena.released:
        return arena.acquire()
    arena = ShmArena.publish(
        compiled.name or "graph",
        {key: getattr(compiled, key) for key in TABLE_KEYS},
    )
    _PUBLISHED[compiled] = arena
    return arena


def adopt_shared_tables(graph, handle: ArenaHandle) -> CompiledGraph:
    """Worker side: back ``graph``'s compiled tables by the arena.

    Attaches the segment, builds a :class:`CompiledGraph` whose int64
    tables are read-only views into it, and seeds the module-level
    compile memo so every evaluator in this process resolves to the
    shared tables instead of rebuilding them.
    """
    arena = ShmArena.attach(handle)
    compiled = CompiledGraph(graph, tables=arena.views())
    _COMPILED[graph] = compiled
    _WORKER_ARENAS.append(arena)
    return compiled
