"""Array-native evaluation core: compiled tables in, GroupEval out.

This is the Evaluator's hot path rebuilt over :class:`CompiledGraph`
tables.  Lowering is split by what actually determines each piece:

* :class:`PartRec` — everything a layer's **partition** determines
  (region tables, per-part intra-core schedules and their aggregates,
  requirement regions, weight-slice grouping, DRAM-input volumes).
  Keyed by ``(layer, partition, batch_unit)``: the three SA operators
  that only permute core groups or re-draw FD selectors (OP2/OP3/OP5)
  reuse it untouched.
* :class:`CompiledLayer` — a partition record plus the scheme's core
  assignment, keyed by the full scheme.
* pair geometry — producer-part x consumer-part overlap volumes,
  keyed by the two partitions; only the same-core mask and the final
  scatter depend on core assignments.

Traffic is accumulated with the same scatter-add kernels the object
path uses (:func:`~repro.evalmodel.traffic_analysis.core_scatter_batch`
/ :func:`~repro.evalmodel.traffic_analysis.dram_scatter_batch`) and the
delay/energy reduction reuses the object path's stage-time and energy
functions, so compiled results are **bit-identical** to the object path
(asserted over the whole model zoo in
``tests/test_compiled_identity.py``).  The core is fabric-agnostic: it
consumes only the :class:`~repro.fabric.Topology` surface of
``evaluator.topo`` (padded route tables, link arrays, multicast
trees), so every registered interconnect — mesh, folded torus,
concentrated mesh, ring — runs through the same compiled hot path.

On top of the stateless path, :class:`GroupSession` adds delta
evaluation for the SA loop: a proposal recomputes only the per-layer
blocks an operator move actually touched (the mutated layers' records
and self blocks, plus the input blocks of those layers, their in-group
consumers and any layer whose cross-group placement changed) and
re-merges the cached remainder in the canonical order — the merge is
the same reduction over the same block arrays, so delta and full
evaluation agree bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.encoding import INTERLEAVED, LayerGroupMapping, MappingScheme
from repro.errors import InvalidMappingError
from repro.evalmodel.breakdown import EnergyBreakdown, GroupEval
from repro.evalmodel.delay import per_dram_bandwidth
from repro.evalmodel.traffic_analysis import (
    LayerTrafficBlock,
    _conv_needs,
    _dram_targets,
    _matmul_needs,
)
from repro.intracore.dataflow import CoreWorkload
from repro.perf import LruDict
from repro.workloads.layer import LayerType

from repro.compiled.graph import CompiledGraph


@dataclass
class PartRec:
    """Everything one layer's partition determines (scheme-independent).

    ``regions`` rows are ``(h_lo, h_hi, w_lo, w_hi, b_lo, b_hi, k_lo,
    k_hi)`` in numerical-ID (Correspondence Rule) order; the float
    arrays hold the intra-core schedule outputs traffic analysis
    consumes; ``weight_slices`` groups parts sharing a K-slice (the
    multicast units) as ``(bytes incl. refetch, part indices)``;
    ``out_volumes`` are per-part ofmap bytes; ``needs`` / ``dram_in``
    lazily memoize per-input requirement regions and DRAM-read volumes.
    """

    lid: int
    regions: np.ndarray
    if_fetches: np.ndarray
    w_fetches: np.ndarray
    compute: float
    energy: float
    fits: bool
    weight_slices: tuple | None
    out_volumes: np.ndarray
    needs: dict
    dram_in: dict


@dataclass
class CompiledLayer:
    """A partition record bound to one scheme's core assignment.

    ``dram_plans`` lazily memoizes per-(FD selector, direction, input)
    scatter plans: the padded route indices and repeat counts of the
    cores' DRAM routes, so repeated scatters skip the route-table
    gather and only pay the bincount.
    """

    rec: PartRec
    cores: np.ndarray
    cores_list: list[int]
    dram_plans: dict


class _GroupCtx:
    """Per-layer-group compiled context (positions and input routing).

    Each input-slice descriptor is ``(op_idx, producer_lid, group_pos,
    ext_name)``: ``group_pos`` is the producer's position inside the
    group (or ``None``), ``ext_name`` the producer's layer name when it
    lives in an earlier group (its DRAM placement then comes from
    ``stored_at``), and both are ``None`` for DNN-input slices.
    """

    def __init__(self, cgraph: CompiledGraph, layers: tuple[str, ...]):
        self.layers = layers
        self.lids = [cgraph.lid[name] for name in layers]
        pos = {lid: i for i, lid in enumerate(self.lids)}
        self.inputs: list[tuple] = []
        for lid in self.lids:
            descs = []
            for ref in cgraph.inputs[lid]:
                plid = ref.producer_lid
                if plid < 0:
                    descs.append((ref.op_idx, plid, None, None))
                elif plid in pos:
                    descs.append((ref.op_idx, plid, pos[plid], None))
                else:
                    descs.append((ref.op_idx, plid, None, cgraph.names[plid]))
            self.inputs.append(tuple(descs))
        #: Cross-group producer names per layer, in slice order (their
        #: DRAM placements are the only stored_at inputs the group
        #: reads) — empty for layers fed purely from inside the group.
        self.ext_names = [
            tuple(d[3] for d in descs if d[3] is not None)
            for descs in self.inputs
        ]
        #: In-group producer positions per layer: a move mutating
        #: position p invalidates the input blocks of p and of every
        #: layer listing p here.
        self.producer_pos = [
            tuple(d[2] for d in descs if d[2] is not None)
            for descs in self.inputs
        ]


@dataclass
class Proposal:
    """A delta-evaluated candidate, ready to commit into its session."""

    result: GroupEval
    schemes: list[MappingScheme]
    recs: list[CompiledLayer]
    self_blocks: list[LayerTrafficBlock]
    input_blocks: list[LayerTrafficBlock]
    ext_places: list[tuple]
    #: First block / layer index the move touched — the session's
    #: prefix folds are valid up to (exclusive) these on commit.
    first_block: int
    first_layer: int


class CompiledEval:
    """Array-native evaluation of one graph on one evaluator.

    All caches are LRU-bounded and keyed by content (layer id,
    partition or scheme, batch unit, dependency schemes/placements), so
    the compiled path is a pure memoized function of its inputs —
    exactly like the object path's cache layers, minus the object
    traffic.
    """

    def __init__(self, evaluator, cgraph: CompiledGraph):
        self.ev = evaluator
        self.cgraph = cgraph
        self.parts = LruDict(32768, name="compiled.parts")
        self.layers = LruDict(32768, name="compiled.layers")
        self.self_blocks = LruDict(32768, name="compiled.self")
        self.input_blocks = LruDict(16384, name="compiled.inputs")
        self.pair_geom = LruDict(32768, name="compiled.pairs")
        self.slice_flows = LruDict(16384, name="compiled.slices")
        self._intra = LruDict(200_000)
        self._trees = LruDict(65536)
        self._group_ctx: dict[tuple[str, ...], _GroupCtx] = {}
        self._empty_block: LayerTrafficBlock | None = None
        # Reduction constants hoisted out of the per-evaluation
        # finalize step.
        topo = evaluator.topo
        self._bandwidths = topo.link_arrays()[0]
        self._noc_idx, self._d2d_idx, _ = topo.link_index_arrays()
        self._per_dram_bw = per_dram_bandwidth(evaluator.arch)
        self._n_d2d = evaluator._n_d2d_interfaces()

    # ------------------------------------------------------------------
    # Scheme lowering (the compiled parse)
    # ------------------------------------------------------------------

    def group_ctx(self, group) -> _GroupCtx:
        ctx = self._group_ctx.get(group.layers)
        if ctx is None:
            ctx = _GroupCtx(self.cgraph, group.layers)
            self._group_ctx[group.layers] = ctx
        return ctx

    def layer_rec(
        self, lid: int, scheme: MappingScheme, batch_unit: int
    ) -> CompiledLayer:
        # Keyed by what the record depends on — partition and core
        # assignment, not the FD selectors — so OP5 (flow re-draw)
        # moves reuse it.
        key = (lid, scheme.part, scheme.core_group, batch_unit)
        rec = self.layers.get_lru(key)
        if rec is None:
            part = self.part_rec(lid, scheme.part, batch_unit)
            cores = np.fromiter(
                scheme.core_group, dtype=np.int64,
                count=scheme.part.n_parts,
            )
            rec = CompiledLayer(part, cores, list(scheme.core_group), {})
            self.layers.put(key, rec)
        return rec

    def part_rec(self, lid: int, part, batch_unit: int) -> PartRec:
        key = (lid, part, batch_unit)
        rec = self.parts.get_lru(key)
        if rec is None:
            rec = self._build_part(lid, part, batch_unit)
            self.parts.put(key, rec)
        return rec

    def _build_part(self, lid: int, part, batch_unit: int) -> PartRec:
        cg = self.cgraph
        ph, pw, pb, pk = part.h, part.w, part.b, part.k
        n = part.n_parts
        out_h, out_w, out_k = cg.out_h_i[lid], cg.out_w_i[lid], cg.out_k_i[lid]

        # Near-equal splits in numerical-ID order:
        # NID = ((h*W + w)*B + b)*K + k.
        idx = np.arange(n, dtype=np.int64)
        k_id = idx % pk
        b_id = (idx // pk) % pb
        w_id = (idx // (pk * pb)) % pw
        h_id = idx // (pk * pb * pw)
        regions = np.empty((n, 8), dtype=np.int64)
        regions[:, 0] = h_id * out_h // ph
        regions[:, 1] = (h_id + 1) * out_h // ph
        regions[:, 2] = w_id * out_w // pw
        regions[:, 3] = (w_id + 1) * out_w // pw
        regions[:, 4] = b_id * batch_unit // pb
        regions[:, 5] = (b_id + 1) * batch_unit // pb
        regions[:, 6] = k_id * out_k // pk
        regions[:, 7] = (k_id + 1) * out_k // pk
        ext = regions[:, 1::2] - regions[:, 0::2]
        if not (ext > 0).all():
            raise InvalidMappingError(
                f"{cg.names[lid]}: partition {part.as_tuple()} produced an "
                "empty part — partition counts exceed extents"
            )

        kind = cg.kinds[lid]
        in_c, groups = cg.in_c_i[lid], cg.groups_i[lid]
        if cg.channelwise[lid]:
            c = ext[:, 3].copy()
            grp = np.ones(n, dtype=np.int64)
        elif kind is LayerType.MATMUL:
            c = np.full(n, in_c, dtype=np.int64)
            grp = np.ones(n, dtype=np.int64)
        elif groups > 1:
            # A K-slice of a grouped conv touches only its groups'
            # channels (same arithmetic as parser._workload_for).
            k_per_group = out_k // groups
            g_lo = regions[:, 6] // k_per_group
            g_hi = (regions[:, 7] - 1) // k_per_group + 1
            grp = g_hi - g_lo
            c = grp * (in_c // groups)
        else:
            c = np.full(n, in_c, dtype=np.int64)
            grp = np.ones(n, dtype=np.int64)

        r, s = cg.kernel_r_i[lid], cg.kernel_s_i[lid]
        stride, bpe = cg.stride_i[lid], cg.bytes_per_elem_i[lid]
        # (b, k, h, w, c, groups) per part as plain ints.
        sig_rows = np.stack(
            [ext[:, 2], ext[:, 3], ext[:, 0], ext[:, 1], c, grp], axis=1
        ).tolist()

        memo = self._intra
        schedule = self.ev.intracore.schedule
        results = []
        base = (kind, r, s, stride, bpe)
        # Near-equal splits yield few distinct part shapes; dedupe
        # locally so the shared memo is probed once per shape.
        local: dict[tuple, object] = {}
        for row in sig_rows:
            sig = (row[0], row[1], row[2], row[3], row[4], row[5])
            res = local.get(sig)
            if res is None:
                res = memo.get_lru((base, sig))
                if res is None:
                    res = schedule(CoreWorkload(
                        kind=kind, b=sig[0], k=sig[1], h=sig[2], w=sig[3],
                        c=sig[4], r=r, s=s, stride=stride, groups=sig[5],
                        bytes_per_elem=bpe,
                    ))
                    memo.put((base, sig), res)
                local[sig] = res
            results.append(res)
        # Per-part aggregation in part order (same fold as the object
        # path's _intra_aggregate).
        compute = 0.0
        energy = 0.0
        fits = True
        for res in results:
            if res.compute_time > compute:
                compute = res.compute_time
            energy += res.energy
            fits = fits and res.fits
        w_fetches = np.array(
            [res.w_fetches for res in results], dtype=np.float64
        )

        weight_slices = None
        if cg.has_weights[lid]:
            # Stationary-operand bytes (CoreWorkload.weight_bytes),
            # grouped by K-slice: cores sharing a slice receive the
            # same bytes (one multicast unit per slice).  Parts share a
            # (k_lo, k_hi) slice exactly when they share a k id — k
            # cycles fastest in NID order, so slice kk owns parts
            # ``kk, kk + pk, ...`` and the per-slice byte maximum is a
            # column-wise reduction (max is order-insensitive, so this
            # matches the per-part fold bit for bit).
            wb = (
                ext[:, 3] * np.maximum(1, c // grp) * (r * s * bpe)
            ).astype(np.float64)
            vols = (wb * w_fetches).reshape(-1, pk).max(axis=0).tolist()
            # Slice kk's parts are cores_list[kk::pk]; store the stride
            # so the self-block builder can gather them with one slice.
            weight_slices = tuple(
                (vols[kk], kk, pk) for kk in range(pk)
            )

        return PartRec(
            lid=lid,
            regions=regions,
            if_fetches=np.array(
                [res.if_fetches for res in results], dtype=np.float64
            ),
            w_fetches=w_fetches,
            compute=compute,
            energy=energy,
            fits=fits,
            weight_slices=weight_slices,
            out_volumes=(
                ext[:, 0] * ext[:, 1] * ext[:, 2] * ext[:, 3] * bpe
            ).astype(np.float64),
            needs={},
            dram_in={},
        )

    def _layer_needs(self, rec: PartRec, op_idx: int):
        """Requirement regions of one input (memoized on the record)."""
        got = rec.needs.get(op_idx)
        if got is None:
            cg = self.cgraph
            consumer = cg.layer_refs[rec.lid]
            ref = cg.inputs[rec.lid][op_idx]
            if consumer.kind is LayerType.MATMUL:
                producer = (
                    cg.layer_refs[ref.producer_lid]
                    if ref.producer_lid >= 0 else None
                )
                got = _matmul_needs(consumer, rec.regions, op_idx, producer)
            else:
                got = _conv_needs(consumer, rec.regions, ref.c_lo, ref.c_hi)
            rec.needs[op_idx] = got
        return got

    def _dram_in(self, rec: PartRec, op_idx: int):
        """Per-part DRAM-read volumes of one input: ``(idx, bytes)``.

        ``None`` when no part needs this input.  Partition-determined,
        so OP2/OP3/OP5 moves reuse it; only the destination cores and
        the FD selector vary per scheme.
        """
        got = rec.dram_in.get(op_idx, False)
        if got is False:
            needs, valid = self._layer_needs(rec, op_idx)
            if not valid.any():
                got = None
            else:
                ext = needs[:, 1::2] - needs[:, 0::2]
                volumes = ext[:, 0] * ext[:, 1] * ext[:, 2] * ext[:, 3]
                idx = np.nonzero(valid)[0]
                bpe = self.cgraph.bytes_per_elem_i[rec.lid]
                got = (idx, volumes[idx] * bpe * rec.if_fetches[idx])
            rec.dram_in[op_idx] = got
        return got

    def pair_geometry(self, rec: PartRec, op_idx: int, prod: PartRec,
                      c_part, p_part, batch_unit: int):
        """Producer-part x consumer-part overlaps for one input.

        Returns ``(di, sj, bytes)`` over the geometrically overlapping
        (destination, producer-part) pairs in destination-major order —
        only the same-core filter and the scatter remain per scheme —
        or ``None`` when nothing overlaps.  Keyed by the two partitions
        (``False`` marks a cached empty result).
        """
        key = (rec.lid, c_part, prod.lid, p_part, batch_unit, op_idx)
        got = self.pair_geom.get_lru(key)
        if got is False:
            return None
        if got is None:
            needs, valid = self._layer_needs(rec, op_idx)
            if not valid.any():
                got = False
            else:
                p_regions = prod.regions
                lo = np.maximum(needs[:, None, 0::2], p_regions[None, :, 0::2])
                hi = np.minimum(needs[:, None, 1::2], p_regions[None, :, 1::2])
                ext = hi - lo
                hits = (ext > 0).all(axis=2) & valid[:, None]
                if not hits.any():
                    got = False
                else:
                    overlaps = (
                        ext[..., 0] * ext[..., 1] * ext[..., 2] * ext[..., 3]
                    )
                    di, sj = np.nonzero(hits)
                    bpe = self.cgraph.bytes_per_elem_i[prod.lid]
                    got = (di, sj, overlaps[di, sj] * bpe)
            self.pair_geom.put(key, got)
            if got is False:
                return None
        return got

    # ------------------------------------------------------------------
    # Traffic blocks
    # ------------------------------------------------------------------

    def deps_for(self, ctx: _GroupCtx, i: int, schemes, stored_at) -> tuple:
        """What layer ``i``'s input block depends on, besides itself.

        One entry per input slice: the producer's scheme (in-group),
        its DRAM placement (cross-group) or ``None`` (DNN input, whose
        selector lives in the layer's own scheme).
        """
        descs = ctx.inputs[i]
        out = []
        for _, _, group_pos, ext_name in descs:
            if group_pos is not None:
                out.append(schemes[group_pos])
            elif ext_name is not None:
                out.append(stored_at.get(ext_name, INTERLEAVED))
            else:
                out.append(None)
        return tuple(out)

    def input_block(
        self, ctx: _GroupCtx, i: int, batch_unit: int, schemes, recs,
        deps: tuple,
    ) -> LayerTrafficBlock:
        # The block depends on the layer's partition, core assignment
        # and ifmap selector — not its weight/ofmap FDs — and on each
        # producer's partition + core assignment (or placement).
        s = schemes[i]
        narrowed = tuple(
            (d.part, d.core_group) if isinstance(d, MappingScheme) else d
            for d in deps
        )
        key = (
            ctx.lids[i], s.part, s.core_group, s.fd.ifmap, batch_unit,
            narrowed,
        )
        block = self.input_blocks.get_lru(key)
        if block is None:
            block = self._build_input_block(
                ctx, i, batch_unit, schemes, recs, deps
            )
            self.input_blocks.put(key, block)
        return block

    def _tree_links(self, dram, cores: tuple[int, ...]) -> tuple:
        """``(link index array, size)`` of the dram -> cores multicast
        tree.

        Keyed by core *indices* (int-tuple hashing beats node-tuple
        hashing in the hot loop); the tree is the union of the
        deterministic per-core routes (:mod:`repro.noc.multicast`
        semantics) gathered from the padded route tables, so both
        paths agree on the link set.
        The links are cached as an int64 array: scatter targets are
        unique within a tree, so fancy-index adds through the array are
        value-identical to the old list form, and the batched self-block
        builder can concatenate them without per-use conversion.
        """
        key = (dram, cores)
        got = self._trees.get_lru(key)
        if got is None:
            topo = self.ev.topo
            # The tree is the union of the deterministic per-core
            # routes (see noc.multicast); the padded from-DRAM route
            # table holds exactly those routes, so one gather + unique
            # replaces the per-destination route walk.
            n_dram = len(topo.dram_nodes())
            from_d = topo.dram_route_tables()[2]
            rows = (
                np.fromiter(cores, dtype=np.int64, count=len(cores))
                * n_dram + dram[1]
            )
            padded = from_d[rows]
            links = np.unique(padded[padded >= 0])
            got = (links.astype(np.int64, copy=False), int(links.size))
            self._trees.put(key, got)
        return got

    def _dram_scatter_planned(
        self, layer: CompiledLayer, plan_key, fd: int, sel,
        volumes, vol_slots, tally, write: bool,
    ) -> None:
        """Planned variant of :func:`dram_scatter_batch`.

        The route-table gather for a fixed core subset is memoized on
        the layer record (``sel`` — ``None`` for all parts, else a part
        index array — is only consulted on a plan miss); the arithmetic
        (bincount over the same index array with weights in the same
        order, sequential tally fold) is identical to the shared
        kernel, so results match bit for bit.
        """
        topo = self.ev.topo
        plan = layer.dram_plans.get(plan_key)
        if plan is None:
            cores_sel = layer.cores if sel is None else layer.cores[sel]
            n_dram = len(topo.dram_nodes())
            to_d, to_l, from_d, from_l = topo.dram_route_tables()
            table, lens = (to_d, to_l) if write else (from_d, from_l)
            plan = []
            for dram, share in _dram_targets(topo, fd):
                d = dram[1]
                rows = cores_sel * n_dram + d
                padded = table[rows].ravel()
                plan.append((d, share, padded[padded >= 0], lens[rows]))
            layer.dram_plans[plan_key] = plan
        n_slots = len(vol_slots)
        for d, share, valid_idx, rep_lens in plan:
            v = volumes * share
            vol_slots += np.bincount(
                valid_idx, weights=np.repeat(v, rep_lens),
                minlength=n_slots,
            )
            t = tally[d]
            for x in v.tolist():
                t += x
            tally[d] = t

    def _zeros(self):
        topo = self.ev.topo
        n_dram = len(topo.dram_nodes())
        return np.zeros(topo.n_links), np.zeros(n_dram)

    def _ingroup_slice_ops(self, cons: CompiledLayer, op_idx: int,
                           prod: CompiledLayer, c_part, p_part,
                           batch_unit: int) -> tuple:
        """Link adds of one in-group input slice, as replayable ops."""
        rec = cons.rec
        geom = self.pair_geometry(
            rec, op_idx, prod.rec, c_part, p_part, batch_unit
        )
        if geom is None:
            return ()
        di0, sj0, bytes0 = geom
        # Same-core data stays inside the core's GLB.
        src, dst = prod.cores[sj0], cons.cores[di0]
        mask = src != dst
        if not mask.any():
            return ()
        di = di0[mask]
        volumes = bytes0[mask] * rec.if_fetches[di]
        # The bincount below is exactly what core_scatter_batch adds
        # into its accumulator; caching the array and adding it later
        # is the same 0 + bincount fold.
        topo = self.ev.topo
        table, lens = topo.core_route_table()
        rows = src[mask] * topo.arch.n_cores + dst[mask]
        padded = table[rows].ravel()
        arr = np.bincount(
            padded[padded >= 0],
            weights=np.repeat(volumes, lens[rows]),
            minlength=topo.n_links,
        )
        return ((arr, None, None),)

    def _dram_slice_ops(self, layer: CompiledLayer, op_idx: int,
                        fd: int) -> tuple:
        """Link + DRAM-tally adds of one DRAM-read slice, per target."""
        pre = self._dram_in(layer.rec, op_idx)
        if pre is None:
            return ()
        idx, volumes = pre
        topo = self.ev.topo
        plan = layer.dram_plans.get((fd, False, op_idx))
        if plan is None:
            cores_sel = layer.cores[idx]
            n_dram = len(topo.dram_nodes())
            _, _, from_d, from_l = topo.dram_route_tables()
            plan = []
            for dram, share in _dram_targets(topo, fd):
                d = dram[1]
                rows = cores_sel * n_dram + d
                padded = from_d[rows].ravel()
                plan.append((d, share, padded[padded >= 0], from_l[rows]))
            layer.dram_plans[(fd, False, op_idx)] = plan
        n_links = topo.n_links
        ops = []
        for d, share, valid_idx, rep_lens in plan:
            v = volumes * share
            arr = np.bincount(
                valid_idx, weights=np.repeat(v, rep_lens),
                minlength=n_links,
            )
            ops.append((arr, d, v.tolist()))
        return tuple(ops)

    def _build_input_block(
        self, ctx, i, batch_unit, schemes, recs, deps
    ) -> LayerTrafficBlock:
        """Ifmap flows of one layer (mirrors the analyzer's
        ``_layer_inputs`` fast path over compiled records).

        Each input slice's contribution is cached as the exact
        sequence of vector adds the analyzer would perform and
        replayed in slice order, so a move that changes one producer
        recomputes only that producer's slice — the replayed fold is
        bit-identical to recomputing the whole block.
        """
        flows = self.slice_flows
        layer = recs[i]
        s = schemes[i]
        vol, dram_read = self._zeros()
        for desc, dep in zip(ctx.inputs[i], deps):
            op_idx, plid, group_pos, _ = desc
            if group_pos is not None:
                p = schemes[group_pos]
                key = (ctx.lids[i], op_idx, s.part, s.core_group,
                       p.part, p.core_group, batch_unit)
                ops = flows.get_lru(key)
                if ops is None:
                    ops = self._ingroup_slice_ops(
                        layer, op_idx, recs[group_pos], s.part, p.part,
                        batch_unit,
                    )
                    flows.put(key, ops)
            else:
                fd = s.fd.ifmap if plid < 0 else dep
                key = (ctx.lids[i], op_idx, s.part, s.core_group, fd,
                       batch_unit)
                ops = flows.get_lru(key)
                if ops is None:
                    ops = self._dram_slice_ops(layer, op_idx, fd)
                    flows.put(key, ops)
            for arr, d, v_list in ops:
                vol += arr
                if d is not None:
                    # Sequential scalar fold, matching the per-part
                    # tally loop of the uncached path.
                    t = dram_read[d]
                    for x in v_list:
                        t += x
                    dram_read[d] = t
        return LayerTrafficBlock(
            volumes=vol,
            dram_read=dram_read if dram_read.any() else None,
            dram_write=None,
            dram_weight_once=None,
            weight_tree_hop_bytes=0.0,
            flows=None,
        )

    def self_block(
        self, lid: int, scheme: MappingScheme, batch_unit: int,
        layer: CompiledLayer,
    ) -> LayerTrafficBlock:
        # Weightless layers with implicitly managed ofmaps (MATMUL,
        # VECTOR, mid-group POOL/ELTWISE) contribute nothing here; one
        # shared all-zero block serves them all.
        if layer.rec.weight_slices is None and scheme.fd.ofmap < 0:
            empty = self._empty_block
            if empty is None:
                empty = LayerTrafficBlock(
                    np.zeros(self.ev.topo.n_links), None, None, None,
                    0.0, None,
                )
                self._empty_block = empty
            return empty
        # Weight + ofmap flows depend on the partition, the core
        # assignment and those two FD selectors only.
        key = (
            lid, scheme.part, scheme.core_group,
            scheme.fd.weight, scheme.fd.ofmap, batch_unit,
        )
        block = self.self_blocks.get_lru(key)
        if block is None:
            block = self._build_self_block(scheme, layer)
            self.self_blocks.put(key, block)
        return block

    def _build_self_block(self, scheme, layer) -> LayerTrafficBlock:
        """Weight + ofmap flows — a function of the layer's own scheme
        (mirrors ``_layer_weights`` + ``_layer_outputs``)."""
        topo = self.ev.topo
        rec = layer.rec
        vol, dram_read = self._zeros()
        dram_write = np.zeros_like(dram_read)
        dram_once = np.zeros_like(dram_read)
        hop_bytes = 0.0
        if rec.weight_slices is not None:
            fd = scheme.fd.weight
            cores_list = layer.cores_list
            glb_half = self.ev.arch.glb_bytes / 2
            for volume, kk, pk in rec.weight_slices:
                dsts = tuple(cores_list[kk::pk])
                resident = volume <= glb_half
                for dram, share in _dram_targets(topo, fd):
                    tree_links, tree_size = self._tree_links(dram, dsts)
                    v = volume * share
                    if resident:
                        # Loaded once per inference (prologue).
                        dram_once[dram[1]] += v
                        hop_bytes += v * tree_size
                    else:
                        vol[tree_links] += v
                        dram_read[dram[1]] += v
        fd = scheme.fd.ofmap
        if fd >= 0:
            self._dram_scatter_planned(
                layer, (fd, True, None), fd, None,
                rec.out_volumes, vol, dram_write, write=True,
            )
        return LayerTrafficBlock(
            volumes=vol,
            dram_read=dram_read if dram_read.any() else None,
            dram_write=dram_write if dram_write.any() else None,
            dram_weight_once=dram_once if dram_once.any() else None,
            weight_tree_hop_bytes=hop_bytes,
            flows=None,
        )

    # ------------------------------------------------------------------
    # Assembly (the delay/energy reduction)
    # ------------------------------------------------------------------

    def _finalize(
        self, group, batch, vol, dram_read, dram_write, dram_once,
        hop_bytes, compute, intra_j, fits,
    ) -> GroupEval:
        """Delay/energy reduction over the folded group aggregates.

        The inputs are left folds (from zero, canonical block order) of
        the per-layer blocks — exactly what the object path's analyzer
        accumulates.  The arithmetic below inlines
        ``stage_times_from_compute`` + ``group_delay`` +
        ``group_energy_from_intra`` operation for operation (no
        reassociation), dropping only the intermediate TrafficMap /
        GroupTraffic / StageTimes objects; the model-zoo identity tests
        pin the equivalence.
        """
        ev = self.ev
        e = ev.energy
        # serialization_time: most-loaded-link drain time.
        network = float(np.max(vol / self._bandwidths))
        round_bytes = dram_read + dram_write
        dram = (
            float(np.max(round_bytes)) / self._per_dram_bw
            if len(round_bytes) else 0.0
        )
        prologue = (
            float(np.max(dram_once)) / self._per_dram_bw
            if len(dram_once) else 0.0
        )
        stage = max(compute, network, dram)
        rounds = math.ceil(batch / group.batch_unit)
        depth = len(group)
        delay = stage * (rounds + depth - 1) + prologue
        # network_energy + dram_energy, per round.
        noc_j = float(vol[self._noc_idx].sum()) * e.e_noc_hop
        d2d_j = e.d2d_energy(
            float(vol[self._d2d_idx].sum()), self._n_d2d, stage
        )
        dram_j = float(round_bytes.sum()) * e.e_dram
        once_bytes = float(dram_once.sum())
        energy = EnergyBreakdown(
            intra=intra_j * rounds,
            noc=noc_j * rounds + hop_bytes * e.e_noc_hop,
            d2d=d2d_j * rounds,
            dram=dram_j * rounds + once_bytes * e.e_dram,
        )
        return GroupEval(
            delay=delay,
            energy=energy,
            stage_time=stage,
            rounds=rounds,
            compute_time=compute,
            network_time=network,
            dram_time=dram,
            traffic=None,
            dram_round_bytes=tuple(round_bytes),
            fits=fits,
        )

    def _assemble(
        self, group, recs, input_blocks, self_blocks, batch
    ) -> GroupEval:
        n_dram = len(self.ev.topo.dram_nodes())
        dram_read = np.zeros(n_dram)
        dram_write = np.zeros(n_dram)
        dram_once = np.zeros(n_dram)
        hop_bytes = 0.0
        # Canonical block order: (inputs, self) per layer — the same
        # stacked fold the object-path analyzer runs, so per-link sums
        # associate identically.
        blocks = []
        compute = 0.0
        intra_j = 0.0
        fits = True
        for i, layer in enumerate(recs):
            blocks.append(input_blocks[i])
            blocks.append(self_blocks[i])
            rec = layer.rec
            if rec.compute > compute:
                compute = rec.compute
            intra_j += rec.energy
            fits = fits and rec.fits
        vol = np.add.reduce(
            np.stack([b.volumes for b in blocks]), axis=0
        )
        for block in blocks:
            if block.dram_read is not None:
                dram_read += block.dram_read
            if block.dram_write is not None:
                dram_write += block.dram_write
            if block.dram_weight_once is not None:
                dram_once += block.dram_weight_once
            hop_bytes += block.weight_tree_hop_bytes
        return self._finalize(
            group, batch, vol, dram_read, dram_write, dram_once,
            hop_bytes, compute, intra_j, fits,
        )

    def evaluate_group(
        self,
        lms: LayerGroupMapping,
        batch: int,
        stored_at: dict[str, int] | None = None,
    ) -> GroupEval:
        """Stateless full evaluation over the compiled tables."""
        stored_at = stored_at or {}
        group = lms.group
        ctx = self.group_ctx(group)
        bu = group.batch_unit
        schemes = [lms.scheme(name) for name in group.layers]
        recs = [
            self.layer_rec(lid, schemes[i], bu)
            for i, lid in enumerate(ctx.lids)
        ]
        self_blocks = [
            self.self_block(lid, schemes[i], bu, recs[i])
            for i, lid in enumerate(ctx.lids)
        ]
        input_blocks = [
            self.input_block(
                ctx, i, bu, schemes, recs,
                self.deps_for(ctx, i, schemes, stored_at),
            )
            for i in range(len(ctx.lids))
        ]
        return self._assemble(group, recs, input_blocks, self_blocks, batch)

    def session(
        self, lms: LayerGroupMapping, batch: int,
        stored_at: dict[str, int],
    ) -> "GroupSession":
        return GroupSession(self, lms, batch, stored_at)


class GroupSession:
    """Delta evaluation of SA moves against one layer group's state.

    The session pins the blocks of the current (accepted) state plus
    *prefix folds* of the canonical merge (left folds over the block
    order, which is exactly how ``np.add.reduce`` associates — asserted
    by the identity tests); :meth:`propose` rebuilds only what a
    candidate actually changes, restarts the fold from the last valid
    prefix and finalizes, :meth:`commit` adopts an accepted proposal
    and repairs the prefixes from the first touched block.  All five SA
    operators are covered by the same invalidation rule: a block is
    recomputed iff its own scheme or any of its dependencies (producer
    schemes, cross-group placements) changed — checked by identity, so
    unchanged layers cost a pointer compare, not a hash.
    """

    def __init__(self, ceval: CompiledEval, lms: LayerGroupMapping,
                 batch: int, stored_at: dict[str, int]):
        self.ceval = ceval
        self.group = lms.group
        self.batch = batch
        self.ctx = ceval.group_ctx(lms.group)
        self.bu = lms.group.batch_unit
        self.schemes = [lms.scheme(name) for name in lms.group.layers]
        ctx, bu = self.ctx, self.bu
        self.recs = [
            ceval.layer_rec(lid, self.schemes[i], bu)
            for i, lid in enumerate(ctx.lids)
        ]
        self.self_blocks = [
            ceval.self_block(lid, self.schemes[i], bu, self.recs[i])
            for i, lid in enumerate(ctx.lids)
        ]
        self.ext_places = [
            tuple(stored_at.get(nm, INTERLEAVED) for nm in names)
            for names in ctx.ext_names
        ]
        # Sessions build input blocks directly (no block-cache keying):
        # staleness is tracked by identity, and rebuilds replay the
        # cached per-slice contributions anyway.
        self.input_blocks = [
            ceval._build_input_block(
                ctx, i, bu, self.schemes, self.recs,
                ceval.deps_for(ctx, i, self.schemes, stored_at))
            for i in range(len(ctx.lids))
        ]
        n_layers = len(ctx.lids)
        topo = ceval.ev.topo
        n_dram = len(topo.dram_nodes())
        nb = 2 * n_layers
        # Prefix folds over the canonical block order (row j holds the
        # fold of blocks[0:j]) and over the per-layer rec aggregates.
        self._vol_pre = np.zeros((nb + 1, topo.n_links))
        self._dr_pre = np.zeros((nb + 1, n_dram))
        self._dw_pre = np.zeros((nb + 1, n_dram))
        self._do_pre = np.zeros((nb + 1, n_dram))
        self._hop_pre = [0.0] * (nb + 1)
        self._cmp_pre = [0.0] * (n_layers + 1)
        self._int_pre = [0.0] * (n_layers + 1)
        self._fit_pre = [True] * (n_layers + 1)
        # Local delta-evaluation tallies; the SA controller folds them
        # into PERF once per run (the ``sa.delta_eval`` pattern), so
        # the per-move cost stays two integer adds.
        self.proposed = 0
        self.committed = 0
        self._refold(0, 0)

    def _block(self, j: int) -> LayerTrafficBlock:
        """Block ``j`` of the canonical order (inputs, self per layer)."""
        blocks = self.input_blocks if j % 2 == 0 else self.self_blocks
        return blocks[j // 2]

    def _refold(self, first_block: int, first_layer: int) -> None:
        """Repair the prefix folds from the first touched index on."""
        nb = 2 * len(self.ctx.lids)
        for j in range(first_block, nb):
            b = self._block(j)
            np.add(self._vol_pre[j], b.volumes, out=self._vol_pre[j + 1])
            for pre, part in (
                (self._dr_pre, b.dram_read),
                (self._dw_pre, b.dram_write),
                (self._do_pre, b.dram_weight_once),
            ):
                if part is None:
                    pre[j + 1] = pre[j]
                else:
                    np.add(pre[j], part, out=pre[j + 1])
            self._hop_pre[j + 1] = self._hop_pre[j] + b.weight_tree_hop_bytes
        for i in range(first_layer, len(self.ctx.lids)):
            rec = self.recs[i].rec
            cm = self._cmp_pre[i]
            self._cmp_pre[i + 1] = rec.compute if rec.compute > cm else cm
            self._int_pre[i + 1] = self._int_pre[i] + rec.energy
            self._fit_pre[i + 1] = self._fit_pre[i] and rec.fits

    def propose(self, lms: LayerGroupMapping,
                stored_at: dict[str, int]) -> Proposal:
        """Delta-evaluate a candidate LMS of the session's group."""
        self.proposed += 1
        ceval, ctx, bu = self.ceval, self.ctx, self.bu
        old = self.schemes
        n_layers = len(ctx.lids)
        schemes = [lms.scheme(name) for name in self.group.layers]
        recs = list(self.recs)
        self_blocks = list(self.self_blocks)
        input_blocks = list(self.input_blocks)
        ext_places = self.ext_places
        new_places = ext_places
        changed = set()
        first_layer = n_layers
        for i, lid in enumerate(ctx.lids):
            if schemes[i] is not old[i]:
                changed.add(i)
                if i < first_layer:
                    first_layer = i
                recs[i] = ceval.layer_rec(lid, schemes[i], bu)
                self_blocks[i] = ceval.self_block(lid, schemes[i], bu, recs[i])
        first_block = 2 * first_layer + 1 if first_layer < n_layers \
            else 2 * n_layers
        for i in range(n_layers):
            # An input block goes stale when its layer, one of its
            # in-group producers, or a cross-group placement changed.
            stale = i in changed
            if not stale:
                for p in ctx.producer_pos[i]:
                    if p in changed:
                        stale = True
                        break
            names = ctx.ext_names[i]
            if names:
                places = tuple(
                    stored_at.get(nm, INTERLEAVED) for nm in names
                )
                if places != ext_places[i]:
                    stale = True
                    if new_places is ext_places:
                        new_places = list(ext_places)
                    new_places[i] = places
            if stale:
                if 2 * i < first_block:
                    first_block = 2 * i
                input_blocks[i] = ceval._build_input_block(
                    ctx, i, bu, schemes, recs,
                    ceval.deps_for(ctx, i, schemes, stored_at),
                )
        # Continue the canonical left fold from the last valid prefix;
        # bit-identical to folding all blocks from zero.
        nb = 2 * n_layers
        vol = self._vol_pre[first_block].copy()
        dr = self._dr_pre[first_block].copy()
        dw = self._dw_pre[first_block].copy()
        do = self._do_pre[first_block].copy()
        hop = self._hop_pre[first_block]
        for j in range(first_block, nb):
            b = input_blocks[j // 2] if j % 2 == 0 else self_blocks[j // 2]
            vol += b.volumes
            if b.dram_read is not None:
                dr += b.dram_read
            if b.dram_write is not None:
                dw += b.dram_write
            if b.dram_weight_once is not None:
                do += b.dram_weight_once
            hop += b.weight_tree_hop_bytes
        compute = self._cmp_pre[first_layer]
        intra_j = self._int_pre[first_layer]
        fits = self._fit_pre[first_layer]
        for i in range(first_layer, n_layers):
            rec = recs[i].rec
            if rec.compute > compute:
                compute = rec.compute
            intra_j += rec.energy
            fits = fits and rec.fits
        result = ceval._finalize(
            self.group, self.batch, vol, dr, dw, do, hop,
            compute, intra_j, fits,
        )
        return Proposal(result, schemes, recs, self_blocks, input_blocks,
                        new_places, first_block, first_layer)

    def commit(self, proposal: Proposal) -> None:
        self.committed += 1
        self.schemes = proposal.schemes
        self.recs = proposal.recs
        self.self_blocks = proposal.self_blocks
        self.input_blocks = proposal.input_blocks
        self.ext_places = proposal.ext_places
        self._refold(proposal.first_block, proposal.first_layer)
