"""Array-native evaluation core (compiled graph + mapping tables).

``compile_graph`` lowers a DNN once into flat numpy tables;
:class:`CompiledEval` evaluates layer groups over them bit-identically
to the object path, and :class:`GroupSession` adds delta evaluation for
the SA loop.  See :mod:`repro.compiled.evalcore` for the contract.
"""

from repro.compiled.evalcore import CompiledEval, CompiledLayer, GroupSession
from repro.compiled.graph import CompiledGraph, compile_graph

__all__ = [
    "CompiledEval",
    "CompiledGraph",
    "CompiledLayer",
    "GroupSession",
    "compile_graph",
]
