"""Population-batched evaluation: N candidate mappings per numpy call.

The compiled core (:mod:`repro.compiled.evalcore`) lowered *one*
mapping into SoA tables; this module lowers a *population*.  N
candidate mappings of one layer group are stacked into a single
``(blocks, N, lanes)`` buffer — volumes, the three DRAM aggregates and
the weight-tree hop counter side by side in one lane axis — and the
canonical block fold plus the delay/energy finalize run as whole-array
ops across every slot at once.

Bit-identity with the per-mapping path is a hard invariant, so the
batching only ever *widens* the serial arithmetic, never reassociates
it:

* the group fold adds one block row at a time across all slots
  (``acc += buf[j]``), replaying the per-slot left fold from zero that
  :class:`~repro.compiled.evalcore.GroupSession` already asserts equal
  to ``np.add.reduce`` over the stacked blocks;
* missing DRAM parts fold ``+0.0`` instead of being skipped — exact
  for the non-negative aggregates carried here;
* scatter kernels batch many ``np.bincount`` calls into one by giving
  every request its own ``n_links``-wide segment
  (:func:`repro.compiled.graph.stacked_offsets` promotes the offsets
  to int64 *before* the ``N x links`` product): bincount accumulates
  sequentially in input order and segments are disjoint, so each
  segment is bit-equal to the request's own bincount;
* row-wise ``max`` reductions are order-insensitive for non-NaN
  floats, so the link-drain / DRAM-drain maxima vectorize freely —
  but *sums* over index subsets (NoC/D2D energy, DRAM byte totals)
  stay per-slot on contiguous row views, because numpy's pairwise
  summation is shape-dependent.

``tests/test_compiled_batch.py`` pins all of this: batch size 1 and
every slot of any N are float-exact against
:meth:`CompiledEval.evaluate_group`, across the model registry and
including annealed (mid-search) states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import INTERLEAVED, LayerGroupMapping
from repro.evalmodel.breakdown import EnergyBreakdown, GroupEval
from repro.evalmodel.traffic_analysis import LayerTrafficBlock, _dram_targets
from repro.compiled.evalcore import CompiledEval, GroupSession, Proposal
from repro.compiled.graph import as_index_table, stacked_offsets


# ----------------------------------------------------------------------
# Batched scatter kernels
# ----------------------------------------------------------------------


class _CoreScatterQueue:
    """Deferred core-to-core scatters: many route bincounts as one.

    Each request is the ``(rows into the padded core route table,
    per-row volumes)`` of one in-group input slice; :meth:`flush`
    gathers, masks, repeats and bincounts them all with one set of
    numpy calls.  Request *r* owns segment ``[r*n_links, (r+1)*n_links)``
    of the flat accumulator, and within a segment entries arrive in
    exactly the order the serial kernel would feed its own bincount.
    """

    def __init__(self, table: np.ndarray, lens: np.ndarray, n_links: int):
        self.table = as_index_table(table)
        self.lens = lens
        self.n_links = n_links
        self._rows: list[np.ndarray] = []
        self._vols: list[np.ndarray] = []

    def add(self, rows: np.ndarray, volumes: np.ndarray) -> int:
        self._rows.append(rows)
        self._vols.append(volumes)
        return len(self._rows) - 1

    def flush(self) -> np.ndarray | None:
        n_req = len(self._rows)
        if not n_req:
            return None
        counts = np.fromiter(
            (len(r) for r in self._rows), dtype=np.int64, count=n_req
        )
        rows_all = (
            np.concatenate(self._rows) if n_req > 1 else self._rows[0]
        )
        vols_all = (
            np.concatenate(self._vols) if n_req > 1 else self._vols[0]
        )
        offsets = stacked_offsets(n_req, self.n_links)
        padded = self.table[rows_all]
        valid = padded >= 0
        idx = (padded + np.repeat(offsets, counts)[:, None])[valid]
        weights = np.repeat(vols_all, self.lens[rows_all])
        out = np.bincount(
            idx, weights=weights, minlength=n_req * self.n_links
        )
        return out.reshape(n_req, self.n_links)


class _FlatScatterQueue:
    """Deferred DRAM scatters over pre-gathered route plans.

    Requests arrive as the ``(valid link indices, per-part volumes,
    per-part repeat counts)`` triples cached in
    :attr:`CompiledLayer.dram_plans`; only the offset add, the repeat
    and the bincount remain, and they batch across requests exactly
    like :class:`_CoreScatterQueue`.
    """

    def __init__(self, n_links: int):
        self.n_links = n_links
        self._idx: list[np.ndarray] = []
        self._vols: list[np.ndarray] = []
        self._reps: list[np.ndarray] = []

    def add(self, valid_idx, volumes, rep_lens) -> int:
        self._idx.append(valid_idx)
        self._vols.append(volumes)
        self._reps.append(rep_lens)
        return len(self._idx) - 1

    def flush(self) -> np.ndarray | None:
        n_req = len(self._idx)
        if not n_req:
            return None
        counts = np.fromiter(
            (len(ix) for ix in self._idx), dtype=np.int64, count=n_req
        )
        idx_all = as_index_table(
            np.concatenate(self._idx) if n_req > 1 else self._idx[0]
        )
        offsets = stacked_offsets(n_req, self.n_links)
        idx_all = idx_all + np.repeat(offsets, counts)
        weights = np.repeat(
            np.concatenate(self._vols) if n_req > 1 else self._vols[0],
            np.concatenate(self._reps) if n_req > 1 else self._reps[0],
        )
        out = np.bincount(
            idx_all, weights=weights, minlength=n_req * self.n_links
        )
        return out.reshape(n_req, self.n_links)


class _TreeScatterQueue:
    """Deferred multicast-tree scatters, grouped into shared segments.

    Unlike the request-per-segment queues above, callers allocate a
    segment explicitly and may enqueue many tree scatters into it: the
    serial weight loop applies ``vol[tree_links] += v`` directly onto
    the accumulator, and bincount accumulates entries of one segment
    sequentially in input order, so a segment's final row equals that
    exact left fold from zero.
    """

    def __init__(self, n_links: int):
        self.n_links = n_links
        self.n_segs = 0
        self._segs: list[int] = []
        self._links: list[np.ndarray] = []
        self._vols: list[float] = []

    def new_segment(self) -> int:
        self.n_segs += 1
        return self.n_segs - 1

    def add(self, seg: int, links: np.ndarray, volume: float) -> None:
        self._segs.append(seg)
        self._links.append(links)
        self._vols.append(volume)

    def flush(self) -> np.ndarray | None:
        if not self.n_segs:
            return None
        n = len(self._links)
        if not n:
            return np.zeros((self.n_segs, self.n_links))
        counts = np.fromiter(
            (len(a) for a in self._links), dtype=np.int64, count=n
        )
        offsets = stacked_offsets(self.n_segs, self.n_links)
        seg_of = np.fromiter(self._segs, dtype=np.int64, count=n)
        idx = np.concatenate(self._links) + np.repeat(
            offsets[seg_of], counts
        )
        weights = np.repeat(
            np.fromiter(self._vols, dtype=np.float64, count=n), counts
        )
        out = np.bincount(
            idx, weights=weights, minlength=self.n_segs * self.n_links
        )
        return out.reshape(self.n_segs, self.n_links)


# ----------------------------------------------------------------------
# Deferred block construction
# ----------------------------------------------------------------------


class _PendingInput:
    """An input block whose slice scatters are queued, not yet run."""

    __slots__ = ("parts", "block")

    def __init__(self, parts: list):
        self.parts = parts
        self.block: LayerTrafficBlock | None = None


class _PendingSelf:
    """A self block whose link scatters are queued, not yet run."""

    __slots__ = (
        "seg", "ofmap_reqs", "dram_read", "dram_write", "dram_once",
        "hop", "block",
    )

    def __init__(self, seg, ofmap_reqs, dram_read, dram_write,
                 dram_once, hop):
        self.seg = seg
        self.ofmap_reqs = ofmap_reqs
        self.dram_read = dram_read
        self.dram_write = dram_write
        self.dram_once = dram_once
        self.hop = hop
        self.block: LayerTrafficBlock | None = None


class _DeferredBlocks:
    """Builds many input blocks with batched scatter kernels.

    Staging mirrors :meth:`CompiledEval._build_input_block` slice for
    slice — same cache keys, same geometry/mask arithmetic — but
    queues every cache-missed bincount; :meth:`flush` runs the two
    batched kernels, writes the materialized per-slice ops back into
    ``slice_flows`` (so every walker of a population shares them), and
    folds each pending block in canonical slice order.
    """

    def __init__(self, ceval: CompiledEval):
        self.ceval = ceval
        topo = ceval.ev.topo
        table, lens = topo.core_route_table()
        self.n_cores = topo.arch.n_cores
        self.n_dram = len(topo.dram_nodes())
        self.core_q = _CoreScatterQueue(table, lens, topo.n_links)
        self.flat_q = _FlatScatterQueue(topo.n_links)
        self.tree_q = _TreeScatterQueue(topo.n_links)
        self._pending: list[_PendingInput] = []
        #: Flush-local dedup: candidates of different walkers routinely
        #: miss the same slice key; stage it once, share the segment.
        self._local: dict[tuple, tuple] = {}
        self._self_pending: list[tuple] = []
        self._self_local: dict[tuple, _PendingSelf] = {}

    # -- staging -------------------------------------------------------

    def stage_input_block(
        self, ctx, i: int, bu: int, schemes, recs, deps
    ) -> _PendingInput:
        ceval = self.ceval
        flows = ceval.slice_flows
        layer = recs[i]
        s = schemes[i]
        parts: list[tuple] = []
        for desc, dep in zip(ctx.inputs[i], deps):
            op_idx, plid, group_pos, _ = desc
            if group_pos is not None:
                p = schemes[group_pos]
                key = (ctx.lids[i], op_idx, s.part, s.core_group,
                       p.part, p.core_group, bu)
                ops = flows.get_lru(key)
                if ops is None:
                    ent = self._local.get(key)
                    if ent is None:
                        ent = self._stage_ingroup(
                            layer, op_idx, recs[group_pos], s.part,
                            p.part, bu,
                        )
                        self._local[key] = ent
                    parts.append(("miss", key))
                else:
                    parts.append(("ready", ops))
            else:
                fd = s.fd.ifmap if plid < 0 else dep
                key = (ctx.lids[i], op_idx, s.part, s.core_group, fd, bu)
                ops = flows.get_lru(key)
                if ops is None:
                    ent = self._local.get(key)
                    if ent is None:
                        ent = self._stage_dram(layer, op_idx, fd)
                        self._local[key] = ent
                    parts.append(("miss", key))
                else:
                    parts.append(("ready", ops))
        pb = _PendingInput(parts)
        self._pending.append(pb)
        return pb

    def _stage_ingroup(self, cons, op_idx, prod, c_part, p_part, bu):
        # Mirror of _ingroup_slice_ops up to (and excluding) the
        # bincount, which joins the batched core queue.
        rec = cons.rec
        geom = self.ceval.pair_geometry(
            rec, op_idx, prod.rec, c_part, p_part, bu
        )
        if geom is None:
            return ("ops", ())
        di0, sj0, bytes0 = geom
        src, dst = prod.cores[sj0], cons.cores[di0]
        mask = src != dst
        if not mask.any():
            return ("ops", ())
        di = di0[mask]
        volumes = bytes0[mask] * rec.if_fetches[di]
        rows = src[mask] * self.n_cores + dst[mask]
        return ("core", self.core_q.add(rows, volumes))

    def stage_self_block(self, lid: int, scheme, bu: int, layer):
        """Self block of one scheme: cached, empty, or staged.

        Mirrors :meth:`CompiledEval.self_block` (same key, same empty
        fast path); on a cache miss the weight-slice and ofmap scatters
        are queued and only the scalar DRAM tallies run inline —
        returning a :class:`_PendingSelf` resolved at :meth:`flush`.
        """
        ceval = self.ceval
        rec = layer.rec
        if rec.weight_slices is None and scheme.fd.ofmap < 0:
            return ceval.self_block(lid, scheme, bu, layer)
        key = (lid, scheme.part, scheme.core_group,
               scheme.fd.weight, scheme.fd.ofmap, bu)
        block = ceval.self_blocks.get_lru(key)
        if block is not None:
            return block
        ps = self._self_local.get(key)
        if ps is None:
            ps = self._stage_self(scheme, layer)
            self._self_local[key] = ps
            self._self_pending.append((key, ps))
        return ps

    def _stage_self(self, scheme, layer) -> _PendingSelf:
        # Mirror of _build_self_block: the per-slice tree scatters of
        # the weight loop share one bincount segment (sequential
        # accumulation == the serial vol[tree_links] += v folds from
        # zero), the ofmap targets keep per-request segments because
        # the serial path adds each target's *pre-summed* bincount.
        ceval = self.ceval
        topo = ceval.ev.topo
        rec = layer.rec
        n_dram = self.n_dram
        dram_read = np.zeros(n_dram)
        dram_write = np.zeros(n_dram)
        dram_once = np.zeros(n_dram)
        hop = 0.0
        tree_q = self.tree_q
        seg = tree_q.new_segment()
        if rec.weight_slices is not None:
            targets = _dram_targets(topo, scheme.fd.weight)
            cores_list = layer.cores_list
            glb_half = ceval.ev.arch.glb_bytes / 2
            trees = ceval._trees
            tree_links = ceval._tree_links
            for volume, kk, pk in rec.weight_slices:
                dsts = tuple(cores_list[kk::pk])
                resident = volume <= glb_half
                for dram, share in targets:
                    got = trees.get((dram, dsts))
                    if got is None:
                        got = tree_links(dram, dsts)
                    v = volume * share
                    if resident:
                        dram_once[dram[1]] += v
                        hop += v * got[1]
                    else:
                        tree_q.add(seg, got[0], v)
                        dram_read[dram[1]] += v
        ofmap_reqs = []
        fd = scheme.fd.ofmap
        if fd >= 0:
            plan = layer.dram_plans.get((fd, True, None))
            if plan is None:
                cores = layer.cores
                to_d, to_l, _, _ = topo.dram_route_tables()
                plan = []
                for dram, share in _dram_targets(topo, fd):
                    d = dram[1]
                    rows = cores * n_dram + d
                    padded = to_d[rows].ravel()
                    plan.append((d, share, padded[padded >= 0], to_l[rows]))
                layer.dram_plans[(fd, True, None)] = plan
            volumes = rec.out_volumes
            for d, share, valid_idx, rep_lens in plan:
                v = volumes * share
                ofmap_reqs.append(
                    self.flat_q.add(valid_idx, v, rep_lens)
                )
                # Sequential per-part tally, as in the serial scatter.
                t = dram_write[d]
                for x in v.tolist():
                    t += x
                dram_write[d] = t
        return _PendingSelf(
            seg, ofmap_reqs, dram_read, dram_write, dram_once, hop
        )

    def _stage_dram(self, layer, op_idx: int, fd: int):
        # Mirror of _dram_slice_ops; the per-target bincounts join the
        # flat queue, the (cached) plan gather is unchanged.
        ceval = self.ceval
        pre = ceval._dram_in(layer.rec, op_idx)
        if pre is None:
            return ("ops", ())
        idx, volumes = pre
        topo = ceval.ev.topo
        plan = layer.dram_plans.get((fd, False, op_idx))
        if plan is None:
            cores_sel = layer.cores[idx]
            n_dram = len(topo.dram_nodes())
            _, _, from_d, from_l = topo.dram_route_tables()
            plan = []
            for dram, share in _dram_targets(topo, fd):
                d = dram[1]
                rows = cores_sel * n_dram + d
                padded = from_d[rows].ravel()
                plan.append((d, share, padded[padded >= 0], from_l[rows]))
            layer.dram_plans[(fd, False, op_idx)] = plan
        items = []
        for d, share, valid_idx, rep_lens in plan:
            v = volumes * share
            items.append(
                (self.flat_q.add(valid_idx, v, rep_lens), d, v.tolist())
            )
        return ("dram", items)

    # -- resolution ----------------------------------------------------

    def flush(self) -> None:
        core_out = self.core_q.flush()
        flat_out = self.flat_q.flush()
        tree_out = self.tree_q.flush()
        ceval = self.ceval
        for key, ps in self._self_pending:
            vol = tree_out[ps.seg].copy()
            for r in ps.ofmap_reqs:
                vol += flat_out[r]
            ps.block = LayerTrafficBlock(
                volumes=vol,
                dram_read=ps.dram_read if ps.dram_read.any() else None,
                dram_write=ps.dram_write if ps.dram_write.any() else None,
                dram_weight_once=(
                    ps.dram_once if ps.dram_once.any() else None
                ),
                weight_tree_hop_bytes=ps.hop,
                flows=None,
            )
            ceval.self_blocks.put(key, ps.block)
        resolved: dict[tuple, tuple] = {}
        for key, ent in self._local.items():
            kind = ent[0]
            if kind == "core":
                ops = ((core_out[ent[1]].copy(), None, None),)
            elif kind == "dram":
                ops = tuple(
                    (flat_out[r].copy(), d, vl) for r, d, vl in ent[1]
                )
            else:
                ops = ent[1]
            ceval.slice_flows.put(key, ops)
            resolved[key] = ops
        for pb in self._pending:
            vol, dram_read = ceval._zeros()
            for part in pb.parts:
                ops = part[1] if part[0] == "ready" else resolved[part[1]]
                for arr, d, v_list in ops:
                    vol += arr
                    if d is not None:
                        # Sequential scalar fold, as in the serial
                        # block builder.
                        t = dram_read[d]
                        for x in v_list:
                            t += x
                        dram_read[d] = t
            pb.block = LayerTrafficBlock(
                volumes=vol,
                dram_read=dram_read if dram_read.any() else None,
                dram_write=None,
                dram_weight_once=None,
                weight_tree_hop_bytes=0.0,
                flows=None,
            )


# ----------------------------------------------------------------------
# Candidate staging (shared by population and best-of-K paths)
# ----------------------------------------------------------------------


@dataclass
class _Staged:
    """One candidate's rebuilt state, pre-fold."""

    slot: int
    lms: LayerGroupMapping
    schemes: list
    recs: list
    self_blocks: list
    input_blocks: list
    ext_places: list
    #: ``(block row index, block-or-pending)`` overrides vs. the slot's
    #: current rows.
    rows: list = field(default_factory=list)
    first_block: int = 0
    first_layer: int = 0
    saved: list = field(default_factory=list)


def _stage_candidate(
    ceval, ctx, bu, cur_schemes, cur_recs, cur_self, cur_input,
    cur_places, slot, lms, stored_at, pend: _DeferredBlocks,
) -> _Staged:
    """Staleness + rebuild of one candidate, mirroring
    :meth:`GroupSession.propose` (scatters deferred to ``pend``)."""
    n_layers = len(ctx.lids)
    schemes = [lms.scheme(name) for name in lms.group.layers]
    recs = list(cur_recs)
    self_blocks = list(cur_self)
    input_blocks = list(cur_input)
    new_places = cur_places
    rows: list[tuple] = []
    changed = set()
    first_layer = n_layers
    for i, lid in enumerate(ctx.lids):
        if schemes[i] is not cur_schemes[i]:
            changed.add(i)
            if i < first_layer:
                first_layer = i
            recs[i] = ceval.layer_rec(lid, schemes[i], bu)
            sb = pend.stage_self_block(lid, schemes[i], bu, recs[i])
            self_blocks[i] = sb
            rows.append((2 * i + 1, sb))
    first_block = 2 * first_layer + 1 if first_layer < n_layers \
        else 2 * n_layers
    for i in range(n_layers):
        stale = i in changed
        if not stale:
            for p in ctx.producer_pos[i]:
                if p in changed:
                    stale = True
                    break
        names = ctx.ext_names[i]
        if names:
            places = tuple(
                stored_at.get(nm, INTERLEAVED) for nm in names
            )
            if places != cur_places[i]:
                stale = True
                if new_places is cur_places:
                    new_places = list(cur_places)
                new_places[i] = places
        if stale:
            if 2 * i < first_block:
                first_block = 2 * i
            pb = pend.stage_input_block(
                ctx, i, bu, schemes, recs,
                ceval.deps_for(ctx, i, schemes, stored_at),
            )
            input_blocks[i] = pb
            rows.append((2 * i, pb))
    return _Staged(
        slot=slot, lms=lms, schemes=schemes, recs=recs,
        self_blocks=self_blocks, input_blocks=input_blocks,
        ext_places=new_places, rows=rows, first_block=first_block,
        first_layer=first_layer,
    )


def _resolve_staged(staged: list[_Staged]) -> None:
    """Swap pending placeholders for their materialized blocks."""
    for st in staged:
        for k, (j, blk) in enumerate(st.rows):
            if isinstance(blk, _PendingInput):
                st.rows[k] = (j, blk.block)
                st.input_blocks[j // 2] = blk.block
            elif isinstance(blk, _PendingSelf):
                st.rows[k] = (j, blk.block)
                st.self_blocks[j // 2] = blk.block


# ----------------------------------------------------------------------
# The batched fold + finalize core
# ----------------------------------------------------------------------


class _BatchCore:
    """Lane layout + fold + finalize of one (group, batch) pair.

    A block row is ``[volumes | dram_read | dram_write |
    dram_weight_once | hop_bytes]``; folding rows column-by-column
    replays each slot's canonical left fold from zero, and the wide
    finalize only vectorizes the order-insensitive pieces (elementwise
    divides, row maxima) while the order-sensitive subset sums run
    per slot on contiguous row views.
    """

    def __init__(self, ceval: CompiledEval, group, batch: int):
        self.ceval = ceval
        self.group = group
        self.batch = batch
        self.ctx = ceval.group_ctx(group)
        self.bu = group.batch_unit
        self.n_layers = len(self.ctx.lids)
        self.nb = 2 * self.n_layers
        topo = ceval.ev.topo
        self.n_links = topo.n_links
        self.n_dram = len(topo.dram_nodes())
        n_links, n_dram = self.n_links, self.n_dram
        self.lanes = n_links + 3 * n_dram + 1
        self.sl_vol = slice(0, n_links)
        self.sl_dr = slice(n_links, n_links + n_dram)
        self.sl_dw = slice(n_links + n_dram, n_links + 2 * n_dram)
        self.sl_do = slice(n_links + 2 * n_dram, n_links + 3 * n_dram)
        self.i_hop = n_links + 3 * n_dram
        self.rounds = math.ceil(batch / group.batch_unit)
        self.depth = len(group)

    def write_row(self, row: np.ndarray, block: LayerTrafficBlock) -> None:
        row[self.sl_vol] = block.volumes
        dr = block.dram_read
        row[self.sl_dr] = 0.0 if dr is None else dr
        dw = block.dram_write
        row[self.sl_dw] = 0.0 if dw is None else dw
        do = block.dram_weight_once
        row[self.sl_do] = 0.0 if do is None else do
        row[self.i_hop] = block.weight_tree_hop_bytes

    def fold(self, buf: np.ndarray) -> np.ndarray:
        """Left fold of the ``(nb, S, lanes)`` buffer over blocks."""
        acc = np.zeros((buf.shape[1], buf.shape[2]))
        for j in range(self.nb):
            np.add(acc, buf[j], out=acc)
        return acc

    def finalize(self, acc: np.ndarray, items) -> list[GroupEval]:
        """Per-slot :meth:`CompiledEval._finalize`, vectorized where
        exact.  ``items`` is ``(slot, recs)`` pairs; one GroupEval per
        item, bit-equal to the serial reduction."""
        ceval = self.ceval
        e = ceval.ev.energy
        pbw = ceval._per_dram_bw
        noc_idx, d2d_idx = ceval._noc_idx, ceval._d2d_idx
        n_d2d = ceval._n_d2d
        vol2 = acc[:, self.sl_vol]
        net = (vol2 / ceval._bandwidths).max(axis=1)
        do2 = acc[:, self.sl_do]
        rb2 = acc[:, self.sl_dr] + acc[:, self.sl_dw]
        if self.n_dram:
            rb_max = rb2.max(axis=1)
            do_max = do2.max(axis=1)
        rounds, depth = self.rounds, self.depth
        out = []
        for slot, recs in items:
            compute = 0.0
            intra_j = 0.0
            fits = True
            for cl in recs:
                rec = cl.rec
                if rec.compute > compute:
                    compute = rec.compute
                intra_j += rec.energy
                fits = fits and rec.fits
            network = float(net[slot])
            dram = float(rb_max[slot]) / pbw if self.n_dram else 0.0
            prologue = float(do_max[slot]) / pbw if self.n_dram else 0.0
            stage = max(compute, network, dram)
            delay = stage * (rounds + depth - 1) + prologue
            vol_row = vol2[slot]
            noc_j = float(vol_row[noc_idx].sum()) * e.e_noc_hop
            d2d_j = e.d2d_energy(
                float(vol_row[d2d_idx].sum()), n_d2d, stage
            )
            rb_row = rb2[slot]
            dram_j = float(rb_row.sum()) * e.e_dram
            once_bytes = float(do2[slot].sum())
            hop = float(acc[slot, self.i_hop])
            energy = EnergyBreakdown(
                intra=intra_j * rounds,
                noc=noc_j * rounds + hop * e.e_noc_hop,
                d2d=d2d_j * rounds,
                dram=dram_j * rounds + once_bytes * e.e_dram,
            )
            out.append(GroupEval(
                delay=delay,
                energy=energy,
                stage_time=stage,
                rounds=rounds,
                compute_time=compute,
                network_time=network,
                dram_time=dram,
                traffic=None,
                dram_round_bytes=tuple(rb_row),
                fits=fits,
            ))
        return out


# ----------------------------------------------------------------------
# Population state
# ----------------------------------------------------------------------


@dataclass
class BatchProposal:
    """One population step's staged candidates, scored."""

    staged: list[_Staged]
    evals: list[GroupEval]


class PopulationGroupState:
    """N walkers' current states of one layer group, fold-ready.

    Holds each walker's blocks (built through the shared
    :class:`CompiledEval` caches, so walkers deduplicate work against
    each other) plus the persistent ``(nb, N, lanes)`` row buffer the
    batched fold consumes.  :meth:`propose` delta-evaluates one
    candidate per walker in a single batched pass; accepted candidates
    keep their rows, rejected ones are rolled back.
    """

    def __init__(self, ceval: CompiledEval, lmss: list[LayerGroupMapping],
                 batch: int, stored_ats: list[dict]):
        if not lmss:
            raise ValueError("population needs at least one mapping")
        self.core = _BatchCore(ceval, lmss[0].group, batch)
        self.ceval = ceval
        core, ctx, bu = self.core, self.core.ctx, self.core.bu
        n = len(lmss)
        self.n_slots = n
        self.lms = list(lmss)
        self.schemes: list[list] = []
        self.recs: list[list] = []
        self.self_blocks: list[list] = []
        self.input_blocks: list[list] = []
        self.ext_places: list[list] = []
        self.buf = np.zeros((core.nb, n, core.lanes))
        for w, lms in enumerate(lmss):
            stored_at = stored_ats[w]
            schemes = [lms.scheme(name) for name in lms.group.layers]
            recs = [
                ceval.layer_rec(lid, schemes[i], bu)
                for i, lid in enumerate(ctx.lids)
            ]
            self_blocks = [
                ceval.self_block(lid, schemes[i], bu, recs[i])
                for i, lid in enumerate(ctx.lids)
            ]
            input_blocks = [
                ceval.input_block(
                    ctx, i, bu, schemes, recs,
                    ceval.deps_for(ctx, i, schemes, stored_at),
                )
                for i in range(core.n_layers)
            ]
            places = [
                tuple(stored_at.get(nm, INTERLEAVED) for nm in names)
                for names in ctx.ext_names
            ]
            self.schemes.append(schemes)
            self.recs.append(recs)
            self.self_blocks.append(self_blocks)
            self.input_blocks.append(input_blocks)
            self.ext_places.append(places)
            for i in range(core.n_layers):
                core.write_row(self.buf[2 * i, w], input_blocks[i])
                core.write_row(self.buf[2 * i + 1, w], self_blocks[i])
        self.proposed = 0
        self.committed = 0

    # ------------------------------------------------------------------

    def evaluate_current(self) -> list[GroupEval]:
        """Batched full evaluation of every walker's current state."""
        acc = self.core.fold(self.buf)
        return self.core.finalize(
            acc, [(w, self.recs[w]) for w in range(self.n_slots)]
        )

    def propose(self, cands: list[tuple[int, LayerGroupMapping]],
                stored_ats: list[dict]) -> BatchProposal:
        """Delta-evaluate one candidate per (distinct) walker.

        ``cands`` is ``(walker, candidate lms)`` pairs — each walker at
        most once, since candidate rows are written in place over the
        walker's own buffer rows.  Follow with :meth:`resolve`.
        """
        core, ceval, ctx, bu = self.core, self.ceval, self.core.ctx, \
            self.core.bu
        pend = _DeferredBlocks(ceval)
        staged = [
            _stage_candidate(
                ceval, ctx, bu, self.schemes[w], self.recs[w],
                self.self_blocks[w], self.input_blocks[w],
                self.ext_places[w], w, lms, stored_ats[w], pend,
            )
            for w, lms in cands
        ]
        pend.flush()
        _resolve_staged(staged)
        buf = self.buf
        for st in staged:
            for j, blk in st.rows:
                row = buf[j, st.slot]
                st.saved.append((j, row.copy()))
                core.write_row(row, blk)
        acc = core.fold(buf)
        evals = core.finalize(acc, [(st.slot, st.recs) for st in staged])
        self.proposed += len(staged)
        return BatchProposal(staged, evals)

    def resolve(self, bp: BatchProposal, accepted: list[bool]) -> None:
        """Adopt accepted candidates, roll rejected rows back."""
        buf = self.buf
        for st, ok in zip(bp.staged, accepted):
            w = st.slot
            if ok:
                self.committed += 1
                self.lms[w] = st.lms
                self.schemes[w] = st.schemes
                self.recs[w] = st.recs
                self.self_blocks[w] = st.self_blocks
                self.input_blocks[w] = st.input_blocks
                self.ext_places[w] = st.ext_places
            else:
                for j, old_row in st.saved:
                    buf[j, w] = old_row


def evaluate_population(
    ceval: CompiledEval,
    lmss: list[LayerGroupMapping],
    batch: int,
    stored_at=None,
) -> list[GroupEval]:
    """Stateless batched evaluation of N mappings of one group.

    ``stored_at`` is either one dict shared by every slot or a
    per-slot sequence of dicts.  Element-wise bit-identical to calling
    :meth:`CompiledEval.evaluate_group` per mapping — the identity
    surface the batch tests pin.
    """
    if stored_at is None or isinstance(stored_at, dict):
        stored_at = [stored_at or {}] * len(lmss)
    state = PopulationGroupState(ceval, lmss, batch, list(stored_at))
    return state.evaluate_current()


# ----------------------------------------------------------------------
# Best-of-K scoring against a GroupSession (population = 1 path)
# ----------------------------------------------------------------------


def score_session_batch(
    session: GroupSession,
    candidates: list[LayerGroupMapping],
    stored_at: dict[str, int],
) -> list[Proposal]:
    """Score K candidates against one session state in one batch.

    Replaces the serial ``proposal_batch`` scoring loop: staleness and
    block rebuilds run per candidate (deferred scatters batched), then
    one stacked fold + finalize prices all K.  Costs are bit-identical
    to ``session.propose`` per candidate, so the SA trajectory — and
    therefore campaign digests — are unchanged.
    """
    ceval, ctx, bu = session.ceval, session.ctx, session.bu
    core = getattr(session, "_batch_core", None)
    if core is None or core.batch != session.batch:
        core = _BatchCore(ceval, session.group, session.batch)
        session._batch_core = core
    pend = _DeferredBlocks(ceval)
    staged = [
        _stage_candidate(
            ceval, ctx, bu, session.schemes, session.recs,
            session.self_blocks, session.input_blocks,
            session.ext_places, s, lms, stored_at, pend,
        )
        for s, lms in enumerate(candidates)
    ]
    pend.flush()
    _resolve_staged(staged)
    base = np.zeros((core.nb, core.lanes))
    for j in range(core.nb):
        core.write_row(base[j], session._block(j))
    sbuf = np.empty((core.nb, len(staged), core.lanes))
    sbuf[:] = base[:, None, :]
    for st in staged:
        for j, blk in st.rows:
            core.write_row(sbuf[j, st.slot], blk)
    acc = core.fold(sbuf)
    evals = core.finalize(acc, [(st.slot, st.recs) for st in staged])
    session.proposed += len(staged)
    return [
        Proposal(
            result=ev, schemes=st.schemes, recs=st.recs,
            self_blocks=st.self_blocks, input_blocks=st.input_blocks,
            ext_places=st.ext_places, first_block=st.first_block,
            first_layer=st.first_layer,
        )
        for st, ev in zip(staged, evals)
    ]
