"""The T-Map baseline: Tangram LP mapping (Sec VI-A4).

Tangram [15] combines the DP-based graph partition (which Gemini reuses,
Sec V-B) with a heuristic stripe-based spatial mapping that assigns each
layer a consecutive, rectangle-shaped group of cores.  In this framework
that is exactly the Mapping Engine with the SA stage disabled: the DP
partition plus the stripe initial scheme *is* T-Map.
"""

from __future__ import annotations

from repro.arch.energy import DEFAULT_ENERGY, EnergyModel
from repro.arch.params import ArchConfig
from repro.fabric import Topology
from repro.core.engine import MappingEngine, MappingEngineSettings, MappingResult
from repro.core.sa import SASettings
from repro.workloads.graph import DNNGraph


def tangram_engine(
    arch: ArchConfig,
    energy: EnergyModel = DEFAULT_ENERGY,
    topo: Topology | None = None,
    max_group_layers: int = 10,
) -> MappingEngine:
    """A Mapping Engine configured as the Tangram baseline."""
    return MappingEngine(
        arch,
        energy=energy,
        topo=topo,
        settings=MappingEngineSettings(
            sa=SASettings(iterations=0),
            max_group_layers=max_group_layers,
        ),
    )


def tangram_map(
    graph: DNNGraph,
    arch: ArchConfig,
    batch: int,
    energy: EnergyModel = DEFAULT_ENERGY,
    topo: Topology | None = None,
    max_group_layers: int = 10,
) -> MappingResult:
    """Map ``graph`` with the T-Map baseline and evaluate it."""
    return tangram_engine(
        arch, energy=energy, topo=topo, max_group_layers=max_group_layers
    ).map(graph, batch)
