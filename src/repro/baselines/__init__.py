"""Baseline mappings and architectures used in the paper's comparisons."""

from repro.baselines.tangram import tangram_engine, tangram_map

__all__ = ["tangram_engine", "tangram_map"]
