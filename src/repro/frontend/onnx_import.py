"""ONNX ingestion: walk a protobuf, emit the frontend IR.

The walker (:func:`onnx_graph_to_ir`) is deliberately duck-typed — it
touches only the fields of the ONNX graph proto it needs (``node``,
``initializer``, ``input``, attribute records), so unit tests exercise
it with plain stub objects and the real ``onnx`` package is only
required by :func:`import_onnx`'s call to ``onnx.load``.  ``onnx`` is
an *optional* dependency: install with ``pip install onnx`` (or the
``[onnx]`` extra) to import real models.

Supported directly: Conv (incl. grouped/depthwise), Gemm, MatMul
(weight MatMuls become token-wise 1x1 convs, activation-activation
MatMuls become ``MATMUL`` layers), Max/AveragePool, GlobalAveragePool,
Add/Sum, Concat, Softmax, LayerNormalization, BatchNormalization,
the common activations, and Resize/Upsample (as nearest-neighbour
vector passes).  Shape plumbing (Reshape/Transpose/Flatten/...) is
folded; anything else is approximated by the pass pipeline and
reported loudly.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import InvalidWorkloadError
from repro.frontend.ir import GRAPH_INPUT, OpGraph, OpNode, sanitize_name
from repro.frontend.passes import run_pipeline
from repro.frontend.report import (
    KIND_APPROXIMATED,
    KIND_FUSED,
    KIND_LOWERED,
    LoweringReport,
)
from repro.workloads.graph import DNNGraph


class OnnxImportError(InvalidWorkloadError):
    """The ONNX model cannot be expressed in the frontend IR."""


def _require_onnx():
    try:
        import onnx
    except ImportError as exc:
        raise OnnxImportError(
            "importing .onnx models needs the optional 'onnx' package "
            "(pip install onnx)"
        ) from exc
    return onnx


# ----------------------------------------------------------------------
# Duck-typed protobuf access
# ----------------------------------------------------------------------

#: AttributeProto.type -> the field holding the value.
_ATTR_FIELDS = {1: "f", 2: "i", 3: "s", 6: "floats", 7: "ints", 8: "strings"}


def attr_dict(node) -> dict:
    """Extract a node's attributes into a plain dict."""
    out = {}
    for attr in getattr(node, "attribute", ()):  # noqa: B007
        field = _ATTR_FIELDS.get(getattr(attr, "type", 0))
        if field is None:
            continue
        value = getattr(attr, field, None)
        if field == "s" and isinstance(value, bytes):
            value = value.decode("utf-8", "replace")
        elif field in ("ints", "floats", "strings"):
            value = list(value)
        out[attr.name] = value
    return out


def _tensor_shape(value_info) -> list[int]:
    """Dims of a graph input/output ValueInfo; 0 for dynamic dims."""
    dims = value_info.type.tensor_type.shape.dim
    out = []
    for d in dims:
        v = getattr(d, "dim_value", 0)
        out.append(int(v) if v else 0)
    return out


def _input_hwk(dims: list[int], name: str) -> tuple[int, int, int]:
    """Map an ONNX input shape (batch leading) onto per-sample (h, w, k)."""
    body = dims[1:] if len(dims) > 1 else dims
    if any(d < 1 for d in body):
        raise OnnxImportError(
            f"graph input {name!r} has dynamic non-batch dims {dims}; "
            "export the model with fixed shapes"
        )
    if len(body) == 3:  # NCHW
        c, h, w = body
        return (h, w, c)
    if len(body) == 2:  # N, seq, d
        s, d = body
        return (s, 1, d)
    if len(body) == 1:  # N, d
        return (1, 1, body[0])
    raise OnnxImportError(
        f"graph input {name!r}: unsupported rank-{len(dims)} shape {dims}"
    )


# ----------------------------------------------------------------------
# Node conversion
# ----------------------------------------------------------------------

_ACTIVATION_MAP = {
    "Relu": "relu", "LeakyRelu": "leakyrelu", "PRelu": "prelu",
    "Sigmoid": "sigmoid", "HardSigmoid": "hardsigmoid", "Tanh": "tanh",
    "Clip": "clip", "Elu": "elu", "Erf": "erf", "Softplus": "softplus",
    "HardSwish": "hardswish", "Gelu": "gelu",
}

_STRUCTURAL_MAP = {
    "Reshape": "reshape", "Flatten": "flatten", "Transpose": "transpose",
    "Identity": "identity", "Dropout": "dropout", "Cast": "cast",
    "Squeeze": "squeeze", "Unsqueeze": "unsqueeze",
}

_ELTWISE_TYPES = frozenset({"Mul", "Sub", "Div", "Min", "Max", "Pow", "Mod"})


class _Converter:
    """Stateful walk of one ONNX graph proto."""

    def __init__(self, graph_proto, name: str | None, report: LoweringReport):
        self.gp = graph_proto
        self.report = report
        #: value name -> producing node name, GRAPH_INPUT, or None (constant)
        self.values: dict[str, str | None] = {}
        self.init_protos = {
            t.name: t for t in getattr(graph_proto, "initializer", ())
        }
        self.init_dims: dict[str, tuple[int, ...]] = {
            name: tuple(int(d) for d in t.dims)
            for name, t in self.init_protos.items()
        }
        for vname in self.init_dims:
            self.values[vname] = None
        self.used_names: set[str] = set()
        self.ir = self._make_graph(name)

    # -- setup ----------------------------------------------------------

    def _make_graph(self, name: str | None) -> OpGraph:
        data_inputs = [
            vi for vi in getattr(self.gp, "input", ())
            if vi.name not in self.init_dims
        ]
        if not data_inputs:
            raise OnnxImportError("ONNX graph has no non-initializer input")
        main = data_inputs[0]
        for extra in data_inputs[1:]:
            # Secondary inputs (masks, token types, encoder states) are
            # aliased onto the DNN input — shapes of ops reading them
            # follow the primary input, so this is an approximation
            # the report must surface loudly.
            self.values[extra.name] = GRAPH_INPUT
            self.report.add(
                KIND_APPROXIMATED, sanitize_name(extra.name), "input",
                "secondary graph input aliased onto the DNN input; ops "
                "reading it are shaped from the primary input",
            )
        self.values[main.name] = GRAPH_INPUT
        shape = _input_hwk(_tensor_shape(main), main.name)
        model_name = sanitize_name(
            name or getattr(self.gp, "name", "") or "onnx_model", "onnx_model"
        )
        return OpGraph(model_name, shape)

    def _fresh_name(self, node, op: str) -> str:
        base = sanitize_name(getattr(node, "name", "") or "", op)
        candidate, n = base, 1
        while candidate in self.used_names:
            n += 1
            candidate = f"{base}_{n}"
        self.used_names.add(candidate)
        return candidate

    # -- operand classification ----------------------------------------

    def _operands(self, node) -> tuple[list[str], list[str]]:
        """(activation producer refs, constant/initializer value names)."""
        acts, consts = [], []
        for vname in getattr(node, "input", ()):
            if not vname:
                continue
            if vname not in self.values:
                raise OnnxImportError(
                    f"node {getattr(node, 'name', '?')!r} reads unknown "
                    f"value {vname!r}"
                )
            ref = self.values[vname]
            if ref is None:
                consts.append(vname)
            else:
                acts.append(ref)
        return acts, consts

    def _bind_outputs(self, node, ref: str | None) -> None:
        for vname in getattr(node, "output", ()):
            if vname:
                self.values[vname] = ref

    def _record_constant_dims(self, node) -> None:
        for attr in getattr(node, "attribute", ()):
            if attr.name == "value" and getattr(attr, "type", 0) == 4:
                tensor = getattr(attr, "t", None)
                dims = tuple(int(d) for d in getattr(tensor, "dims", ()))
                if dims:
                    for vname in getattr(node, "output", ()):
                        if vname:
                            self.init_dims[vname] = dims

    def _resize_scale(self, node) -> int | None:
        """Spatial scale factor of a Resize/Upsample, when recoverable.

        Works for scales shipped as float initializers with inline
        ``float_data`` (NCHW ``[1, 1, s, s]``); raw-encoded or computed
        scales return ``None`` and are approximated loudly.
        """
        for vname in getattr(node, "input", ()):
            if self.values.get(vname) is not None:
                continue  # activation operand
            proto = self.init_protos.get(vname)
            floats = list(getattr(proto, "float_data", ()) or ())
            if len(floats) == 4 and floats[2] == floats[3] and \
                    floats[2] >= 1 and float(floats[2]).is_integer():
                return int(floats[2])
        return None

    def _weight_dims(self, node, vname: str) -> tuple[int, ...]:
        dims = self.init_dims.get(vname)
        if dims is None:
            raise OnnxImportError(
                f"node {getattr(node, 'name', '?')!r}: weight operand "
                f"{vname!r} is constant but its shape is unknown"
            )
        return dims

    def _padding(self, node, attrs) -> tuple[int, int] | str:
        """Resolve explicit ``pads`` / ``auto_pad`` into layer padding.

        ``auto_pad`` SAME_* becomes the frontend's symmetric ``"same"``
        (exact at stride 1, framework-SAME-compatible at stride 2 for
        odd kernels) and is reported; VALID/NOTSET fall back to the
        explicit ``pads`` list.
        """
        auto = attrs.get("auto_pad", "NOTSET")
        if auto in ("SAME_UPPER", "SAME_LOWER"):
            self.report.add(
                KIND_LOWERED,
                sanitize_name(getattr(node, "name", "") or node.op_type),
                node.op_type,
                f"auto_pad={auto} modeled as symmetric 'same' padding",
            )
            return "same"
        return self._sym_pads(node, attrs.get("pads", [0, 0, 0, 0]))

    def _sym_pads(self, node, pads) -> tuple[int, int]:
        """Collapse ONNX [hb, wb, he, we] pads to symmetric (ph, pw).

        The layer model applies ``pad_h``/``pad_w`` to both sides, and
        output sizes depend only on the begin+end sum — exact when the
        sum is even, off-by-half-a-pixel (reported) when odd.
        """
        pads = list(pads) + [0] * (4 - len(pads))
        h_total, w_total = pads[0] + pads[2], pads[1] + pads[3]
        if h_total % 2 or w_total % 2:
            self.report.add(
                KIND_APPROXIMATED,
                sanitize_name(getattr(node, "name", "") or node.op_type),
                node.op_type,
                f"asymmetric pads {pads} rounded up to symmetric "
                f"({(h_total + 1) // 2}, {(w_total + 1) // 2})",
            )
        return (h_total + 1) // 2, (w_total + 1) // 2

    def _stride(self, node, strides) -> int:
        strides = list(strides) or [1]
        if len(set(strides)) > 1:
            self.report.add(
                KIND_APPROXIMATED,
                sanitize_name(getattr(node, "name", "") or node.op_type),
                node.op_type,
                f"anisotropic strides {strides} modeled as {strides[0]}",
            )
        return int(strides[0])

    # -- conversion -----------------------------------------------------

    def run(self) -> OpGraph:
        for node in getattr(self.gp, "node", ()):
            self._convert(node)
        if not len(self.ir):
            raise OnnxImportError("ONNX graph produced no layers")
        return self.ir

    def _emit(self, node, op: str, inputs: list[str], attrs: dict) -> None:
        name = self._fresh_name(node, op)
        self.ir.add(OpNode(name, op, inputs, attrs))
        self._bind_outputs(node, name)

    def _convert(self, node) -> None:
        op_type = node.op_type
        acts, consts = self._operands(node)
        attrs = attr_dict(node)

        if op_type == "Constant" or not acts:
            # Constant, or an expression over constants only (Shape
            # arithmetic feeding a Reshape): its outputs are constants.
            # Tensor-valued Constants keep their dims so they can serve
            # as weights (tf2onnx-style constant-folded exports).
            if op_type == "Constant":
                self._record_constant_dims(node)
            self._bind_outputs(node, None)
            return
        if op_type == "Conv":
            self._convert_conv(node, acts, consts, attrs)
        elif op_type == "Gemm":
            self._convert_gemm(node, acts, consts, attrs)
        elif op_type == "MatMul":
            self._convert_matmul(node, acts, consts)
        elif op_type in ("MaxPool", "AveragePool", "LpPool"):
            self._convert_pool(node, acts, attrs,
                               "max" if op_type == "MaxPool" else "avg")
        elif op_type in ("GlobalAveragePool", "GlobalMaxPool"):
            self._emit(node, "pool", acts[:1], {"mode": "global"})
        elif op_type == "ReduceMean" and sorted(
            attrs.get("axes", [])
        ) in ([2, 3], [-2, -1]):
            self._emit(node, "pool", acts[:1], {"mode": "global"})
        elif op_type in ("Add", "Sum"):
            if len(acts) >= 2:
                self._emit(node, "add", acts, {})
            else:  # activation + initializer: a bias
                self._emit(node, "bias", acts[:1], {})
        elif op_type in _ELTWISE_TYPES:
            if len(acts) >= 2:
                self._emit(node, "eltwise", acts,
                           {"origin": op_type.lower()})
            else:  # constant scale/shift folds like a bias
                self._emit(node, "bias", acts[:1],
                           {"origin": op_type.lower()})
        elif op_type == "Concat":
            if len(acts) >= 2:
                self._emit(node, "concat", acts, {})
            else:  # concat with constants degenerates to a pass-through
                self._emit(node, "identity", acts[:1], {})
        elif op_type == "Softmax":
            self._emit(node, "softmax", acts[:1], {})
        elif op_type in ("LayerNormalization",
                         "MeanVarianceNormalization",
                         "InstanceNormalization",
                         "GroupNormalization",
                         "LpNormalization"):
            self._emit(node, "layernorm", acts[:1], {})
        elif op_type == "BatchNormalization":
            self._emit(node, "batchnorm", acts[:1], {})
        elif op_type in ("Resize", "Upsample"):
            label = sanitize_name(getattr(node, "name", "") or "resize")
            scale = self._resize_scale(node)
            if scale is None:
                # The scales operand's value is opaque; guess 2x and
                # say so loudly (is_exact goes False).
                self.report.add(
                    KIND_APPROXIMATED, label, op_type,
                    "scale factor unavailable; modeled as a 2x "
                    "nearest-neighbour vector pass",
                )
                scale = 2
            else:
                self.report.add(
                    KIND_LOWERED, label, op_type,
                    f"modeled as a {scale}x nearest-neighbour vector pass",
                )
            self._emit(node, "upsample", acts[:1], {"scale": scale})
        elif op_type in _ACTIVATION_MAP:
            self._emit(node, _ACTIVATION_MAP[op_type], acts[:1], {})
        elif op_type in _STRUCTURAL_MAP:
            self._emit(node, _STRUCTURAL_MAP[op_type], acts[:1], {})
        else:
            # Unknown op: keep its activation operands; the pass
            # pipeline approximates it (and reports, loudly).
            self._emit(node, op_type.lower(), acts,
                       {"origin": op_type})

    def _convert_conv(self, node, acts, consts, attrs) -> None:
        if not consts:
            raise OnnxImportError(
                f"Conv {getattr(node, 'name', '?')!r}: weights are not a "
                "constant"
            )
        w_dims = self._weight_dims(node, consts[0])
        if len(w_dims) != 4:
            raise OnnxImportError(
                f"Conv weights {consts[0]!r}: expected KCRS dims, "
                f"got {w_dims}"
            )
        out_k, _c_per_group, kr, ks = w_dims
        groups = int(attrs.get("group", 1))
        dilations = attrs.get("dilations", [1, 1])
        if any(d != 1 for d in dilations):
            self.report.add(
                KIND_APPROXIMATED,
                sanitize_name(getattr(node, "name", "") or "conv"), "Conv",
                f"dilations {dilations} ignored (modeled as dense kernel)",
            )
        if len(consts) > 1:
            self.report.add(
                KIND_FUSED, sanitize_name(consts[1], "bias"), "Conv",
                "bias constant folded into the convolution",
            )
        kernel = attrs.get("kernel_shape", [kr, ks])
        pad = self._padding(node, attrs)
        self._emit(node, "conv", acts[:1], {
            "k": int(out_k),
            "kernel": [int(kernel[0]), int(kernel[-1])],
            "stride": self._stride(node, attrs.get("strides", [1, 1])),
            "pad": pad if pad == "same" else list(pad),
            "groups": groups,
        })

    def _convert_gemm(self, node, acts, consts, attrs) -> None:
        if not consts:
            # Activation-activation Gemm: a plain matmul.
            self._convert_matmul(node, acts, consts)
            return
        # The weight is whichever of the A/B matrix operands is
        # constant — the C operand is a bias, never the weight.
        inputs = list(getattr(node, "input", ()))
        ab_consts = [v for v in inputs[:2] if v in self.values
                     and self.values[v] is None]
        if not ab_consts:
            # Both matrices are activations; C (if present) is a bias.
            if consts:
                self.report.add(
                    KIND_FUSED, sanitize_name(consts[0], "bias"), "Gemm",
                    "bias constant folded into the matmul",
                )
            self._convert_matmul(node, acts, [])
            return
        w_dims = self._weight_dims(node, ab_consts[0])
        bias = [v for v in consts if v != ab_consts[0]]
        if bias:
            self.report.add(
                KIND_FUSED, sanitize_name(bias[0], "bias"), "Gemm",
                "bias constant folded into the fully-connected layer",
            )
        if inputs[0] == ab_consts[0]:
            # Weights as operand A: output features are A's rows
            # (columns under transA).
            out_k = w_dims[-1] if attrs.get("transA", 0) else w_dims[0]
        else:
            trans_b = bool(attrs.get("transB", 0))
            out_k = w_dims[0] if trans_b else w_dims[-1]
        if len(acts) > 1:
            # The C operand is an *activation*: keep its data
            # dependency as an explicit elementwise add after the fc.
            fc_name = self._fresh_name(node, "fc")
            self.ir.add(OpNode(fc_name, "fc", acts[:1],
                               {"k": int(out_k)}))
            add_name = self._fresh_name(node, f"{fc_name}_bias")
            self.ir.add(OpNode(
                add_name, "add", [fc_name, acts[1]],
                {"origin": "gemm_bias"},
            ))
            self._bind_outputs(node, add_name)
            self.report.add(
                KIND_LOWERED, add_name, "Gemm",
                "activation bias operand kept as an explicit "
                "elementwise add",
            )
            return
        self._emit(node, "fc", acts[:1], {"k": int(out_k)})

    def _weight_is_lhs(self, node, const_vname: str) -> bool:
        inputs = list(getattr(node, "input", ()))
        return bool(inputs) and inputs[0] == const_vname

    def _convert_matmul(self, node, acts, consts) -> None:
        if consts:
            # Weight MatMul == token-wise linear layer == 1x1 conv over
            # the sequence axis (the transformer-zoo idiom).  Output
            # features come from the weight's non-contraction dim: the
            # last for MatMul(x, W), the first for MatMul(W, x).
            w_dims = self._weight_dims(node, consts[0])
            out_k = w_dims[0] if self._weight_is_lhs(node, consts[0]) \
                else w_dims[-1]
            self._emit(node, "conv", acts[:1],
                       {"k": int(out_k), "kernel": 1})
            return
        if len(acts) != 2:
            raise OnnxImportError(
                f"MatMul {getattr(node, 'name', '?')!r}: expected two "
                f"activation operands, got {len(acts)}"
            )
        self._emit(node, "matmul", acts, {})

    def _convert_pool(self, node, acts, attrs, mode: str) -> None:
        kernel = attrs.get("kernel_shape", [2, 2])
        pad = self._padding(node, attrs)
        self._emit(node, "pool", acts[:1], {
            "mode": mode,
            "kernel": [int(kernel[0]), int(kernel[-1])],
            # ONNX defaults pool strides to 1 (unlike the declarative
            # spec frontend, whose pool defaults to stride == kernel).
            "stride": self._stride(node, attrs.get("strides", [1, 1])),
            "pad": pad if pad == "same" else list(pad),
        })


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def onnx_graph_to_ir(
    graph_proto,
    name: str | None = None,
    report: LoweringReport | None = None,
) -> tuple[OpGraph, LoweringReport]:
    """Convert an ONNX GraphProto (or a duck-typed stand-in) to IR."""
    report = report if report is not None else LoweringReport()
    ir = _Converter(graph_proto, name, report).run()
    report.model = report.model or ir.name
    return ir, report


def import_onnx(path: str | Path) -> tuple[DNNGraph, LoweringReport]:
    """Load ``path`` with ``onnx.load`` and lower it to a DNNGraph."""
    onnx = _require_onnx()
    path = Path(path)
    model = onnx.load(str(path))
    ir, report = onnx_graph_to_ir(model.graph, name=path.stem)
    return run_pipeline(ir, report)
