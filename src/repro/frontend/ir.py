"""Frontend op-graph IR: the meeting point of every model source.

Both ingestion paths — declarative specs (:mod:`repro.frontend.spec`)
and ONNX protobufs (:mod:`repro.frontend.onnx_import`) — produce this
small untyped op graph.  The pass pipeline (:mod:`repro.frontend.passes`)
then folds, fuses and lowers it into the evaluator's layer vocabulary
before :func:`repro.frontend.passes.lower_to_graph` emits a validated
:class:`~repro.workloads.graph.DNNGraph`.

Nodes reference producers by *node name*; the sentinel
:data:`GRAPH_INPUT` stands for the DNN input activation.  Shapes are
per-sample ``(h, w, k)`` tuples, filled in by the shape-inference pass
(``None`` until then).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import InvalidWorkloadError

#: Producer sentinel: the DNN input activation.
GRAPH_INPUT = "@input"

#: Ops executed on the PE array.
PE_OPS = frozenset({"conv", "dwconv", "fc", "matmul"})

#: Channel-preserving memory/vector ops the evaluator models directly.
MEMORY_OPS = frozenset({"pool", "add", "eltwise", "concat", "vector"})

#: Unary activations the fusion pass folds into a PE producer.
ACTIVATION_OPS = frozenset({
    "relu", "relu6", "gelu", "sigmoid", "tanh", "silu", "swish",
    "leakyrelu", "clip", "erf", "softplus", "elu", "hardswish",
    "hardsigmoid", "prelu",
})

#: Vector-unit ops kept as standalone VECTOR layers (they read whole
#: activations, so their traffic is not free the way a fused ReLU is).
VECTOR_OPS = frozenset({"softmax", "layernorm", "batchnorm", "upsample"})

#: Pure shape plumbing: no data movement the evaluator should bill.
STRUCTURAL_OPS = frozenset({
    "identity", "reshape", "flatten", "transpose", "dropout", "cast",
    "squeeze", "unsqueeze", "constant",
})

#: Everything the lowering pass accepts without approximation.
SUPPORTED_OPS = PE_OPS | MEMORY_OPS | ACTIVATION_OPS | VECTOR_OPS | STRUCTURAL_OPS

_NAME_RE = re.compile(r"[^A-Za-z0-9_.]+")


def sanitize_name(raw: str, fallback: str = "node") -> str:
    """Make an imported node name safe for layer naming / file paths."""
    cleaned = _NAME_RE.sub("_", raw).strip("_")
    return cleaned or fallback


@dataclass
class OpNode:
    """One operation of an imported model, pre-lowering."""

    name: str
    op: str
    inputs: list[str] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)
    #: Per-sample output shape ``(h, w, k)``; set by shape inference.
    shape: tuple[int, int, int] | None = None

    def attr(self, key: str, default=None):
        return self.attrs.get(key, default)


class OpGraph:
    """An ordered DAG of :class:`OpNode` with one input activation."""

    def __init__(
        self,
        name: str,
        input_shape: tuple[int, int, int],
        bits: int = 8,
    ):
        if min(input_shape) < 1:
            raise InvalidWorkloadError(
                f"model {name!r}: input shape {input_shape} must be positive"
            )
        self.name = name
        self.input_shape = tuple(input_shape)
        self.bits = bits
        self.nodes: dict[str, OpNode] = {}

    # ------------------------------------------------------------------

    def add(self, node: OpNode) -> OpNode:
        if node.name == GRAPH_INPUT:
            raise InvalidWorkloadError(f"node name {GRAPH_INPUT!r} is reserved")
        if node.name in self.nodes:
            raise InvalidWorkloadError(f"duplicate node name {node.name!r}")
        for src in node.inputs:
            if src != GRAPH_INPUT and src not in self.nodes:
                raise InvalidWorkloadError(
                    f"node {node.name!r} consumes unknown node {src!r}"
                )
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> OpNode:
        return self.nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def consumers(self) -> dict[str, list[str]]:
        """node name -> names of nodes reading its output."""
        out: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for src in node.inputs:
                if src != GRAPH_INPUT:
                    out[src].append(node.name)
        return out

    def input_shape_of(self, node: OpNode) -> tuple[int, int, int]:
        """Shape of a node's first operand (producer or graph input)."""
        if not node.inputs or node.inputs[0] == GRAPH_INPUT:
            return self.input_shape
        shape = self.nodes[node.inputs[0]].shape
        if shape is None:
            raise InvalidWorkloadError(
                f"node {node.name!r}: producer {node.inputs[0]!r} has no "
                "inferred shape (run infer_shapes first)"
            )
        return shape

    # ------------------------------------------------------------------

    def remove(self, name: str, rewire_to: str | None = None) -> None:
        """Delete a node, rewiring its consumers to ``rewire_to``.

        ``rewire_to`` defaults to the node's sole input, which is what
        folding a unary pass-through op means.
        """
        node = self.nodes[name]
        if rewire_to is None:
            if len(node.inputs) != 1:
                raise InvalidWorkloadError(
                    f"cannot fold {name!r}: {len(node.inputs)} inputs"
                )
            rewire_to = node.inputs[0]
        del self.nodes[name]
        for other in self.nodes.values():
            other.inputs = [
                rewire_to if src == name else src for src in other.inputs
            ]

    def topological_order(self) -> list[str]:
        """Kahn order, stable w.r.t. insertion order."""
        indeg = {
            name: sum(1 for s in node.inputs if s != GRAPH_INPUT)
            for name, node in self.nodes.items()
        }
        # Multi-edges (same producer twice) must count twice.
        ready = [n for n in self.nodes if indeg[n] == 0]
        consumers = self.consumers()
        order = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            seen: dict[str, int] = {}
            for succ in consumers[name]:
                seen[succ] = seen.get(succ, 0) + 1
            for succ, times in seen.items():
                indeg[succ] -= times
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise InvalidWorkloadError(f"model {self.name!r} has a cycle")
        return order

    def outputs(self) -> list[str]:
        consumers = self.consumers()
        return [n for n, c in consumers.items() if not c]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpGraph({self.name!r}, nodes={len(self)})"
