"""Workload ingestion frontend: arbitrary DNNs into the evaluator.

The subsystem turns three kinds of model sources into validated
:class:`~repro.workloads.graph.DNNGraph` instances the Evaluator /
SA / DSE stack consumes:

* declarative JSON/YAML specs with shape inference and ``repeat`` /
  ``block`` macros (:mod:`repro.frontend.spec`);
* ONNX protobufs via the optional ``onnx`` package
  (:mod:`repro.frontend.onnx_import`);
* serialized graphs written by :func:`repro.io.save_graph`.

All sources meet in one op-graph IR (:mod:`repro.frontend.ir`) and one
pass pipeline (:mod:`repro.frontend.passes`), which folds shape
plumbing, fuses activations into their producers, approximates
unsupported ops as vector/elementwise layers, and reports every such
decision (:mod:`repro.frontend.report`).  On top of it, the scenario
registry (:mod:`repro.frontend.scenarios`) sweeps (model, batch, arch)
grids with per-scenario artifacts.
"""

from repro.frontend.ir import GRAPH_INPUT, OpGraph, OpNode
from repro.frontend.loader import GRAPH_FORMAT, load_model
from repro.frontend.onnx_import import OnnxImportError, import_onnx, onnx_graph_to_ir
from repro.frontend.passes import (
    canonicalize_vector_ops,
    fold_structural,
    fuse_activations,
    infer_shapes,
    insert_input_adapters,
    lower_to_graph,
    lower_unknown,
    run_pipeline,
)
from repro.frontend.report import LoweringReport
from repro.frontend.scenarios import (
    ARCH_PRESETS,
    SCENARIO_REGISTRY,
    Scenario,
    grid_scenarios,
    register_scenario,
    resolve_arch,
    run_scenario,
    run_sweep,
)
from repro.frontend.spec import (
    SpecError,
    import_spec,
    load_spec,
    parse_spec,
    spec_to_graph,
)

__all__ = [
    "ARCH_PRESETS",
    "GRAPH_FORMAT",
    "GRAPH_INPUT",
    "LoweringReport",
    "OnnxImportError",
    "OpGraph",
    "OpNode",
    "SCENARIO_REGISTRY",
    "Scenario",
    "SpecError",
    "canonicalize_vector_ops",
    "fold_structural",
    "fuse_activations",
    "grid_scenarios",
    "import_onnx",
    "import_spec",
    "infer_shapes",
    "insert_input_adapters",
    "load_model",
    "load_spec",
    "lower_to_graph",
    "lower_unknown",
    "onnx_graph_to_ir",
    "parse_spec",
    "register_scenario",
    "resolve_arch",
    "run_pipeline",
    "run_scenario",
    "run_sweep",
    "spec_to_graph",
]
