"""One front door for every model source.

:func:`load_model` accepts, in order of preference:

* a registry abbreviation (``"TF"``, ``"BERT"``, ...);
* a path to a ``.onnx`` protobuf (needs the optional ``onnx`` package);
* a path to a declarative spec (``.json`` / ``.yaml`` / ``.yml``);
* a path to a serialized graph (``.json`` written by
  :func:`repro.io.save_graph`, recognized by its ``"format"`` marker).

Every path returns a validated :class:`DNNGraph`; sources that go
through the lowering pipeline also return their
:class:`~repro.frontend.report.LoweringReport` (``None`` for registry
and serialized-graph sources, which are exact by construction).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import InvalidWorkloadError
from repro.frontend.report import LoweringReport
from repro.io.serialization import GRAPH_FORMAT, graph_from_dict
from repro.workloads.graph import DNNGraph


def _classify_source(source: str | Path) -> tuple[str, Path | None]:
    """``("registry" | "onnx" | "spec", path)`` for a model source.

    Shared by :func:`load_model` and :func:`validate_model_source` so
    the two can never disagree about what resolves and what errors.
    """
    from repro.workloads.models import MODEL_REGISTRY

    if isinstance(source, str) and source in MODEL_REGISTRY:
        return "registry", None
    path = Path(source)
    if not path.exists():
        raise InvalidWorkloadError(
            f"unknown model {str(source)!r}: not a registry name "
            f"({sorted(MODEL_REGISTRY)}) and no such file"
        )
    suffix = path.suffix.lower()
    if suffix == ".onnx":
        return "onnx", path
    if suffix in (".json", ".yaml", ".yml"):
        return "spec", path
    raise InvalidWorkloadError(
        f"cannot load {path.name!r}: expected .onnx, .json or .yaml"
    )


def load_model(source: str | Path) -> tuple[DNNGraph, LoweringReport | None]:
    """Resolve ``source`` into a validated :class:`DNNGraph`."""
    kind, path = _classify_source(source)
    if kind == "registry":
        from repro.workloads.models import build

        return build(str(source)), None
    if kind == "onnx":
        from repro.frontend.onnx_import import import_onnx

        return import_onnx(path)
    from repro.frontend.spec import load_spec, spec_to_graph

    data = load_spec(path)
    if data.get("format") == GRAPH_FORMAT:
        return graph_from_dict(data), None
    graph, report = spec_to_graph(data)
    return graph, report


def validate_model_source(source: str | Path) -> None:
    """Cheap pre-flight: raise the same errors :func:`load_model`
    would for an unresolvable source, without lowering the model.

    Catches unknown names, missing files, unsupported suffixes,
    unparseable spec files, and a missing ``onnx`` package — the
    failure modes worth rejecting before a sweep burns CPU.  Deep
    model errors still surface from the real load.
    """
    kind, path = _classify_source(source)
    if kind == "onnx":
        from repro.frontend.onnx_import import _require_onnx

        _require_onnx()
    elif kind == "spec":
        from repro.frontend.spec import load_spec

        load_spec(path)  # parse only; no macro expansion or lowering
