"""Scenario registry and sweep runner.

A *scenario* is one cell of the evaluation grid the ROADMAP asks for:
``(model, batch, architecture)`` plus a mapping-search budget.  The
registry ships a default matrix over the spec-defined zoo models (the
workloads the five paper DNNs don't cover), and :func:`run_sweep`
executes any scenario list — serially or over a process pool — writing
per-scenario artifacts (``summary.json`` + ``mapping.json``) and one
top-level ``sweep.csv``.

Scenarios are plain frozen dataclasses, so they pickle cleanly into
worker processes and compose into larger campaigns.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.arch import g_arch, g_arch_120, s_arch, t_arch
from repro.arch.params import ArchConfig
from repro.core import MappingEngine, MappingEngineSettings, SASettings
from repro.io.atomic import atomic_write_json
from repro.io.serialization import (
    load_arch,
    mapping_result_summary,
    save_mapping,
)

#: Named architecture presets accepted wherever an arch is referenced.
ARCH_PRESETS = {
    "s-arch": s_arch,
    "g-arch": g_arch,
    "t-arch": t_arch,
    "g-arch-120": g_arch_120,
}


def resolve_arch(spec: str) -> ArchConfig:
    """A preset name or a path to a JSON file saved by ``dse``."""
    if spec.lower() in ARCH_PRESETS:
        return ARCH_PRESETS[spec.lower()]()
    path = Path(spec)
    if path.exists():
        return load_arch(path)
    raise ValueError(
        f"unknown architecture {spec!r}: expected one of "
        f"{sorted(ARCH_PRESETS)} or a JSON file path"
    )


@dataclass(frozen=True)
class Scenario:
    """One (model, batch, arch, fabric) evaluation cell."""

    name: str
    model: str           # registry abbreviation or model file path
    batch: int
    arch: str = "g-arch"  # preset name or best_arch.json path
    iters: int = 100      # SA budget per layer group
    seed: int = 0
    #: Interconnect override as a ``kind[:routing][:knobs]`` spec
    #: string (see :func:`repro.fabric.parse_fabric`); empty keeps
    #: whatever fabric the resolved architecture already carries.
    fabric: str = ""

    def slug(self) -> str:
        """Filesystem-safe scenario directory name."""
        return self.name.replace("/", "_").replace(" ", "_")


def scenario_arch(scenario: Scenario) -> ArchConfig:
    """The scenario's architecture with its fabric override applied."""
    from repro.fabric import apply_fabric

    arch = resolve_arch(scenario.arch)
    if scenario.fabric:
        arch = apply_fabric(arch, scenario.fabric)
    return arch


#: name -> Scenario.  Mutated only through register_scenario.
SCENARIO_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace_existing: bool = False) -> Scenario:
    if not replace_existing and scenario.name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIO_REGISTRY[scenario.name] = scenario
    return scenario


def _register_defaults() -> None:
    # The frontier the frontend opens: attention at sequence length
    # (BERT), depthwise mobile CNNs, encoder-decoder segmentation, and
    # KV-cache decode — each at single-sample and server batch sizes.
    for model, batches in (
        ("BERT", (1, 64)),
        ("MBV2", (1, 64)),
        ("UNet", (1, 16)),
        ("GPT-Dec", (1, 64)),
    ):
        for batch in batches:
            register_scenario(Scenario(
                name=f"{model.lower()}-b{batch}",
                model=model,
                batch=batch,
            ))


_register_defaults()


def grid_scenarios(
    models: list[str],
    batches: list[int],
    archs: list[str],
    iters: int = 100,
    fabrics: list[str] | None = None,
) -> list[Scenario]:
    """The (model x batch x arch x fabric) cross product as scenarios.

    ``fabrics`` holds fabric spec strings (``""`` keeps the resolved
    architecture's own fabric); non-empty specs are validated eagerly
    and suffix the scenario name so per-fabric artifact directories
    never collide.
    """
    from repro.fabric import parse_fabric

    fabrics = list(fabrics) if fabrics else [""]
    for fabric in fabrics:
        if fabric:
            parse_fabric(fabric)  # fail fast on a bad spec string
    out = []
    seen: dict[str, int] = {}
    for model in models:
        for batch in batches:
            for arch in archs:
                for fabric in fabrics:
                    name = f"{Path(model).stem}-b{batch}-{Path(arch).stem}"
                    if fabric:
                        name += f"-{fabric.replace(':', '_')}"
                    # Distinct cells can share a stem-derived name (a
                    # preset and a file both called "g-arch"); suffix
                    # them.
                    if name in seen:
                        seen[name] += 1
                        name = f"{name}-{seen[name]}"
                    else:
                        seen[name] = 0
                    out.append(Scenario(
                        name=name, model=model, batch=batch, arch=arch,
                        iters=iters, fabric=fabric,
                    ))
    return out


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _run_scenario_full(
    scenario: Scenario, out_dir: str | Path | None = None
) -> tuple[dict, list]:
    """Map one scenario; returns (summary, serialized winning mapping)."""
    from repro.frontend.loader import load_model
    from repro.io.serialization import lms_to_dict
    from repro.obs.trace import trace

    with trace("scenario", scenario=scenario.name, model=scenario.model,
               batch=scenario.batch):
        arch = scenario_arch(scenario)
        graph, report = load_model(scenario.model)
        engine = MappingEngine(
            arch,
            settings=MappingEngineSettings(
                sa=SASettings(iterations=scenario.iters, seed=scenario.seed)
            ),
        )
        result = engine.map(graph, scenario.batch)
    summary = {**asdict(scenario), "model_name": graph.name,
               "layers": len(graph), "arch_name": arch.name}
    for key, value in mapping_result_summary(result).items():
        if key == "arch":
            key = "arch_tuple"  # keep the scenario's preset name intact
        summary[key] = list(value) if isinstance(value, tuple) else value
    summary["energy_fractions"] = result.evaluation.energy.fractions()
    if report is not None and len(report):
        summary["frontend"] = report.summary()
    if out_dir is not None:
        sc_dir = Path(out_dir) / scenario.slug()
        sc_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(sc_dir / "summary.json", summary)
        save_mapping(result.lmss, sc_dir / "mapping.json")
    return summary, [lms_to_dict(l) for l in result.lmss]


def run_scenario(scenario: Scenario, out_dir: str | Path | None = None) -> dict:
    """Map one scenario; optionally write its artifact directory."""
    return _run_scenario_full(scenario, out_dir)[0]


def _run_scenario_task(args: tuple[Scenario, str | None]) -> tuple[dict, list]:
    scenario, out_dir = args
    return _run_scenario_full(scenario, out_dir)


def _run_scenario_in_worker(
    args: tuple[Scenario, str | None]
) -> tuple[tuple[dict, list], dict]:
    """Pool entry: ((summary, lmss), perf snapshot) — counters are
    process-local, so each task ships its delta back to the parent (the
    DSE pool does the same)."""
    from repro.perf import PERF

    PERF.reset()
    outcome = _run_scenario_task(args)
    return outcome, PERF.snapshot()


#: Column order of sweep.csv (stable for downstream tooling).
SWEEP_COLUMNS = (
    "name", "model", "batch", "arch", "fabric", "iters", "layers",
    "delay_s", "energy_j", "edp", "n_groups", "frontend",
)


def sweep_rows(summaries: list[dict]) -> list[list]:
    """Summaries as SWEEP_COLUMNS-ordered rows (CSV and table share it)."""
    return [[s.get(col, "") for col in SWEEP_COLUMNS] for s in summaries]


def _materialize_hit(
    scenario: Scenario,
    summary: dict,
    lmss: list | None,
    out_dir: str | Path | None,
) -> None:
    """(Re)write the artifact directory of a store-served scenario.

    A renamed scenario is served from the store under its new name, so
    its artifact directory must be created here — the evaluation path
    that normally writes it never runs.  Idempotent and atomic.
    """
    if out_dir is None:
        return
    from repro.io.serialization import lms_from_dict

    sc_dir = Path(out_dir) / scenario.slug()
    sc_dir.mkdir(parents=True, exist_ok=True)
    atomic_write_json(sc_dir / "summary.json", summary)
    if lmss is not None:
        save_mapping([lms_from_dict(d) for d in lmss],
                     sc_dir / "mapping.json")


def _scenario_keys(scenarios: list[Scenario]) -> dict[str, str]:
    """Content key per scenario name (arch + workload + search budget).

    The scenario *name* is cosmetic and deliberately not part of the
    key: renaming a scenario must not force a re-evaluation.
    """
    from repro.campaign.keys import scenario_key
    from repro.frontend.loader import load_model

    keys = {}
    for sc in scenarios:
        arch = scenario_arch(sc)
        graph, _ = load_model(sc.model)
        keys[sc.name] = scenario_key(
            arch, graph, sc.batch, sc.iters, sc.seed
        )
    return keys


def run_sweep(
    scenarios: list[Scenario],
    out_dir: str | Path | None = None,
    workers: int | None = 1,
    resume: bool = False,
) -> list[dict]:
    """Run every scenario; ``workers`` > 1 fans out over processes.

    Returns the summaries in the order scenarios were given (results
    are deterministic per scenario, so worker count never changes
    them).  With ``out_dir`` set, also writes ``sweep.csv`` plus one
    artifact directory per scenario.

    With ``resume=True`` (requires ``out_dir``), summaries are also
    checkpointed into a campaign result store under
    ``out_dir/store/``; re-running the sweep — e.g. after appending one
    scenario or after an interruption — evaluates only the scenarios
    whose content key is not stored yet (``sweep.store_hits`` vs
    ``sweep.evaluated`` in :data:`~repro.perf.PERF`).
    """
    if not scenarios:
        raise ValueError("no scenarios to sweep")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names in sweep: {names}")
    slugs = [s.slug() for s in scenarios]
    if len(set(slugs)) != len(slugs):
        # Distinct names can collapse to one artifact directory
        # ("a b" and "a_b"); refusing beats silently clobbering.
        raise ValueError(
            f"scenario names collide after slugging: {sorted(slugs)}"
        )
    if resume and out_dir is None:
        raise ValueError("resume=True needs an out_dir to hold the store")
    if out_dir is not None:
        Path(out_dir).mkdir(parents=True, exist_ok=True)
    if workers is None:
        workers = os.cpu_count() or 1
    out_str = None if out_dir is None else str(out_dir)

    from repro.perf import PERF

    store = keys = None
    slots: dict[str, dict] = {}
    pending = list(scenarios)
    if resume:
        from repro.campaign.store import KIND_SCENARIO, ResultStore

        store = ResultStore(Path(out_dir) / "store")
        keys = _scenario_keys(scenarios)
        pending = []
        for sc in scenarios:
            rec = store.get(KIND_SCENARIO, keys[sc.name])
            if rec is not None:
                summary = dict(rec["summary"])
                # The stored summary keeps its content; the display
                # name follows the *current* scenario list.
                summary["name"] = sc.name
                slots[sc.name] = summary
                _materialize_hit(sc, summary, rec.get("lmss"), out_dir)
                PERF.add("sweep.store_hits")
            else:
                pending.append(sc)

    def checkpoint(sc: Scenario, summary: dict, lmss: list) -> None:
        slots[sc.name] = summary
        PERF.add("sweep.evaluated")
        if store is not None:
            from repro.campaign.store import KIND_SCENARIO

            store.put(KIND_SCENARIO, keys[sc.name],
                      {"summary": summary, "lmss": lmss})

    # Each result is checkpointed as soon as it is collected, so an
    # interrupted resumable sweep keeps everything already evaluated.
    tasks = [(s, out_str) for s in pending]
    if len(tasks) > 1 and (workers or 1) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
            outcomes = pool.map(_run_scenario_in_worker, tasks)
            for sc, ((summary, lmss), snapshot) in zip(pending, outcomes):
                PERF.merge(snapshot)
                checkpoint(sc, summary, lmss)
    else:
        for sc, task in zip(pending, tasks):
            summary, lmss = _run_scenario_task(task)
            checkpoint(sc, summary, lmss)
    if store is not None:
        store.close()

    summaries = [slots[s.name] for s in scenarios]
    if out_dir is not None:
        from repro.reporting import write_csv

        write_csv(
            Path(out_dir) / "sweep.csv", list(SWEEP_COLUMNS),
            sweep_rows(summaries),
        )
    return summaries


def scaled(scenario: Scenario, **overrides) -> Scenario:
    """A copy of a registered scenario with fields overridden."""
    return replace(scenario, **overrides)
