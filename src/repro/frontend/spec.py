"""Declarative model specs: DNNs as ~30 lines of JSON/YAML.

A spec describes a model as a list of layer entries whose shapes are
*inferred* — authors give kernels, channel counts and wiring, never
activation sizes.  Two macro forms keep repetitive models short:

* ``repeat`` — run a body N times, threading the activation through;
  every name defined inside is prefixed per iteration (``l0_q``,
  ``l1_q``, ...), and the loop index ``i`` is available to ``${...}``
  expressions.
* ``block`` — instantiate a named, parameterized sub-spec from the
  top-level ``blocks`` table (ResNet bottlenecks, MBConv blocks, ...).

Spec grammar (JSON shown; YAML accepted when PyYAML is installed)::

    {
      "name": "edge_cnn",
      "input": {"h": 64, "w": 64, "c": 3},
      "params": {"width": 32},
      "blocks": {
        "res": [
          {"op": "conv", "k": "$k", "kernel": 3, "name": "a"},
          {"op": "conv", "k": "$k", "kernel": 3, "name": "b"},
          {"op": "add", "inputs": ["b", "@prev_in"], "name": "out"}
        ]
      },
      "layers": [
        {"op": "conv", "k": "$width", "kernel": 3, "stride": 2, "name": "stem"},
        {"op": "repeat", "count": 3, "name": "blk",
         "block": "res", "params": {"k": "$width"}},
        {"op": "pool", "mode": "global"},
        {"op": "fc", "k": 10, "name": "head"}
      ]
    }

Wiring: an entry's ``input`` (or ``inputs`` for fan-in ops) defaults to
the previous entry's output; ``"@input"`` is the DNN input, ``"@prev"``
the running cursor, and ``"@prev_in"`` the cursor as it was when the
current block/repeat body started (handy for residuals).  Any other
string resolves innermost-scope-first against layer names, falling back to
fully-qualified node names (``"e1_out"``) for cross-block skips.

Attribute values may be ``"$param"`` references or ``"${expr}"``
arithmetic over the parameter environment (e.g. ``"${6 * c}"``).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.errors import InvalidWorkloadError
from repro.frontend.ir import GRAPH_INPUT, OpGraph, OpNode
from repro.frontend.passes import run_pipeline
from repro.frontend.report import LoweringReport
from repro.workloads.graph import DNNGraph


class SpecError(InvalidWorkloadError):
    """Malformed model spec."""


#: Entry keys that steer the executor rather than describe the op.
_CONTROL_KEYS = frozenset(
    {"op", "name", "input", "inputs", "body", "block", "params", "count"}
)

_MULTI_INPUT_OPS = frozenset({"add", "eltwise", "concat", "matmul"})


#: Binary/unary arithmetic allowed in ``${...}`` expressions.  Specs
#: may come from third parties, so evaluation is a closed AST walk —
#: no attribute access, calls, subscripts, or comprehensions.
_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_UNARY_OPS = {ast.UAdd: lambda a: +a, ast.USub: lambda a: -a}


def _eval_node(node: ast.AST, env: dict):
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return node.value
    if isinstance(node, ast.Name):
        if node.id not in env:
            raise SpecError(f"unknown spec parameter {node.id!r}")
        return env[node.id]
    if isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
        return _BIN_OPS[type(node.op)](
            _eval_node(node.left, env), _eval_node(node.right, env)
        )
    if isinstance(node, ast.UnaryOp) and type(node.op) in _UNARY_OPS:
        return _UNARY_OPS[type(node.op)](_eval_node(node.operand, env))
    raise SpecError(
        f"disallowed construct {type(node).__name__} in spec expression "
        "(only names, numbers and arithmetic are permitted)"
    )


def _eval_expr(expr: str, env: dict) -> int | float:
    try:
        tree = ast.parse(expr, mode="eval")
        value = _eval_node(tree.body, env)
    except SpecError:
        raise
    except Exception as exc:
        raise SpecError(f"bad spec expression {expr!r}: {exc}") from exc
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _resolve_value(value, env: dict):
    """Substitute ``$param`` / ``${expr}`` strings; recurse into lists."""
    if isinstance(value, str) and value.startswith("$"):
        expr = value[2:-1] if value.startswith("${") and value.endswith("}") \
            else value[1:]
        return _eval_expr(expr, env)
    if isinstance(value, list):
        return [_resolve_value(v, env) for v in value]
    return value


class _Scope:
    """One lexical scope of layer aliases, chained to its parent."""

    def __init__(self, parent: "_Scope | None" = None, entry_cursor: str = ""):
        self.parent = parent
        self.names: dict[str, str] = {}
        #: the cursor value when this scope was opened ("@prev_in")
        self.entry_cursor = entry_cursor

    def define(self, alias: str, node_name: str) -> None:
        self.names[alias] = node_name

    def resolve(self, alias: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if alias in scope.names:
                return scope.names[alias]
            scope = scope.parent
        return None


class _SpecExecutor:
    """Walk a spec's entry list, expanding macros into an OpGraph."""

    def __init__(self, data: dict):
        if not isinstance(data, dict):
            raise SpecError("spec must be a JSON object")
        try:
            name = data["name"]
            inp = data["input"]
            shape = (int(inp["h"]), int(inp.get("w", 1)), int(inp["c"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(
                "spec needs 'name' and 'input': {h, w, c}"
            ) from exc
        self.graph = OpGraph(name, shape, bits=int(data.get("bits", 8)))
        self.blocks = data.get("blocks", {})
        self.layers = data.get("layers", [])
        self.params = dict(data.get("params", {}))
        if not isinstance(self.layers, list) or not self.layers:
            raise SpecError("spec needs a non-empty 'layers' list")
        self._counter = 0
        #: name of the most recently emitted node ("@prev")
        self.cursor: str = GRAPH_INPUT

    # ------------------------------------------------------------------

    def run(self) -> OpGraph:
        root = _Scope(entry_cursor=GRAPH_INPUT)
        self._run_body(self.layers, root, self.params, prefix="")
        return self.graph

    def _run_body(self, body, scope: _Scope, env: dict, prefix: str) -> None:
        if not isinstance(body, list):
            raise SpecError(f"expected a list of entries, got {type(body)}")
        for entry in body:
            self._run_entry(entry, scope, env, prefix)

    def _run_entry(self, entry, scope, env, prefix) -> None:
        if not isinstance(entry, dict) or "op" not in entry:
            raise SpecError(f"bad spec entry {entry!r}: needs an 'op'")
        op = entry["op"]
        if op == "repeat":
            self._run_repeat(entry, scope, env, prefix)
        elif op == "block":
            self._run_block(entry, scope, env, prefix)
        else:
            self._emit(entry, scope, env, prefix)

    def _run_repeat(self, entry, scope, env, prefix) -> None:
        count = _resolve_value(entry.get("count"), env)
        if not isinstance(count, int) or count < 1:
            raise SpecError(f"repeat needs a positive 'count', got {count!r}")
        tag = entry.get("name", "r")
        for i in range(count):
            # The loop index is in scope for the repeat's own params
            # (per-iteration widths) as well as for the body.
            base_env = dict(env)
            base_env["i"] = i
            child_env = dict(base_env)
            child_env.update(
                {k: _resolve_value(v, base_env)
                 for k, v in entry.get("params", {}).items()}
            )
            child = _Scope(scope, entry_cursor=self.cursor)
            body = self._body_of(entry, env)
            self._run_body(body, child, child_env, f"{prefix}{tag}{i}_")

    def _run_block(self, entry, scope, env, prefix) -> None:
        child_env = dict(env)
        child_env.update(
            {k: _resolve_value(v, env)
             for k, v in entry.get("params", {}).items()}
        )
        tag = entry.get("name")
        if tag is None:
            self._counter += 1
            tag = f"{entry.get('block', 'blk')}{self._counter}"
        child = _Scope(scope, entry_cursor=self.cursor)
        body = self._body_of(entry, env)
        self._run_body(body, child, child_env, f"{prefix}{tag}_")

    def _body_of(self, entry, env) -> list:
        if "body" in entry:
            return entry["body"]
        ref = entry.get("block")
        if ref is None:
            raise SpecError(f"entry {entry.get('op')!r} needs 'body' or 'block'")
        ref = _resolve_value(ref, env) if isinstance(ref, str) and \
            ref.startswith("$") else ref
        if ref not in self.blocks:
            raise SpecError(
                f"unknown block {ref!r}; defined: {sorted(self.blocks)}"
            )
        return self.blocks[ref]

    # ------------------------------------------------------------------

    def _resolve_ref(self, ref: str, scope: _Scope) -> str:
        if ref == "@input":
            return GRAPH_INPUT
        if ref == "@prev":
            return self.cursor
        if ref == "@prev_in":
            return scope.entry_cursor
        resolved = scope.resolve(ref)
        if resolved is None and ref in self.graph:
            # Fall back to fully-qualified node names so skip connections
            # can reach into an already-instantiated block (U-Net style).
            resolved = ref
        if resolved is None:
            raise SpecError(f"unknown layer reference {ref!r}")
        return resolved

    def _emit(self, entry, scope, env, prefix) -> None:
        op = entry["op"]
        refs = entry.get("inputs", entry.get("input"))
        if refs is None:
            refs = ["@prev"]
        elif isinstance(refs, str):
            refs = [refs]
        if op in _MULTI_INPUT_OPS and len(refs) < 2:
            # A fan-in op quietly defaulting to one operand would drop
            # its residual/concat traffic from the cost model.
            raise SpecError(
                f"{op!r} entry needs an explicit 'inputs' list with two "
                "or more operands"
            )
        inputs = [self._resolve_ref(r, scope) for r in refs]
        alias = entry.get("name")
        if alias is None:
            self._counter += 1
            alias = f"{op}{self._counter}"
        node_name = f"{prefix}{alias}"
        attrs = {
            key: _resolve_value(value, env)
            for key, value in entry.items()
            if key not in _CONTROL_KEYS
        }
        self.graph.add(OpNode(node_name, op, inputs, attrs))
        scope.define(alias, node_name)
        self.cursor = node_name


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def parse_spec(data: dict) -> OpGraph:
    """Expand a spec dict into an (unlowered) :class:`OpGraph`."""
    return _SpecExecutor(data).run()


def spec_to_graph(data: dict) -> tuple[DNNGraph, LoweringReport]:
    """Expand, lower and validate a spec into a :class:`DNNGraph`."""
    return run_pipeline(parse_spec(data))


def load_spec(path: str | Path) -> dict:
    """Read a spec dict from a ``.json`` / ``.yaml`` / ``.yml`` file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env dependent
            raise SpecError(
                f"{path.name}: YAML specs need the optional PyYAML package"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SpecError(f"{path.name}: invalid YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path.name}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise SpecError(f"{path.name}: spec must be a mapping")
    return data


def import_spec(path: str | Path) -> tuple[DNNGraph, LoweringReport]:
    """Load a spec file and produce a validated :class:`DNNGraph`."""
    return spec_to_graph(load_spec(path))
