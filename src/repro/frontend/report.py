"""Lowering report: what the frontend did to a model on its way in.

Imported models rarely map 1:1 onto the evaluator's layer vocabulary.
The pass pipeline fuses activations into their producers, folds pure
shape plumbing away, and approximates anything it does not understand
as a ``VECTOR`` / ``ELTWISE`` layer.  Every such decision is recorded
here so an import is *loud*: the CLI prints the report, and callers can
assert on it in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Entry kinds, roughly ordered from benign to lossy.
KIND_FUSED = "fused"          # activation/bias folded into its producer
KIND_FOLDED = "folded"        # pure shape plumbing removed (reshape, cast)
KIND_LOWERED = "lowered"      # known op rewritten into evaluator vocabulary
KIND_APPROXIMATED = "approximated"  # unknown op modeled as VECTOR/ELTWISE


@dataclass(frozen=True)
class ReportEntry:
    kind: str
    node: str
    op: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.node} ({self.op}): {self.detail}"


@dataclass
class LoweringReport:
    """Accumulated record of one model's trip through the frontend."""

    model: str = ""
    entries: list[ReportEntry] = field(default_factory=list)

    def add(self, kind: str, node: str, op: str, detail: str) -> None:
        self.entries.append(ReportEntry(kind, node, op, detail))

    def by_kind(self, kind: str) -> list[ReportEntry]:
        return [e for e in self.entries if e.kind == kind]

    @property
    def fused(self) -> list[ReportEntry]:
        return self.by_kind(KIND_FUSED)

    @property
    def folded(self) -> list[ReportEntry]:
        return self.by_kind(KIND_FOLDED)

    @property
    def lowered(self) -> list[ReportEntry]:
        return self.by_kind(KIND_LOWERED)

    @property
    def approximated(self) -> list[ReportEntry]:
        return self.by_kind(KIND_APPROXIMATED)

    @property
    def is_exact(self) -> bool:
        """True when nothing had to be approximated."""
        return not self.approximated

    def summary(self) -> str:
        counts = {}
        for e in self.entries:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        parts = [f"{n} {k}" for k, n in sorted(counts.items())]
        return ", ".join(parts) if parts else "clean import"

    def describe(self) -> str:
        """Multi-line report; approximations are called out loudly."""
        lines = [f"frontend report for {self.model!r}: {self.summary()}"]
        for e in self.entries:
            if e.kind != KIND_APPROXIMATED:
                lines.append(f"  {e}")
        approx = self.approximated
        if approx:
            lines.append(
                f"  WARNING: {len(approx)} op(s) approximated — delay/energy "
                "for these layers reflects the substitute, not the real op:"
            )
            for e in approx:
                lines.append(f"    {e}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
