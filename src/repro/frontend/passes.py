"""Lowering passes: from imported op graphs to evaluator layers.

The pipeline (:func:`run_pipeline`) is a fixed sequence of small,
individually-testable passes over an :class:`~repro.frontend.ir.OpGraph`:

1. :func:`fold_structural` — delete pure shape plumbing (reshape,
   transpose, dropout, ...); the evaluator bills data movement per
   layer, and these ops move nothing the adjacent layers don't already
   account for.
2. :func:`lower_unknown` — approximate ops outside the supported
   vocabulary as generic ``vector`` / ``eltwise`` nodes, **loudly**
   (the report marks them ``approximated``).
3. :func:`infer_shapes` — constant-fold every activation shape from
   the graph input forward (the spec frontend's "shape inference").
4. :func:`fuse_activations` — fold unary activations / bias adds /
   batch norms into their PE-array producers, the way the template's
   post-processing units apply them on the output path for free.
5. :func:`insert_input_adapters` — give nodes that mix the graph input
   with layer operands (residuals against the raw input) an explicit
   pass-through layer, keeping ``DNNGraph`` fan-in bookkeeping exact.
6. :func:`canonicalize_vector_ops` — rewrite surviving activation-family
   ops into explicit ``vector`` nodes (real vector-unit work: softmax,
   layernorm, an activation reading the graph input, ...).
7. :func:`lower_to_graph` — emit a validated
   :class:`~repro.workloads.graph.DNNGraph`.
"""

from __future__ import annotations

from repro.errors import InvalidWorkloadError
from repro.frontend.ir import (
    ACTIVATION_OPS,
    GRAPH_INPUT,
    MEMORY_OPS,
    PE_OPS,
    STRUCTURAL_OPS,
    SUPPORTED_OPS,
    VECTOR_OPS,
    OpGraph,
    OpNode,
)
from repro.frontend.report import (
    KIND_APPROXIMATED,
    KIND_FOLDED,
    KIND_FUSED,
    KIND_LOWERED,
    LoweringReport,
)
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType
from repro.workloads.models.common import conv_out

#: Ops fused into a PE-array producer when one is directly upstream.
_FUSABLE_OPS = ACTIVATION_OPS | {"bias", "batchnorm"}


def _pair(value, default: int = 1) -> tuple[int, int]:
    if value is None:
        return default, default
    if isinstance(value, (list, tuple)):
        if len(value) != 2:
            raise InvalidWorkloadError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _padding(node: OpNode, kr: int, ks: int, default) -> tuple[int, int]:
    pad = node.attr("pad", default)
    if pad == "same":
        return kr // 2, ks // 2
    return _pair(pad, 0)


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------


def fold_structural(g: OpGraph, report: LoweringReport) -> None:
    """Remove reshape / transpose / dropout / identity plumbing."""
    for name in g.topological_order():
        node = g.nodes.get(name)
        if node is None or node.op not in STRUCTURAL_OPS:
            continue
        if not node.inputs:
            # A constant with no data input feeds nothing we model.
            consumers = g.consumers()[name]
            if consumers:
                raise InvalidWorkloadError(
                    f"node {name!r}: constant feeding {consumers} cannot "
                    "be folded (frontends must resolve constant operands)"
                )
            del g.nodes[name]
            report.add(KIND_FOLDED, name, node.op, "dead constant removed")
            continue
        g.remove(name)  # rewires consumers to the node's sole input
        report.add(
            KIND_FOLDED, name, node.op,
            "pure shape plumbing; consumers rewired to its input",
        )


def lower_unknown(g: OpGraph, report: LoweringReport) -> None:
    """Approximate unsupported ops as ``eltwise`` (n-ary) or ``vector``."""
    for node in list(g.nodes.values()):
        if node.op in SUPPORTED_OPS:
            continue
        original = node.op
        if len(node.inputs) >= 2:
            node.op = "eltwise"
            detail = (
                f"unsupported op modeled as ELTWISE over "
                f"{len(node.inputs)} operands"
            )
        else:
            node.op = "vector"
            detail = "unsupported op modeled as a VECTOR pass"
        node.attrs.setdefault("origin", original)
        report.add(KIND_APPROXIMATED, node.name, original, detail)


def infer_shapes(g: OpGraph, report: LoweringReport | None = None) -> None:
    """Forward-propagate ``(h, w, k)`` shapes from the graph input."""
    for name in g.topological_order():
        node = g.nodes[name]
        node.shape = _infer_node_shape(g, node, report)


def _operand_shapes(g: OpGraph, node: OpNode) -> list[tuple[int, int, int]]:
    shapes = []
    for src in node.inputs or [GRAPH_INPUT]:
        if src == GRAPH_INPUT:
            shapes.append(g.input_shape)
        else:
            shape = g.nodes[src].shape
            if shape is None:
                raise InvalidWorkloadError(
                    f"node {node.name!r}: producer {src!r} not yet shaped"
                )
            shapes.append(shape)
    return shapes


def _infer_node_shape(
    g: OpGraph, node: OpNode, report: LoweringReport | None = None
) -> tuple[int, int, int]:
    shapes = _operand_shapes(g, node)
    h, w, k = shapes[0]
    op = node.op
    if op in ("conv", "dwconv"):
        in_k = sum(s[2] for s in shapes)  # concat fan-in sums channels
        kr, ks = _pair(node.attr("kernel", 1))
        stride = int(node.attr("stride", 1))
        ph, pw = _padding(node, kr, ks, "same")
        out_k = int(node.attr("k", in_k if op == "dwconv" else 0))
        if out_k < 1:
            raise InvalidWorkloadError(
                f"node {node.name!r}: conv needs a positive 'k'"
            )
        return (
            conv_out(h, kr, stride, ph),
            conv_out(w, ks, stride, pw),
            out_k,
        )
    if op == "fc":
        out_k = int(node.attr("k", 0))
        if out_k < 1:
            raise InvalidWorkloadError(
                f"node {node.name!r}: fc needs a positive 'k'"
            )
        return (1, 1, out_k)
    if op == "matmul":
        if len(shapes) != 2:
            raise InvalidWorkloadError(
                f"node {node.name!r}: matmul needs exactly two inputs"
            )
        (lh, lw, lk), (rh, rw, rk) = shapes
        transposed = bool(node.attr("transpose_b", False))
        # (lk == rh) contracts plainly; (lk == rk) contracts against
        # B-transposed.  When the declared orientation cannot contract
        # but the other one can, flip it: importers fold explicit
        # Transpose plumbing away, so orientation lives in the shapes.
        fits_plain, fits_t = lk == rh, lk == rk
        if (transposed and not fits_t and fits_plain) or (
            not transposed and not fits_plain and fits_t
        ):
            transposed = not transposed
            node.attrs["transpose_b"] = transposed
            if report is not None:
                report.add(
                    KIND_LOWERED, node.name, "matmul",
                    "operand orientation recovered from shapes "
                    f"(transpose_b={transposed})",
                )
        if not (fits_t if transposed else fits_plain):
            raise InvalidWorkloadError(
                f"node {node.name!r}: matmul contraction mismatch "
                f"{shapes[0]} x {shapes[1]}"
            )
        node.attrs["in_c"] = lk
        return (lh, 1, rh if transposed else rk)
    if op == "pool":
        if node.attr("mode", "max") == "global":
            return (1, 1, k)
        kr, ks = _pair(node.attr("kernel", 2))
        stride = int(node.attr("stride", kr))
        ph, pw = _padding(node, kr, ks, 0)
        return (conv_out(h, kr, stride, ph), conv_out(w, ks, stride, pw), k)
    if op in ("add", "eltwise"):
        # Spatial broadcast is allowed (SE-style gating multiplies a
        # [h, w, k] map by a [1, 1, k] gate); channels must agree, so
        # the DNNGraph fan-in bookkeeping stays exact.
        out_h, out_w = h, w
        for s in shapes[1:]:
            compatible = s[2] == k and all(
                s[axis] == shapes[0][axis]
                or 1 in (s[axis], shapes[0][axis])
                for axis in (0, 1)
            )
            if not compatible and node.attr("origin"):
                # An op lower_unknown approximated as ELTWISE turns out
                # not to be elementwise-shaped: degrade to a unary
                # vector pass over the first operand instead of
                # aborting the import over an op the user never wrote.
                node.op = "vector"
                node.inputs = node.inputs[:1]
                if report is not None:
                    report.add(
                        KIND_APPROXIMATED, node.name,
                        str(node.attr("origin")),
                        f"operands {shapes} are not elementwise-"
                        "compatible; re-approximated as a VECTOR pass "
                        "over the first operand",
                    )
                return shapes[0]
            if not compatible:
                raise InvalidWorkloadError(
                    f"node {node.name!r}: elementwise operands disagree "
                    f"{shapes[0]} vs {s}"
                )
            out_h = max(out_h, s[0])
            out_w = max(out_w, s[1])
        return (out_h, out_w, k)
    if op == "concat":
        for s in shapes[1:]:
            if (s[0], s[1]) != (h, w):
                raise InvalidWorkloadError(
                    f"node {node.name!r}: concat spatial mismatch "
                    f"{(h, w)} vs {(s[0], s[1])}"
                )
        return (h, w, sum(s[2] for s in shapes))
    if op == "upsample":
        scale = int(node.attr("scale", 2))
        return (h * scale, w * scale, k)
    # vector family, activations, remaining structural ops: shape
    # preserved, with optional explicit spatial overrides (KV-cache
    # broadcast, decoder-side shape adaptation).
    return (
        int(node.attr("out_h", h)),
        int(node.attr("out_w", w)),
        k,
    )


def fuse_activations(g: OpGraph, report: LoweringReport) -> None:
    """Fold activations / bias / BN into a directly-upstream PE op."""
    for name in g.topological_order():
        node = g.nodes.get(name)
        if node is None or node.op not in _FUSABLE_OPS:
            continue
        if len(node.inputs) != 1 or node.inputs[0] == GRAPH_INPUT:
            continue
        producer = g.nodes[node.inputs[0]]
        if producer.op not in PE_OPS:
            continue
        if node.shape is not None and producer.shape is not None \
                and node.shape != producer.shape:
            continue  # shape-changing "activation": keep it explicit
        g.remove(name, rewire_to=producer.name)
        producer.attrs.setdefault("fused", []).append(node.op)
        report.add(
            KIND_FUSED, name, node.op,
            f"applied on the output path of {producer.name!r}",
        )


def insert_input_adapters(g: OpGraph, report: LoweringReport) -> None:
    """Give mixed-operand nodes an explicit layer for the graph input.

    ``DNNGraph`` models a layer as reading *either* the DNN input or
    producer layers.  A node combining both (a residual against the
    raw input) gets a pass-through vector layer inserted on the input
    side so the fan-in bookkeeping stays exact.
    """
    adapter: OpNode | None = None
    for node in list(g.nodes.values()):
        if GRAPH_INPUT not in node.inputs:
            continue
        if all(src == GRAPH_INPUT for src in node.inputs):
            continue
        if adapter is None:
            name = "input_adapter"
            n = 1
            while name in g.nodes:
                n += 1
                name = f"input_adapter_{n}"
            adapter = OpNode(name, "vector", [GRAPH_INPUT],
                             {"origin": "input"}, shape=g.input_shape)
            # Prepend so insertion order stays topological.
            g.nodes = {name: adapter, **g.nodes}
            # The adapter is an extra billed VECTOR layer the real
            # model doesn't have — an approximation, reported loudly.
            report.add(
                KIND_APPROXIMATED, name, "input",
                "pass-through layer inserted for the DNN input feeding "
                "a fan-in op; its traffic is billed",
            )
        node.inputs = [
            adapter.name if src == GRAPH_INPUT else src
            for src in node.inputs
        ]


def canonicalize_vector_ops(g: OpGraph, report: LoweringReport) -> None:
    """Rewrite surviving activation-family ops to ``vector`` nodes."""
    for node in g.nodes.values():
        if node.op in ("vector", *MEMORY_OPS, *PE_OPS):
            continue
        original = node.op
        if original in ACTIVATION_OPS | VECTOR_OPS | {"bias"}:
            node.op = "vector"
            node.attrs.setdefault("origin", original)
            report.add(
                KIND_LOWERED, node.name, original,
                "standalone vector-unit layer",
            )


# ----------------------------------------------------------------------
# DNNGraph emission
# ----------------------------------------------------------------------


def lower_to_graph(g: OpGraph, report: LoweringReport) -> DNNGraph:
    """Emit a validated :class:`DNNGraph` from a fully-lowered op graph."""
    graph = DNNGraph(g.name)
    for name in g.topological_order():
        node = g.nodes[name]
        if node.shape is None:
            raise InvalidWorkloadError(
                f"node {name!r} has no shape (run infer_shapes first)"
            )
        layer, inputs, combine, from_input = _emit_layer(g, node)
        graph.add_layer(
            layer, inputs=inputs, combine=combine, from_graph_input=from_input
        )
    graph.validate()
    return graph


def _emit_layer(g: OpGraph, node: OpNode):
    shapes = _operand_shapes(g, node)
    producers = [s for s in (node.inputs or [GRAPH_INPUT]) if s != GRAPH_INPUT]
    from_input = len(producers) < len(node.inputs or [GRAPH_INPUT])
    if from_input and producers:
        raise InvalidWorkloadError(
            f"node {node.name!r} mixes graph-input and layer operands; "
            "route the graph input through an explicit layer first"
        )
    h, w, k = node.shape
    in_h, in_w, in_k = shapes[0]
    op = node.op
    common = dict(name=node.name, out_h=h, out_w=w, out_k=k, bits=g.bits)
    if op in ("conv", "dwconv"):
        total_c = sum(s[2] for s in shapes)
        kr, ks = _pair(node.attr("kernel", 1))
        stride = int(node.attr("stride", 1))
        ph, pw = _padding(node, kr, ks, "same")
        groups = int(node.attr("groups", total_c if op == "dwconv" else 1))
        kind = LayerType.DWCONV if groups == total_c == k else LayerType.CONV
        layer = Layer(
            kind=kind, in_c=total_c, kernel_r=kr, kernel_s=ks,
            stride=stride, pad_h=ph, pad_w=pw, groups=groups, **common,
        )
        return layer, producers, "concat", from_input
    if op == "fc":
        if in_h * in_w == 1:
            layer = Layer(kind=LayerType.FC, in_c=in_k, **common)
        else:
            # FC over a spatial ifmap: express the flatten as a conv
            # whose kernel covers the whole frame — identical weights
            # and MACs, and the channel bookkeeping stays consistent.
            layer = Layer(
                kind=LayerType.CONV, in_c=in_k,
                kernel_r=in_h, kernel_s=in_w, **common,
            )
        return layer, producers, "concat", from_input
    if op == "matmul":
        in_c = int(node.attr("in_c", in_k))
        layer = Layer(kind=LayerType.MATMUL, in_c=in_c, **common)
        return layer, producers, "add", from_input
    if op == "pool":
        mode = node.attr("mode", "max")
        if mode == "global":
            kr, ks, stride, ph, pw = in_h, in_w, max(in_h, 1), 0, 0
        else:
            kr, ks = _pair(node.attr("kernel", 2))
            stride = int(node.attr("stride", kr))
            ph, pw = _padding(node, kr, ks, 0)
        layer = Layer(
            kind=LayerType.POOL, in_c=in_k, kernel_r=kr, kernel_s=ks,
            stride=stride, pad_h=ph, pad_w=pw, **common,
        )
        return layer, producers, "concat", from_input
    if op in ("add", "eltwise"):
        layer = Layer(kind=LayerType.ELTWISE, in_c=k, **common)
        return layer, producers, "add", from_input
    if op == "concat":
        layer = Layer(kind=LayerType.VECTOR, in_c=k, **common)
        return layer, producers, "concat", from_input
    if op == "vector":
        layer = Layer(kind=LayerType.VECTOR, in_c=k, **common)
        return layer, producers, "concat", from_input
    raise InvalidWorkloadError(
        f"node {node.name!r}: op {op!r} survived lowering"
    )


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------


def run_pipeline(
    g: OpGraph, report: LoweringReport | None = None
) -> tuple[DNNGraph, LoweringReport]:
    """Run every pass in order and emit the final :class:`DNNGraph`."""
    report = report if report is not None else LoweringReport(model=g.name)
    report.model = report.model or g.name
    fold_structural(g, report)
    lower_unknown(g, report)
    infer_shapes(g, report=report)
    fuse_activations(g, report)
    insert_input_adapters(g, report)
    canonicalize_vector_ops(g, report)
    graph = lower_to_graph(g, report)
    return graph, report
