"""repro — a from-scratch reproduction of Gemini (HPCA 2024).

Gemini is a mapping and architecture co-exploration framework for
large-scale DNN chiplet accelerators.  This package re-implements:

* the layer-centric LP spatial-mapping encoding and its parser
  (:mod:`repro.core`),
* the SA-based mapping engine with the paper's five operators,
* the configurable chiplet hardware template with mesh / folded-torus
  NoCs, energy/area models and presets (:mod:`repro.arch`),
* the Evaluator (traffic, delay, energy — :mod:`repro.evalmodel`),
* the Monetary Cost Evaluator (:mod:`repro.cost`),
* the DSE driver with Table-I candidate grids and multi-TOPS chiplet
  reuse (:mod:`repro.dse`),
* the Tangram T-Map baseline (:mod:`repro.baselines`) and the DNN model
  zoo (:mod:`repro.workloads`).

Quickstart::

    from repro import MappingEngine, g_arch, s_arch
    from repro.baselines import tangram_map
    from repro.workloads.models import build

    graph = build("TF")
    gemini = MappingEngine(g_arch()).map(graph, batch=64)
    baseline = tangram_map(graph, s_arch(), batch=64)
    print(baseline.delay / gemini.delay, "x speedup")
"""

from repro.arch import (
    ArchConfig,
    FabricSpec,
    FoldedTorusTopology,
    MeshTopology,
    build_topology,
    g_arch,
    g_arch_120,
    s_arch,
    t_arch,
)
from repro.core import (
    MappingEngine,
    MappingEngineSettings,
    MappingResult,
    SASettings,
)
from repro.cost import DEFAULT_MC, MCEvaluator
from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.evalmodel import Evaluator

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "DEFAULT_MC",
    "DesignSpaceExplorer",
    "DseGrid",
    "Evaluator",
    "FabricSpec",
    "FoldedTorusTopology",
    "MCEvaluator",
    "MappingEngine",
    "MappingEngineSettings",
    "MappingResult",
    "MeshTopology",
    "SASettings",
    "Workload",
    "build_topology",
    "enumerate_candidates",
    "g_arch",
    "g_arch_120",
    "s_arch",
    "t_arch",
]
