"""Persistence: JSON round-trips for graphs, architectures, mappings."""

from repro.io.serialization import (
    GRAPH_FORMAT,
    SerializationError,
    arch_from_dict,
    arch_to_dict,
    candidate_result_summary,
    graph_from_dict,
    graph_to_dict,
    lms_from_dict,
    lms_to_dict,
    load_arch,
    load_graph,
    load_mapping,
    mapping_result_summary,
    save_arch,
    save_graph,
    save_mapping,
)

__all__ = [
    "GRAPH_FORMAT",
    "SerializationError",
    "arch_from_dict",
    "arch_to_dict",
    "candidate_result_summary",
    "graph_from_dict",
    "graph_to_dict",
    "lms_from_dict",
    "lms_to_dict",
    "load_arch",
    "load_graph",
    "load_mapping",
    "mapping_result_summary",
    "save_arch",
    "save_graph",
    "save_mapping",
]
