"""Persistence: JSON round-trips for architectures, mappings, results."""

from repro.io.serialization import (
    SerializationError,
    arch_from_dict,
    arch_to_dict,
    candidate_result_summary,
    lms_from_dict,
    lms_to_dict,
    load_arch,
    load_mapping,
    mapping_result_summary,
    save_arch,
    save_mapping,
)

__all__ = [
    "SerializationError",
    "arch_from_dict",
    "arch_to_dict",
    "candidate_result_summary",
    "lms_from_dict",
    "lms_to_dict",
    "load_arch",
    "load_mapping",
    "mapping_result_summary",
    "save_arch",
    "save_mapping",
]
