"""Crash-safe file writes: write-to-temp + ``os.replace``.

Every file the CLI and the campaign store emit (summaries, reports,
sweep tables, checkpoints) goes through these helpers so a killed run
can never leave a truncated artifact behind: readers observe either the
previous complete file or the new complete file, nothing in between.

The module deliberately has no intra-package imports — :mod:`repro.perf`
and :mod:`repro.io.serialization` both build on it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path``'s contents with ``text``.

    The temp file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX).
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: str | Path,
    obj,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> Path:
    """Atomically serialize ``obj`` as JSON into ``path``."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys)
    if not text.endswith("\n"):
        text += "\n"
    return atomic_write_text(path, text)
