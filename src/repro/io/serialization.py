"""JSON (de)serialization of architectures, mappings and DSE results.

The paper's artifact persists its DSE winner (``best_arch.txt``) and the
comparison rows (``compare.csv``); this module provides the equivalent:
round-trippable dictionaries for :class:`ArchConfig` and
:class:`LayerGroupMapping`, plus flat summaries of evaluation results
for CSV/JSON export.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.arch.params import ArchConfig
from repro.core.encoding import (
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
)
from repro.errors import ReproError
from repro.fabric.spec import (
    DEFAULT_FABRIC,
    fabric_from_dict,
    fabric_to_dict,
)
from repro.io.atomic import atomic_write_json
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


class SerializationError(ReproError):
    """Malformed persisted data."""


#: Top-level "format" marker of serialized DNN graphs.
GRAPH_FORMAT = "dnn-graph"


# ----------------------------------------------------------------------
# ArchConfig
# ----------------------------------------------------------------------

_ARCH_FIELDS = (
    "cores_x", "cores_y", "xcut", "ycut", "dram_bw", "noc_bw", "d2d_bw",
    "glb_bytes", "macs_per_core", "frequency", "glb_bytes_per_cycle",
    "vector_lanes", "logic_overhead", "name",
)


def arch_to_dict(arch: ArchConfig) -> dict:
    data = {f: getattr(arch, f) for f in _ARCH_FIELDS}
    # The default fabric (mesh + XY) is deliberately omitted: records
    # written before the fabric field existed stay loadable *and*
    # byte-identical to freshly serialized default-fabric archs, so
    # their content digests keep matching.
    if arch.fabric != DEFAULT_FABRIC:
        data["fabric"] = fabric_to_dict(arch.fabric)
    return data


def arch_from_dict(data: dict) -> ArchConfig:
    try:
        kwargs = {f: data[f] for f in _ARCH_FIELDS if f in data}
        if "fabric" in data:
            kwargs["fabric"] = fabric_from_dict(data["fabric"])
        return ArchConfig(**kwargs)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad architecture record: {exc}") from exc


def save_arch(arch: ArchConfig, path: str | Path) -> None:
    atomic_write_json(path, arch_to_dict(arch))


def load_arch(path: str | Path) -> ArchConfig:
    return arch_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# DNNGraph
# ----------------------------------------------------------------------

_LAYER_FIELDS = (
    "out_h", "out_w", "out_k", "in_c", "kernel_r", "kernel_s",
    "stride", "pad_h", "pad_w", "groups", "bits",
)


def graph_to_dict(graph: DNNGraph) -> dict:
    """Serialize a :class:`DNNGraph` (layers + typed edges) to a dict."""
    layers = []
    for layer in graph.layers():
        rec = {"name": layer.name, "kind": layer.kind.value}
        rec.update({f: getattr(layer, f) for f in _LAYER_FIELDS})
        rec["inputs"] = graph.predecessors(layer.name)
        rec["combine"] = graph.combine_mode(layer.name)
        rec["from_graph_input"] = graph.reads_graph_input(layer.name)
        layers.append(rec)
    return {"format": GRAPH_FORMAT, "name": graph.name, "layers": layers}


def graph_from_dict(data: dict) -> DNNGraph:
    """Rebuild a validated :class:`DNNGraph` from :func:`graph_to_dict`."""
    fmt = data.get("format")
    if fmt != GRAPH_FORMAT:
        raise SerializationError(f"not a serialized graph (format={fmt!r})")
    try:
        graph = DNNGraph(data["name"])
        for rec in data["layers"]:
            layer = Layer(
                name=rec["name"],
                kind=LayerType(rec["kind"]),
                **{f: rec[f] for f in _LAYER_FIELDS if f in rec},
            )
            graph.add_layer(
                layer,
                inputs=list(rec.get("inputs", [])),
                combine=rec.get("combine", "concat"),
                from_graph_input=bool(rec.get("from_graph_input", False)),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad graph record: {exc}") from exc
    graph.validate()
    return graph


def save_graph(graph: DNNGraph, path: str | Path) -> None:
    atomic_write_json(path, graph_to_dict(graph))


def load_graph(path: str | Path) -> DNNGraph:
    return graph_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# LayerGroupMapping
# ----------------------------------------------------------------------


def lms_to_dict(lms: LayerGroupMapping) -> dict:
    return {
        "layers": list(lms.group.layers),
        "batch_unit": lms.group.batch_unit,
        "schemes": {
            name: {
                "part": list(s.part.as_tuple()),
                "core_group": list(s.core_group),
                "fd": list(s.fd.as_tuple()),
            }
            for name, s in lms.schemes.items()
        },
    }


def lms_from_dict(data: dict) -> LayerGroupMapping:
    try:
        group = LayerGroup(tuple(data["layers"]), data["batch_unit"])
        schemes = {}
        for name, rec in data["schemes"].items():
            schemes[name] = MappingScheme(
                part=Partition(*rec["part"]),
                core_group=tuple(rec["core_group"]),
                fd=FlowOfData(*rec["fd"]),
            )
        return LayerGroupMapping(group, schemes)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad mapping record: {exc}") from exc


def save_mapping(lmss: list[LayerGroupMapping], path: str | Path) -> None:
    atomic_write_json(path, [lms_to_dict(l) for l in lmss])


def load_mapping(path: str | Path) -> list[LayerGroupMapping]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise SerializationError("mapping file must hold a list of groups")
    return [lms_from_dict(d) for d in data]


# ----------------------------------------------------------------------
# MCReport / CandidateResult (campaign store records)
# ----------------------------------------------------------------------


def mc_report_to_dict(mc) -> dict:
    return {
        "silicon": mc.silicon,
        "dram": mc.dram,
        "packaging": mc.packaging,
        "die_areas_mm2": list(mc.die_areas_mm2),
    }


def mc_report_from_dict(data: dict):
    from repro.cost.mc import MCReport

    try:
        return MCReport(
            silicon=data["silicon"],
            dram=data["dram"],
            packaging=data["packaging"],
            die_areas_mm2=tuple(data["die_areas_mm2"]),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad MC record: {exc}") from exc


def candidate_result_to_dict(result) -> dict:
    """Full round-trippable record of a DSE :class:`CandidateResult`.

    JSON floats round-trip exactly (``repr`` semantics), so a result
    read back from the store is bit-identical to the freshly computed
    one — the property campaign resume relies on.
    """
    return {
        "arch": arch_to_dict(result.arch),
        "mc": mc_report_to_dict(result.mc),
        "energy": result.energy,
        "delay": result.delay,
        "score": result.score,
        "per_workload": {
            name: list(pair) for name, pair in result.per_workload.items()
        },
        "wall_time_s": result.wall_time_s,
        "mappings": result.mappings,
        "iters_to_best": result.iters_to_best,
        "warm_started": result.warm_started,
        "restart_times": {
            name: list(ts) for name, ts in result.restart_times.items()
        },
        "operator_uses": {
            name: dict(uses) for name, uses in result.operator_uses.items()
        },
        "sa_diag": result.sa_diag,
        # Retry provenance (wall-clock-like: outside the content key
        # and the export rows, so retried and clean evaluations stay
        # byte-identical where it matters).
        "attempts": result.attempts,
    }


def candidate_result_from_dict(data: dict):
    from repro.dse.explorer import CandidateResult

    try:
        return CandidateResult(
            arch=arch_from_dict(data["arch"]),
            mc=mc_report_from_dict(data["mc"]),
            energy=data["energy"],
            delay=data["delay"],
            score=data["score"],
            per_workload={
                name: tuple(pair)
                for name, pair in data["per_workload"].items()
            },
            wall_time_s=data.get("wall_time_s", 0.0),
            mappings=data.get("mappings", {}),
            iters_to_best=data.get("iters_to_best", {}),
            warm_started=data.get("warm_started", False),
            restart_times={
                name: list(ts)
                for name, ts in data.get("restart_times", {}).items()
            },
            # Both fields post-date the first stored campaigns; records
            # written before this code load with empty defaults.
            operator_uses={
                name: dict(uses)
                for name, uses in data.get("operator_uses", {}).items()
            },
            sa_diag=data.get("sa_diag", {}),
            attempts=data.get("attempts", 1),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad candidate record: {exc}") from exc


# ----------------------------------------------------------------------
# Result summaries
# ----------------------------------------------------------------------


def mapping_result_summary(result) -> dict:
    """Flat summary of a :class:`MappingResult` for CSV/JSON export."""
    from repro.fabric.spec import format_fabric

    e = result.evaluation.energy
    return {
        "arch": result.arch.paper_tuple(),
        "fabric": format_fabric(result.arch.fabric),
        "delay_s": result.delay,
        "energy_j": result.energy,
        "edp": result.edp,
        "energy_intra_j": e.intra,
        "energy_noc_j": e.noc,
        "energy_d2d_j": e.d2d,
        "energy_dram_j": e.dram,
        "n_groups": len(result.groups),
        "max_group_depth": max(len(g) for g in result.groups),
    }


def candidate_result_summary(result) -> dict:
    """Flat summary of a DSE :class:`CandidateResult` (result.csv row)."""
    from repro.fabric.spec import format_fabric

    return {
        "arch": result.arch.paper_tuple(),
        "fabric": format_fabric(result.arch.fabric),
        "chiplets": result.arch.n_chiplets,
        "cores": result.arch.n_cores,
        "mc_usd": result.mc.total,
        "energy_j": result.energy,
        "delay_s": result.delay,
        "score": result.score,
    }
