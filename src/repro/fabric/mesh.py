"""Mesh topology of the scalable hardware template (Sec III, Fig 2).

Computing cores form an ``X x Y`` mesh of routers.  ``XCut x YCut``
chiplet divisions partition the mesh into equal rectangles; every mesh
link crossing a division boundary is a D2D link (lower bandwidth, higher
energy).  IO chiplets sit on the left and right edges: each DRAM die
(one per 32 GB/s unit) attaches to an edge router through an IO link,
which is itself a D2D link whenever the accelerator is multi-chiplet
(the IO chiplet is then a separate die).

:class:`GridTopology` holds the dimension-ordered routing shared by
every 2-D fabric: the spec's policy picks the order (``xy``, ``yx``,
or per-source ``dimension-reversal``), and per-dimension wrap flags
(set by the folded torus) make each dimension's walk wrap-aware.
"""

from __future__ import annotations

from repro.fabric.base import BaseTopology, NodeId


class GridTopology(BaseTopology):
    """Dimension-ordered routing over an X x Y router grid."""

    #: Wraparound per dimension; the folded torus flips these on.
    _wrap_x = False
    _wrap_y = False

    def _dim_order(self, a: NodeId, b: NodeId) -> str:
        """Dimension traversal order for a packet from ``a`` to ``b``.

        ``dimension-reversal`` alternates XY/YX by source-router parity
        (O1TURN-style: the two dimension orders split the load; with one
        virtual channel per order the combination stays deadlock-free).
        """
        routing = self.spec.routing
        if routing == "yx":
            return "yx"
        if routing == "dimension-reversal":
            return "xy" if (a[1] + a[2]) % 2 == 0 else "yx"
        return "xy"

    @staticmethod
    def _axis_step(c: int, t: int, size: int, wrap: bool) -> int:
        """Step direction (+-1) from coordinate c toward t on one axis."""
        if not wrap:
            return 1 if t > c else -1
        forward = (t - c) % size
        backward = (c - t) % size
        return 1 if forward <= backward else -1

    def _router_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """Router-level dimension-ordered path from a to b, inclusive."""
        (_, x, y), (_, tx, ty) = a, b
        nx, ny = self.arch.cores_x, self.arch.cores_y
        path = [a]
        for dim in self._dim_order(a, b):
            if dim == "x":
                while x != tx:
                    x = (x + self._axis_step(x, tx, nx, self._wrap_x)) % nx
                    path.append(("core", x, y))
            else:
                while y != ty:
                    y = (y + self._axis_step(y, ty, ny, self._wrap_y)) % ny
                    path.append(("core", x, y))
        return path


class MeshTopology(GridTopology):
    """The template's default mesh interconnect."""

    kind = "mesh"

    def _mesh_neighbors(self, x: int, y: int):
        if x + 1 < self.arch.cores_x:
            yield (x + 1, y)
        if y + 1 < self.arch.cores_y:
            yield (x, y + 1)

    def _build_links(self) -> None:
        arch = self.arch
        for y in range(arch.cores_y):
            for x in range(arch.cores_x):
                for nx, ny in self._mesh_neighbors(x, y):
                    d2d = self._crosses_cut((x, y), (nx, ny))
                    bw = arch.d2d_bw if d2d else arch.noc_bw
                    a, b = ("core", x, y), ("core", nx, ny)
                    self._add_link(a, b, bw, d2d)
                    self._add_link(b, a, bw, d2d)
        io_is_d2d = not arch.is_monolithic
        io_bw = arch.d2d_bw if io_is_d2d else arch.noc_bw
        for dram in self._dram_nodes:
            router = self._dram_attach[dram]
            self._add_link(dram, router, io_bw, io_is_d2d, is_io=True)
            self._add_link(router, dram, io_bw, io_is_d2d, is_io=True)
