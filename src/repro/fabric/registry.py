"""Fabric registry: spec kind -> topology class, plus spec parsing.

``build_topology`` is the one construction point every layer uses: the
evaluator, the mapping engine, instruction generation and the baselines
all default their topology to ``build_topology(arch)``, so selecting a
fabric is purely declarative — set ``ArchConfig.fabric`` (or pass
``--fabric`` on the CLI) and every consumer follows.

Third-party fabrics plug in with :func:`register_fabric`; a registered
class only needs to subclass :class:`~repro.fabric.base.BaseTopology`
(or otherwise satisfy the :class:`~repro.fabric.base.Topology`
protocol) and declare a unique ``kind``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import InvalidArchitectureError
from repro.fabric.base import BaseTopology, Topology
from repro.fabric.cmesh import ConcentratedMeshTopology
from repro.fabric.mesh import MeshTopology
from repro.fabric.ring import RingTopology
from repro.fabric.spec import FabricSpec, normalize_routing
from repro.fabric.torus import FoldedTorusTopology

#: kind -> topology class.  Mutated only through register_fabric.
FABRIC_REGISTRY: dict[str, type] = {}


def register_fabric(cls: type) -> type:
    """Register a topology class under its ``kind`` (decorator-friendly)."""
    kind = getattr(cls, "kind", None)
    if not kind or kind == BaseTopology.kind:
        raise ValueError(f"{cls.__name__} must declare a fabric kind")
    existing = FABRIC_REGISTRY.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"fabric kind {kind!r} already registered")
    FABRIC_REGISTRY[kind] = cls
    return cls


for _cls in (MeshTopology, FoldedTorusTopology, ConcentratedMeshTopology,
             RingTopology):
    register_fabric(_cls)


def fabric_kinds() -> list[str]:
    return sorted(FABRIC_REGISTRY)


def build_topology(arch) -> Topology:
    """The topology ``arch.fabric`` declares (the default everywhere)."""
    cls = FABRIC_REGISTRY.get(arch.fabric.kind)
    if cls is None:
        raise InvalidArchitectureError(
            f"unknown fabric kind {arch.fabric.kind!r}; registered: "
            f"{fabric_kinds()}"
        )
    return cls(arch)


def parse_fabric(text: str) -> FabricSpec:
    """Parse ``kind[:routing][:cN][:wrap=dims]`` into a spec.

    Examples: ``mesh``, ``folded-torus``, ``folded-torus:yx``,
    ``cmesh:c2``, ``cmesh:dimension-reversal:c3``,
    ``folded-torus:wrap=x``.  Inverse of
    :func:`~repro.fabric.spec.format_fabric`.
    """
    from repro.fabric.spec import ROUTING_POLICIES

    tokens = [t.strip() for t in str(text).split(":") if t.strip()]
    if not tokens:
        raise InvalidArchitectureError(f"empty fabric spec {text!r}")
    kind = tokens[0]
    if kind not in FABRIC_REGISTRY:
        raise InvalidArchitectureError(
            f"unknown fabric kind {kind!r}; registered: {fabric_kinds()}"
        )
    spec = FabricSpec(kind=kind)
    for token in tokens[1:]:
        token = normalize_routing(token)
        if token in ROUTING_POLICIES:
            spec = replace(spec, routing=token)
        elif token.startswith("c") and token[1:].isdigit():
            spec = replace(spec, concentration=int(token[1:]))
        elif token.startswith("wrap="):
            spec = replace(spec, wrap=token[len("wrap="):])
        else:
            raise InvalidArchitectureError(
                f"bad fabric token {token!r} in {text!r} (expected a "
                f"routing policy {ROUTING_POLICIES}, 'c<N>' or 'wrap=<dims>')"
            )
    # Validate the extent-independent knobs eagerly so a bad spec
    # string fails at the CLI pre-flight, not mid-run in a worker
    # (extent-dependent checks run in ArchConfig.__post_init__).
    spec.validate()
    return spec


def apply_fabric(arch, fabric=None, routing: str | None = None):
    """``arch`` with its fabric overridden (validated via ``replace``).

    ``fabric`` may be a :class:`FabricSpec` or a parseable string; when
    ``None``, only the routing policy of the arch's existing fabric is
    replaced (when given).  Returns ``arch`` unchanged if neither
    override is supplied.
    """
    spec = arch.fabric
    if fabric is not None:
        spec = fabric if isinstance(fabric, FabricSpec) else \
            parse_fabric(fabric)
    if routing is not None:
        spec = replace(spec, routing=normalize_routing(routing))
    if spec == arch.fabric:
        return arch
    return replace(arch, fabric=spec)
