"""Folded-torus topology variant (Sec VI-B2).

The paper demonstrates the template's generality by swapping the mesh for
a folded torus and comparing against a Tenstorrent-Grayskull-like
configuration.  A folded torus adds per-dimension wraparound links while
keeping physical hop lengths short (nodes are interleaved), so we model
wrap links with the same bandwidth/energy class as regular links and use
per-dimension shortest-direction routing under the spec's dimension
order (X first by default, matching the mesh's XY discipline).

The spec's ``wrap`` knob selects which dimensions wrap: ``"xy"`` (the
full folded torus), ``"x"`` or ``"y"`` (cylinders).  Deadlock freedom
of wrap-around dimension-ordered routing assumes the usual dateline
virtual channel per wrapped dimension; the byte-per-link accounting
here is unaffected.
"""

from __future__ import annotations

from repro.fabric.mesh import MeshTopology


class FoldedTorusTopology(MeshTopology):
    """Mesh plus wraparound links, with modulo shortest-path routing."""

    kind = "folded-torus"

    def __init__(self, arch):
        wrap = arch.fabric.wrap if arch.fabric.kind == self.kind else "xy"
        self._wrap_x = "x" in wrap
        self._wrap_y = "y" in wrap
        super().__init__(arch)

    def _build_links(self) -> None:
        super()._build_links()
        arch = self.arch
        # Wraparound columns (x = X-1 -> x = 0) and rows.
        if self._wrap_x:
            for y in range(arch.cores_y):
                a, b = ("core", arch.cores_x - 1, y), ("core", 0, y)
                if (a, b) in self._by_endpoints:  # 1-wide dimension
                    continue
                d2d = self._crosses_cut(a[1:], b[1:])
                bw = arch.d2d_bw if d2d else arch.noc_bw
                self._add_link(a, b, bw, d2d)
                self._add_link(b, a, bw, d2d)
        if self._wrap_y:
            for x in range(arch.cores_x):
                a, b = ("core", x, arch.cores_y - 1), ("core", x, 0)
                if (a, b) in self._by_endpoints:
                    continue
                d2d = self._crosses_cut(a[1:], b[1:])
                bw = arch.d2d_bw if d2d else arch.noc_bw
                self._add_link(a, b, bw, d2d)
                self._add_link(b, a, bw, d2d)
