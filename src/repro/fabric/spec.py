"""Declarative interconnect-fabric specification.

The paper's generality study (Sec VI-B2) swaps the template's mesh for
a folded torus; :class:`FabricSpec` makes that swap — and every other
interconnect choice — a first-class, serializable field of
:class:`~repro.arch.params.ArchConfig` instead of a hand-constructed
topology object.  A spec names the fabric *kind* (a key into the
fabric registry), the deterministic routing policy, and the structural
knobs the kinds consume:

* ``routing`` — dimension order of the deterministic routing function
  (:data:`ROUTING_POLICIES`): ``xy`` (the paper's default, Sec VII-C),
  ``yx``, or ``dimension-reversal`` (per-source alternation between
  the two orders, O1TURN-style load balancing);
* ``concentration`` — cores per router-tile edge for the concentrated
  mesh (``c=2`` means 2x2 cores share one router);
* ``wrap`` — which dimensions of the folded torus wrap (``xy``, ``x``
  or ``y``; ``x``/``y`` give cylinders).

The ``name`` field is cosmetic: campaign digests exclude it, so
renaming a fabric never invalidates stored results.  The default spec
(mesh + XY) reproduces the pre-fabric evaluator bit for bit and is
deliberately *omitted* from serialized architectures, so records and
digests written before the fabric field existed keep matching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidArchitectureError

#: Deterministic routing policies understood by the grid fabrics.
ROUTING_POLICIES = ("xy", "yx", "dimension-reversal")

#: Accepted wrap-dimension selections for the folded torus.
WRAP_CHOICES = ("xy", "x", "y")

#: Shorthand accepted by :func:`repro.fabric.parse_fabric`.
_ROUTING_ALIASES = {"dr": "dimension-reversal"}


@dataclass(frozen=True)
class FabricSpec:
    """One interconnect configuration of the hardware template."""

    kind: str = "mesh"
    routing: str = "xy"
    #: Cores per router-tile edge (concentrated mesh only; 1 elsewhere).
    concentration: int = 1
    #: Dimensions that wrap around (folded torus only).
    wrap: str = "xy"
    #: Cosmetic label; excluded from digests and equality-of-content.
    name: str = ""

    def validate(self, cores_x: int = 0, cores_y: int = 0) -> None:
        """Structural validation; extents of 0 skip divisibility checks
        (used by the parser, before any architecture is known)."""
        if self.routing not in ROUTING_POLICIES:
            raise InvalidArchitectureError(
                f"unknown routing policy {self.routing!r}; "
                f"expected one of {ROUTING_POLICIES}"
            )
        if self.wrap not in WRAP_CHOICES:
            raise InvalidArchitectureError(
                f"torus wrap must be one of {WRAP_CHOICES}, "
                f"got {self.wrap!r}"
            )
        if self.concentration < 1:
            raise InvalidArchitectureError(
                "fabric concentration must be >= 1"
            )
        if self.kind == "cmesh" and (
            cores_x % self.concentration or cores_y % self.concentration
        ):
            raise InvalidArchitectureError(
                f"concentration {self.concentration} must divide the core "
                f"array {cores_x}x{cores_y}"
            )

    def content(self) -> dict:
        """The digest-relevant fields, normalized per kind.

        Knobs a kind does not consume are folded to their defaults
        (concentration matters only on the cmesh, wrap only on the
        torus, and the 1-D ring has no dimension order), so two specs
        that build identical hardware digest — and deduplicate —
        identically.  The cosmetic name is excluded.
        """
        return {
            "kind": self.kind,
            "routing": "xy" if self.kind == "ring" else self.routing,
            "concentration":
                self.concentration if self.kind == "cmesh" else 1,
            "wrap": self.wrap if self.kind == "folded-torus" else "xy",
        }

    def with_name(self, name: str) -> "FabricSpec":
        return replace(self, name=name)

    def slug(self) -> str:
        """Filesystem/CLI-safe rendering (see :func:`format_fabric`)."""
        return format_fabric(self).replace(":", "_")


#: The spec every architecture carries unless told otherwise — the
#: pre-fabric evaluator's exact behaviour (mesh, XY routing).
DEFAULT_FABRIC = FabricSpec()


def normalize_routing(token: str) -> str:
    return _ROUTING_ALIASES.get(token, token)


def format_fabric(spec: FabricSpec) -> str:
    """Compact ``kind[:routing][:cN][:wrap=dims]`` rendering.

    Inverse of the parser for every spec (the cosmetic name is
    dropped); the default knob values are omitted, so the default mesh
    renders as just ``"mesh"``.
    """
    parts = [spec.kind]
    if spec.routing != "xy":
        parts.append(spec.routing)
    if spec.concentration != 1:
        parts.append(f"c{spec.concentration}")
    if spec.wrap != "xy":
        parts.append(f"wrap={spec.wrap}")
    return ":".join(parts)


def fabric_to_dict(spec: FabricSpec) -> dict:
    """JSON-ready record (round-trips through :func:`fabric_from_dict`)."""
    return {
        "kind": spec.kind,
        "routing": spec.routing,
        "concentration": spec.concentration,
        "wrap": spec.wrap,
        "name": spec.name,
    }


def fabric_from_dict(data: dict) -> FabricSpec:
    if not isinstance(data, dict):
        raise TypeError(f"fabric record must be a dict, got {data!r}")
    try:
        return FabricSpec(
            kind=str(data.get("kind", "mesh")),
            routing=normalize_routing(str(data.get("routing", "xy"))),
            concentration=int(data.get("concentration", 1)),
            wrap=str(data.get("wrap", "xy")),
            name=str(data.get("name", "")),
        )
    except ValueError as exc:
        raise TypeError(f"bad fabric record: {exc}") from exc
