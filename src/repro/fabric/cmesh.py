"""Concentrated mesh: ``c x c`` cores share one router.

Concentration trades per-core router area for hop count: a 6x6 core
array at ``concentration=2`` routes over a 3x3 router grid, so the
average core-to-core distance drops while each router (and each grid
link) aggregates the traffic of four cores.  Router nodes are tagged
``("rtr", rx, ry)``; every core connects to its tile's router with a
local NoC-class link, and the router grid carries dimension-ordered
routes exactly like the mesh (the spec's routing policy applies to the
router grid).

A routed transfer is ``core -> router -> ... -> router -> core``;
cores in the same tile exchange data through their shared router in
two hops.  DRAM attach points spread over the left and right edge
*routers*.  Links (local or grid) whose endpoints' owning chiplets
differ are D2D-class; tiles may span chiplet cuts.
"""

from __future__ import annotations

from repro.errors import InvalidArchitectureError
from repro.fabric.base import NodeId
from repro.fabric.mesh import GridTopology


class ConcentratedMeshTopology(GridTopology):
    """Mesh over a coarser router grid with core-concentration tiles."""

    kind = "cmesh"

    def __init__(self, arch):
        c = arch.fabric.concentration if arch.fabric.kind == self.kind else 1
        self.concentration = max(1, c)
        if arch.cores_x % self.concentration or \
                arch.cores_y % self.concentration:
            raise InvalidArchitectureError(
                f"concentration {self.concentration} must divide the core "
                f"array {arch.cores_x}x{arch.cores_y}"
            )
        self.routers_x = arch.cores_x // self.concentration
        self.routers_y = arch.cores_y // self.concentration
        super().__init__(arch)

    # ------------------------------------------------------------------

    def router_of(self, node: NodeId) -> NodeId:
        """The router node serving a core (routers map to themselves)."""
        if node[0] == "rtr":
            return node
        c = self.concentration
        return ("rtr", node[1] // c, node[2] // c)

    def _tile_anchor(self, rx: int, ry: int) -> tuple[int, int]:
        """Top-left core coordinate of a router's tile (its 'home')."""
        c = self.concentration
        return (rx * c, ry * c)

    def _build_drams(self) -> None:
        """Spread DRAM attach points over the left/right edge routers."""
        arch = self.arch
        n = arch.n_dram
        left = (n + 1) // 2
        right = n - left
        attach: list[NodeId] = []
        for count, rx_edge in ((left, 0), (right, self.routers_x - 1)):
            for j in range(count):
                ry = min(self.routers_y - 1,
                         (2 * j + 1) * self.routers_y // (2 * count))
                attach.append(("rtr", rx_edge, ry))
        self._dram_nodes = tuple(("dram", i) for i in range(n))
        for i, node in enumerate(self._dram_nodes):
            self._dram_attach[node] = attach[i]

    def _build_links(self) -> None:
        arch = self.arch
        c = self.concentration
        for ry in range(self.routers_y):
            for rx in range(self.routers_x):
                rtr = ("rtr", rx, ry)
                anchor = self._tile_anchor(rx, ry)
                # Local core <-> router links of the tile.
                for dy in range(c):
                    for dx in range(c):
                        core = ("core", rx * c + dx, ry * c + dy)
                        d2d = self._crosses_cut(core[1:], anchor)
                        bw = arch.d2d_bw if d2d else arch.noc_bw
                        self._add_link(core, rtr, bw, d2d)
                        self._add_link(rtr, core, bw, d2d)
                # Router-grid links (+x, +y neighbors), D2D when the
                # neighboring tiles' homes sit on different chiplets.
                for nrx, nry in ((rx + 1, ry), (rx, ry + 1)):
                    if nrx >= self.routers_x or nry >= self.routers_y:
                        continue
                    other = ("rtr", nrx, nry)
                    d2d = self._crosses_cut(
                        anchor, self._tile_anchor(nrx, nry)
                    )
                    bw = arch.d2d_bw if d2d else arch.noc_bw
                    self._add_link(rtr, other, bw, d2d)
                    self._add_link(other, rtr, bw, d2d)
        io_is_d2d = not arch.is_monolithic
        io_bw = arch.d2d_bw if io_is_d2d else arch.noc_bw
        for dram in self._dram_nodes:
            router = self._dram_attach[dram]
            self._add_link(dram, router, io_bw, io_is_d2d, is_io=True)
            self._add_link(router, dram, io_bw, io_is_d2d, is_io=True)

    # ------------------------------------------------------------------

    def _router_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """core/router -> core/router path via the router grid."""
        if a == b:
            return [a]
        ra, rb = self.router_of(a), self.router_of(b)
        path: list[NodeId] = [a]
        if a != ra:
            path.append(ra)
        (_, x, y), (_, tx, ty) = ra, rb
        nx, ny = self.routers_x, self.routers_y
        for dim in self._dim_order(ra, rb):
            if dim == "x":
                while x != tx:
                    x += self._axis_step(x, tx, nx, False)
                    path.append(("rtr", x, y))
            else:
                while y != ty:
                    y += self._axis_step(y, ty, ny, False)
                    path.append(("rtr", x, y))
        if b != rb:
            path.append(b)
        return path
