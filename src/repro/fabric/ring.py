"""1-D ring fabric: cores on a bidirectional ring in row-major order.

The cheapest interconnect the template can carry: every core links to
its row-major successor (wrapping at the end), giving exactly two links
per core and radix-3 routers.  Routing takes the rotational direction
with the fewer hops (ties go forward), so routes are at most ``N / 2``
hops; the single dimension makes the spec's 2-D routing policy
irrelevant.  Links between cores owned by different chiplets are
D2D-class, and the DRAM attach points reuse the template's edge-router
placement.

As with the torus, deadlock freedom of the wrap-around ring assumes a
dateline virtual channel; byte-per-link accounting is unaffected.
"""

from __future__ import annotations

from repro.fabric.base import BaseTopology, NodeId


class RingTopology(BaseTopology):
    """Bidirectional ring over the row-major core order."""

    kind = "ring"

    def _core_xy(self, index: int) -> tuple[int, int]:
        return (index % self.arch.cores_x, index // self.arch.cores_x)

    def _build_links(self) -> None:
        arch = self.arch
        n = arch.n_cores
        for i in range(n):
            j = (i + 1) % n
            if j == i:
                continue  # single-core ring has no links
            a = ("core", *self._core_xy(i))
            b = ("core", *self._core_xy(j))
            if (a, b) in self._by_endpoints:  # 2-core ring: one pair
                continue
            d2d = self._crosses_cut(a[1:], b[1:])
            bw = arch.d2d_bw if d2d else arch.noc_bw
            self._add_link(a, b, bw, d2d)
            self._add_link(b, a, bw, d2d)
        io_is_d2d = not arch.is_monolithic
        io_bw = arch.d2d_bw if io_is_d2d else arch.noc_bw
        for dram in self._dram_nodes:
            router = self._dram_attach[dram]
            self._add_link(dram, router, io_bw, io_is_d2d, is_io=True)
            self._add_link(router, dram, io_bw, io_is_d2d, is_io=True)

    def _router_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """Shortest rotational direction around the ring (ties forward)."""
        n = self.arch.n_cores
        i, j = self.core_index(a), self.core_index(b)
        forward = (j - i) % n
        backward = (i - j) % n
        step = 1 if forward <= backward else -1
        path = [a]
        while i != j:
            i = (i + step) % n
            path.append(("core", *self._core_xy(i)))
        return path
