"""Pluggable interconnect fabrics: topologies, routing, registry.

The fabric subsystem makes the interconnect a declarative axis of the
hardware template (the paper's Sec VI-B2 generality study, where the
mesh is swapped for a folded torus): a serializable
:class:`~repro.fabric.spec.FabricSpec` rides on ``ArchConfig``, the
:class:`~repro.fabric.base.Topology` protocol names the surface every
evaluation layer consumes, and :func:`build_topology` dispatches the
spec through the registry.  Shipped fabrics: ``mesh`` (the default),
``folded-torus``, ``cmesh`` (concentrated mesh) and ``ring``; shipped
routing policies: ``xy``, ``yx`` and ``dimension-reversal``.
"""

from repro.fabric.base import BaseTopology, Link, NodeId, Topology
from repro.fabric.cmesh import ConcentratedMeshTopology
from repro.fabric.mesh import GridTopology, MeshTopology
from repro.fabric.registry import (
    FABRIC_REGISTRY,
    apply_fabric,
    build_topology,
    fabric_kinds,
    parse_fabric,
    register_fabric,
)
from repro.fabric.ring import RingTopology
from repro.fabric.spec import (
    DEFAULT_FABRIC,
    ROUTING_POLICIES,
    FabricSpec,
    fabric_from_dict,
    fabric_to_dict,
    format_fabric,
)
from repro.fabric.torus import FoldedTorusTopology

__all__ = [
    "BaseTopology",
    "ConcentratedMeshTopology",
    "DEFAULT_FABRIC",
    "FABRIC_REGISTRY",
    "FabricSpec",
    "FoldedTorusTopology",
    "GridTopology",
    "Link",
    "MeshTopology",
    "NodeId",
    "ROUTING_POLICIES",
    "RingTopology",
    "Topology",
    "apply_fabric",
    "build_topology",
    "fabric_from_dict",
    "fabric_kinds",
    "fabric_to_dict",
    "format_fabric",
    "parse_fabric",
    "register_fabric",
]
