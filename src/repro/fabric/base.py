"""Topology protocol and the shared interconnect machinery.

Every fabric produces the same artifacts the evaluation layers consume:
tagged node tuples (``("core", x, y)``, ``("dram", i)``, plus whatever
internal router nodes a fabric needs), a flat list of directed
:class:`Link` records with small integer ids, deterministic
``route(src, dst)`` link-index tuples, and the padded numpy route/link
tables the compiled evaluation core scatter-adds over.  The
:class:`Topology` protocol names that surface; :class:`BaseTopology`
implements all of it generically on top of two fabric hooks:

* ``_build_drams`` / ``_build_links`` — construct the node/link graph
  (the default DRAM placement spreads attach points over the left and
  right edges, as the template's IO chiplets do);
* ``_router_path(a, b)`` — the deterministic node path between two
  endpoint nodes (cores, or a fabric's internal routers).

Routes must be *simple paths* (no node, hence no directed link,
revisited): the traffic accumulators use fancy-index adds
(``volumes[route] += v``), which would drop duplicate links.  The
brute-force routing property tests assert this for every registered
fabric.

Route lookups are memoized per topology and counted
(``fabric.route.hits/.misses``), and the one-time route-table builds
are timed per fabric kind (``fabric.route_tables.<kind>``) — both show
up in the ``--profile`` hit-ratio table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.perf import PERF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.params import ArchConfig
    from repro.fabric.spec import FabricSpec

NodeId = tuple


@dataclass(frozen=True)
class Link:
    """One directed link of the interconnect."""

    index: int
    src: NodeId
    dst: NodeId
    bandwidth: float
    is_d2d: bool
    is_io: bool


@runtime_checkable
class Topology(Protocol):
    """The surface every evaluation layer consumes.

    Annotate against this, not a concrete fabric: the evaluator, the
    traffic analyzer, the NoC models, the simulators and the compiled
    core all work for any implementation.
    """

    arch: "ArchConfig"
    kind: str

    @property
    def links(self) -> list[Link]: ...
    @property
    def n_links(self) -> int: ...
    def core_node(self, index: int) -> NodeId: ...
    def core_index(self, node: NodeId) -> int: ...
    def core_nodes(self) -> list[NodeId]: ...
    def dram_node(self, index: int) -> NodeId: ...
    def dram_nodes(self) -> tuple[NodeId, ...]: ...
    def attach_router(self, dram: NodeId) -> NodeId: ...
    def link_between(self, src: NodeId, dst: NodeId) -> Link: ...
    def link_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]: ...
    def link_index_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]: ...
    def route(self, src: NodeId, dst: NodeId) -> tuple[int, ...]: ...
    def route_array(self, src: NodeId, dst: NodeId) -> np.ndarray: ...
    def core_route_table(self) -> tuple[np.ndarray, np.ndarray]: ...
    def dram_route_tables(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]: ...
    def hop_count(self, src: NodeId, dst: NodeId) -> int: ...


class BaseTopology:
    """Shared construction, query and route-table machinery."""

    #: Registry key of the fabric; subclasses override.
    kind: str = "base"

    def __init__(self, arch: "ArchConfig"):
        self.arch = arch
        #: The architecture's fabric spec supplies the routing policy
        #: and structural knobs; the *class* decides the link structure,
        #: so hand-constructing e.g. a ``FoldedTorusTopology`` works
        #: even when the spec names another kind.
        self.spec: "FabricSpec" = arch.fabric
        self._links: list[Link] = []
        self._by_endpoints: dict[tuple[NodeId, NodeId], Link] = {}
        self._dram_attach: dict[NodeId, NodeId] = {}
        self._route_cache: dict[tuple[NodeId, NodeId], tuple[int, ...]] = {}
        self._route_array_cache: dict[tuple[NodeId, NodeId], np.ndarray] = {}
        self._link_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._core_route_table: tuple[np.ndarray, np.ndarray] | None = None
        self._dram_route_tables: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._build_drams()
        self._build_links()
        self._core_node_list = tuple(
            ("core", i % arch.cores_x, i // arch.cores_x)
            for i in range(arch.n_cores)
        )
        PERF.add(f"fabric.topologies.{self.kind}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_link(self, src: NodeId, dst: NodeId, bandwidth: float,
                  is_d2d: bool, is_io: bool = False) -> None:
        link = Link(len(self._links), src, dst, bandwidth, is_d2d, is_io)
        self._links.append(link)
        self._by_endpoints[(src, dst)] = link

    def _crosses_cut(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        return self.arch.chiplet_of(*a) != self.arch.chiplet_of(*b)

    def _build_drams(self) -> None:
        """Spread DRAM attach points over the left and right edge routers."""
        arch = self.arch
        n = arch.n_dram
        left = (n + 1) // 2
        right = n - left
        attach: list[NodeId] = []
        for count, x_edge in ((left, 0), (right, arch.cores_x - 1)):
            for j in range(count):
                y = min(arch.cores_y - 1, (2 * j + 1) * arch.cores_y // (2 * count))
                attach.append(("core", x_edge, y))
        self._dram_nodes = tuple(("dram", i) for i in range(n))
        for i, node in enumerate(self._dram_nodes):
            self._dram_attach[node] = attach[i]

    def _build_links(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def links(self) -> list[Link]:
        return self._links

    @property
    def n_links(self) -> int:
        return len(self._links)

    def core_node(self, index: int) -> NodeId:
        """Core node for a row-major core index (0-based)."""
        return self._core_node_list[index]

    def core_index(self, node: NodeId) -> int:
        _, x, y = node
        return y * self.arch.cores_x + x

    def core_nodes(self) -> list[NodeId]:
        return [self.core_node(i) for i in range(self.arch.n_cores)]

    def dram_node(self, index: int) -> NodeId:
        return self._dram_nodes[index]

    def dram_nodes(self) -> tuple[NodeId, ...]:
        return self._dram_nodes

    def attach_router(self, dram: NodeId) -> NodeId:
        return self._dram_attach[dram]

    def link_between(self, src: NodeId, dst: NodeId) -> Link:
        return self._by_endpoints[(src, dst)]

    def d2d_link_indices(self) -> list[int]:
        return [l.index for l in self._links if l.is_d2d]

    def link_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared per-link (bandwidth, is_d2d, is_io) arrays.

        Built once per topology; :class:`~repro.noc.traffic.TrafficMap`
        instances alias them read-only, so constructing a map per layer
        block costs only one ``np.zeros``.
        """
        if self._link_arrays is None:
            self._link_arrays = (
                np.array([l.bandwidth for l in self._links], dtype=np.float64),
                np.array([l.is_d2d for l in self._links], dtype=bool),
                np.array([l.is_io for l in self._links], dtype=bool),
            )
        return self._link_arrays

    def link_index_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(noc_idx, d2d_idx, io_idx)`` link-index arrays.

        Integer-index gathers select links in the same ascending order
        as the boolean masks they replace, so aggregate sums over them
        are bit-identical — just without re-deriving the selection per
        query (the SA loop sums these on every evaluation).
        """
        if getattr(self, "_link_index_arrays", None) is None:
            _, is_d2d, is_io = self.link_arrays()
            self._link_index_arrays = (
                np.nonzero(~is_d2d)[0],
                np.nonzero(is_d2d)[0],
                np.nonzero(is_io)[0],
            )
        return self._link_index_arrays

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _router_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """Deterministic node path from a to b, inclusive."""
        raise NotImplementedError

    def route(self, src: NodeId, dst: NodeId) -> tuple[int, ...]:
        """Directed link indices along the deterministic path src -> dst."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            PERF.add("fabric.route.hits")
            return cached
        PERF.add("fabric.route.misses")
        if src == dst:
            self._route_cache[key] = ()
            return ()
        hops: list[int] = []
        a, b = src, dst
        if a[0] == "dram":
            router = self._dram_attach[a]
            hops.append(self._by_endpoints[(a, router)].index)
            a = router
        tail: list[int] = []
        if b[0] == "dram":
            router = self._dram_attach[b]
            tail.append(self._by_endpoints[(router, b)].index)
            b = router
        path = self._router_path(a, b)
        for u, v in zip(path, path[1:]):
            hops.append(self._by_endpoints[(u, v)].index)
        hops.extend(tail)
        result = tuple(hops)
        self._route_cache[key] = result
        return result

    def route_array(self, src: NodeId, dst: NodeId) -> np.ndarray:
        """The route as a cached int index array (hot-path accounting).

        Deterministic routes are simple paths that never revisit a
        link, so the array can be used for fancy-index accumulation
        (``volumes[arr] += v``) directly.
        """
        key = (src, dst)
        cached = self._route_array_cache.get(key)
        if cached is None:
            cached = np.asarray(self.route(src, dst), dtype=np.intp)
            self._route_array_cache[key] = cached
        return cached

    def _build_route_table(self, pairs) -> tuple[np.ndarray, np.ndarray]:
        """``(padded[len(pairs), max_hops], lens)`` for node pairs.

        Each row holds the directed link indices of the deterministic
        route, right-padded with ``-1``.  Traffic analysis uses the
        tables to scatter-add many flows in one vector operation.
        """
        routes = [self.route_array(s, d) for s, d in pairs]
        lens = np.array([len(r) for r in routes], dtype=np.intp)
        width = int(lens.max()) if len(lens) else 0
        table = np.full((len(routes), width), -1, dtype=np.intp)
        for i, r in enumerate(routes):
            table[i, : len(r)] = r
        return table, lens

    def core_route_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Core-to-core route table; row ``src * n_cores + dst``."""
        if self._core_route_table is None:
            with PERF.time(f"fabric.route_tables.{self.kind}"):
                n = self.arch.n_cores
                self._core_route_table = self._build_route_table([
                    (self.core_node(s), self.core_node(d))
                    for s in range(n) for d in range(n)
                ])
        return self._core_route_table

    def dram_route_tables(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Padded core<->DRAM route tables.

        Returns ``(to_dram, to_lens, from_dram, from_lens)``; row
        ``core * n_dram + dram`` of ``to_dram`` holds the route
        core -> DRAM (``from_dram`` the reverse).
        """
        if self._dram_route_tables is None:
            with PERF.time(f"fabric.route_tables.{self.kind}"):
                n = self.arch.n_cores
                n_dram = len(self._dram_nodes)
                to_dram = self._build_route_table([
                    (self.core_node(c), self._dram_nodes[d])
                    for c in range(n) for d in range(n_dram)
                ])
                from_dram = self._build_route_table([
                    (self._dram_nodes[d], self.core_node(c))
                    for c in range(n) for d in range(n_dram)
                ])
                self._dram_route_tables = (*to_dram, *from_dram)
        return self._dram_route_tables

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        return len(self.route(src, dst))
