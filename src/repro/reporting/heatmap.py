"""Network-traffic heatmaps (Fig 9).

The paper visualizes per-link traffic of an SPM scheme as a colored mesh;
here the same data is exposed as structured records (for CSV export and
assertions) and an ASCII rendering.  Following the figure's convention,
the volume on D2D links is doubled before display "to display the
bandwidth pressure more clearly" (their bandwidth is half the NoC's).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.traffic import TrafficMap

#: ASCII intensity ramp (cold -> hot).
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class LinkHeat:
    src: tuple
    dst: tuple
    volume: float
    display_volume: float
    is_d2d: bool
    is_io: bool


def link_heat(traffic: TrafficMap, double_d2d: bool = True) -> list[LinkHeat]:
    """Per-link heat records, hottest first."""
    records = []
    for link in traffic.topo.links:
        vol = float(traffic.volumes[link.index])
        if vol <= 0:
            continue
        display = vol * (2.0 if (double_d2d and link.is_d2d) else 1.0)
        records.append(
            LinkHeat(link.src, link.dst, vol, display, link.is_d2d, link.is_io)
        )
    records.sort(key=lambda r: r.display_volume, reverse=True)
    return records


def heat_summary(traffic: TrafficMap) -> dict[str, float]:
    """Aggregate metrics the paper quotes for Fig 9."""
    return {
        "total_hop_bytes": traffic.total_byte_hops(),
        "noc_hop_bytes": traffic.noc_byte_hops(),
        "d2d_bytes": traffic.d2d_volume(),
        "io_bytes": traffic.io_volume(),
        "max_link_bytes": float(traffic.volumes.max())
        if len(traffic.volumes) else 0.0,
    }


def render_ascii(traffic: TrafficMap, double_d2d: bool = True) -> str:
    """Render horizontal-link heat as an ASCII mesh.

    Each cell shows the hotter direction of the link to its right ('-')
    and below ('|') using the intensity ramp; D2D links are bracketed.
    """
    topo = traffic.topo
    arch = topo.arch
    peak = 0.0
    for link in topo.links:
        v = float(traffic.volumes[link.index])
        if double_d2d and link.is_d2d:
            v *= 2
        peak = max(peak, v)
    if peak <= 0:
        peak = 1.0

    def char_for(a, b):
        try:
            l1 = topo.link_between(a, b)
            l2 = topo.link_between(b, a)
        except KeyError:
            return " ", False
        v = max(traffic.volumes[l1.index], traffic.volumes[l2.index])
        if double_d2d and l1.is_d2d:
            v *= 2
        idx = min(len(_RAMP) - 1, int(v / peak * (len(_RAMP) - 1) + 0.5))
        return _RAMP[idx], l1.is_d2d

    lines = []
    for y in range(arch.cores_y):
        row, below = [], []
        for x in range(arch.cores_x):
            row.append("o")
            if x + 1 < arch.cores_x:
                ch, d2d = char_for(("core", x, y), ("core", x + 1, y))
                row.append(f"[{ch}]" if d2d else f" {ch} ")
            if y + 1 < arch.cores_y:
                ch, d2d = char_for(("core", x, y), ("core", x, y + 1))
                below.append(f"[{ch}]" if d2d else f" {ch} ")
                below.append(" ")
        lines.append("".join(row))
        if below:
            lines.append(" " + "   ".join(b.strip() or " " for b in below[::2]))
    return "\n".join(lines)
