"""Plain-text and CSV result tables for benches and examples."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass


def format_table(headers: list[str], rows: list[list], floatfmt: str = ".3g") -> str:
    """Align a simple text table (no external dependencies)."""
    def render(cell):
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def to_csv(headers: list[str], rows: list[list]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    writer.writerows(rows)
    return buf.getvalue()


def write_csv(path: str, headers: list[str], rows: list[list]) -> None:
    """Atomically write a CSV so a killed run never truncates a table."""
    from repro.io.atomic import atomic_write_text

    atomic_write_text(path, to_csv(headers, rows))


@dataclass(frozen=True)
class ComparisonRow:
    """One normalized comparison entry (Fig 5-style)."""

    workload: str
    batch: int
    delay_ratio: float
    energy_ratio: float

    @property
    def speedup(self) -> float:
        return 1.0 / self.delay_ratio if self.delay_ratio else float("inf")

    @property
    def efficiency_gain(self) -> float:
        return 1.0 / self.energy_ratio if self.energy_ratio else float("inf")
