"""Reporting: heatmaps (Fig 9) and result tables."""

from repro.reporting.heatmap import (
    LinkHeat,
    heat_summary,
    link_heat,
    render_ascii,
)
from repro.reporting.tables import (
    ComparisonRow,
    format_table,
    to_csv,
    write_csv,
)

__all__ = [
    "ComparisonRow",
    "LinkHeat",
    "format_table",
    "heat_summary",
    "link_heat",
    "render_ascii",
    "to_csv",
    "write_csv",
]
