"""Back-compat shim: the mesh topology now lives in :mod:`repro.fabric`.

The interconnect became a pluggable subsystem (``src/repro/fabric/``):
``FabricSpec`` on :class:`~repro.arch.params.ArchConfig` selects a
registered topology kind and routing policy, and
:func:`repro.fabric.build_topology` is the construction point every
evaluation layer defaults to.  This module keeps the historical import
path working.
"""

from repro.fabric.base import Link, NodeId, Topology
from repro.fabric.mesh import MeshTopology

__all__ = ["Link", "MeshTopology", "NodeId", "Topology"]
