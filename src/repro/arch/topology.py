"""Mesh topology of the scalable hardware template (Sec III, Fig 2).

Computing cores form an ``X x Y`` mesh of routers.  ``XCut x YCut``
chiplet divisions partition the mesh into equal rectangles; every mesh
link crossing a division boundary is a D2D link (lower bandwidth, higher
energy).  IO chiplets sit on the left and right edges: each DRAM die
(one per 32 GB/s unit) attaches to an edge router through an IO link,
which is itself a D2D link whenever the accelerator is multi-chiplet
(the IO chiplet is then a separate die).

Nodes are tagged tuples — ``("core", x, y)`` or ``("dram", i)`` — and
every *directed* link carries a small integer id so traffic accounting
can use flat numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.params import ArchConfig

NodeId = tuple


@dataclass(frozen=True)
class Link:
    """One directed link of the interconnect."""

    index: int
    src: NodeId
    dst: NodeId
    bandwidth: float
    is_d2d: bool
    is_io: bool


class MeshTopology:
    """The template's default mesh interconnect."""

    def __init__(self, arch: ArchConfig):
        self.arch = arch
        self._links: list[Link] = []
        self._by_endpoints: dict[tuple[NodeId, NodeId], Link] = {}
        self._dram_attach: dict[NodeId, NodeId] = {}
        self._route_cache: dict[tuple[NodeId, NodeId], tuple[int, ...]] = {}
        self._route_array_cache: dict[tuple[NodeId, NodeId], np.ndarray] = {}
        self._link_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._core_route_table: tuple[np.ndarray, np.ndarray] | None = None
        self._dram_route_tables: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._build_drams()
        self._build_links()
        self._core_node_list = tuple(
            ("core", i % arch.cores_x, i // arch.cores_x)
            for i in range(arch.n_cores)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_link(self, src: NodeId, dst: NodeId, bandwidth: float,
                  is_d2d: bool, is_io: bool = False) -> None:
        link = Link(len(self._links), src, dst, bandwidth, is_d2d, is_io)
        self._links.append(link)
        self._by_endpoints[(src, dst)] = link

    def _crosses_cut(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        return self.arch.chiplet_of(*a) != self.arch.chiplet_of(*b)

    def _build_drams(self) -> None:
        """Spread DRAM attach points over the left and right edge routers."""
        arch = self.arch
        n = arch.n_dram
        left = (n + 1) // 2
        right = n - left
        attach: list[NodeId] = []
        for count, x_edge in ((left, 0), (right, arch.cores_x - 1)):
            for j in range(count):
                y = min(arch.cores_y - 1, (2 * j + 1) * arch.cores_y // (2 * count))
                attach.append(("core", x_edge, y))
        self._dram_nodes = tuple(("dram", i) for i in range(n))
        for i, node in enumerate(self._dram_nodes):
            self._dram_attach[node] = attach[i]

    def _mesh_neighbors(self, x: int, y: int):
        if x + 1 < self.arch.cores_x:
            yield (x + 1, y)
        if y + 1 < self.arch.cores_y:
            yield (x, y + 1)

    def _build_links(self) -> None:
        arch = self.arch
        for y in range(arch.cores_y):
            for x in range(arch.cores_x):
                for nx, ny in self._mesh_neighbors(x, y):
                    d2d = self._crosses_cut((x, y), (nx, ny))
                    bw = arch.d2d_bw if d2d else arch.noc_bw
                    a, b = ("core", x, y), ("core", nx, ny)
                    self._add_link(a, b, bw, d2d)
                    self._add_link(b, a, bw, d2d)
        io_is_d2d = not arch.is_monolithic
        io_bw = arch.d2d_bw if io_is_d2d else arch.noc_bw
        for dram in self._dram_nodes:
            router = self._dram_attach[dram]
            self._add_link(dram, router, io_bw, io_is_d2d, is_io=True)
            self._add_link(router, dram, io_bw, io_is_d2d, is_io=True)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def links(self) -> list[Link]:
        return self._links

    @property
    def n_links(self) -> int:
        return len(self._links)

    def core_node(self, index: int) -> NodeId:
        """Core node for a row-major core index (0-based)."""
        return self._core_node_list[index]

    def core_index(self, node: NodeId) -> int:
        _, x, y = node
        return y * self.arch.cores_x + x

    def core_nodes(self) -> list[NodeId]:
        return [self.core_node(i) for i in range(self.arch.n_cores)]

    def dram_node(self, index: int) -> NodeId:
        return self._dram_nodes[index]

    def dram_nodes(self) -> tuple[NodeId, ...]:
        return self._dram_nodes

    def attach_router(self, dram: NodeId) -> NodeId:
        return self._dram_attach[dram]

    def link_between(self, src: NodeId, dst: NodeId) -> Link:
        return self._by_endpoints[(src, dst)]

    def d2d_link_indices(self) -> list[int]:
        return [l.index for l in self._links if l.is_d2d]

    def link_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared per-link (bandwidth, is_d2d, is_io) arrays.

        Built once per topology; :class:`~repro.noc.traffic.TrafficMap`
        instances alias them read-only, so constructing a map per layer
        block costs only one ``np.zeros``.
        """
        if self._link_arrays is None:
            self._link_arrays = (
                np.array([l.bandwidth for l in self._links], dtype=np.float64),
                np.array([l.is_d2d for l in self._links], dtype=bool),
                np.array([l.is_io for l in self._links], dtype=bool),
            )
        return self._link_arrays

    def link_index_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(noc_idx, d2d_idx, io_idx)`` link-index arrays.

        Integer-index gathers select links in the same ascending order
        as the boolean masks they replace, so aggregate sums over them
        are bit-identical — just without re-deriving the selection per
        query (the SA loop sums these on every evaluation).
        """
        if getattr(self, "_link_index_arrays", None) is None:
            _, is_d2d, is_io = self.link_arrays()
            self._link_index_arrays = (
                np.nonzero(~is_d2d)[0],
                np.nonzero(is_d2d)[0],
                np.nonzero(is_io)[0],
            )
        return self._link_index_arrays

    # ------------------------------------------------------------------
    # Routing (deterministic XY, Sec VII-C assumes XY routing)
    # ------------------------------------------------------------------

    def _step_toward(self, x: int, y: int, tx: int, ty: int) -> tuple[int, int]:
        """One XY-routing hop from (x, y) toward (tx, ty)."""
        if x != tx:
            return (x + (1 if tx > x else -1), y)
        return (x, y + (1 if ty > y else -1))

    def _router_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """Router-level XY path from core a to core b, inclusive."""
        (_, x, y), (_, tx, ty) = a, b
        path = [a]
        while (x, y) != (tx, ty):
            x, y = self._step_toward(x, y, tx, ty)
            path.append(("core", x, y))
        return path

    def route(self, src: NodeId, dst: NodeId) -> tuple[int, ...]:
        """Directed link indices along the deterministic path src -> dst."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            self._route_cache[key] = ()
            return ()
        hops: list[int] = []
        a, b = src, dst
        if a[0] == "dram":
            router = self._dram_attach[a]
            hops.append(self._by_endpoints[(a, router)].index)
            a = router
        tail: list[int] = []
        if b[0] == "dram":
            router = self._dram_attach[b]
            tail.append(self._by_endpoints[(router, b)].index)
            b = router
        path = self._router_path(a, b)
        for u, v in zip(path, path[1:]):
            hops.append(self._by_endpoints[(u, v)].index)
        hops.extend(tail)
        result = tuple(hops)
        self._route_cache[key] = result
        return result

    def route_array(self, src: NodeId, dst: NodeId) -> np.ndarray:
        """The route as a cached int index array (hot-path accounting).

        XY routes never revisit a link, so the array can be used for
        fancy-index accumulation (``volumes[arr] += v``) directly.
        """
        key = (src, dst)
        cached = self._route_array_cache.get(key)
        if cached is None:
            cached = np.asarray(self.route(src, dst), dtype=np.intp)
            self._route_array_cache[key] = cached
        return cached

    def _build_route_table(self, pairs) -> tuple[np.ndarray, np.ndarray]:
        """``(padded[len(pairs), max_hops], lens)`` for node pairs.

        Each row holds the directed link indices of the XY route,
        right-padded with ``-1``.  Traffic analysis uses the tables to
        scatter-add many flows in one vector operation.
        """
        routes = [self.route_array(s, d) for s, d in pairs]
        lens = np.array([len(r) for r in routes], dtype=np.intp)
        width = int(lens.max()) if len(lens) else 0
        table = np.full((len(routes), width), -1, dtype=np.intp)
        for i, r in enumerate(routes):
            table[i, : len(r)] = r
        return table, lens

    def core_route_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Core-to-core route table; row ``src * n_cores + dst``."""
        if self._core_route_table is None:
            n = self.arch.n_cores
            self._core_route_table = self._build_route_table([
                (self.core_node(s), self.core_node(d))
                for s in range(n) for d in range(n)
            ])
        return self._core_route_table

    def dram_route_tables(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Padded core<->DRAM route tables.

        Returns ``(to_dram, to_lens, from_dram, from_lens)``; row
        ``core * n_dram + dram`` of ``to_dram`` holds the route
        core -> DRAM (``from_dram`` the reverse).
        """
        if self._dram_route_tables is None:
            n = self.arch.n_cores
            n_dram = len(self._dram_nodes)
            to_dram = self._build_route_table([
                (self.core_node(c), self._dram_nodes[d])
                for c in range(n) for d in range(n_dram)
            ])
            from_dram = self._build_route_table([
                (self._dram_nodes[d], self.core_node(c))
                for c in range(n) for d in range(n_dram)
            ])
            self._dram_route_tables = (*to_dram, *from_dram)
        return self._dram_route_tables

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        return len(self.route(src, dst))
