"""Mesh topology of the scalable hardware template (Sec III, Fig 2).

Computing cores form an ``X x Y`` mesh of routers.  ``XCut x YCut``
chiplet divisions partition the mesh into equal rectangles; every mesh
link crossing a division boundary is a D2D link (lower bandwidth, higher
energy).  IO chiplets sit on the left and right edges: each DRAM die
(one per 32 GB/s unit) attaches to an edge router through an IO link,
which is itself a D2D link whenever the accelerator is multi-chiplet
(the IO chiplet is then a separate die).

Nodes are tagged tuples — ``("core", x, y)`` or ``("dram", i)`` — and
every *directed* link carries a small integer id so traffic accounting
can use flat numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import ArchConfig

NodeId = tuple


@dataclass(frozen=True)
class Link:
    """One directed link of the interconnect."""

    index: int
    src: NodeId
    dst: NodeId
    bandwidth: float
    is_d2d: bool
    is_io: bool


class MeshTopology:
    """The template's default mesh interconnect."""

    def __init__(self, arch: ArchConfig):
        self.arch = arch
        self._links: list[Link] = []
        self._by_endpoints: dict[tuple[NodeId, NodeId], Link] = {}
        self._dram_attach: dict[NodeId, NodeId] = {}
        self._route_cache: dict[tuple[NodeId, NodeId], tuple[int, ...]] = {}
        self._build_drams()
        self._build_links()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _add_link(self, src: NodeId, dst: NodeId, bandwidth: float,
                  is_d2d: bool, is_io: bool = False) -> None:
        link = Link(len(self._links), src, dst, bandwidth, is_d2d, is_io)
        self._links.append(link)
        self._by_endpoints[(src, dst)] = link

    def _crosses_cut(self, a: tuple[int, int], b: tuple[int, int]) -> bool:
        return self.arch.chiplet_of(*a) != self.arch.chiplet_of(*b)

    def _build_drams(self) -> None:
        """Spread DRAM attach points over the left and right edge routers."""
        arch = self.arch
        n = arch.n_dram
        left = (n + 1) // 2
        right = n - left
        attach: list[NodeId] = []
        for count, x_edge in ((left, 0), (right, arch.cores_x - 1)):
            for j in range(count):
                y = min(arch.cores_y - 1, (2 * j + 1) * arch.cores_y // (2 * count))
                attach.append(("core", x_edge, y))
        self._dram_nodes = tuple(("dram", i) for i in range(n))
        for i, node in enumerate(self._dram_nodes):
            self._dram_attach[node] = attach[i]

    def _mesh_neighbors(self, x: int, y: int):
        if x + 1 < self.arch.cores_x:
            yield (x + 1, y)
        if y + 1 < self.arch.cores_y:
            yield (x, y + 1)

    def _build_links(self) -> None:
        arch = self.arch
        for y in range(arch.cores_y):
            for x in range(arch.cores_x):
                for nx, ny in self._mesh_neighbors(x, y):
                    d2d = self._crosses_cut((x, y), (nx, ny))
                    bw = arch.d2d_bw if d2d else arch.noc_bw
                    a, b = ("core", x, y), ("core", nx, ny)
                    self._add_link(a, b, bw, d2d)
                    self._add_link(b, a, bw, d2d)
        io_is_d2d = not arch.is_monolithic
        io_bw = arch.d2d_bw if io_is_d2d else arch.noc_bw
        for dram in self._dram_nodes:
            router = self._dram_attach[dram]
            self._add_link(dram, router, io_bw, io_is_d2d, is_io=True)
            self._add_link(router, dram, io_bw, io_is_d2d, is_io=True)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def links(self) -> list[Link]:
        return self._links

    @property
    def n_links(self) -> int:
        return len(self._links)

    def core_node(self, index: int) -> NodeId:
        """Core node for a row-major core index (0-based)."""
        x = index % self.arch.cores_x
        y = index // self.arch.cores_x
        return ("core", x, y)

    def core_index(self, node: NodeId) -> int:
        _, x, y = node
        return y * self.arch.cores_x + x

    def core_nodes(self) -> list[NodeId]:
        return [self.core_node(i) for i in range(self.arch.n_cores)]

    def dram_node(self, index: int) -> NodeId:
        return self._dram_nodes[index]

    def dram_nodes(self) -> tuple[NodeId, ...]:
        return self._dram_nodes

    def attach_router(self, dram: NodeId) -> NodeId:
        return self._dram_attach[dram]

    def link_between(self, src: NodeId, dst: NodeId) -> Link:
        return self._by_endpoints[(src, dst)]

    def d2d_link_indices(self) -> list[int]:
        return [l.index for l in self._links if l.is_d2d]

    # ------------------------------------------------------------------
    # Routing (deterministic XY, Sec VII-C assumes XY routing)
    # ------------------------------------------------------------------

    def _step_toward(self, x: int, y: int, tx: int, ty: int) -> tuple[int, int]:
        """One XY-routing hop from (x, y) toward (tx, ty)."""
        if x != tx:
            return (x + (1 if tx > x else -1), y)
        return (x, y + (1 if ty > y else -1))

    def _router_path(self, a: NodeId, b: NodeId) -> list[NodeId]:
        """Router-level XY path from core a to core b, inclusive."""
        (_, x, y), (_, tx, ty) = a, b
        path = [a]
        while (x, y) != (tx, ty):
            x, y = self._step_toward(x, y, tx, ty)
            path.append(("core", x, y))
        return path

    def route(self, src: NodeId, dst: NodeId) -> tuple[int, ...]:
        """Directed link indices along the deterministic path src -> dst."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            self._route_cache[key] = ()
            return ()
        hops: list[int] = []
        a, b = src, dst
        if a[0] == "dram":
            router = self._dram_attach[a]
            hops.append(self._by_endpoints[(a, router)].index)
            a = router
        tail: list[int] = []
        if b[0] == "dram":
            router = self._dram_attach[b]
            tail.append(self._by_endpoints[(router, b)].index)
            b = router
        path = self._router_path(a, b)
        for u, v in zip(path, path[1:]):
            hops.append(self._by_endpoints[(u, v)].index)
        hops.extend(tail)
        result = tuple(hops)
        self._route_cache[key] = result
        return result

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        return len(self.route(src, dst))
