"""Architecture configuration: the template's configurable parameters.

Sec III of the paper lists the knobs of the scalable hardware template:
NoC bandwidth, D2D bandwidth, total DRAM bandwidth, core-array extents in
X and Y, chiplet divisions XCut / YCut, MACs per core and GLB size per
core.  :class:`ArchConfig` captures exactly those, validates the
template's structural constraints, and derives the quantities the
evaluators need (chiplet geometry, TOPS, DRAM unit count).

The paper quotes architectures as the tuple
``(Chiplet Number, Core Number, DRAM_BW, NoC_BW, D2D_BW, GBUF/Core,
MAC/Core)``; :meth:`ArchConfig.paper_tuple` renders that form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import InvalidArchitectureError
from repro.fabric.spec import DEFAULT_FABRIC, FabricSpec
from repro.units import GB, GHZ

#: Bandwidth supplied by one DRAM die (GDDR6, Sec V-C).
DRAM_UNIT_BW = 32 * GB


def arrange_cores(n_cores: int) -> tuple[int, int]:
    """Choose the (X, Y) core-array extents closest to a square.

    The paper keeps "the core array's length and width as close as
    possible" (Sec VI-A1): 36 cores -> 6x6, 18 cores -> 6x3.
    Returns (X, Y) with X >= Y.
    """
    if n_cores < 1:
        raise InvalidArchitectureError("need at least one core")
    best = (n_cores, 1)
    for y in range(1, int(math.isqrt(n_cores)) + 1):
        if n_cores % y == 0:
            best = (n_cores // y, y)
    return best


def cores_for_tops(tops: int, macs_per_core: int, frequency: float = GHZ):
    """Core count delivering ``tops`` with the paper's 1024-MAC accounting.

    TOPS = cores x MAC/core x 2 ops / 1024 at 1 GHz, so that 36 cores of
    1024 MACs reads as "72 TOPs" (Simba-compatible).  Returns ``None``
    when the division is not integral (the candidate is invalid).
    """
    ops_needed = tops * 1024 * frequency / GHZ
    per_core = macs_per_core * 2
    if ops_needed % per_core:
        return None
    return int(ops_needed // per_core)


@dataclass(frozen=True)
class ArchConfig:
    """One point of the hardware-template design space.

    Bandwidths are bytes/s, capacities bytes, frequency Hz.
    """

    cores_x: int
    cores_y: int
    xcut: int
    ycut: int
    dram_bw: float
    noc_bw: float
    d2d_bw: float
    glb_bytes: int
    macs_per_core: int
    frequency: float = GHZ
    #: Peak GLB port bandwidth per core, bytes/cycle.
    glb_bytes_per_cycle: int = 64
    #: Vector-unit throughput, ops/cycle.
    vector_lanes: int = 64
    #: Area multiplier on non-SRAM core logic.  1.0 for NVDLA-style
    #: fixed-function cores; general programmable cores (e.g. Tenstorrent
    #: Tensix with five RISC-V CPUs per core) spend substantially more
    #: logic area per MAC.
    logic_overhead: float = 1.0
    #: Interconnect fabric (topology kind + routing policy + knobs).
    #: The default — mesh with XY routing — is the paper's template and
    #: reproduces the pre-fabric evaluator bit for bit.
    fabric: FabricSpec = DEFAULT_FABRIC
    name: str = ""

    def __post_init__(self):
        if min(self.cores_x, self.cores_y, self.xcut, self.ycut) < 1:
            raise InvalidArchitectureError("extents and cuts must be >= 1")
        if self.cores_x % self.xcut:
            raise InvalidArchitectureError(
                f"XCut={self.xcut} must divide cores_x={self.cores_x}"
            )
        if self.cores_y % self.ycut:
            raise InvalidArchitectureError(
                f"YCut={self.ycut} must divide cores_y={self.cores_y}"
            )
        if self.macs_per_core < 1 or self.glb_bytes < 1:
            raise InvalidArchitectureError("core resources must be positive")
        if min(self.dram_bw, self.noc_bw) <= 0:
            raise InvalidArchitectureError("bandwidths must be positive")
        if self.n_chiplets > 1 and self.d2d_bw <= 0:
            raise InvalidArchitectureError(
                "multi-chiplet architectures need positive D2D bandwidth"
            )
        if self.n_chiplets > 1 and self.d2d_bw > self.noc_bw:
            raise InvalidArchitectureError("D2D bandwidth cannot exceed NoC")
        if not isinstance(self.fabric, FabricSpec):
            raise InvalidArchitectureError(
                f"fabric must be a FabricSpec, got {type(self.fabric).__name__}"
            )
        self.fabric.validate(self.cores_x, self.cores_y)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        return self.cores_x * self.cores_y

    @property
    def n_chiplets(self) -> int:
        return self.xcut * self.ycut

    @property
    def chiplet_cores_x(self) -> int:
        return self.cores_x // self.xcut

    @property
    def chiplet_cores_y(self) -> int:
        return self.cores_y // self.ycut

    @property
    def cores_per_chiplet(self) -> int:
        return self.chiplet_cores_x * self.chiplet_cores_y

    @property
    def is_monolithic(self) -> bool:
        return self.n_chiplets == 1

    @property
    def n_dram(self) -> int:
        """Number of DRAM dies / attach points (one per 32 GB/s unit)."""
        return max(1, math.ceil(self.dram_bw / DRAM_UNIT_BW))

    @property
    def tops(self) -> float:
        """Computing power in the paper's 1024-based TOPs accounting."""
        return self.n_cores * self.macs_per_core * 2 * (self.frequency / GHZ) / 1024

    @property
    def peak_macs_per_s(self) -> float:
        return self.n_cores * self.macs_per_core * self.frequency

    def chiplet_of(self, x: int, y: int) -> tuple[int, int]:
        """Chiplet grid coordinate owning core (x, y)."""
        return (x // self.chiplet_cores_x, y // self.chiplet_cores_y)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def paper_tuple(self) -> str:
        """Render as the paper's architecture tuple."""
        d2d = f"{self.d2d_bw / GB:.0f}GB/s" if not self.is_monolithic else "None"
        return (
            f"({self.n_chiplets}, {self.n_cores}, "
            f"{self.dram_bw / GB:.0f}GB/s, {self.noc_bw / GB:.0f}GB/s, "
            f"{d2d}, {self.glb_bytes / (1 << 20):.0f}MB, {self.macs_per_core})"
        )

    def with_name(self, name: str) -> "ArchConfig":
        return replace(self, name=name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "arch"
        return f"{label}{self.paper_tuple()}"
