"""Per-operation energy model (Sec V-B2).

The evaluator computes energy as Σ (operation count x unit energy) per
component.  Unit energies below come from the sources the paper itself
cites, normalized to a 12 nm logic process and 8-bit inference:

* on-chip line / router hop: < 0.1 pJ/bit [5]; we charge 0.06 pJ/bit/hop
  for the input-buffer + crossbar energy (constant per flit, Orion [60]).
* D2D GRS (clock-forwarding): 0.55 pJ/bit, the ground-referenced
  signaling Simba's chiplets actually use [42] (the paper also cites the
  1.17 pJ/bit 25 Gb/s variant [43]); charged per byte transferred.
* D2D SerDes (clock-embedded): consumes near-constant power whether or
  not data moves [47]-[49]; modeled as power x latency.
* DRAM (GDDR6): ~8 pJ/bit device+interface energy.
* 8-bit MAC + pipeline registers at 12 nm: ~0.16 pJ.
* GLB SRAM access: ~1.1 pJ/byte for a multi-bank 1-2 MB macro.

Absolute joules shift with these constants; the comparisons the paper
makes (mapping A vs B on arch X vs Y) depend on their ratios, which match
the cited literature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import PJ, pj_per_bit


@dataclass(frozen=True)
class EnergyModel:
    """Unit energies in joules (per op, per byte, or per byte-hop)."""

    #: 8-bit MAC including operand/pipeline registers, J/op.
    e_mac: float = 0.16 * PJ
    #: Vector-unit op (add/compare/exp approx), J/op.
    e_vector: float = 0.08 * PJ
    #: Global-buffer SRAM access, J/byte.
    e_glb: float = 1.1 * PJ
    #: Local register-file access inside the PE array, J/byte.
    e_reg: float = 0.06 * PJ
    #: NoC energy per byte per router hop (buffer + crossbar + wire).
    e_noc_hop: float = pj_per_bit(0.06)
    #: Clock-forwarding D2D (GRS) energy per byte crossing a D2D link.
    e_d2d: float = pj_per_bit(0.55)
    #: DRAM access energy per byte (GDDR6 device + PHY).
    e_dram: float = pj_per_bit(8.0)
    #: Clock-embedded D2D (SerDes) static power per interface, W.
    p_d2d_serdes: float = 0.08
    #: Use the clock-embedded (power x latency) D2D model instead of the
    #: per-byte model.  GRS per-byte is the paper's default (Sec V-B2).
    clock_embedded_d2d: bool = False

    def d2d_energy(self, volume_bytes: float, n_interfaces: int,
                   latency_s: float) -> float:
        """Energy of all D2D transfers under the configured D2D model."""
        if self.clock_embedded_d2d:
            return n_interfaces * self.p_d2d_serdes * latency_s
        return volume_bytes * self.e_d2d


#: Default model instance used across the framework.
DEFAULT_ENERGY = EnergyModel()
