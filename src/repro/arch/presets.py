"""Named architecture presets used in the paper's evaluation (Sec VI-A4).

* **S-Arch** — the optimized Simba baseline: 36 chiplets of one
  1024-MAC core each, 1 MB GLB/core (per the MAGNet exploration [58]),
  IO dies added with 2 GB/s-per-TOPs DRAM bandwidth.  Simba's GRS links
  provide less bandwidth than the on-chip network; we use NoC/4.
* **G-Arch** — the architecture Gemini's 72-TOPs DSE finds (Sec VI-B1):
  (2, 36, 144 GB/s, 32 GB/s, 16 GB/s, 2 MB, 1024).
* **T-Arch** — a 120-core monolithic accelerator with Tenstorrent
  Grayskull parameters (Sec VI-B2): 10x12 core grid, folded torus,
  ~1 MB SRAM/core, modeled at the same 12 nm point.
* **G-Arch-120** — the torus-template architecture Gemini finds in that
  comparison: (6, 60, 480 GB/s, 64 GB/s, 32 GB/s, 2 MB, 2048).
"""

from __future__ import annotations

from repro.arch.params import ArchConfig
from repro.fabric.spec import FabricSpec
from repro.units import GB, MB


def s_arch() -> ArchConfig:
    """Optimized Simba baseline (72 TOPs, 36 single-core chiplets)."""
    return ArchConfig(
        cores_x=6,
        cores_y=6,
        xcut=6,
        ycut=6,
        dram_bw=144 * GB,
        noc_bw=32 * GB,
        d2d_bw=8 * GB,
        glb_bytes=1 * MB,
        macs_per_core=1024,
        name="S-Arch",
    )


def g_arch() -> ArchConfig:
    """Gemini's explored 72-TOPs architecture (Sec VI-B1)."""
    return ArchConfig(
        cores_x=6,
        cores_y=6,
        xcut=2,
        ycut=1,
        dram_bw=144 * GB,
        noc_bw=32 * GB,
        d2d_bw=16 * GB,
        glb_bytes=2 * MB,
        macs_per_core=1024,
        name="G-Arch",
    )


def t_arch() -> ArchConfig:
    """Grayskull-like 120-core monolithic folded-torus baseline."""
    return ArchConfig(
        cores_x=12,
        cores_y=10,
        xcut=1,
        ycut=1,
        dram_bw=192 * GB,
        noc_bw=32 * GB,
        d2d_bw=32 * GB,
        glb_bytes=1 * MB,
        macs_per_core=1024,
        logic_overhead=2.5,  # Tensix: general programmable cores
        fabric=FabricSpec(kind="folded-torus"),  # Grayskull NoC
        name="T-Arch",
    )


def g_arch_120() -> ArchConfig:
    """Gemini's explored architecture in the torus comparison (Sec VI-B2)."""
    return ArchConfig(
        cores_x=10,
        cores_y=6,
        xcut=2,
        ycut=3,
        dram_bw=480 * GB,
        noc_bw=64 * GB,
        d2d_bw=32 * GB,
        glb_bytes=2 * MB,
        macs_per_core=2048,
        fabric=FabricSpec(kind="folded-torus"),  # torus-template DSE
        name="G-Arch-120",
    )
