"""Folded-torus topology variant (Sec VI-B2).

The paper demonstrates the template's generality by swapping the mesh for
a folded torus and comparing against a Tenstorrent-Grayskull-like
configuration.  A folded torus adds per-dimension wraparound links while
keeping physical hop lengths short (nodes are interleaved), so we model
wrap links with the same bandwidth/energy class as regular links and use
per-dimension shortest-direction routing (X first, then Y, matching the
mesh's deterministic XY discipline).
"""

from __future__ import annotations

from repro.arch.topology import MeshTopology


class FoldedTorusTopology(MeshTopology):
    """Mesh plus wraparound links, with modulo shortest-path routing."""

    def _build_links(self) -> None:
        super()._build_links()
        arch = self.arch
        # Wraparound columns (x = X-1 -> x = 0) and rows.
        for y in range(arch.cores_y):
            a, b = ("core", arch.cores_x - 1, y), ("core", 0, y)
            if (a, b) in self._by_endpoints:  # 1-wide dimension
                continue
            d2d = self._crosses_cut(a[1:], b[1:])
            bw = arch.d2d_bw if d2d else arch.noc_bw
            self._add_link(a, b, bw, d2d)
            self._add_link(b, a, bw, d2d)
        for x in range(arch.cores_x):
            a, b = ("core", x, arch.cores_y - 1), ("core", x, 0)
            if (a, b) in self._by_endpoints:
                continue
            d2d = self._crosses_cut(a[1:], b[1:])
            bw = arch.d2d_bw if d2d else arch.noc_bw
            self._add_link(a, b, bw, d2d)
            self._add_link(b, a, bw, d2d)

    def _step_toward(self, x: int, y: int, tx: int, ty: int):
        """One hop along the per-dimension shortest wrap-aware direction."""
        nx_size, ny_size = self.arch.cores_x, self.arch.cores_y
        if x != tx:
            forward = (tx - x) % nx_size
            backward = (x - tx) % nx_size
            step = 1 if forward <= backward else -1
            return ((x + step) % nx_size, y)
        forward = (ty - y) % ny_size
        backward = (y - ty) % ny_size
        step = 1 if forward <= backward else -1
        return (x, (y + step) % ny_size)
