"""Back-compat shim: the folded torus now lives in :mod:`repro.fabric`."""

from repro.fabric.torus import FoldedTorusTopology

__all__ = ["FoldedTorusTopology"]
