"""Silicon area model (Sec V-C).

The MC Evaluator's cornerstone is total chiplet silicon area.  The paper
takes analog IP areas from datasheets and logic areas from their own RTL;
we substitute published 12 nm density figures (documented in DESIGN.md):

* logic: ~0.5 mm^2 per 1024 8-bit MACs including PE-array control;
* SRAM: ~0.55 mm^2/MB macro density;
* mesh router + DMA + control: small fixed per-core overhead;
* GRS-class D2D interface: PHY + controller area that grows with lane
  count (bandwidth); calibrated so a Simba-like 1-core chiplet spends
  ~35-40 % of its area on D2D, matching the paper's Sec VI-B1 analysis;
* IO chiplet: fixed controller area plus DRAM PHY per 32 GB/s unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import ArchConfig
from repro.units import GB, MB


@dataclass(frozen=True)
class AreaModel:
    """Area coefficients in mm^2 (12 nm)."""

    a_per_mac: float = 0.5 / 1024
    #: Compiled multi-bank SRAM macro with ECC and double-ported GLB
    #: arbitration at 12 nm; calibrated so the S-Arch -> G-Arch monetary
    #: cost delta matches the paper's +14.3 % (see DESIGN.md).
    a_per_mb_sram: float = 0.9
    a_router: float = 0.05
    a_core_fixed: float = 0.22  # control unit, DMA, vector unit
    #: D2D interface: fixed PHY area + per-(GB/s) lane area.
    a_d2d_fixed: float = 0.08
    a_d2d_per_gbps: float = 0.015
    #: IO chiplet: controller/misc fixed area + DRAM PHY per 32 GB/s die.
    a_io_fixed: float = 8.0
    a_dram_phy_per_unit: float = 1.6

    # ------------------------------------------------------------------

    def core_area(self, arch: ArchConfig) -> float:
        """One computing core (PE array + GLB + router + control)."""
        logic = (
            self.a_per_mac * arch.macs_per_core
            + self.a_router
            + self.a_core_fixed
        )
        return (
            logic * arch.logic_overhead
            + self.a_per_mb_sram * arch.glb_bytes / MB
        )

    def d2d_interface_area(self, arch: ArchConfig) -> float:
        """One D2D interface (TX+RX pair) sized for the D2D bandwidth."""
        return self.a_d2d_fixed + self.a_d2d_per_gbps * arch.d2d_bw / GB

    def d2d_interfaces_per_chiplet(self, arch: ArchConfig) -> int:
        """Interfaces placed around a computing chiplet (Sec III):
        one per core on each of the four sides."""
        if arch.is_monolithic:
            return 0
        return 2 * (arch.chiplet_cores_x + arch.chiplet_cores_y)

    def compute_chiplet_area(self, arch: ArchConfig) -> float:
        """Area of one computing chiplet."""
        cores = arch.cores_per_chiplet * self.core_area(arch)
        d2d = self.d2d_interfaces_per_chiplet(arch) * self.d2d_interface_area(arch)
        return cores + d2d

    def d2d_area_fraction(self, arch: ArchConfig) -> float:
        """Fraction of computing-chiplet area spent on D2D interfaces."""
        total = self.compute_chiplet_area(arch)
        d2d = self.d2d_interfaces_per_chiplet(arch) * self.d2d_interface_area(arch)
        return d2d / total if total else 0.0

    def io_chiplet_area(self, arch: ArchConfig) -> float:
        """One IO chiplet (the template uses two: left and right edges)."""
        units = max(1, arch.n_dram // 2 + arch.n_dram % 2)
        return self.a_io_fixed + self.a_dram_phy_per_unit * units

    def die_areas(self, arch: ArchConfig) -> list[float]:
        """Areas of every die in the package.

        Monolithic accelerators integrate IO on the single die; chiplet
        accelerators have ``n_chiplets`` computing dies plus two IO dies.
        """
        if arch.is_monolithic:
            io = 2 * self.io_chiplet_area(arch) - self.a_io_fixed  # one ctrl
            return [self.compute_chiplet_area(arch) + io]
        compute = [self.compute_chiplet_area(arch)] * arch.n_chiplets
        return compute + [self.io_chiplet_area(arch)] * 2

    def total_area(self, arch: ArchConfig) -> float:
        return sum(self.die_areas(arch))


#: Default model instance used across the framework.
DEFAULT_AREA = AreaModel()
