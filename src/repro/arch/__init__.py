"""Hardware-template substrate: configuration, topology, energy, area."""

from repro.arch.area import DEFAULT_AREA, AreaModel
from repro.arch.energy import DEFAULT_ENERGY, EnergyModel
from repro.arch.params import ArchConfig, arrange_cores, cores_for_tops
from repro.arch.presets import g_arch, g_arch_120, s_arch, t_arch
from repro.arch.topology import Link, MeshTopology, NodeId
from repro.arch.torus import FoldedTorusTopology
from repro.fabric import FabricSpec, Topology, build_topology

__all__ = [
    "ArchConfig",
    "AreaModel",
    "DEFAULT_AREA",
    "DEFAULT_ENERGY",
    "EnergyModel",
    "FabricSpec",
    "FoldedTorusTopology",
    "Link",
    "MeshTopology",
    "NodeId",
    "Topology",
    "arrange_cores",
    "build_topology",
    "cores_for_tops",
    "g_arch",
    "g_arch_120",
    "s_arch",
    "t_arch",
]
