"""Physical-unit constants used throughout the framework.

All internal quantities use a consistent base-unit system:

* time        — seconds
* energy      — joules
* data volume — bytes
* bandwidth   — bytes / second
* area        — mm^2
* money       — USD

Helper constants below convert the units that appear in the paper
(GB/s, pJ/bit, TOPS, KB/MB) into the base system so that call sites can
write, e.g., ``144 * GB`` for a DRAM bandwidth of 144 GB/s.
"""

# Data volume.
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# Energy.
PJ = 1e-12
NJ = 1e-9

#: Joules per bit given an energy quoted in pJ/bit.
PJ_PER_BIT = PJ
#: Joules per byte given an energy quoted in pJ/bit.
PJ_PER_BIT_TO_J_PER_BYTE = 8 * PJ

# Time.
NS = 1e-9
US = 1e-6
MS = 1e-3

# Frequency of the hardware template (Sec VI-A1: 1 GHz default).
GHZ = 1e9

#: Operations per second represented by "1 TOPS" in the paper's
#: 1024-MAC-centric accounting (36 cores x 1024 MACs @ 1 GHz == "72 TOPs").
TOPS = 1024 * GHZ


def pj_per_bit(value):
    """Convert an energy quoted in pJ/bit to J/byte."""
    return value * PJ_PER_BIT_TO_J_PER_BYTE


def gbps(value):
    """Convert a bandwidth quoted in GB/s to bytes/s."""
    return value * GB
