"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidArchitectureError(ReproError):
    """An architecture configuration violates a template constraint."""


class InvalidMappingError(ReproError):
    """An encoded LP SPM scheme violates an encoding constraint."""


class InvalidWorkloadError(ReproError):
    """A DNN graph or layer definition is malformed."""


class CapacityError(ReproError):
    """A workload cannot be scheduled within the available buffer capacity."""


class SearchError(ReproError):
    """A search engine could not produce a valid result."""
