"""LP SPM parsing: encoded scheme -> concrete per-core workloads (Fig 3).

Parsing an encoded :class:`LayerGroupMapping` produces, for every layer,
the ofmap :class:`Region` each core owns (via near-equal splits along the
four partition dimensions and the Correspondence Rule) and the
:class:`~repro.intracore.CoreWorkload` that core must execute.  The
parser also exposes the receptive-field arithmetic that traffic analysis
uses to find which producer bytes each consumer part needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import (
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    split_range,
)
from repro.errors import InvalidMappingError
from repro.intracore.dataflow import CoreWorkload
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


@dataclass(frozen=True)
class Region:
    """A half-open 4-D box of the ofmap cube: (h, w, b, k) ranges."""

    h_lo: int
    h_hi: int
    w_lo: int
    w_hi: int
    b_lo: int
    b_hi: int
    k_lo: int
    k_hi: int

    @property
    def h_size(self) -> int:
        return self.h_hi - self.h_lo

    @property
    def w_size(self) -> int:
        return self.w_hi - self.w_lo

    @property
    def b_size(self) -> int:
        return self.b_hi - self.b_lo

    @property
    def k_size(self) -> int:
        return self.k_hi - self.k_lo

    def volume(self) -> int:
        return self.h_size * self.w_size * self.b_size * self.k_size

    def is_empty(self) -> bool:
        return self.volume() <= 0

    def intersection_volume(self, other: "Region") -> int:
        h = min(self.h_hi, other.h_hi) - max(self.h_lo, other.h_lo)
        w = min(self.w_hi, other.w_hi) - max(self.w_lo, other.w_lo)
        b = min(self.b_hi, other.b_hi) - max(self.b_lo, other.b_lo)
        k = min(self.k_hi, other.k_hi) - max(self.k_lo, other.k_lo)
        if min(h, w, b, k) <= 0:
            return 0
        return h * w * b * k


@dataclass(frozen=True)
class PlacedPart:
    """One partitioned workload: its owning core, region and workload."""

    core: int
    part_id: tuple[int, int, int, int]
    region: Region
    workload: CoreWorkload


@dataclass(frozen=True)
class ParsedLayer:
    name: str
    scheme: MappingScheme
    parts: tuple[PlacedPart, ...]

    def part_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(regions[n, 8], cores[n])`` arrays over the parts.

        Region rows hold ``(h_lo, h_hi, w_lo, w_hi, b_lo, b_hi, k_lo,
        k_hi)``.  Memoized on the (immutable) record so traffic analysis
        can intersect a consumer's requirement against every producer
        part in one vector operation.
        """
        cached = getattr(self, "_part_arrays", None)
        if cached is None:
            regions = np.array(
                [
                    [p.region.h_lo, p.region.h_hi, p.region.w_lo,
                     p.region.w_hi, p.region.b_lo, p.region.b_hi,
                     p.region.k_lo, p.region.k_hi]
                    for p in self.parts
                ],
                dtype=np.int64,
            )
            cores = np.array([p.core for p in self.parts], dtype=np.int64)
            cached = (regions, cores)
            object.__setattr__(self, "_part_arrays", cached)
        return cached

    def weight_bytes_array(self) -> np.ndarray:
        """Per-part stationary-operand bytes (lazy, memoized)."""
        cached = getattr(self, "_weight_bytes", None)
        if cached is None:
            cached = np.array(
                [p.workload.weight_bytes() for p in self.parts],
                dtype=np.float64,
            )
            object.__setattr__(self, "_weight_bytes", cached)
        return cached


@dataclass(frozen=True)
class ParsedGroup:
    """The concrete SPM scheme of a layer group."""

    group: LayerGroup
    layers: dict[str, ParsedLayer]

    def layer(self, name: str) -> ParsedLayer:
        return self.layers[name]


def part_region(layer: Layer, scheme: MappingScheme, batch_unit: int,
                h: int, w: int, b: int, k: int) -> Region:
    """Ofmap region of part (h, w, b, k) under near-equal splits."""
    part = scheme.part
    h_lo, h_hi = split_range(layer.out_h, part.h, h)
    w_lo, w_hi = split_range(layer.out_w, part.w, w)
    b_lo, b_hi = split_range(batch_unit, part.b, b)
    k_lo, k_hi = split_range(layer.out_k, part.k, k)
    return Region(h_lo, h_hi, w_lo, w_hi, b_lo, b_hi, k_lo, k_hi)


def _workload_for(layer: Layer, region: Region) -> CoreWorkload:
    """The core-level workload computing ``region`` of ``layer``."""
    if layer.is_channelwise:
        c = region.k_size
        groups = 1
    elif layer.kind is LayerType.MATMUL:
        c = layer.in_c
        groups = 1
    else:
        c = layer.in_c
        groups = layer.groups
        # A K-slice of a grouped conv touches only its groups' channels.
        if layer.groups > 1:
            k_per_group = layer.out_k // layer.groups
            g_lo = region.k_lo // k_per_group
            g_hi = (region.k_hi - 1) // k_per_group + 1
            n_groups = g_hi - g_lo
            c = n_groups * (layer.in_c // layer.groups)
            groups = n_groups
    return CoreWorkload(
        kind=layer.kind,
        b=region.b_size,
        k=region.k_size,
        h=region.h_size,
        w=region.w_size,
        c=c,
        r=layer.kernel_r,
        s=layer.kernel_s,
        stride=layer.stride,
        groups=groups,
        bytes_per_elem=layer.bytes_per_elem,
    )


def parse_scheme(
    layer: Layer, scheme: MappingScheme, batch_unit: int
) -> tuple[PlacedPart, ...]:
    """Apply the Correspondence Rule to place every part on its core."""
    part = scheme.part
    # Near-equal split intervals per dimension, computed once instead
    # of per part (ids() is numerical-ID order, so the running index
    # matches the Correspondence Rule's core assignment).
    hs = [split_range(layer.out_h, part.h, i) for i in range(part.h)]
    ws = [split_range(layer.out_w, part.w, i) for i in range(part.w)]
    bs = [split_range(batch_unit, part.b, i) for i in range(part.b)]
    ks = [split_range(layer.out_k, part.k, i) for i in range(part.k)]
    core_group = scheme.core_group
    parts = []
    nid = 0
    for (h, w, b, k) in part.ids():
        (h_lo, h_hi), (w_lo, w_hi) = hs[h], ws[w]
        (b_lo, b_hi), (k_lo, k_hi) = bs[b], ks[k]
        if h_hi <= h_lo or w_hi <= w_lo or b_hi <= b_lo or k_hi <= k_lo:
            raise InvalidMappingError(
                f"{layer.name}: partition produced an empty part "
                f"{(h, w, b, k)} — partition counts exceed extents"
            )
        region = Region(h_lo, h_hi, w_lo, w_hi, b_lo, b_hi, k_lo, k_hi)
        parts.append(
            PlacedPart(core_group[nid], (h, w, b, k), region,
                       _workload_for(layer, region))
        )
        nid += 1
    return tuple(parts)


def parse_lms(
    graph: DNNGraph, lms: LayerGroupMapping, cache: dict | None = None
) -> ParsedGroup:
    """Parse a full LMS into concrete per-core workloads.

    ``cache`` memoizes :class:`ParsedLayer` records per
    ``(layer, scheme, batch_unit)``: SA moves mutate one layer's scheme
    at a time, so every other layer of the group parses to an identical
    (immutable) record that can be reused.  A plain dict works; an
    :class:`~repro.perf.LruDict` additionally bounds the memo.  The
    cache must be scoped to one graph — schemes say nothing about layer
    shapes.
    """
    layers = {}
    batch_unit = lms.group.batch_unit
    if cache is None:
        for name in lms.group.layers:
            scheme = lms.scheme(name)
            layers[name] = ParsedLayer(
                name, scheme,
                parse_scheme(graph.layer(name), scheme, batch_unit),
            )
        return ParsedGroup(lms.group, layers)
    lookup = getattr(cache, "get_lru", cache.get)
    store = getattr(cache, "put", cache.__setitem__)
    for name in lms.group.layers:
        scheme = lms.scheme(name)
        key = (name, scheme, batch_unit)
        parsed_layer = lookup(key)
        if parsed_layer is None:
            parsed_layer = ParsedLayer(
                name, scheme,
                parse_scheme(graph.layer(name), scheme, batch_unit),
            )
            store(key, parsed_layer)
        layers[name] = parsed_layer
    return ParsedGroup(lms.group, layers)


# ----------------------------------------------------------------------
# Receptive-field arithmetic (used by traffic analysis)
# ----------------------------------------------------------------------


def required_input_box(
    layer: Layer, region: Region
) -> tuple[int, int, int, int]:
    """Ifmap spatial box (ih_lo, ih_hi, iw_lo, iw_hi) feeding ``region``.

    Halo-aware: the box is the union of the receptive fields of the
    region's output pixels, clipped to the valid ifmap extent (padding
    contributes no transferred data).
    """
    ih_lo = max(0, region.h_lo * layer.stride - layer.pad_h)
    ih_hi = min(
        layer.in_h,
        (region.h_hi - 1) * layer.stride - layer.pad_h + layer.kernel_r,
    )
    iw_lo = max(0, region.w_lo * layer.stride - layer.pad_w)
    iw_hi = min(
        layer.in_w,
        (region.w_hi - 1) * layer.stride - layer.pad_w + layer.kernel_s,
    )
    return ih_lo, max(ih_lo, ih_hi), iw_lo, max(iw_lo, iw_hi)


def required_channels(layer: Layer, region: Region) -> tuple[int, int]:
    """Ifmap channel range feeding ``region`` (consumer coordinates)."""
    if layer.is_channelwise:
        return region.k_lo, region.k_hi
    if layer.groups > 1:
        k_per_group = layer.out_k // layer.groups
        c_per_group = layer.in_c // layer.groups
        g_lo = region.k_lo // k_per_group
        g_hi = (region.k_hi - 1) // k_per_group + 1
        return g_lo * c_per_group, g_hi * c_per_group
    return 0, layer.in_c
