"""LP SPM parsing: encoded scheme -> concrete per-core workloads (Fig 3).

Parsing an encoded :class:`LayerGroupMapping` produces, for every layer,
the ofmap :class:`Region` each core owns (via near-equal splits along the
four partition dimensions and the Correspondence Rule) and the
:class:`~repro.intracore.CoreWorkload` that core must execute.  The
parser also exposes the receptive-field arithmetic that traffic analysis
uses to find which producer bytes each consumer part needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding import (
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    split_range,
)
from repro.errors import InvalidMappingError
from repro.intracore.dataflow import CoreWorkload
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


@dataclass(frozen=True)
class Region:
    """A half-open 4-D box of the ofmap cube: (h, w, b, k) ranges."""

    h_lo: int
    h_hi: int
    w_lo: int
    w_hi: int
    b_lo: int
    b_hi: int
    k_lo: int
    k_hi: int

    @property
    def h_size(self) -> int:
        return self.h_hi - self.h_lo

    @property
    def w_size(self) -> int:
        return self.w_hi - self.w_lo

    @property
    def b_size(self) -> int:
        return self.b_hi - self.b_lo

    @property
    def k_size(self) -> int:
        return self.k_hi - self.k_lo

    def volume(self) -> int:
        return self.h_size * self.w_size * self.b_size * self.k_size

    def is_empty(self) -> bool:
        return self.volume() <= 0

    def intersection_volume(self, other: "Region") -> int:
        h = min(self.h_hi, other.h_hi) - max(self.h_lo, other.h_lo)
        w = min(self.w_hi, other.w_hi) - max(self.w_lo, other.w_lo)
        b = min(self.b_hi, other.b_hi) - max(self.b_lo, other.b_lo)
        k = min(self.k_hi, other.k_hi) - max(self.k_lo, other.k_lo)
        if min(h, w, b, k) <= 0:
            return 0
        return h * w * b * k


@dataclass(frozen=True)
class PlacedPart:
    """One partitioned workload: its owning core, region and workload."""

    core: int
    part_id: tuple[int, int, int, int]
    region: Region
    workload: CoreWorkload


@dataclass(frozen=True)
class ParsedLayer:
    name: str
    scheme: MappingScheme
    parts: tuple[PlacedPart, ...]


@dataclass(frozen=True)
class ParsedGroup:
    """The concrete SPM scheme of a layer group."""

    group: LayerGroup
    layers: dict[str, ParsedLayer]

    def layer(self, name: str) -> ParsedLayer:
        return self.layers[name]


def part_region(layer: Layer, scheme: MappingScheme, batch_unit: int,
                h: int, w: int, b: int, k: int) -> Region:
    """Ofmap region of part (h, w, b, k) under near-equal splits."""
    part = scheme.part
    h_lo, h_hi = split_range(layer.out_h, part.h, h)
    w_lo, w_hi = split_range(layer.out_w, part.w, w)
    b_lo, b_hi = split_range(batch_unit, part.b, b)
    k_lo, k_hi = split_range(layer.out_k, part.k, k)
    return Region(h_lo, h_hi, w_lo, w_hi, b_lo, b_hi, k_lo, k_hi)


def _workload_for(layer: Layer, region: Region) -> CoreWorkload:
    """The core-level workload computing ``region`` of ``layer``."""
    if layer.is_channelwise:
        c = region.k_size
        groups = 1
    elif layer.kind is LayerType.MATMUL:
        c = layer.in_c
        groups = 1
    else:
        c = layer.in_c
        groups = layer.groups
        # A K-slice of a grouped conv touches only its groups' channels.
        if layer.groups > 1:
            k_per_group = layer.out_k // layer.groups
            g_lo = region.k_lo // k_per_group
            g_hi = (region.k_hi - 1) // k_per_group + 1
            n_groups = g_hi - g_lo
            c = n_groups * (layer.in_c // layer.groups)
            groups = n_groups
    return CoreWorkload(
        kind=layer.kind,
        b=region.b_size,
        k=region.k_size,
        h=region.h_size,
        w=region.w_size,
        c=c,
        r=layer.kernel_r,
        s=layer.kernel_s,
        stride=layer.stride,
        groups=groups,
        bytes_per_elem=layer.bytes_per_elem,
    )


def parse_scheme(
    layer: Layer, scheme: MappingScheme, batch_unit: int
) -> tuple[PlacedPart, ...]:
    """Apply the Correspondence Rule to place every part on its core."""
    parts = []
    for (h, w, b, k) in scheme.part.ids():
        region = part_region(layer, scheme, batch_unit, h, w, b, k)
        if region.is_empty():
            raise InvalidMappingError(
                f"{layer.name}: partition produced an empty part "
                f"{(h, w, b, k)} — partition counts exceed extents"
            )
        core = scheme.core_of(h, w, b, k)
        parts.append(
            PlacedPart(core, (h, w, b, k), region, _workload_for(layer, region))
        )
    return tuple(parts)


def parse_lms(graph: DNNGraph, lms: LayerGroupMapping) -> ParsedGroup:
    """Parse a full LMS into concrete per-core workloads."""
    layers = {}
    for name in lms.group.layers:
        layer = graph.layer(name)
        scheme = lms.scheme(name)
        layers[name] = ParsedLayer(
            name, scheme, parse_scheme(layer, scheme, lms.group.batch_unit)
        )
    return ParsedGroup(lms.group, layers)


# ----------------------------------------------------------------------
# Receptive-field arithmetic (used by traffic analysis)
# ----------------------------------------------------------------------


def required_input_box(
    layer: Layer, region: Region
) -> tuple[int, int, int, int]:
    """Ifmap spatial box (ih_lo, ih_hi, iw_lo, iw_hi) feeding ``region``.

    Halo-aware: the box is the union of the receptive fields of the
    region's output pixels, clipped to the valid ifmap extent (padding
    contributes no transferred data).
    """
    ih_lo = max(0, region.h_lo * layer.stride - layer.pad_h)
    ih_hi = min(
        layer.in_h,
        (region.h_hi - 1) * layer.stride - layer.pad_h + layer.kernel_r,
    )
    iw_lo = max(0, region.w_lo * layer.stride - layer.pad_w)
    iw_hi = min(
        layer.in_w,
        (region.w_hi - 1) * layer.stride - layer.pad_w + layer.kernel_s,
    )
    return ih_lo, max(ih_lo, ih_hi), iw_lo, max(iw_lo, iw_hi)


def required_channels(layer: Layer, region: Region) -> tuple[int, int]:
    """Ifmap channel range feeding ``region`` (consumer coordinates)."""
    if layer.is_channelwise:
        return region.k_lo, region.k_hi
    if layer.groups > 1:
        k_per_group = layer.out_k // layer.groups
        c_per_group = layer.in_c // layer.groups
        g_lo = region.k_lo // k_per_group
        g_hi = (region.k_hi - 1) // k_per_group + 1
        return g_lo * c_per_group, g_hi * c_per_group
    return 0, layer.in_c
