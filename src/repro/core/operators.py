"""The five SA operators (Sec V-B1).

Each operator takes a :class:`LayerGroupMapping` and returns a modified
copy, or ``None`` when it is not applicable to the current state (the SA
controller then draws another operator).  Together the operators make
every point of the encoding space reachable from every other (the paper's
comprehensiveness proof [1]):

* **OP1** re-randomizes one layer's Partition under its constraints;
* **OP2** swaps two cores inside one layer's Core Group;
* **OP3** swaps a core of one layer with a core of another layer;
* **OP4** moves a core from one layer's CG to another's and re-factors
  both Partitions for the new sizes;
* **OP5** re-draws one explicitly managed FD entry in [0, D].
"""

from __future__ import annotations

import random

from repro.core.encoding import (
    LayerGroupMapping,
    MappingScheme,
    Partition,
)
from repro.core.initial import factor_partition
from repro.workloads.graph import DNNGraph


def _random_partition(
    graph: DNNGraph, lms: LayerGroupMapping, name: str, n_cores: int,
    rng: random.Random,
) -> Partition | None:
    layer = graph.layer(name)
    part = factor_partition(layer, n_cores, lms.group.batch_unit, rng=rng)
    return part


def op1_change_partition(
    graph: DNNGraph, lms: LayerGroupMapping, rng: random.Random
) -> LayerGroupMapping | None:
    """Re-randomize one layer's Part, keeping |CG| fixed."""
    name = rng.choice(lms.group.layers)
    scheme = lms.scheme(name)
    part = _random_partition(graph, lms, name, scheme.n_cores, rng)
    if part is None or part == scheme.part:
        return None
    # Direct construction: dataclasses.replace re-derives the field
    # list on every call, and operators run once per SA iteration.
    return lms.with_scheme(
        name, MappingScheme(part, scheme.core_group, scheme.fd)
    )


def op2_swap_within_layer(
    graph: DNNGraph, lms: LayerGroupMapping, rng: random.Random
) -> LayerGroupMapping | None:
    """Swap two positions of one layer's ordered CG."""
    name = rng.choice(lms.group.layers)
    scheme = lms.scheme(name)
    if scheme.n_cores < 2:
        return None
    i, j = rng.sample(range(scheme.n_cores), 2)
    cg = list(scheme.core_group)
    cg[i], cg[j] = cg[j], cg[i]
    return lms.with_scheme(
        name, MappingScheme(scheme.part, tuple(cg), scheme.fd)
    )


def op3_swap_between_layers(
    graph: DNNGraph, lms: LayerGroupMapping, rng: random.Random
) -> LayerGroupMapping | None:
    """Exchange one core of layer a with one core of layer b."""
    if len(lms.group) < 2:
        return None
    a, b = rng.sample(list(lms.group.layers), 2)
    sa_, sb = lms.scheme(a), lms.scheme(b)
    ia = rng.randrange(sa_.n_cores)
    ib = rng.randrange(sb.n_cores)
    cga, cgb = list(sa_.core_group), list(sb.core_group)
    cga[ia], cgb[ib] = cgb[ib], cga[ia]
    out = lms.with_scheme(a, MappingScheme(sa_.part, tuple(cga), sa_.fd))
    return out.with_scheme(b, MappingScheme(sb.part, tuple(cgb), sb.fd))


def op4_move_core(
    graph: DNNGraph, lms: LayerGroupMapping, rng: random.Random
) -> LayerGroupMapping | None:
    """Move a core from one layer to another; re-factor both Parts."""
    if len(lms.group) < 2:
        return None
    donor, receiver = rng.sample(list(lms.group.layers), 2)
    sd, sr = lms.scheme(donor), lms.scheme(receiver)
    if sd.n_cores < 2:
        return None
    new_d = _random_partition(graph, lms, donor, sd.n_cores - 1, rng)
    new_r = _random_partition(graph, lms, receiver, sr.n_cores + 1, rng)
    if new_d is None or new_r is None:
        return None
    idx = rng.randrange(sd.n_cores)
    cgd = list(sd.core_group)
    moved = cgd.pop(idx)
    cgr = list(sr.core_group)
    cgr.insert(rng.randrange(len(cgr) + 1), moved)
    out = lms.with_scheme(
        donor, MappingScheme(new_d, tuple(cgd), sd.fd)
    )
    return out.with_scheme(
        receiver, MappingScheme(new_r, tuple(cgr), sr.fd)
    )


def op5_change_flow(
    graph: DNNGraph, lms: LayerGroupMapping, rng: random.Random,
    n_dram: int,
) -> LayerGroupMapping | None:
    """Re-draw one explicit FD entry within [0, n_dram]."""
    name = rng.choice(lms.group.layers)
    scheme = lms.scheme(name)
    fields = [
        f for f, v in zip(
            ("ifmap", "weight", "ofmap"), scheme.fd.as_tuple()
        )
        if v >= 0
    ]
    if not fields:
        return None
    field = rng.choice(fields)
    value = rng.randint(0, n_dram)
    if getattr(scheme.fd, field) == value:
        return None
    fd = scheme.fd.replace(**{field: value})
    return lms.with_scheme(
        name, MappingScheme(scheme.part, scheme.core_group, fd)
    )


#: Operator registry in paper order.
OPERATORS = (
    ("OP1", op1_change_partition),
    ("OP2", op2_swap_within_layer),
    ("OP3", op3_swap_between_layers),
    ("OP4", op4_move_core),
    ("OP5", op5_change_flow),
)
