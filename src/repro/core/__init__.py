"""Gemini's primary contribution: LP SPM encoding + SA mapping engine."""

from repro.core.encoding import (
    IMPLICIT,
    INTERLEAVED,
    FdRequirements,
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
    fd_requirements,
    split_range,
    validate_lms,
)
from repro.core.engine import MappingEngine, MappingEngineSettings, MappingResult
from repro.core.graphpart import estimate_group_cost, partition_graph
from repro.core.initial import initial_lms
from repro.core.operators import OPERATORS
from repro.core.parser import ParsedGroup, Region, parse_lms
from repro.core.sa import SAController, SASettings, SAStats
from repro.core.space import (
    gemini_space_size,
    log10_size,
    partition_count,
    tangram_space_size,
)

__all__ = [
    "IMPLICIT",
    "INTERLEAVED",
    "FdRequirements",
    "FlowOfData",
    "LayerGroup",
    "LayerGroupMapping",
    "MappingEngine",
    "MappingEngineSettings",
    "MappingResult",
    "MappingScheme",
    "OPERATORS",
    "ParsedGroup",
    "Partition",
    "Region",
    "SAController",
    "SASettings",
    "SAStats",
    "estimate_group_cost",
    "fd_requirements",
    "gemini_space_size",
    "initial_lms",
    "log10_size",
    "parse_lms",
    "partition_count",
    "partition_graph",
    "split_range",
    "tangram_space_size",
    "validate_lms",
]
