"""Layer-centric LP spatial-mapping encoding (Sec IV-A).

An LP Spatial Mapping Scheme (:class:`LayerGroupMapping`, the paper's
``LMS``) for a layer group holds one :class:`MappingScheme` (``MS``) per
layer, each with three attributes:

* :class:`Partition` — ``Part_i = (H_i, W_i, B_i, K_i)``, splitting the
  four-dimensional ofmap cube into ``nc_i`` near-equal parts;
* Core Group — an **ordered** tuple of core indices (``(c1, c2) != (c2,
  c1)``): the Correspondence Rule maps the partitioned workload with
  numerical ID ``n`` to the ``(n+1)``-th core of the group;
* :class:`FlowOfData` — ``FD_i = (IF_i, WGT_i, OF_i)`` with ``-1`` for
  implicitly managed / absent flows, ``0`` for DRAM interleaving and
  ``d > 0`` for explicit DRAM ``d``.

The module also derives which FD entries *must* be explicit for a given
layer group (the paper's three management rules) and validates schemes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.errors import InvalidMappingError
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer

#: FD sentinel for "implicitly managed or absent".
IMPLICIT = -1
#: FD value for "interleave across all DRAMs".
INTERLEAVED = 0


def split_range(total: int, parts: int, index: int) -> tuple[int, int]:
    """Near-equal integer split: the ``index``-th of ``parts`` intervals."""
    lo = index * total // parts
    hi = (index + 1) * total // parts
    return lo, hi


@dataclass(frozen=True)
class Partition:
    """``Part_i``: partition counts along (H, W, B, K) of the ofmap cube."""

    h: int
    w: int
    b: int
    k: int

    def __post_init__(self):
        if min(self.h, self.w, self.b, self.k) < 1:
            raise InvalidMappingError("partition counts must be >= 1")

    def __hash__(self) -> int:
        # Partitions key the compiled-path caches on every SA
        # evaluation — memoize the (immutable) hash like MappingScheme.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.h, self.w, self.b, self.k))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def n_parts(self) -> int:
        return self.h * self.w * self.b * self.k

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.h, self.w, self.b, self.k)

    def ids(self):
        """4-D part IDs in numerical-ID order (Correspondence Rule).

        ``NID = h*W*B*K + w*B*K + b*K + k``, i.e. row-major over
        (h, w, b, k).
        """
        return itertools.product(
            range(self.h), range(self.w), range(self.b), range(self.k)
        )

    def numerical_id(self, h: int, w: int, b: int, k: int) -> int:
        return ((h * self.w + w) * self.b + b) * self.k + k

    def feasible_for(self, layer: Layer, batch_unit: int) -> bool:
        """Counts cannot exceed the extents they partition."""
        return (
            self.h <= layer.out_h
            and self.w <= layer.out_w
            and self.b <= batch_unit
            and self.k <= layer.out_k
        )


@dataclass(frozen=True)
class FlowOfData:
    """``FD_i = (IF, WGT, OF)`` DRAM source/destination selectors."""

    ifmap: int
    weight: int
    ofmap: int

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.ifmap, self.weight, self.ofmap)

    def replace(self, **kw) -> "FlowOfData":
        return replace(self, **kw)


@dataclass(frozen=True, eq=True)
class MappingScheme:
    """``MS_i``: one layer's Partition, Core Group and Flow of Data."""

    part: Partition
    core_group: tuple[int, ...]
    fd: FlowOfData

    def __hash__(self) -> int:
        # Schemes key every evaluation cache and core groups can be
        # dozens of entries long — memoize the (immutable) hash.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.part, self.core_group, self.fd))
            object.__setattr__(self, "_hash", h)
        return h

    def __post_init__(self):
        if self.part.n_parts != len(self.core_group):
            raise InvalidMappingError(
                f"partition yields {self.part.n_parts} parts but the core "
                f"group has {len(self.core_group)} cores"
            )
        if len(set(self.core_group)) != len(self.core_group):
            raise InvalidMappingError("core group contains duplicate cores")

    @property
    def n_cores(self) -> int:
        return len(self.core_group)

    def core_of(self, h: int, w: int, b: int, k: int) -> int:
        """Correspondence Rule: the core computing part (h, w, b, k)."""
        return self.core_group[self.part.numerical_id(h, w, b, k)]


@dataclass(frozen=True)
class LayerGroup:
    """A pipeline stage set: layer names plus the batch unit per stage."""

    layers: tuple[str, ...]
    batch_unit: int

    def __post_init__(self):
        if self.batch_unit < 1:
            raise InvalidMappingError("batch unit must be >= 1")
        if not self.layers:
            raise InvalidMappingError("empty layer group")

    def __contains__(self, name: str) -> bool:
        members = self.__dict__.get("_member_set")
        if members is None:
            members = frozenset(self.layers)
            object.__setattr__(self, "_member_set", members)
        return name in members

    def __len__(self) -> int:
        return len(self.layers)


class LayerGroupMapping:
    """``LMS``: the full LP SPM scheme of one layer group."""

    def __init__(self, group: LayerGroup, schemes: dict[str, MappingScheme]):
        # dict-keys == frozenset is a set comparison; reusing the
        # group's cached member set keeps this hot constructor (every
        # SA operator builds mappings) from re-deriving a set per call.
        members = group.__dict__.get("_member_set")
        if members is None:
            members = frozenset(group.layers)
            object.__setattr__(group, "_member_set", members)
        if schemes.keys() != members:
            raise InvalidMappingError(
                "schemes must cover exactly the group's layers"
            )
        self.group = group
        self.schemes = dict(schemes)

    def scheme(self, name: str) -> MappingScheme:
        return self.schemes[name]

    def with_scheme(self, name: str, scheme: MappingScheme) -> "LayerGroupMapping":
        updated = dict(self.schemes)
        updated[name] = scheme
        return LayerGroupMapping(self.group, updated)

    def cores_used(self) -> set[int]:
        used: set[int] = set()
        for s in self.schemes.values():
            used.update(s.core_group)
        return used

    def total_cores(self) -> int:
        return sum(s.n_cores for s in self.schemes.values())


# ----------------------------------------------------------------------
# FD management rules (Sec IV-A)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FdRequirements:
    """Which FD entries must be explicit (non-negative) for a layer."""

    ifmap: bool
    weight: bool
    ofmap: bool


def fd_requirements(graph: DNNGraph, group: LayerGroup, name: str) -> FdRequirements:
    """Apply the paper's three explicit-management rules.

    * ofmaps: explicit when some consumer is outside the group, or the
      layer is a DNN output;
    * ifmaps: explicit only when the layer reads the DNN input (ifmaps of
      cross-group producers are fetched from wherever the producer's
      ofmaps were stored);
    * weights: explicit whenever the layer has weights.
    """
    layer = graph.layer(name)
    succs = graph.successors(name)
    of_explicit = (not succs) or any(s not in group for s in succs)
    if_explicit = graph.reads_graph_input(name)
    return FdRequirements(
        ifmap=if_explicit, weight=layer.has_weights, ofmap=of_explicit
    )


def validate_lms(
    graph: DNNGraph,
    lms: LayerGroupMapping,
    n_cores: int,
    n_dram: int,
) -> None:
    """Raise :class:`InvalidMappingError` on any encoding violation."""
    group = lms.group
    used: set[int] = set()
    for name in group.layers:
        scheme = lms.scheme(name)
        layer = graph.layer(name)
        if not scheme.part.feasible_for(layer, group.batch_unit):
            raise InvalidMappingError(
                f"{name}: partition {scheme.part.as_tuple()} exceeds the "
                f"ofmap extents of {layer}"
            )
        for core in scheme.core_group:
            if not 0 <= core < n_cores:
                raise InvalidMappingError(f"{name}: core {core} out of range")
            if core in used:
                raise InvalidMappingError(
                    f"{name}: core {core} already used by another layer in "
                    "the group"
                )
            used.add(core)
        req = fd_requirements(graph, group, name)
        for label, explicit, value in (
            ("IF", req.ifmap, scheme.fd.ifmap),
            ("WGT", req.weight, scheme.fd.weight),
            ("OF", req.ofmap, scheme.fd.ofmap),
        ):
            if explicit and not 0 <= value <= n_dram:
                raise InvalidMappingError(
                    f"{name}: {label} must be in [0, {n_dram}], got {value}"
                )
            if not explicit and value != IMPLICIT:
                raise InvalidMappingError(
                    f"{name}: {label} must be implicit (-1), got {value}"
                )
