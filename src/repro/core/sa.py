"""Simulated-annealing LP SPM exploration engine (Sec V-B1).

In each iteration the controller picks a layer group (probability
proportional to the log-size of its optimization space, Sec IV-B), draws
one of the five operators, and evaluates the modified scheme with the
Evaluator under the ``E^beta * D^gamma`` objective.  Improvements are
always accepted; regressions are accepted with probability
``exp(-rel_delta / T)`` under a geometrically cooling temperature.

Because D2D links have lower bandwidth and higher energy, moves that add
D2D traffic raise the cost and are increasingly rejected as T falls —
the mechanism by which Gemini "automatically optimizes D2D
communication" (Sec V-B1, demonstrated in Sec VII-C).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.core.encoding import LayerGroupMapping
from repro.core.operators import OPERATORS, op5_change_flow
from repro.core.space import gemini_space_size, log10_size
from repro.errors import SearchError
from repro.evalmodel.evaluator import Evaluator
from repro.workloads.graph import DNNGraph


@dataclass
class SASettings:
    """Hyper-parameters of the annealing schedule."""

    iterations: int = 400
    t_start: float = 0.30
    t_end: float = 0.005
    beta: float = 1.0   # energy exponent
    gamma: float = 1.0  # delay exponent
    seed: int = 0
    #: Operator names to draw from (None = all five).  Used by the
    #: operator-ablation study; the paper's search always uses all five.
    operators: tuple[str, ...] | None = None
    #: Proposals scored per iteration.  ``1`` (default) is the paper's
    #: plain Metropolis walk.  ``K > 1`` draws K operator moves against
    #: the current state, delta-evaluates them all against the shared
    #: compiled group state, and runs the accept test on the cheapest —
    #: a best-of-K walk that trades evaluations per iteration for
    #: greedier descent.  Deterministic for a fixed seed, but a
    #: *different* search trajectory than ``K=1``; opt-in.
    proposal_batch: int = 1
    #: Walkers annealed in lockstep (see :mod:`repro.core.population`).
    #: ``1`` (default) is the single-trajectory walk above; ``N > 1``
    #: runs N independently-seeded walkers whose proposals are priced
    #: together through the population-batched compiled core
    #: (:mod:`repro.compiled.batch`) — a different (deterministic)
    #: search trajectory, keyed distinctly in campaign digests.
    population: int = 1
    #: Parallel-tempering rungs over the population (``1`` = all
    #: walkers share the base schedule).  Only meaningful with
    #: ``population > 1``; clamped to the population size.
    tempering: int = 1
    #: Record search diagnostics (convergence curve, per-operator
    #: effectiveness, temperature checkpoints) into ``SAStats.diag``.
    #: Pure observation: the trajectory is unchanged, so campaign
    #: content digests deliberately exclude this flag.
    diag: bool = False


@dataclass
class SAStats:
    """Telemetry of one annealing run."""

    iterations: int = 0
    proposed: int = 0
    accepted: int = 0
    improved: int = 0
    #: 1-based iteration at which the best solution was last improved;
    #: 0 means the initial mapping was never beaten.  Campaigns compare
    #: this between warm- and cold-started runs.
    best_iteration: int = 0
    operator_uses: dict[str, int] = field(default_factory=dict)
    initial_cost: float = 0.0
    final_cost: float = 0.0
    wall_time_s: float = 0.0
    #: Search diagnostics (:meth:`repro.obs.diag.SARunDiag.to_dict`);
    #: ``None`` unless the run was started with ``SASettings.diag``.
    diag: dict | None = None

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0

    @property
    def iters_per_sec(self) -> float:
        """SA-loop throughput of the run (annealing loop only)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.iterations / self.wall_time_s

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved by the search."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


class SAController:
    """Anneals the LMS of every layer group of one DNN."""

    def __init__(
        self,
        graph: DNNGraph,
        evaluator: Evaluator,
        lmss: list[LayerGroupMapping],
        batch: int,
        settings: SASettings | None = None,
    ):
        if not lmss:
            raise SearchError("no layer groups to anneal")
        self.graph = graph
        self.evaluator = evaluator
        self.batch = batch
        self.settings = settings or SASettings()
        self.rng = random.Random(self.settings.seed)
        self.current = list(lmss)
        self.best = list(lmss)
        # The SA loop revisits the same routes and layer shapes over and
        # over — warm the evaluator's route cache and the graph's
        # compiled tables before the first step (idempotent).
        evaluator.warm(graph)
        self._group_weights = self._space_weights()
        # Cumulative weights + a reusable index list keep the
        # per-iteration group draw from re-accumulating the weights.
        cum = []
        total = 0.0
        for w in self._group_weights:
            total += w
            cum.append(total)
        self._group_cum_weights = cum
        self._group_indices = list(range(len(self.current)))
        self._stored_at = self._stored_at_map(self.current)
        self.current_costs = [self._cost(lms) for lms in self.current]
        self.best_costs = list(self.current_costs)
        self.stats = SAStats(initial_cost=sum(self.current_costs))
        # Delta-evaluation sessions over the compiled tables: one per
        # group, sharing the evaluator's block caches.  ``None`` when
        # the evaluator runs the object path (cache off / maxmin).
        compiled_for = getattr(evaluator, "compiled_for", None)
        compiled = compiled_for(graph) if compiled_for is not None else None
        self._sessions = None
        if compiled is not None and self.settings.population <= 1:
            self._sessions = [
                compiled.session(lms, batch, self._stored_at)
                for lms in self.current
            ]
        #: The PopulationWalk of the last population run (telemetry).
        self._population_walk = None
        self._delta_eval_s = 0.0
        self._delta_evals = 0
        # Opt-in diagnostics recorder; ``None`` keeps the hot path at
        # one attribute check per iteration.
        self._diag = None
        if self.settings.diag:
            from repro.obs.diag import SARunDiag

            self._diag = SARunDiag(
                self.settings.iterations, self.settings.seed
            )

    # ------------------------------------------------------------------

    def _space_weights(self) -> list[float]:
        arch = self.evaluator.arch
        weights = []
        for lms in self.current:
            size = gemini_space_size(arch.n_cores, len(lms.group))
            weights.append(max(1.0, log10_size(size)))
        return weights

    def _stored_at_map(self, lmss) -> dict[str, int]:
        stored: dict[str, int] = {}
        for lms in lmss:
            for name in lms.group.layers:
                of = lms.scheme(name).fd.ofmap
                if of >= 0:
                    stored[name] = of
        return stored

    def _update_stored_at(self, lms: LayerGroupMapping) -> None:
        """Refresh ``_stored_at`` for one group's layers only.

        Groups partition the graph's layers, so replacing the mutated
        group's entries is exactly equivalent to rebuilding the map over
        every group (the entry is dropped when OF became implicit).
        """
        for name in lms.group.layers:
            of = lms.scheme(name).fd.ofmap
            if of >= 0:
                self._stored_at[name] = of
            else:
                self._stored_at.pop(name, None)

    def _objective(self, ev) -> float:
        """The ``E^beta * D^gamma`` objective of one group evaluation."""
        s = self.settings
        return (ev.energy.total ** s.beta) * (ev.delay ** s.gamma)

    def _cost(self, lms: LayerGroupMapping) -> float:
        ev = self.evaluator.evaluate_group(
            self.graph, lms, self.batch, self._stored_at
        )
        return self._objective(ev)

    def _temperature(self, i: int) -> float:
        s = self.settings
        if s.iterations <= 1:
            return s.t_end
        ratio = (s.t_end / s.t_start) ** (i / (s.iterations - 1))
        return s.t_start * ratio

    def _pick_group(self) -> int:
        return self.rng.choices(
            self._group_indices, cum_weights=self._group_cum_weights
        )[0]

    def _apply_operator(self, lms: LayerGroupMapping):
        """Draw one operator and apply it: ``(name, candidate | None)``."""
        enabled = self.settings.operators
        pool = (
            OPERATORS if enabled is None
            else tuple(o for o in OPERATORS if o[0] in enabled)
        )
        if not pool:
            raise SearchError("no SA operators enabled")
        name, op = pool[self.rng.randrange(len(pool))]
        self.stats.operator_uses[name] = self.stats.operator_uses.get(name, 0) + 1
        if self._diag is not None:
            self._diag.draw(name)
        if op is op5_change_flow:
            return name, op(self.graph, lms, self.rng,
                            n_dram=self.evaluator.arch.n_dram)
        return name, op(self.graph, lms, self.rng)

    # ------------------------------------------------------------------

    def _candidate_cost(self, gi: int, lms: LayerGroupMapping):
        """Cost of a candidate: delta evaluation when a session exists.

        Returns ``(cost, proposal)``; the proposal (``None`` on the
        object path) must be committed into its session iff the move is
        accepted.  Delta and full evaluation are bit-identical, so the
        two paths produce the same annealing trajectory.
        """
        if self._sessions is None:
            return self._cost(lms), None
        t0 = time.perf_counter()
        proposal = self._sessions[gi].propose(lms, self._stored_at)
        self._delta_eval_s += time.perf_counter() - t0
        self._delta_evals += 1
        return self._objective(proposal.result), proposal

    def _accept(self, gi: int, iteration: int, candidate, new_cost,
                proposal) -> bool:
        """Metropolis accept test + state bookkeeping for one move."""
        old_cost = self.current_costs[gi]
        accept = new_cost <= old_cost
        if not accept and old_cost > 0:
            rel = (new_cost - old_cost) / old_cost
            t = self._temperature(iteration)
            accept = self.rng.random() < math.exp(-rel / max(t, 1e-9))
        if not accept:
            return False
        self.stats.accepted += 1
        if proposal is not None:
            self._sessions[gi].commit(proposal)
        self.current[gi] = candidate
        self.current_costs[gi] = new_cost
        self._update_stored_at(candidate)
        if new_cost < self.best_costs[gi]:
            self.best[gi] = candidate
            self.best_costs[gi] = new_cost
            self.stats.improved += 1
            self.stats.best_iteration = iteration + 1
        return True

    def _rel_delta(self, old_cost: float, new_cost: float) -> float:
        """Relative cost delta of a move (comparable across groups)."""
        if old_cost > 0:
            return (new_cost - old_cost) / old_cost
        return new_cost - old_cost

    def step(self, iteration: int) -> bool:
        """One SA iteration; returns True when a move was accepted."""
        if self.settings.proposal_batch > 1:
            return self._step_batched(iteration)
        gi = self._pick_group()
        op_name, candidate = self._apply_operator(self.current[gi])
        if candidate is None:
            return False
        self.stats.proposed += 1
        old_cost = self.current_costs[gi]
        improved_before = self.stats.improved
        new_cost, proposal = self._candidate_cost(gi, candidate)
        accepted = self._accept(gi, iteration, candidate, new_cost, proposal)
        if self._diag is not None:
            self._diag.proposal(
                op_name, self._rel_delta(old_cost, new_cost),
                accepted, self.stats.improved > improved_before,
            )
        return accepted

    def _step_batched(self, iteration: int) -> bool:
        """Score ``proposal_batch`` moves against the shared group
        state; the cheapest takes the accept test (ties -> first)."""
        gi = self._pick_group()
        candidates = []
        for _ in range(self.settings.proposal_batch):
            name, c = self._apply_operator(self.current[gi])
            if c is not None:
                candidates.append((name, c))
        if not candidates:
            return False
        self.stats.proposed += len(candidates)
        old_cost = self.current_costs[gi]
        improved_before = self.stats.improved
        if self._sessions is not None and len(candidates) > 1:
            # One stacked fold + finalize prices all K candidates;
            # costs are bit-identical to the serial scoring loop, so
            # the trajectory (and campaign digests) are unchanged.
            from repro.compiled.batch import score_session_batch

            t0 = time.perf_counter()
            proposals = score_session_batch(
                self._sessions[gi], [c for _, c in candidates],
                self._stored_at,
            )
            self._delta_eval_s += time.perf_counter() - t0
            self._delta_evals += len(candidates)
            scored = [(self._objective(p.result), p) for p in proposals]
        else:
            scored = [self._candidate_cost(gi, c) for _, c in candidates]
        bi = min(range(len(scored)), key=lambda j: scored[j][0])
        new_cost, proposal = scored[bi]
        accepted = self._accept(
            gi, iteration, candidates[bi][1], new_cost, proposal
        )
        if self._diag is not None:
            improved = self.stats.improved > improved_before
            for j, (name, _) in enumerate(candidates):
                cost_j = scored[j][0]
                self._diag.proposal(
                    name, self._rel_delta(old_cost, cost_j),
                    accepted and j == bi, improved and j == bi,
                )
        return accepted

    def run(self) -> list[LayerGroupMapping]:
        if self.settings.population > 1:
            from repro.core.population import run_population

            return run_population(self)
        from repro.obs.trace import trace

        ran = 0
        diag = self._diag
        with trace("sa.run", iterations=self.settings.iterations,
                   seed=self.settings.seed, groups=len(self.best)):
            t0 = time.perf_counter()
            for i in range(self.settings.iterations):
                self.stats.iterations += 1
                ran += 1
                self.step(i)
                if diag is not None and diag.want(i):
                    diag.sample(i, sum(self.best_costs),
                                sum(self.current_costs),
                                self._temperature(i))
            self.stats.wall_time_s += time.perf_counter() - t0
        self.stats.final_cost = sum(self.best_costs)
        if ran:
            from repro.perf import PERF

            PERF.add("sa.iterations", ran)
        if self._delta_evals:
            from repro.perf import PERF

            PERF.add_time("sa.delta_eval", self._delta_eval_s,
                          self._delta_evals)
        if self._sessions is not None:
            proposed = sum(s.proposed for s in self._sessions)
            committed = sum(s.committed for s in self._sessions)
            if proposed:
                from repro.perf import PERF

                PERF.add("sa.session.proposed", proposed)
                PERF.add("sa.session.committed", committed)
        if diag is not None:
            from repro.obs.diag import DIAG

            self.stats.diag = diag.to_dict(self.stats)
            DIAG.record(self.stats.diag["operators"])
        return list(self.best)
