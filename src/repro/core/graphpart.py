"""DP-based graph partitioning into layer groups (Sec V-B).

Gemini "employ[s] the same DP-based graph partition algorithm as
Tangram [15]": layers in topological order are segmented into contiguous
groups, and the dynamic program minimizes the summed estimated cost,
also choosing the batch unit (samples per pipeline stage) per group.

The segment-cost estimator is deliberately cheap (no NoC detail): it
balances the DRAM traffic a fusion saves (inter-group feature maps stay
on-chip) against pipeline fill/drain loss and per-layer core-count
granularity — the same trade-off the paper describes for pipeline depth
(Sec VII-A2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.energy import DEFAULT_ENERGY, EnergyModel
from repro.arch.params import ArchConfig
from repro.core.encoding import LayerGroup
from repro.workloads.graph import DNNGraph


@dataclass(frozen=True)
class GroupEstimate:
    """Closed-form cost estimate of one candidate group.

    ``cost`` must be *additive* across groups for the DP to compose, so
    instead of the (non-decomposable) global ``E x D`` product we use the
    linearization ``E + P_ref x D`` where ``P_ref`` is the accelerator's
    full-load MAC power: saving a joule and saving a full-load-second are
    weighed equally.
    """

    delay: float
    energy: float
    batch_unit: int
    ref_power: float

    @property
    def cost(self) -> float:
        return self.energy + self.ref_power * self.delay


def _candidate_units(batch: int) -> list[int]:
    units = [u for u in (1, 2, 4, 8, 16, 32, 64) if u <= batch]
    return units or [1]


def estimate_group_cost(
    graph: DNNGraph,
    names: list[str],
    arch: ArchConfig,
    batch: int,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> GroupEstimate:
    """Best-batch-unit analytic estimate for a contiguous group."""
    inside = set(names)
    total_weights = sum(graph.layer(n).weight_bytes() for n in names)
    ref_power = arch.peak_macs_per_s * energy.e_mac
    best: GroupEstimate | None = None
    for unit in _candidate_units(batch):
        rounds = math.ceil(batch / unit)
        macs = sum(graph.layer(n).macs(unit) for n in names)
        # Bytes entering/leaving the group per round via DRAM.
        io_bytes = 0
        for n in names:
            layer = graph.layer(n)
            for s in graph.input_slices(n):
                if s.producer is None or s.producer not in inside:
                    io_bytes += layer.ifmap_bytes(unit) * (
                        s.channels / max(1, layer.in_c)
                    )
            if any(succ not in inside for succ in graph.successors(n)) or \
                    not graph.successors(n):
                io_bytes += layer.ofmap_bytes(unit)
        weights_per_round = total_weights / rounds
        dram_bytes = io_bytes + weights_per_round
        compute = macs / (arch.peak_macs_per_s * 0.6)
        dram_t = dram_bytes / arch.dram_bw
        stage = max(compute, dram_t)
        delay = stage * (rounds + len(names) - 1)
        joules = (
            macs * rounds * energy.e_mac
            + (io_bytes * rounds + total_weights) * energy.e_dram
        )
        est = GroupEstimate(
            delay=delay, energy=joules, batch_unit=unit, ref_power=ref_power
        )
        if best is None or est.cost < best.cost:
            best = est
    return best


def partition_graph(
    graph: DNNGraph,
    arch: ArchConfig,
    batch: int,
    max_group_layers: int = 10,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> list[LayerGroup]:
    """Segment the topological order into layer groups by DP."""
    order = graph.topological_order()
    n = len(order)
    limit = min(max_group_layers, arch.n_cores)
    # dp[i]: best cost of partitioning order[:i]; choice[i]: group start.
    dp = [math.inf] * (n + 1)
    dp[0] = 0.0
    choice: list[tuple[int, int]] = [(0, 1)] * (n + 1)
    estimates: dict[tuple[int, int], GroupEstimate] = {}
    for end in range(1, n + 1):
        for start in range(max(0, end - limit), end):
            est = estimates.get((start, end))
            if est is None:
                est = estimate_group_cost(
                    graph, order[start:end], arch, batch, energy
                )
                estimates[(start, end)] = est
            cost = dp[start] + est.cost
            if cost < dp[end]:
                dp[end] = cost
                choice[end] = (start, est.batch_unit)
    groups: list[LayerGroup] = []
    end = n
    while end > 0:
        start, unit = choice[end]
        groups.append(LayerGroup(tuple(order[start:end]), batch_unit=unit))
        end = start
    groups.reverse()
    return groups
