"""The Mapping Engine facade (Fig 4, right side).

Model parsing (done by the workloads package), graph partitioning, the
stripe-based initial scheme, SA-based LP SPM exploration and final
evaluation, wrapped into one call: :meth:`MappingEngine.map`.

With ``SASettings(iterations=0)`` the engine degrades to the baseline
Tangram flow (DP graph partition + stripe heuristic SPM, no SA), which
is exactly the paper's T-Map baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.energy import DEFAULT_ENERGY, EnergyModel
from repro.arch.params import ArchConfig
from repro.fabric import Topology
from repro.core.encoding import LayerGroup, LayerGroupMapping, validate_lms
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SAController, SASettings, SAStats
from repro.evalmodel.breakdown import MappingEval
from repro.evalmodel.evaluator import Evaluator
from repro.workloads.graph import DNNGraph


@dataclass
class MappingResult:
    """Outcome of mapping one DNN onto one architecture."""

    arch: ArchConfig
    evaluation: MappingEval
    lmss: list[LayerGroupMapping]
    groups: list[LayerGroup]
    sa_stats: SAStats | None = None
    #: Wall seconds of each independent SA restart (empty without SA).
    #: The spread across restarts is the seed-robustness signal the
    #: ledger reports as mean/variance per candidate.
    restart_wall_times: list[float] = field(default_factory=list)
    #: Per-restart search diagnostics (:attr:`SAStats.diag` of every
    #: restart, in restart order); empty unless ``SASettings.diag``.
    restart_diags: list[dict] = field(default_factory=list)

    @property
    def delay(self) -> float:
        return self.evaluation.delay

    @property
    def energy(self) -> float:
        return self.evaluation.energy.total

    @property
    def edp(self) -> float:
        return self.evaluation.edp


@dataclass
class MappingEngineSettings:
    sa: SASettings = field(default_factory=SASettings)
    max_group_layers: int = 10
    validate: bool = True
    #: Independent SA restarts (different seeds); the best run wins.
    #: Restarts trade wall-clock for robustness against unlucky seeds.
    restarts: int = 1


class MappingEngine:
    """Gemini's Mapping Engine bound to one architecture."""

    def __init__(
        self,
        arch: ArchConfig,
        energy: EnergyModel = DEFAULT_ENERGY,
        topo: Topology | None = None,
        settings: MappingEngineSettings | None = None,
    ):
        self.arch = arch
        self.settings = settings or MappingEngineSettings()
        self.evaluator = Evaluator(arch, topo=topo, energy=energy)

    # ------------------------------------------------------------------

    def initial_mapping(
        self, graph: DNNGraph, batch: int
    ) -> list[LayerGroupMapping]:
        """Graph partition + stripe heuristic (the T-Map baseline)."""
        groups = partition_graph(
            graph, self.arch, batch,
            max_group_layers=self.settings.max_group_layers,
        )
        lmss = [initial_lms(graph, g, self.arch) for g in groups]
        if self.settings.validate:
            for lms in lmss:
                validate_lms(graph, lms, self.arch.n_cores, self.arch.n_dram)
        return lmss

    def _check_initial(
        self, graph: DNNGraph, lmss: list[LayerGroupMapping]
    ) -> None:
        """Validate an injected starting point (e.g. a warm start)."""
        from repro.errors import InvalidMappingError

        covered: list[str] = []
        for lms in lmss:
            covered.extend(lms.group.layers)
        if sorted(covered) != sorted(graph.layer_names()):
            raise InvalidMappingError(
                "initial mapping does not cover the graph's layers "
                "exactly once"
            )
        for lms in lmss:
            validate_lms(graph, lms, self.arch.n_cores, self.arch.n_dram)

    def map(
        self,
        graph: DNNGraph,
        batch: int,
        initial: list[LayerGroupMapping] | None = None,
    ) -> MappingResult:
        """Full Gemini mapping flow for one DNN.

        ``initial`` replaces the graph-partition + stripe-heuristic
        starting point — campaigns pass the stored mapping of a nearby
        architecture here to warm-start the SA.  It is validated against
        *this* architecture and must cover the graph exactly; raises
        :class:`~repro.errors.InvalidMappingError` otherwise (callers
        fall back to a cold start).
        """
        import time
        from dataclasses import replace as dc_replace

        from repro.obs.trace import trace

        if initial is None:
            lmss = self.initial_mapping(graph, batch)
        else:
            lmss = list(initial)
            self._check_initial(graph, lmss)
        stats = None
        restart_wall_times: list[float] = []
        restart_diags: list[dict] = []
        if self.settings.sa.iterations > 0:
            best_lmss, best_cost = None, None
            for restart in range(max(1, self.settings.restarts)):
                settings = dc_replace(
                    self.settings.sa, seed=self.settings.sa.seed + restart
                )
                controller = SAController(
                    graph, self.evaluator, lmss, batch, settings
                )
                t0 = time.perf_counter()
                with trace("sa.restart", restart=restart,
                           seed=settings.seed):
                    candidate = controller.run()
                restart_wall_times.append(time.perf_counter() - t0)
                if controller.stats.diag is not None:
                    restart_diags.append(controller.stats.diag)
                cost = sum(controller.best_costs)
                if best_cost is None or cost < best_cost:
                    best_lmss, best_cost, stats = (
                        candidate, cost, controller.stats
                    )
            lmss = best_lmss
        if self.settings.validate:
            for lms in lmss:
                validate_lms(graph, lms, self.arch.n_cores, self.arch.n_dram)
        evaluation = self.evaluator.evaluate_mapping(graph, lmss, batch)
        return MappingResult(
            arch=self.arch,
            evaluation=evaluation,
            lmss=lmss,
            groups=[lms.group for lms in lmss],
            sa_stats=stats,
            restart_wall_times=restart_wall_times,
            restart_diags=restart_diags,
        )
