"""Stripe-based heuristic initial scheme (Sec V-B1).

"For each layer group, the initial LP SPM scheme is obtained using a
widely adopted heuristic stripe-based strategy [15], [57], [66]": cores
are allocated to layers proportionally to their compute, each layer gets
a *consecutive* run of cores in snake (boustrophedon) order — which forms
the rectangle-ish clustered groups the heuristics use — and partitions
are factored greedily along the dimensions with the largest extents.
Explicitly managed data flows default to DRAM interleaving.
"""

from __future__ import annotations

import random

from repro.arch.params import ArchConfig
from repro.core.encoding import (
    IMPLICIT,
    INTERLEAVED,
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
    fd_requirements,
)
from repro.errors import InvalidMappingError
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer


#: Core counts repeat endlessly in the SA operators' partition
#: re-draws; factorizations are tiny, so memoize them outright.
_PRIME_FACTORS: dict[int, list[int]] = {}


def prime_factors(n: int) -> list[int]:
    """Prime factorization (descending), e.g. 12 -> [3, 2, 2]."""
    cached = _PRIME_FACTORS.get(n)
    if cached is not None:
        return cached
    factors = []
    m = n
    d = 2
    while d * d <= m:
        while m % d == 0:
            factors.append(d)
            m //= d
        d += 1
    if m > 1:
        factors.append(m)
    factors = sorted(factors, reverse=True)
    _PRIME_FACTORS[n] = factors
    return factors


def factor_partition(
    layer: Layer, n_cores: int, batch_unit: int,
    rng: random.Random | None = None,
) -> Partition | None:
    """Factor ``n_cores`` into a feasible (H, W, B, K) partition.

    Greedy: each prime factor goes to the dimension with the most
    remaining headroom (extent / current count); with ``rng`` the choice
    is randomized over the feasible dimensions (used by SA operators).
    Returns None when no feasible assignment exists.
    """
    extents = [layer.out_h, layer.out_w, batch_unit, layer.out_k]
    counts = [1, 1, 1, 1]
    for f in prime_factors(n_cores):
        feasible = [i for i in range(4) if counts[i] * f <= extents[i]]
        if not feasible:
            return None
        if rng is None:
            choice = max(feasible, key=lambda i: extents[i] / counts[i])
        else:
            choice = rng.choice(feasible)
        counts[choice] *= f
    return Partition(h=counts[0], w=counts[1], b=counts[2], k=counts[3])


def largest_feasible_partition(
    layer: Layer, n_cores: int, batch_unit: int
) -> tuple[Partition, int]:
    """Largest core count <= n_cores with a feasible partition."""
    for nc in range(n_cores, 0, -1):
        part = factor_partition(layer, nc, batch_unit)
        if part is not None:
            return part, nc
    raise InvalidMappingError(
        f"{layer.name}: no feasible partition for any core count"
    )


def snake_order(cores_x: int, cores_y: int) -> list[int]:
    """Row-major boustrophedon core order: consecutive runs are compact."""
    order = []
    for y in range(cores_y):
        xs = range(cores_x) if y % 2 == 0 else range(cores_x - 1, -1, -1)
        for x in xs:
            order.append(y * cores_x + x)
    return order


def allocate_cores(weights: list[float], total: int) -> list[int]:
    """Largest-remainder proportional allocation, each share >= 1."""
    n = len(weights)
    if n > total:
        raise InvalidMappingError(
            f"cannot allocate {total} cores to {n} layers"
        )
    weight_sum = sum(weights) or 1.0
    raw = [max(w, 1e-12) / weight_sum * total for w in weights]
    shares = [max(1, int(r)) for r in raw]
    # Fix up the sum with largest remainders (or smallest shares).
    while sum(shares) > total:
        i = max(range(n), key=lambda j: shares[j])
        shares[i] -= 1
    remainders = sorted(
        range(n), key=lambda j: raw[j] - shares[j], reverse=True
    )
    idx = 0
    while sum(shares) < total:
        shares[remainders[idx % n]] += 1
        idx += 1
    return shares


def default_fd(graph: DNNGraph, group: LayerGroup, name: str) -> FlowOfData:
    """Interleave every explicitly managed flow (FD value 0)."""
    req = fd_requirements(graph, group, name)
    return FlowOfData(
        ifmap=INTERLEAVED if req.ifmap else IMPLICIT,
        weight=INTERLEAVED if req.weight else IMPLICIT,
        ofmap=INTERLEAVED if req.ofmap else IMPLICIT,
    )


def initial_lms(
    graph: DNNGraph, group: LayerGroup, arch: ArchConfig
) -> LayerGroupMapping:
    """Build the stripe-based heuristic scheme for a layer group."""
    names = list(group.layers)
    macs = [graph.layer(n).macs(group.batch_unit) for n in names]
    shares = allocate_cores([float(m) for m in macs], arch.n_cores)
    pool = snake_order(arch.cores_x, arch.cores_y)
    schemes: dict[str, MappingScheme] = {}
    cursor = 0
    spare: list[int] = []
    for name, share in zip(names, shares):
        layer = graph.layer(name)
        part, used = largest_feasible_partition(layer, share, group.batch_unit)
        run = pool[cursor:cursor + share]
        cursor += share
        core_group = tuple(run[:used])
        spare.extend(run[used:])
        schemes[name] = MappingScheme(
            part=part, core_group=core_group, fd=default_fd(graph, group, name)
        )
    return LayerGroupMapping(group, schemes)
