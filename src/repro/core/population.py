"""Population SA: N annealing walkers advanced in lockstep batches.

``SASettings.population = N`` runs N independent Metropolis walkers
over the same layer groups.  Each step draws **one** layer group for
the whole population (so every walker's candidate lands in the same
:class:`~repro.compiled.batch.PopulationGroupState` and the entire
step prices as one batched fold + finalize), then one operator move
per walker, a per-walker accept test, and a single batched resolve.

Walker w draws from its own ``random.Random`` stream, so the
population is N *distinct* trajectories — deterministic for a fixed
seed, but deliberately not the serial N=1 trajectory (that one is
preserved exactly by the ``population=1`` path, batched or not).

``SASettings.tempering = K`` layers parallel tempering on top: walkers
are pinned to K temperature rungs (rung r anneals at ``T(i) *
(t_start/t_end)**(r/K)``, so rung 0 is the base schedule and higher
rungs run hotter), and every :data:`SWAP_PERIOD` steps adjacent rungs
exchange members under the standard replica-exchange test on their
current total costs.  The swap schedule — alternating rung parity,
member j of rung r paired with member j of rung r+1 — and the swap
rng are deterministic functions of the seed.

Best-so-far tracking stays *per group across the population* (any
walker beating ``best_costs[gi]`` updates the controller's best), so
``SAController.run`` returns the same shape of answer regardless of
population size.
"""

from __future__ import annotations

import math
import random
import time

from repro.core.operators import OPERATORS, op5_change_flow
from repro.errors import SearchError

#: Steps between replica-exchange attempts when ``tempering > 1``.
SWAP_PERIOD = 16


class PopulationWalk:
    """The mutable state of one population run over a controller."""

    def __init__(self, ctrl):
        s = ctrl.settings
        if s.population < 1:
            raise SearchError("population must be >= 1")
        self.ctrl = ctrl
        self.n = s.population
        self.k = max(1, min(s.tempering, self.n))
        # Group draws and swap tests come from a dedicated stream so
        # walker streams stay pure functions of (seed, walker index).
        self.rng = random.Random((s.seed << 1) ^ 0x9E3779B9)
        self.walker_rngs = [
            random.Random(s.seed * 1_000_003 + w + 1) for w in range(self.n)
        ]
        # Every walker starts at the controller's initial state.
        self.lms = [list(ctrl.current) for _ in range(self.n)]
        self.costs = [list(ctrl.current_costs) for _ in range(self.n)]
        self.stored = [dict(ctrl._stored_at) for _ in range(self.n)]
        total0 = sum(ctrl.current_costs)
        self.totals = [total0] * self.n
        # Temperature multipliers per rung; rung 0 is the base schedule.
        ratio = s.t_start / s.t_end if s.t_end > 0 else 1.0
        self.mult = [ratio ** (r / self.k) for r in range(self.k)]
        self.rung_of = [w % self.k for w in range(self.n)]
        self.rungs = [
            [w for w in range(self.n) if w % self.k == r]
            for r in range(self.k)
        ]
        self.swaps_attempted = 0
        self.swaps_accepted = 0
        self._swap_round = 0
        self.base_t = s.t_start
        enabled = s.operators
        self.pool = (
            OPERATORS if enabled is None
            else tuple(o for o in OPERATORS if o[0] in enabled)
        )
        if not self.pool:
            raise SearchError("no SA operators enabled")
        compiled_for = getattr(ctrl.evaluator, "compiled_for", None)
        self.ceval = (
            compiled_for(ctrl.graph) if compiled_for is not None else None
        )
        #: Lazily-built batched group states (compiled path only), one
        #: per layer group, created the first time the group is drawn.
        self.states = [None] * len(ctrl.current)
        self.candidates_scored = 0

    # ------------------------------------------------------------------

    def _state(self, gi: int):
        st = self.states[gi]
        if st is None:
            from repro.compiled.batch import PopulationGroupState

            st = PopulationGroupState(
                self.ceval,
                [self.lms[w][gi] for w in range(self.n)],
                self.ctrl.batch,
                self.stored,
            )
            self.states[gi] = st
        return st

    def _draw(self, w: int, lms):
        """One operator draw for walker ``w`` (mirrors
        ``SAController._apply_operator`` on the walker's own rng)."""
        ctrl = self.ctrl
        rng = self.walker_rngs[w]
        name, op = self.pool[rng.randrange(len(self.pool))]
        ctrl.stats.operator_uses[name] = \
            ctrl.stats.operator_uses.get(name, 0) + 1
        if ctrl._diag is not None:
            ctrl._diag.draw(name)
        if op is op5_change_flow:
            return name, op(ctrl.graph, lms, rng,
                            n_dram=ctrl.evaluator.arch.n_dram)
        return name, op(ctrl.graph, lms, rng)

    def _update_stored(self, w: int, lms) -> None:
        stored = self.stored[w]
        for name in lms.group.layers:
            of = lms.scheme(name).fd.ofmap
            if of >= 0:
                stored[name] = of
            else:
                stored.pop(name, None)

    # ------------------------------------------------------------------

    def step(self, iteration: int) -> int:
        """One lockstep population iteration; returns accepted count."""
        ctrl = self.ctrl
        gi = self.rng.choices(
            ctrl._group_indices, cum_weights=ctrl._group_cum_weights
        )[0]
        cands = []
        for w in range(self.n):
            name, cand = self._draw(w, self.lms[w][gi])
            if cand is not None:
                cands.append((w, name, cand))
        accepted_total = 0
        if cands:
            ctrl.stats.proposed += len(cands)
            self.candidates_scored += len(cands)
            t0 = time.perf_counter()
            if self.ceval is not None:
                st = self._state(gi)
                bp = st.propose(
                    [(w, cand) for w, _, cand in cands], self.stored
                )
                evals = bp.evals
            else:
                bp = st = None
                evals = [
                    ctrl.evaluator.evaluate_group(
                        ctrl.graph, cand, ctrl.batch, self.stored[w]
                    )
                    for w, _, cand in cands
                ]
            ctrl._delta_eval_s += time.perf_counter() - t0
            ctrl._delta_evals += len(cands)
            base_t = ctrl._temperature(iteration)
            diag = ctrl._diag
            flags = []
            for (w, name, cand), ev in zip(cands, evals):
                new_cost = ctrl._objective(ev)
                old_cost = self.costs[w][gi]
                accept = new_cost <= old_cost
                if not accept and old_cost > 0:
                    rel = (new_cost - old_cost) / old_cost
                    t = base_t * self.mult[self.rung_of[w]]
                    accept = (
                        self.walker_rngs[w].random()
                        < math.exp(-rel / max(t, 1e-9))
                    )
                flags.append(accept)
                improved = False
                if accept:
                    accepted_total += 1
                    ctrl.stats.accepted += 1
                    self.lms[w][gi] = cand
                    self.totals[w] += new_cost - old_cost
                    self.costs[w][gi] = new_cost
                    self._update_stored(w, cand)
                    if new_cost < ctrl.best_costs[gi]:
                        ctrl.best[gi] = cand
                        ctrl.best_costs[gi] = new_cost
                        ctrl.stats.improved += 1
                        ctrl.stats.best_iteration = iteration + 1
                        improved = True
                if diag is not None:
                    diag.proposal(
                        name, ctrl._rel_delta(old_cost, new_cost),
                        accept, improved,
                    )
            if bp is not None:
                st.resolve(bp, flags)
        if self.k > 1 and (iteration + 1) % SWAP_PERIOD == 0:
            self._swap()
        return accepted_total

    def _swap(self) -> None:
        """One replica-exchange sweep over adjacent rung pairs."""
        # Alternate even/odd rung pairings so every adjacent pair of
        # rungs is visited on alternating sweeps.
        parity = self._swap_round % 2
        for r in range(parity, self.k - 1, 2):
            cold, hot = self.rungs[r], self.rungs[r + 1]
            for j in range(min(len(cold), len(hot))):
                wc, wh = cold[j], hot[j]
                self.swaps_attempted += 1
                c_cold, c_hot = self.totals[wc], self.totals[wh]
                if c_hot <= c_cold:
                    ok = True
                elif c_cold > 0:
                    # Exchanging states between inverse temperatures
                    # 1/Ta (cold) and 1/Tb (hot) with relative cost gap.
                    rel = (c_hot - c_cold) / c_cold
                    ta = max(self.base_t * self.mult[r], 1e-9)
                    tb = max(self.base_t * self.mult[r + 1], 1e-9)
                    ok = self.rng.random() < math.exp(
                        -rel * (1.0 / ta - 1.0 / tb)
                    )
                else:
                    ok = False
                if ok:
                    self.swaps_accepted += 1
                    cold[j], hot[j] = wh, wc
                    self.rung_of[wh] = r
                    self.rung_of[wc] = r + 1
        self._swap_round += 1


def run_population(ctrl):
    """The population/tempering run loop of :meth:`SAController.run`."""
    from repro.obs.trace import trace
    from repro.perf import PERF

    s = ctrl.settings
    walk = PopulationWalk(ctrl)
    ctrl._population_walk = walk
    diag = ctrl._diag
    with trace("sa.population.run", iterations=s.iterations,
               seed=s.seed, population=walk.n, tempering=walk.k,
               groups=len(ctrl.best)):
        t0 = time.perf_counter()
        for i in range(s.iterations):
            ctrl.stats.iterations += 1
            walk.base_t = ctrl._temperature(i)
            walk.step(i)
            if diag is not None and diag.want(i):
                diag.sample(i, sum(ctrl.best_costs), min(walk.totals),
                            ctrl._temperature(i))
        ctrl.stats.wall_time_s += time.perf_counter() - t0
    ctrl.stats.final_cost = sum(ctrl.best_costs)
    if s.iterations:
        PERF.add("sa.iterations", s.iterations)
        PERF.add("sa.population.steps", s.iterations)
    if walk.candidates_scored:
        PERF.add("sa.population.candidates", walk.candidates_scored)
        PERF.add_time("sa.delta_eval", ctrl._delta_eval_s,
                      ctrl._delta_evals)
    if walk.swaps_attempted:
        PERF.add("sa.population.swap_attempts", walk.swaps_attempted)
        PERF.add("sa.population.swaps", walk.swaps_accepted)
    if diag is not None:
        from repro.obs.diag import DIAG

        ctrl.stats.diag = diag.to_dict(ctrl.stats)
        DIAG.record(ctrl.stats.diag["operators"])
    return list(ctrl.best)
