"""Optimization-space size calculations (Sec IV-B).

The paper conservatively lower-bounds the size of the LP SPM space of
mapping N layers onto M cores (D DRAMs) at

    M! * Σ_{i=0}^{N-1} C(N, i) * C(M-N-1, N-i-1) * 4^{N-i}

and upper-bounds the SOTA heuristic Tangram's space at ``N * part(M)``
(``part`` = the integer partition function).  Exact big-integer
implementations of both are provided, along with the partition function
and a brute-force enumerator used by tests to validate the combinatorial
building blocks on tiny instances.
"""

from __future__ import annotations

import math
from functools import lru_cache


def _comb(x: int, y: int) -> int:
    """Binomial coefficient with the convention C(x, 0) = 1 for any x
    and C(x, y) = 0 when y < 0 or y > max(x, 0)."""
    if y == 0:
        return 1
    if y < 0 or x < y:
        return 0
    return math.comb(x, y)


def gemini_space_size(m: int, n: int) -> int:
    """Paper's lower bound of the LP SPM space for N layers on M cores."""
    if n < 1 or m < n:
        return 0
    total = 0
    for i in range(n):
        total += _comb(n, i) * _comb(m - n - 1, n - i - 1) * 4 ** (n - i)
    return math.factorial(m) * total


@lru_cache(maxsize=None)
def partition_count(m: int) -> int:
    """Integer partition function p(m) via Euler's pentagonal recurrence."""
    if m < 0:
        return 0
    if m == 0:
        return 1
    total = 0
    k = 1
    while True:
        g1 = k * (3 * k - 1) // 2
        g2 = k * (3 * k + 1) // 2
        if g1 > m and g2 > m:
            break
        sign = -1 if k % 2 == 0 else 1
        if g1 <= m:
            total += sign * partition_count(m - g1)
        if g2 <= m:
            total += sign * partition_count(m - g2)
        k += 1
    return total


def tangram_space_size(m: int, n: int) -> int:
    """Paper's upper bound of Tangram's heuristic space: N * part(M)."""
    if n < 1 or m < 1:
        return 0
    return n * partition_count(m)


def compositions(total: int, parts: int) -> int:
    """Number of compositions of ``total`` into ``parts`` positive parts."""
    if parts < 1 or total < parts:
        return 0
    return math.comb(total - 1, parts - 1)


def space_table(ms: list[int], ns: list[int]):
    """(M, N) -> (gemini, tangram) size table, as the paper's link [2]."""
    table = {}
    for m in ms:
        for n in ns:
            if n <= m:
                table[(m, n)] = (gemini_space_size(m, n), tangram_space_size(m, n))
    return table


def log10_size(value: int) -> float:
    """log10 of a (possibly astronomically large) exact integer."""
    if value <= 0:
        return float("-inf")
    # math.log10 overflows for ints > 1e308; use bit length scaling.
    bits = value.bit_length()
    if bits < 900:
        return math.log10(value)
    shift = bits - 900
    return math.log10(value >> shift) + shift * math.log10(2)
