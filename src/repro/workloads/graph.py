"""DNN DAG representation.

The paper views a DNN as a Directed Acyclic Graph whose nodes are layers
(Sec II-B).  :class:`DNNGraph` stores layers plus typed edges and provides
the queries the mapping engine needs: topological order, per-layer fan-in
with channel offsets (for concat fan-in), graph inputs/outputs, and
aggregate statistics.

Edge semantics
--------------

Each consumer combines its producers either by channel **concat** (the
default; producer channel ranges are stacked in edge order) or by
element-wise **add** (every producer supplies the full channel range, used
by residual connections feeding ELTWISE layers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidWorkloadError
from repro.workloads.layer import Layer, LayerType


@dataclass(frozen=True)
class InputSlice:
    """One producer of a layer with its channel placement.

    ``c_lo:c_hi`` is the slice of the *consumer's* ifmap channel range
    filled by this producer.  ``producer`` is ``None`` when the slice
    comes from the DNN input activation.
    """

    producer: str | None
    c_lo: int
    c_hi: int

    @property
    def channels(self) -> int:
        return self.c_hi - self.c_lo


class DNNGraph:
    """A validated DAG of :class:`Layer` objects.

    Parameters
    ----------
    name:
        Model name (used in reports).
    """

    def __init__(self, name: str):
        self.name = name
        self._layers: dict[str, Layer] = {}
        self._preds: dict[str, list[str]] = {}
        self._succs: dict[str, list[str]] = {}
        self._combine: dict[str, str] = {}
        self._graph_inputs: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_layer(
        self,
        layer: Layer,
        inputs: list[str] | None = None,
        combine: str = "concat",
        from_graph_input: bool = False,
    ) -> Layer:
        """Add ``layer``, consuming the named producer layers.

        ``inputs`` lists already-added producer layer names.  A layer with
        no inputs (or ``from_graph_input=True``) reads the DNN input.
        """
        if layer.name in self._layers:
            raise InvalidWorkloadError(f"duplicate layer name {layer.name!r}")
        inputs = list(inputs or [])
        for src in inputs:
            if src not in self._layers:
                raise InvalidWorkloadError(
                    f"layer {layer.name!r} consumes unknown layer {src!r}"
                )
        if combine not in ("concat", "add"):
            raise InvalidWorkloadError(f"unknown combine mode {combine!r}")
        self._check_fanin(layer, inputs, combine)
        self._layers[layer.name] = layer
        self._preds[layer.name] = inputs
        self._succs.setdefault(layer.name, [])
        self._combine[layer.name] = combine
        for src in inputs:
            self._succs[src].append(layer.name)
        if not inputs or from_graph_input:
            self._graph_inputs.add(layer.name)
        return layer

    def _check_fanin(self, layer: Layer, inputs: list[str], combine: str):
        if not inputs:
            return
        if layer.kind is LayerType.MATMUL:
            # Activation-activation product: operands contract over
            # different axes, so channel bookkeeping does not apply.
            if len(inputs) != 2:
                raise InvalidWorkloadError(
                    f"layer {layer.name!r}: MATMUL needs exactly two inputs"
                )
            return
        produced = [self._layers[src].out_k for src in inputs]
        if combine == "concat":
            total = sum(produced)
            if total != layer.in_c:
                raise InvalidWorkloadError(
                    f"layer {layer.name!r}: concat fan-in supplies {total} "
                    f"channels but in_c={layer.in_c}"
                )
        else:  # add
            for src, k in zip(inputs, produced):
                if k != layer.in_c:
                    raise InvalidWorkloadError(
                        f"layer {layer.name!r}: add fan-in from {src!r} has "
                        f"{k} channels, expected {layer.in_c}"
                    )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, name: str) -> Layer:
        return self._layers[name]

    def layers(self) -> list[Layer]:
        """All layers in insertion (construction) order."""
        return list(self._layers.values())

    def layer_names(self) -> list[str]:
        return list(self._layers)

    def predecessors(self, name: str) -> list[str]:
        return list(self._preds[name])

    def successors(self, name: str) -> list[str]:
        return list(self._succs[name])

    def combine_mode(self, name: str) -> str:
        return self._combine[name]

    def reads_graph_input(self, name: str) -> bool:
        """True when the layer's ifmap is (part of) the DNN input."""
        return name in self._graph_inputs

    def input_slices(self, name: str) -> list[InputSlice]:
        """The channel placement of each producer of ``name``.

        For concat fan-in the producers stack along the channel axis in
        edge order; for add fan-in every producer covers the full range.
        """
        layer = self._layers[name]
        preds = self._preds[name]
        if not preds:
            return [InputSlice(None, 0, layer.in_c)]
        if layer.kind is LayerType.MATMUL:
            # Both operands are consumed wholesale along their own axes;
            # traffic analysis special-cases MATMUL dependencies.
            return [InputSlice(src, 0, layer.in_c) for src in preds]
        slices = []
        if self._combine[name] == "add":
            for src in preds:
                slices.append(InputSlice(src, 0, layer.in_c))
            return slices
        offset = 0
        for src in preds:
            k = self._layers[src].out_k
            slices.append(InputSlice(src, offset, offset + k))
            offset += k
        return slices

    def output_layers(self) -> list[str]:
        """Layers whose ofmaps are DNN outputs (no successors)."""
        return [name for name, succ in self._succs.items() if not succ]

    def topological_order(self) -> list[str]:
        """Kahn topological order, stable w.r.t. insertion order."""
        indegree = {name: len(p) for name, p in self._preds.items()}
        ready = [name for name in self._layers if indegree[name] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self._succs[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._layers):
            raise InvalidWorkloadError(f"graph {self.name!r} has a cycle")
        return order

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def total_macs(self, batch: int = 1) -> int:
        return sum(l.macs(batch) for l in self._layers.values())

    def total_weight_bytes(self) -> int:
        return sum(l.weight_bytes() for l in self._layers.values())

    def total_ofmap_bytes(self, batch: int = 1) -> int:
        return sum(l.ofmap_bytes(batch) for l in self._layers.values())

    def validate(self) -> None:
        """Raise :class:`InvalidWorkloadError` on structural problems."""
        self.topological_order()
        for name in self._layers:
            layer = self._layers[name]
            slices = self.input_slices(name)
            covered = sum(s.channels for s in slices)
            if self._combine[name] == "concat" and covered != layer.in_c:
                raise InvalidWorkloadError(
                    f"layer {name!r}: fan-in covers {covered}/{layer.in_c}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DNNGraph({self.name!r}, layers={len(self)})"
