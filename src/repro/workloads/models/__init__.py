"""DNN model zoo: the five paper workloads plus helpers.

The registry maps the paper's workload abbreviations (Sec VI-A3) to
builder callables; :func:`build` constructs a fresh graph by name.
"""

from __future__ import annotations

from repro.workloads.graph import DNNGraph
from repro.workloads.models.googlenet import googlenet
from repro.workloads.models.inception import inception_resnet_v1
from repro.workloads.models.pnasnet import pnasnet
from repro.workloads.models.resnet import resnet50, resnext50
from repro.workloads.models.speczoo import (
    bert_base,
    gpt_decode,
    mobilenet_v2,
    unet,
)
from repro.workloads.models.transformer import transformer, transformer_large

#: Paper abbreviation -> builder.  The last four are spec-defined
#: (workloads/specs/*.json) and built through the frontend pipeline.
MODEL_REGISTRY = {
    "RN-50": resnet50,
    "RNX": resnext50,
    "IRes": inception_resnet_v1,
    "PNas": pnasnet,
    "TF": transformer,
    "TF-Large": transformer_large,
    "GN": googlenet,
    "BERT": bert_base,
    "MBV2": mobilenet_v2,
    "UNet": unet,
    "GPT-Dec": gpt_decode,
}


def build(name: str) -> DNNGraph:
    """Build a registered model by its paper abbreviation."""
    try:
        builder = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}"
        ) from None
    return builder()


__all__ = [
    "MODEL_REGISTRY",
    "bert_base",
    "build",
    "googlenet",
    "gpt_decode",
    "inception_resnet_v1",
    "mobilenet_v2",
    "pnasnet",
    "resnet50",
    "resnext50",
    "transformer",
    "transformer_large",
    "unet",
]
