"""ResNet-50 and ResNeXt-50 (32x4d) layer graphs.

Both models use the classic residual bottleneck skeleton (He et al.,
CVPR'16; Xie et al., CVPR'17) that the paper selects precisely because
residual structures are prevalent (Sec VI-A3).  Geometry follows the
standard ImageNet configuration (224x224x3 input, 1000-way classifier).
"""

from __future__ import annotations

from repro.workloads.graph import DNNGraph
from repro.workloads.models.common import GraphBuilder, Tensor

#: (blocks, mid-channels, out-channels, first-stride) per stage.
_RESNET50_STAGES = (
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
)

#: ResNeXt-50 32x4d widens the grouped 3x3 path: mid = 2x ResNet mid.
_RESNEXT50_STAGES = (
    (3, 128, 256, 1),
    (4, 256, 512, 2),
    (6, 512, 1024, 2),
    (3, 1024, 2048, 2),
)


def _bottleneck(
    b: GraphBuilder,
    x: Tensor,
    mid: int,
    out: int,
    stride: int,
    groups: int,
    tag: str,
) -> Tensor:
    """One (ResNeXt-style when groups > 1) bottleneck residual block."""
    y = b.conv(x, mid, kernel=1, name=f"{tag}_c1")
    y = b.conv(y, mid, kernel=3, stride=stride, groups=groups, name=f"{tag}_c2")
    y = b.conv(y, out, kernel=1, name=f"{tag}_c3")
    if stride != 1 or x.k != out:
        shortcut = b.conv(x, out, kernel=1, stride=stride, name=f"{tag}_proj")
    else:
        shortcut = x
    return b.add([y, shortcut], name=f"{tag}_add")


def _residual_backbone(
    name: str, stages, groups: int, batch_norm_free: bool = True
) -> DNNGraph:
    b = GraphBuilder(name, in_h=224, in_w=224, in_k=3)
    x = b.conv(None, 64, kernel=7, stride=2, pad=3, name="conv1")
    x = b.pool(x, kernel=3, stride=2, pad=1, name="maxpool")
    for stage_idx, (blocks, mid, out, first_stride) in enumerate(stages, start=1):
        for block_idx in range(blocks):
            stride = first_stride if block_idx == 0 else 1
            tag = f"s{stage_idx}b{block_idx}"
            x = _bottleneck(b, x, mid, out, stride, groups, tag)
    x = b.global_pool(x, name="avgpool")
    b.fc(x, 1000, name="fc1000")
    return b.build()


def resnet50() -> DNNGraph:
    """ResNet-50: 16 bottlenecks, ~4.1 GMACs/sample."""
    return _residual_backbone("resnet50", _RESNET50_STAGES, groups=1)


def resnext50() -> DNNGraph:
    """ResNeXt-50 32x4d: grouped 3x3 convolutions with cardinality 32."""
    return _residual_backbone("resnext50", _RESNEXT50_STAGES, groups=32)
