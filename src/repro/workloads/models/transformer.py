"""Transformer encoder layer graphs (Vaswani et al., NIPS'17).

The paper uses the Transformer as its default DSE workload (Sec VI-A1)
and "TF-Large" in the chiplet-reuse study (Fig 8).  Activations are
represented as (seq, 1, d_model) tensors; token-wise GEMMs become 1x1
convolutions over the sequence axis, and attention score / context
products become weight-free MATMUL layers.  Multi-head attention is
folded across heads: the per-head score MACs ``heads * seq^2 * d_head``
equal the folded ``seq^2 * d_model``, so compute and traffic volumes are
preserved exactly.
"""

from __future__ import annotations

from repro.workloads.graph import DNNGraph
from repro.workloads.models.common import GraphBuilder, Tensor


def _encoder_block(b: GraphBuilder, x: Tensor, d_ff: int, tag: str) -> Tensor:
    seq, d_model = x.h, x.k
    q = b.conv(x, d_model, kernel=1, name=f"{tag}_q")
    k = b.conv(x, d_model, kernel=1, name=f"{tag}_k")
    v = b.conv(x, d_model, kernel=1, name=f"{tag}_v")
    scores = b.matmul(q, k, out_h=seq, out_k=seq, in_c=d_model, name=f"{tag}_qk")
    probs = b.vector(scores, name=f"{tag}_softmax")
    ctx = b.matmul(probs, v, out_h=seq, out_k=d_model, in_c=seq, name=f"{tag}_av")
    proj = b.conv(ctx, d_model, kernel=1, name=f"{tag}_proj")
    attn_out = b.add([proj, x], name=f"{tag}_res1")
    norm1 = b.vector(attn_out, name=f"{tag}_ln1")
    ff1 = b.conv(norm1, d_ff, kernel=1, name=f"{tag}_ff1")
    ff2 = b.conv(ff1, d_model, kernel=1, name=f"{tag}_ff2")
    ff_out = b.add([ff2, norm1], name=f"{tag}_res2")
    return b.vector(ff_out, name=f"{tag}_ln2")


def transformer(
    seq_len: int = 64,
    d_model: int = 512,
    d_ff: int = 2048,
    n_layers: int = 6,
    name: str = "transformer",
) -> DNNGraph:
    """Transformer-base encoder stack (6 layers, d_model=512)."""
    b = GraphBuilder(name, in_h=seq_len, in_w=1, in_k=d_model)
    x = b.input_tensor()
    out = None
    for i in range(n_layers):
        out = _encoder_block(b, out if out is not None else _embed(b, x), d_ff, f"l{i}")
    return b.build()


def _embed(b: GraphBuilder, x: Tensor) -> Tensor:
    """Input embedding projection (token GEMM on the DNN input)."""
    return b.conv(None, x.k, kernel=1, name="embed")


def transformer_large(
    seq_len: int = 64, n_layers: int = 12, name: str = "transformer_large"
) -> DNNGraph:
    """Transformer-large encoder stack (d_model=1024, d_ff=4096)."""
    return transformer(
        seq_len=seq_len, d_model=1024, d_ff=4096, n_layers=n_layers, name=name
    )
