"""Inception-ResNet-v1 layer graph (Szegedy et al., AAAI'17).

The paper uses Inception-ResNet to represent DNNs with intricate
multi-branch dependencies (Sec VI-A3).  We implement the published v1
topology: stem to 35x35x256, 5x Inception-ResNet-A, Reduction-A to
17x17x896, 10x Inception-ResNet-B, Reduction-B to 8x8x1792,
5x Inception-ResNet-C, global pool and classifier.
"""

from __future__ import annotations

from repro.workloads.graph import DNNGraph
from repro.workloads.models.common import GraphBuilder, Tensor


def _stem(b: GraphBuilder) -> Tensor:
    x = b.conv(None, 32, kernel=3, stride=2, pad=0, name="stem_c1")  # 149
    x = b.conv(x, 32, kernel=3, pad=0, name="stem_c2")  # 147
    x = b.conv(x, 64, kernel=3, pad=1, name="stem_c3")  # 147
    x = b.pool(x, kernel=3, stride=2, pad=0, name="stem_pool")  # 73
    x = b.conv(x, 80, kernel=1, name="stem_c4")
    x = b.conv(x, 192, kernel=3, pad=0, name="stem_c5")  # 71
    x = b.conv(x, 256, kernel=3, stride=2, pad=0, name="stem_c6")  # 35
    return x


def _block35(b: GraphBuilder, x: Tensor, idx: int) -> Tensor:
    """Inception-ResNet-A: three branches re-projected onto 256 channels."""
    tag = f"a{idx}"
    br0 = b.conv(x, 32, kernel=1, name=f"{tag}_b0")
    br1 = b.conv(x, 32, kernel=1, name=f"{tag}_b1a")
    br1 = b.conv(br1, 32, kernel=3, name=f"{tag}_b1b")
    br2 = b.conv(x, 32, kernel=1, name=f"{tag}_b2a")
    br2 = b.conv(br2, 32, kernel=3, name=f"{tag}_b2b")
    br2 = b.conv(br2, 32, kernel=3, name=f"{tag}_b2c")
    mixed = b.concat([br0, br1, br2], name=f"{tag}_cat")
    up = b.conv(mixed, 256, kernel=1, name=f"{tag}_up")
    return b.add([x, up], name=f"{tag}_add")


def _reduction_a(b: GraphBuilder, x: Tensor) -> Tensor:
    """35x35x256 -> 17x17x896."""
    br0 = b.pool(x, kernel=3, stride=2, pad=0, name="ra_pool")
    br1 = b.conv(x, 384, kernel=3, stride=2, pad=0, name="ra_c1")
    br2 = b.conv(x, 192, kernel=1, name="ra_c2a")
    br2 = b.conv(br2, 192, kernel=3, name="ra_c2b")
    br2 = b.conv(br2, 256, kernel=3, stride=2, pad=0, name="ra_c2c")
    return b.concat([br0, br1, br2], name="ra_cat")


def _block17(b: GraphBuilder, x: Tensor, idx: int) -> Tensor:
    """Inception-ResNet-B with factorized 1x7 / 7x1 convolutions."""
    tag = f"b{idx}"
    br0 = b.conv(x, 128, kernel=1, name=f"{tag}_b0")
    br1 = b.conv(x, 128, kernel=1, name=f"{tag}_b1a")
    br1 = b.conv(br1, 128, kernel=(1, 7), pad=(0, 3), name=f"{tag}_b1b")
    br1 = b.conv(br1, 128, kernel=(7, 1), pad=(3, 0), name=f"{tag}_b1c")
    mixed = b.concat([br0, br1], name=f"{tag}_cat")
    up = b.conv(mixed, 896, kernel=1, name=f"{tag}_up")
    return b.add([x, up], name=f"{tag}_add")


def _reduction_b(b: GraphBuilder, x: Tensor) -> Tensor:
    """17x17x896 -> 8x8x1792."""
    br0 = b.pool(x, kernel=3, stride=2, pad=0, name="rb_pool")
    br1 = b.conv(x, 256, kernel=1, name="rb_c1a")
    br1 = b.conv(br1, 384, kernel=3, stride=2, pad=0, name="rb_c1b")
    br2 = b.conv(x, 256, kernel=1, name="rb_c2a")
    br2 = b.conv(br2, 256, kernel=3, stride=2, pad=0, name="rb_c2b")
    br3 = b.conv(x, 256, kernel=1, name="rb_c3a")
    br3 = b.conv(br3, 256, kernel=3, name="rb_c3b")
    br3 = b.conv(br3, 256, kernel=3, stride=2, pad=0, name="rb_c3c")
    return b.concat([br0, br1, br2, br3], name="rb_cat")


def _block8(b: GraphBuilder, x: Tensor, idx: int) -> Tensor:
    """Inception-ResNet-C with factorized 1x3 / 3x1 convolutions."""
    tag = f"c{idx}"
    br0 = b.conv(x, 192, kernel=1, name=f"{tag}_b0")
    br1 = b.conv(x, 192, kernel=1, name=f"{tag}_b1a")
    br1 = b.conv(br1, 192, kernel=(1, 3), pad=(0, 1), name=f"{tag}_b1b")
    br1 = b.conv(br1, 192, kernel=(3, 1), pad=(1, 0), name=f"{tag}_b1c")
    mixed = b.concat([br0, br1], name=f"{tag}_cat")
    up = b.conv(mixed, 1792, kernel=1, name=f"{tag}_up")
    return b.add([x, up], name=f"{tag}_add")


def inception_resnet_v1(
    n_a: int = 5, n_b: int = 10, n_c: int = 5
) -> DNNGraph:
    """Inception-ResNet-v1 with configurable block repeats."""
    b = GraphBuilder("inception_resnet_v1", in_h=299, in_w=299, in_k=3)
    x = _stem(b)
    for i in range(n_a):
        x = _block35(b, x, i)
    x = _reduction_a(b, x)
    for i in range(n_b):
        x = _block17(b, x, i)
    x = _reduction_b(b, x)
    for i in range(n_c):
        x = _block8(b, x, i)
    x = b.global_pool(x, name="avgpool")
    b.fc(x, 1000, name="fc1000")
    return b.build()
