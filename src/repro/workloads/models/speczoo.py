"""Spec-defined model zoo: DNNs shipped as declarative JSON specs.

These models exercise layer kinds and shapes the five hand-coded paper
workloads don't: ``DWCONV`` at depth (MobileNet-V2), encoder–decoder
skips with upsampling (U-Net), long-sequence attention (BERT-base) and
single-token decode against a KV cache (GPT decode blocks).  Each
builder loads its spec from ``workloads/specs/`` through the frontend
pipeline, so the registry doubles as an end-to-end exercise of
:mod:`repro.frontend`.
"""

from __future__ import annotations

from pathlib import Path

from repro.workloads.graph import DNNGraph

#: Directory holding the shipped ``.json`` model specs.
SPEC_DIR = Path(__file__).resolve().parent.parent / "specs"


def _build_from_spec(filename: str) -> DNNGraph:
    # Imported lazily: repro.frontend depends on repro.workloads, so a
    # module-level import here would be circular.
    from repro.frontend.spec import import_spec

    graph, _report = import_spec(SPEC_DIR / filename)
    return graph


def bert_base() -> DNNGraph:
    """BERT-base encoder stack (12 layers, seq 128, d_model 768)."""
    return _build_from_spec("bert_base.json")


def mobilenet_v2() -> DNNGraph:
    """MobileNet-V2 (224x224 ImageNet), depthwise-separable throughout."""
    return _build_from_spec("mobilenet_v2.json")


def unet() -> DNNGraph:
    """Slim U-Net (128x128, base width 32) with skip concats."""
    return _build_from_spec("unet.json")


def gpt_decode() -> DNNGraph:
    """Decode-phase GPT blocks: one token attending to a 1024-entry KV cache."""
    return _build_from_spec("gpt_decode.json")
