"""GoogLeNet (Inception-v1) layer graph (Szegedy et al., CVPR'15).

The paper's chiplet-reuse study (Fig 8) evaluates on "GN" alongside the
other workloads.  This is the standard 22-layer-deep Inception-v1 for
224x224 ImageNet inputs: stem, nine Inception modules across three
stages with max-pool reductions, global pooling and a 1000-way head.
"""

from __future__ import annotations

from repro.workloads.graph import DNNGraph
from repro.workloads.models.common import GraphBuilder, Tensor

#: Per-module channel plan: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj).
_INCEPTION_PLAN = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(b: GraphBuilder, x: Tensor, tag: str) -> Tensor:
    c1, r3, c3, r5, c5, pp = _INCEPTION_PLAN[tag]
    br0 = b.conv(x, c1, kernel=1, name=f"i{tag}_1x1")
    br1 = b.conv(x, r3, kernel=1, name=f"i{tag}_3r")
    br1 = b.conv(br1, c3, kernel=3, name=f"i{tag}_3x3")
    br2 = b.conv(x, r5, kernel=1, name=f"i{tag}_5r")
    br2 = b.conv(br2, c5, kernel=5, name=f"i{tag}_5x5")
    br3 = b.pool(x, kernel=3, stride=1, pad=1, name=f"i{tag}_pool")
    br3 = b.conv(br3, pp, kernel=1, name=f"i{tag}_pp")
    return b.concat([br0, br1, br2, br3], name=f"i{tag}_cat")


def googlenet() -> DNNGraph:
    """GoogLeNet / Inception-v1 (~1.5 GMACs, ~6.8 M parameters)."""
    b = GraphBuilder("googlenet", in_h=224, in_w=224, in_k=3)
    x = b.conv(None, 64, kernel=7, stride=2, pad=3, name="conv1")  # 112
    x = b.pool(x, kernel=3, stride=2, pad=1, name="pool1")         # 56
    x = b.conv(x, 64, kernel=1, name="conv2r")
    x = b.conv(x, 192, kernel=3, name="conv2")
    x = b.pool(x, kernel=3, stride=2, pad=1, name="pool2")         # 28
    x = _inception(b, x, "3a")
    x = _inception(b, x, "3b")
    x = b.pool(x, kernel=3, stride=2, pad=1, name="pool3")         # 14
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        x = _inception(b, x, tag)
    x = b.pool(x, kernel=3, stride=2, pad=1, name="pool4")         # 7
    x = _inception(b, x, "5a")
    x = _inception(b, x, "5b")
    x = b.global_pool(x, name="avgpool")
    b.fc(x, 1000, name="fc1000")
    return b.build()
