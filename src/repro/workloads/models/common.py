"""Builder helpers shared by the DNN model zoo.

:class:`GraphBuilder` tracks the spatial geometry of activations as layers
are appended so that model definitions read like standard framework code
(conv / pool / fc / add / concat), while every layer in the resulting
:class:`~repro.workloads.graph.DNNGraph` carries a consistent
output-centric description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidWorkloadError
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def conv_out(size: int, kernel: int, stride: int, pad: int) -> int:
    """Standard convolution output-size arithmetic."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise InvalidWorkloadError(
            f"conv geometry underflow: size={size} k={kernel} s={stride} p={pad}"
        )
    return out


@dataclass(frozen=True)
class Tensor:
    """A named activation with its geometry, as tracked by the builder."""

    layer: str
    h: int
    w: int
    k: int


class GraphBuilder:
    """Incrementally build a :class:`DNNGraph` with geometry checking."""

    def __init__(self, name: str, in_h: int, in_w: int, in_k: int, bits: int = 8):
        self.graph = DNNGraph(name)
        self.bits = bits
        self._input = Tensor("", in_h, in_w, in_k)
        self._counter = 0

    # ------------------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _resolve(self, src: Tensor | None) -> Tensor:
        return self._input if src is None else src

    def _add(self, layer: Layer, srcs: list[Tensor], combine: str) -> Tensor:
        inputs = [t.layer for t in srcs if t.layer]
        from_input = any(not t.layer for t in srcs)
        self.graph.add_layer(
            layer, inputs=inputs, combine=combine, from_graph_input=from_input
        )
        return Tensor(layer.name, layer.out_h, layer.out_w, layer.out_k)

    # ------------------------------------------------------------------
    # Layer constructors
    # ------------------------------------------------------------------

    def conv(
        self,
        src: Tensor | None,
        out_k: int,
        kernel: int | tuple[int, int],
        stride: int = 1,
        pad: int | tuple[int, int] | str = "same",
        groups: int = 1,
        name: str | None = None,
    ) -> Tensor:
        """Append a convolution. ``pad='same'`` keeps spatial size at stride 1."""
        src = self._resolve(src)
        kr, ks = (kernel, kernel) if isinstance(kernel, int) else kernel
        if pad == "same":
            ph, pw = kr // 2, ks // 2
        elif isinstance(pad, int):
            ph = pw = pad
        else:
            ph, pw = pad
        oh = conv_out(src.h, kr, stride, ph)
        ow = conv_out(src.w, ks, stride, pw)
        kind = LayerType.DWCONV if groups == src.k == out_k else LayerType.CONV
        layer = Layer(
            name=name or self._name("conv"),
            kind=kind,
            out_h=oh,
            out_w=ow,
            out_k=out_k,
            in_c=src.k,
            kernel_r=kr,
            kernel_s=ks,
            stride=stride,
            pad_h=ph,
            pad_w=pw,
            groups=groups,
            bits=self.bits,
        )
        return self._add(layer, [src], "concat")

    def pool(
        self,
        src: Tensor | None,
        kernel: int,
        stride: int | None = None,
        pad: int = 0,
        name: str | None = None,
    ) -> Tensor:
        src = self._resolve(src)
        stride = stride or kernel
        oh = conv_out(src.h, kernel, stride, pad)
        ow = conv_out(src.w, kernel, stride, pad)
        layer = Layer(
            name=name or self._name("pool"),
            kind=LayerType.POOL,
            out_h=oh,
            out_w=ow,
            out_k=src.k,
            in_c=src.k,
            kernel_r=kernel,
            kernel_s=kernel,
            stride=stride,
            pad_h=pad,
            pad_w=pad,
            bits=self.bits,
        )
        return self._add(layer, [src], "concat")

    def global_pool(self, src: Tensor, name: str | None = None) -> Tensor:
        return self.pool(src, kernel=src.h, stride=src.h, name=name or self._name("gap"))

    def fc(self, src: Tensor, out_k: int, name: str | None = None) -> Tensor:
        """Fully connected layer; flattens the source geometry."""
        layer = Layer(
            name=name or self._name("fc"),
            kind=LayerType.FC,
            out_h=1,
            out_w=1,
            out_k=out_k,
            in_c=src.h * src.w * src.k,
            bits=self.bits,
        )
        return self._add(layer, [src], "concat")

    def add(self, srcs: list[Tensor], name: str | None = None) -> Tensor:
        """Element-wise residual addition of same-shaped tensors."""
        first = srcs[0]
        for t in srcs[1:]:
            if (t.h, t.w, t.k) != (first.h, first.w, first.k):
                raise InvalidWorkloadError(
                    f"add of mismatched shapes {t} vs {first}"
                )
        layer = Layer(
            name=name or self._name("add"),
            kind=LayerType.ELTWISE,
            out_h=first.h,
            out_w=first.w,
            out_k=first.k,
            in_c=first.k,
            bits=self.bits,
        )
        return self._add(layer, srcs, "add")

    def concat(self, srcs: list[Tensor], name: str | None = None) -> Tensor:
        """Channel concat, modeled as a VECTOR pass-through layer."""
        first = srcs[0]
        for t in srcs[1:]:
            if (t.h, t.w) != (first.h, first.w):
                raise InvalidWorkloadError("concat of mismatched spatial shapes")
        total_k = sum(t.k for t in srcs)
        layer = Layer(
            name=name or self._name("concat"),
            kind=LayerType.VECTOR,
            out_h=first.h,
            out_w=first.w,
            out_k=total_k,
            in_c=total_k,
            bits=self.bits,
        )
        return self._add(layer, srcs, "concat")

    def vector(self, src: Tensor, name: str | None = None) -> Tensor:
        """A vector-unit-only layer (softmax / layernorm / activation)."""
        layer = Layer(
            name=name or self._name("vec"),
            kind=LayerType.VECTOR,
            out_h=src.h,
            out_w=src.w,
            out_k=src.k,
            in_c=src.k,
            bits=self.bits,
        )
        return self._add(layer, [src], "concat")

    def matmul(
        self,
        lhs: Tensor,
        rhs: Tensor,
        out_h: int,
        out_k: int,
        in_c: int,
        name: str | None = None,
    ) -> Tensor:
        """Activation-activation matmul (attention); no weights."""
        layer = Layer(
            name=name or self._name("matmul"),
            kind=LayerType.MATMUL,
            out_h=out_h,
            out_w=1,
            out_k=out_k,
            in_c=in_c,
            bits=self.bits,
        )
        return self._add(layer, [lhs, rhs], "add")

    # ------------------------------------------------------------------

    def input_tensor(self) -> Tensor:
        return self._input

    def build(self) -> DNNGraph:
        self.graph.validate()
        return self.graph
