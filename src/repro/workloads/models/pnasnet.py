"""PNASNet-like layer graph (Liu et al., ECCV'18).

The paper uses PNASNet to represent NAS-produced DNNs with intricate
dependencies (Sec VI-A3).  We reproduce the characteristic PNAS cell
structure — five blocks, each the element-wise sum of two parallel
operations (separable convolutions of several sizes, max-pooling,
identity), concatenated into the cell output — with a 1x1 projection
between cells to keep channel bookkeeping explicit.

Simplification vs. the released PNASNet-5-Large checkpoint: separable
convolutions are applied once (not twice), and the dual-input (h_{i-1},
h_{i-2}) skip wiring is folded onto the cell input.  This preserves the
branch-heavy dependency structure the paper cares about while keeping the
layer count comparable.
"""

from __future__ import annotations

from repro.workloads.graph import DNNGraph
from repro.workloads.models.common import GraphBuilder, Tensor


def _sep_conv(
    b: GraphBuilder, x: Tensor, out_k: int, kernel: int, stride: int, tag: str
) -> Tensor:
    """Depthwise-separable convolution: DW k x k then 1x1 pointwise."""
    dw = b.conv(x, x.k, kernel=kernel, stride=stride, groups=x.k, name=f"{tag}_dw")
    return b.conv(dw, out_k, kernel=1, name=f"{tag}_pw")


def _pnas_cell(
    b: GraphBuilder, x: Tensor, filters: int, stride: int, tag: str
) -> Tensor:
    """One PNAS cell: five two-op blocks, concat, 1x1 projection."""
    if stride != 1 or x.k != filters:
        base = b.conv(x, filters, kernel=1, stride=stride, name=f"{tag}_base")
    else:
        base = x

    blocks = []
    # Block 1: sep5x5 + max3x3.
    p = _sep_conv(b, x, filters, kernel=5, stride=stride, tag=f"{tag}_s5a")
    q = b.pool(x, kernel=3, stride=stride, pad=1, name=f"{tag}_mp1")
    if q.k != filters:
        q = b.conv(q, filters, kernel=1, name=f"{tag}_mp1p")
    blocks.append(b.add([p, q], name=f"{tag}_blk1"))
    # Block 2: sep7x7 + max3x3.
    p = _sep_conv(b, x, filters, kernel=7, stride=stride, tag=f"{tag}_s7")
    q = b.pool(x, kernel=3, stride=stride, pad=1, name=f"{tag}_mp2")
    if q.k != filters:
        q = b.conv(q, filters, kernel=1, name=f"{tag}_mp2p")
    blocks.append(b.add([p, q], name=f"{tag}_blk2"))
    # Block 3: sep5x5 + sep3x3.
    p = _sep_conv(b, x, filters, kernel=5, stride=stride, tag=f"{tag}_s5b")
    q = _sep_conv(b, x, filters, kernel=3, stride=stride, tag=f"{tag}_s3a")
    blocks.append(b.add([p, q], name=f"{tag}_blk3"))
    # Block 4: sep3x3 + identity (projected base).
    p = _sep_conv(b, x, filters, kernel=3, stride=stride, tag=f"{tag}_s3b")
    blocks.append(b.add([p, base], name=f"{tag}_blk4"))
    # Block 5: identity + max3x3 (projected).
    q = b.pool(x, kernel=3, stride=stride, pad=1, name=f"{tag}_mp3")
    if q.k != filters:
        q = b.conv(q, filters, kernel=1, name=f"{tag}_mp3p")
    blocks.append(b.add([base, q], name=f"{tag}_blk5"))

    cat = b.concat(blocks, name=f"{tag}_cat")
    return b.conv(cat, filters, kernel=1, name=f"{tag}_out")


def pnasnet(
    filters: int = 108, cells_per_stage: int = 3, num_stages: int = 3
) -> DNNGraph:
    """PNASNet-like network: stem, then stages of cells with reductions."""
    b = GraphBuilder("pnasnet", in_h=331, in_w=331, in_k=3)
    x = b.conv(None, 96, kernel=3, stride=2, pad=0, name="stem")
    x = _pnas_cell(b, x, filters, stride=2, tag="stem_r")
    f = filters
    for stage in range(num_stages):
        for cell in range(cells_per_stage):
            x = _pnas_cell(b, x, f, stride=1, tag=f"s{stage}c{cell}")
        if stage != num_stages - 1:
            f *= 2
            x = _pnas_cell(b, x, f, stride=2, tag=f"s{stage}r")
    x = b.global_pool(x, name="avgpool")
    b.fc(x, 1000, name="fc1000")
    return b.build()
