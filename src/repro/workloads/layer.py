"""Layer model: the per-layer features the Gemini model parser extracts.

A :class:`Layer` describes one node of a DNN DAG (Sec II-B of the paper)
using the output-centric view the LP SPM encoding needs: the ofmap cube
``(H, W, K)`` per sample, the ifmap channel count ``C``, and the kernel /
stride / padding geometry that determines receptive fields.  Batch size is
*not* part of the layer; it is supplied at mapping time (the graph
partition engine chooses the batch unit per pipeline stage).

Conventions
-----------

* ``CONV`` / ``FC`` layers own weights of ``K*C*R*S/groups`` elements and
  need **all** input channels per output element.
* ``POOL`` / ``ELTWISE`` / ``DWCONV`` layers preserve channels: output
  channel ``k`` depends only on input channel ``k`` (per group for
  DWCONV), which matters for inter-layer traffic analysis.
* ``MATMUL`` models activation-activation products (attention scores and
  context matmuls in Transformers): it has no weights; its second operand
  is an ordinary activation dependency in the graph.
* ``VECTOR`` models softmax / layernorm / activation-only layers computed
  on the vector unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import InvalidWorkloadError


class LayerType(enum.Enum):
    """Kinds of layers distinguished by the evaluator."""

    CONV = "conv"
    FC = "fc"
    POOL = "pool"
    ELTWISE = "eltwise"
    DWCONV = "dwconv"
    MATMUL = "matmul"
    VECTOR = "vector"


#: Layer kinds whose output channel k depends only on input channel k.
CHANNELWISE_KINDS = frozenset(
    {LayerType.POOL, LayerType.ELTWISE, LayerType.DWCONV, LayerType.VECTOR}
)

#: Layer kinds that carry trained weights.
WEIGHTED_KINDS = frozenset({LayerType.CONV, LayerType.FC, LayerType.DWCONV})


@dataclass(frozen=True)
class Layer:
    """A single DNN layer in output-centric form.

    Parameters
    ----------
    name:
        Unique identifier within a graph.
    kind:
        The :class:`LayerType`.
    out_h, out_w, out_k:
        Ofmap height, width and channel count per sample.
    in_c:
        Ifmap channel count (summed over all inputs for concat fan-in).
    kernel_r, kernel_s:
        Kernel height and width (1 for FC / ELTWISE / MATMUL / VECTOR).
    stride:
        Spatial stride (same in both dimensions).
    pad_h, pad_w:
        Zero padding on the height / width axes (each applied to both
        sides of its axis).
    groups:
        Grouped-convolution group count; ``groups == in_c == out_k`` for
        depthwise layers.
    bits:
        Element precision; 8-bit inference by default (Simba-compatible).
    """

    name: str
    kind: LayerType
    out_h: int
    out_w: int
    out_k: int
    in_c: int
    kernel_r: int = 1
    kernel_s: int = 1
    stride: int = 1
    pad_h: int = 0
    pad_w: int = 0
    groups: int = 1
    bits: int = 8

    def __post_init__(self):
        if min(self.out_h, self.out_w, self.out_k, self.in_c) < 1:
            raise InvalidWorkloadError(
                f"layer {self.name!r}: dimensions must be positive"
            )
        if min(self.kernel_r, self.kernel_s, self.stride, self.groups) < 1:
            raise InvalidWorkloadError(
                f"layer {self.name!r}: kernel/stride/groups must be positive"
            )
        if self.pad_h < 0 or self.pad_w < 0:
            raise InvalidWorkloadError(f"layer {self.name!r}: negative padding")
        if self.out_k % self.groups or self.in_c % self.groups:
            raise InvalidWorkloadError(
                f"layer {self.name!r}: groups must divide in_c and out_k"
            )
        if self.bits % 8:
            raise InvalidWorkloadError(f"layer {self.name!r}: bits must be x8")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def bytes_per_elem(self) -> int:
        return self.bits // 8

    @property
    def in_h(self) -> int:
        """Ifmap height implied by the output geometry."""
        return (self.out_h - 1) * self.stride + self.kernel_r - 2 * self.pad_h

    @property
    def in_w(self) -> int:
        """Ifmap width implied by the output geometry."""
        return (self.out_w - 1) * self.stride + self.kernel_s - 2 * self.pad_w

    @property
    def has_weights(self) -> bool:
        return self.kind in WEIGHTED_KINDS

    @property
    def is_channelwise(self) -> bool:
        """True when output channel ``k`` only reads input channel ``k``."""
        return self.kind in CHANNELWISE_KINDS

    # ------------------------------------------------------------------
    # Volumes (per sample unless a batch argument is given)
    # ------------------------------------------------------------------

    def ofmap_elems(self, batch: int = 1) -> int:
        return batch * self.out_h * self.out_w * self.out_k

    def ofmap_bytes(self, batch: int = 1) -> int:
        return self.ofmap_elems(batch) * self.bytes_per_elem

    def ifmap_elems(self, batch: int = 1) -> int:
        return batch * max(self.in_h, 1) * max(self.in_w, 1) * self.in_c

    def ifmap_bytes(self, batch: int = 1) -> int:
        return self.ifmap_elems(batch) * self.bytes_per_elem

    def weight_elems(self) -> int:
        if not self.has_weights:
            return 0
        return (
            self.out_k
            * (self.in_c // self.groups)
            * self.kernel_r
            * self.kernel_s
        )

    def weight_bytes(self) -> int:
        return self.weight_elems() * self.bytes_per_elem

    def macs(self, batch: int = 1) -> int:
        """Multiply-accumulate count for ``batch`` samples.

        POOL / ELTWISE / VECTOR layers return their vector-op counts so
        that compute time can still be bounded; the evaluator weights them
        with the (cheaper) vector-unit throughput and energy.
        """
        spatial = batch * self.out_h * self.out_w * self.out_k
        if self.kind in (LayerType.CONV, LayerType.FC, LayerType.DWCONV):
            return spatial * (self.in_c // self.groups) * self.kernel_r * self.kernel_s
        if self.kind is LayerType.MATMUL:
            return spatial * self.in_c
        if self.kind is LayerType.POOL:
            return spatial * self.kernel_r * self.kernel_s
        # ELTWISE / VECTOR: one op per output element.
        return spatial

    def is_compute_heavy(self) -> bool:
        """True for layers executed on the PE array (GEMM/Conv family)."""
        return self.kind in (
            LayerType.CONV,
            LayerType.FC,
            LayerType.DWCONV,
            LayerType.MATMUL,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}[{self.kind.value} "
            f"o={self.out_h}x{self.out_w}x{self.out_k} c={self.in_c} "
            f"k={self.kernel_r}x{self.kernel_s}/{self.stride}]"
        )
