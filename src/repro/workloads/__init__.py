"""DNN workload substrate: layers, DAGs, and the model zoo."""

from repro.workloads.graph import DNNGraph, InputSlice
from repro.workloads.layer import Layer, LayerType

__all__ = ["DNNGraph", "InputSlice", "Layer", "LayerType"]
