"""Derived metrics behind the paper's Discussion insights (Sec VII).

The paper quotes quantities like "the average number of layers
processed simultaneously" (5.4 / 4.1 / 10.2 / 8.1 for the four Fig 7
optima) and per-core-count DRAM-access reductions.  These helpers
compute the same statistics from a :class:`MappingResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — avoids a core <-> evalmodel cycle
    from repro.core.engine import MappingResult


def average_concurrent_layers(result: "MappingResult") -> float:
    """Delay-weighted mean pipeline depth: the paper's "average number
    of layers processed simultaneously"."""
    total = result.delay
    if total <= 0:
        return 0.0
    return sum(
        len(group) * ev.delay
        for group, ev in zip(result.groups, result.evaluation.groups)
    ) / total


def dram_bytes_per_inference(result: "MappingResult") -> float:
    """Total DRAM traffic (reads + writes) of one inference pass."""
    total = 0.0
    for ev in result.evaluation.groups:
        total += sum(ev.dram_round_bytes) * ev.rounds
    return total


def d2d_energy_share(result: "MappingResult") -> float:
    """Fraction of network energy spent on D2D links."""
    network = result.evaluation.energy.network
    if network <= 0:
        return 0.0
    return result.evaluation.energy.d2d / network


def stage_bound_histogram(result: "MappingResult") -> dict[str, int]:
    """How many layer groups are compute- / network- / DRAM-bound."""
    hist: dict[str, int] = {}
    for ev in result.evaluation.groups:
        hist[ev.bound] = hist.get(ev.bound, 0) + 1
    return hist


def pipeline_fill_drain_loss(result: "MappingResult") -> float:
    """Fraction of total delay spent filling/draining pipelines."""
    total = result.delay
    if total <= 0:
        return 0.0
    useful = sum(
        ev.stage_time * ev.rounds for ev in result.evaluation.groups
    )
    return max(0.0, 1.0 - useful / total)
