"""Pipeline delay model (Sec V-B2).

In LP mapping a layer group is a spatial pipeline over batch units: each
round pushes one batch unit through every layer simultaneously.  The
steady-state stage time is bounded by the slowest of

* the slowest core's compute time (max over all parts),
* the most-loaded link's serialization time (NoC or D2D), and
* the most-loaded DRAM die's access time,

and the group delay follows the classic fill/drain form
``stage x (rounds + depth - 1)`` plus a one-time resident-weight load
prologue.  Utilization losses from filling and draining grow with the
pipeline depth — the effect behind the core-granularity insight of
Sec VII-A2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.params import ArchConfig
from repro.evalmodel.traffic_analysis import GroupTraffic
from repro.intracore.result import IntraCoreResult


@dataclass(frozen=True)
class StageTimes:
    compute: float
    network: float
    dram: float
    prologue: float

    @property
    def stage(self) -> float:
        return max(self.compute, self.network, self.dram)


def per_dram_bandwidth(arch: ArchConfig) -> float:
    """Bandwidth of one DRAM attach point."""
    return arch.dram_bw / arch.n_dram


def stage_times(
    arch: ArchConfig,
    intra: dict[str, list[IntraCoreResult]],
    group_traffic: GroupTraffic,
) -> StageTimes:
    compute = 0.0
    for results in intra.values():
        for res in results:
            compute = max(compute, res.compute_time)
    return stage_times_from_compute(arch, compute, group_traffic)


def stage_times_from_compute(
    arch: ArchConfig,
    compute: float,
    group_traffic: GroupTraffic,
) -> StageTimes:
    """Stage times given a precomputed slowest-core compute time.

    The evaluator caches the max compute time per layer, so the SA loop
    can skip re-scanning every intra-core result on each evaluation.
    """
    network = group_traffic.traffic.serialization_time()
    bw = per_dram_bandwidth(arch)
    round_bytes = group_traffic.dram_round_bytes
    dram = float(np.max(round_bytes)) / bw if len(round_bytes) else 0.0
    once = group_traffic.dram_weight_once
    prologue = float(np.max(once)) / bw if len(once) else 0.0
    return StageTimes(compute, network, dram, prologue)


def group_delay(times: StageTimes, rounds: int, depth: int) -> float:
    """Fill/drain pipeline delay for ``rounds`` batch units."""
    return times.stage * (rounds + depth - 1) + times.prologue


def pipeline_utilization(rounds: int, depth: int) -> float:
    """Fraction of stage slots doing useful work (fill/drain loss).

    Degenerate groups (zero rounds, or a single layer at zero depth)
    report 0 utilization instead of dividing by zero.
    """
    slots = rounds + depth - 1
    if rounds <= 0 or slots <= 0:
        return 0.0
    return rounds / slots
