"""Traffic analysis: parsed scheme -> per-round link and DRAM volumes.

This implements the Evaluator's global analysis (Sec V-B2): the data
communication volume on every NoC/D2D link and the access pattern of
every DRAM, for one pipeline round (one batch unit) of a layer group.

Flows handled:

* **inter-layer** — producer part -> consumer part overlap volumes
  (4-D interval intersections of the producer's owned ofmap regions with
  the consumer's halo-aware ifmap requirement), unicast over XY routes;
* **DRAM ifmap** — layers reading the DNN input or a cross-group
  producer fetch from the DRAM selected by FD (0 = interleaved over all
  DRAMs, d > 0 = DRAM d; cross-group inputs come from wherever the
  producer group stored its ofmaps);
* **weights** — cores sharing a K-slice receive the same bytes, so each
  distinct slice is read from DRAM once and multicast along an XY tree;
* **DRAM ofmap** — explicit OF flows write each part's ofmap out.

MATMUL layers are special-cased: the first operand is consumed row-wise
(its H range follows the consumer's), the second operand either row-wise
by the consumer's K range (score products) or channel-wise (context
products), detected from the contraction geometry.

The analyzer computes traffic one layer at a time into
:class:`LayerTrafficBlock` records and merges them.  A block depends
only on the layer's scheme, its in-group producers' schemes, the DRAM
placement of its cross-group inputs and the group's batch unit — so an
SA move that mutates one layer's scheme invalidates only that layer's
block and the blocks of its in-group consumers.  Passing a ``cache``
dict memoizes blocks under exactly that key, which is what makes the
SA loop's incremental evaluation path fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.arch.params import ArchConfig
from repro.core.encoding import INTERLEAVED, LayerGroupMapping
from repro.core.parser import ParsedGroup
from repro.fabric import NodeId, Topology
from repro.intracore.result import IntraCoreResult
from repro.noc.multicast import multicast_tree
from repro.noc.traffic import TrafficMap
from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


@dataclass(frozen=True)
class FlowRecord:
    """One logical transfer, kept when flow collection is enabled.

    ``kind`` is one of ``ifmap`` (inter-layer or DRAM input), ``weight``
    or ``ofmap``; endpoints are topology nodes.
    """

    kind: str
    layer: str
    src: tuple
    dst: tuple
    volume: float
    #: Producer layer when the source endpoint is a core computing it.
    src_layer: str | None = None
    #: Records sharing an id are one multicast: the same bytes traverse
    #: each tree link once (simulators must deduplicate; instruction
    #: generation keeps every destination's copy).
    multicast_group: int | None = None
    #: True for once-per-inference transfers (resident weight loads),
    #: which do not belong to a steady-state round.
    once: bool = False


@dataclass
class GroupTraffic:
    """Per-round traffic of one layer group."""

    traffic: TrafficMap
    dram_read: np.ndarray
    dram_write: np.ndarray
    #: Weight bytes loaded once per inference (resident weights), per DRAM.
    dram_weight_once: np.ndarray
    weight_tree_hop_bytes: float = 0.0
    flows: list[FlowRecord] | None = None

    @property
    def dram_round_bytes(self) -> np.ndarray:
        return self.dram_read + self.dram_write


@dataclass(frozen=True)
class LayerTrafficBlock:
    """One layer's contribution to the group traffic.

    Blocks are immutable once built, so they can be memoized and merged
    into any number of :class:`GroupTraffic` results; arrays must not be
    mutated in place.  All-zero DRAM components are stored as ``None``
    so the merge loop can skip them.
    """

    volumes: np.ndarray
    dram_read: np.ndarray | None
    dram_write: np.ndarray | None
    dram_weight_once: np.ndarray | None
    weight_tree_hop_bytes: float
    flows: tuple[FlowRecord, ...] | None


def round_flows(flows, topo) -> list["FlowRecord"]:
    """Steady-state per-round flows for simulators.

    Excludes once-per-inference transfers (resident weight prologues)
    and collapses each multicast to its longest-route representative —
    the tree's trunk carries the bytes once; side branches reuse them.
    """
    kept: list[FlowRecord] = []
    best_per_group: dict[int, FlowRecord] = {}
    for f in flows or []:
        if f.once:
            continue
        if f.multicast_group is None:
            kept.append(f)
            continue
        cur = best_per_group.get(f.multicast_group)
        if cur is None or len(topo.route(f.src, f.dst)) > \
                len(topo.route(cur.src, cur.dst)):
            best_per_group[f.multicast_group] = f
    kept.extend(best_per_group.values())
    return kept


#: Per-topology memo of FD-selector targets (topologies are shared
#: across evaluators; dead ones drop their entries with the weak key).
_DRAM_TARGET_CACHE: "WeakKeyDictionary[Topology, dict]" = WeakKeyDictionary()


def _dram_targets(
    topo: Topology, fd_value: int
) -> tuple[tuple[NodeId, float], ...]:
    """(dram node, share) pairs for an FD selector (memoized per topo)."""
    per_topo = _DRAM_TARGET_CACHE.get(topo)
    if per_topo is None:
        per_topo = {}
        _DRAM_TARGET_CACHE[topo] = per_topo
    targets = per_topo.get(fd_value)
    if targets is None:
        drams = topo.dram_nodes()
        if fd_value == INTERLEAVED:
            share = 1.0 / len(drams)
            targets = tuple((d, share) for d in drams)
        else:
            targets = ((drams[fd_value - 1], 1.0),)
        per_topo[fd_value] = targets
    return targets


def dram_scatter_batch(
    topo: Topology,
    fd: int,
    cores: np.ndarray,
    volumes: np.ndarray,
    vol_slots: np.ndarray,
    tally: np.ndarray,
    write: bool,
) -> None:
    """Scatter-add core<->DRAM flows for many parts at once.

    Additions into each per-link / per-DRAM slot happen in part order
    (np.add.at is unbuffered and in index order), matching the per-part
    loop of the flow-collecting path.  Shared by the object-graph
    analyzer and the compiled evaluation core so the two paths cannot
    drift numerically.
    """
    n_dram = len(topo.dram_nodes())
    to_dram, to_lens, from_dram, from_lens = topo.dram_route_tables()
    table, lens = (to_dram, to_lens) if write else (from_dram, from_lens)
    for dram, share in _dram_targets(topo, fd):
        d = dram[1]
        v = volumes * share
        rows = cores * n_dram + d
        padded = table[rows].ravel()
        vol_slots += np.bincount(
            padded[padded >= 0],
            weights=np.repeat(v, lens[rows]),
            minlength=len(vol_slots),
        )
        # Sequential left-fold into the DRAM tally, exactly like the
        # per-part ``dram_read[d] += v`` loop of the flow-collecting
        # path (np.sum's pairwise reduction would associate
        # differently); a Python loop beats np.add.at at these sizes.
        t = tally[d]
        for x in v.tolist():
            t += x
        tally[d] = t


def core_scatter_batch(
    topo: Topology,
    src_cores: np.ndarray,
    dst_cores: np.ndarray,
    volumes: np.ndarray,
    vol_slots: np.ndarray,
) -> None:
    """Accumulate many core->core flows' routes in one scatter-add.

    np.add.at / bincount apply increments in index order, so per-link
    sums associate exactly like sequential ``add_flow`` calls.  Shared
    by both evaluation paths (see :func:`dram_scatter_batch`).
    """
    table, lens = topo.core_route_table()
    rows = src_cores * topo.arch.n_cores + dst_cores
    padded = table[rows].ravel()
    vol_slots += np.bincount(
        padded[padded >= 0],
        weights=np.repeat(volumes, lens[rows]),
        minlength=len(vol_slots),
    )


def _conv_needs(
    consumer: Layer, dest_regions: np.ndarray, slice_lo: int, slice_hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """Producer-coordinate requirement regions for every consumer part.

    Vectorized combination of the receptive-field box (halo-aware,
    clipped to the valid ifmap extent) with the channel overlap between
    the consumer's requirement and the producer slice ``(slice_lo,
    slice_hi)``; channel bounds are rebased to slice coordinates.
    Returns ``(needs[n, 8], valid[n])``; rows with ``valid`` False have
    no overlap with this slice.
    """
    n = len(dest_regions)
    h_lo, h_hi = dest_regions[:, 0], dest_regions[:, 1]
    w_lo, w_hi = dest_regions[:, 2], dest_regions[:, 3]
    if consumer.is_channelwise:
        c_lo, c_hi = dest_regions[:, 6], dest_regions[:, 7]
    elif consumer.groups > 1:
        k_per_group = consumer.out_k // consumer.groups
        c_per_group = consumer.in_c // consumer.groups
        c_lo = dest_regions[:, 6] // k_per_group * c_per_group
        c_hi = ((dest_regions[:, 7] - 1) // k_per_group + 1) * c_per_group
    else:
        c_lo = np.zeros(n, dtype=np.int64)
        c_hi = np.full(n, consumer.in_c, dtype=np.int64)
    lo = np.maximum(c_lo, slice_lo)
    hi = np.minimum(c_hi, slice_hi)
    ih_lo = np.maximum(0, h_lo * consumer.stride - consumer.pad_h)
    ih_hi = np.minimum(
        consumer.in_h,
        (h_hi - 1) * consumer.stride - consumer.pad_h + consumer.kernel_r,
    )
    ih_hi = np.maximum(ih_lo, ih_hi)
    iw_lo = np.maximum(0, w_lo * consumer.stride - consumer.pad_w)
    iw_hi = np.minimum(
        consumer.in_w,
        (w_hi - 1) * consumer.stride - consumer.pad_w + consumer.kernel_s,
    )
    iw_hi = np.maximum(iw_lo, iw_hi)
    needs = np.empty((n, 8), dtype=np.int64)
    needs[:, 0], needs[:, 1] = ih_lo, ih_hi
    needs[:, 2], needs[:, 3] = iw_lo, iw_hi
    needs[:, 4], needs[:, 5] = dest_regions[:, 4], dest_regions[:, 5]
    needs[:, 6], needs[:, 7] = lo - slice_lo, hi - slice_lo
    ext = needs[:, 1::2] - needs[:, 0::2]
    return needs, (ext > 0).all(axis=1)


def _matmul_needs(
    consumer: Layer, dest_regions: np.ndarray, operand: int, producer: Layer
) -> tuple[np.ndarray, np.ndarray]:
    """Producer regions MATMUL consumer parts need (see module doc)."""
    n = len(dest_regions)
    needs = np.empty((n, 8), dtype=np.int64)
    needs[:, 4], needs[:, 5] = dest_regions[:, 4], dest_regions[:, 5]
    if operand == 0:
        # First operand: rows follow the consumer's H range.
        needs[:, 0], needs[:, 1] = dest_regions[:, 0], dest_regions[:, 1]
        needs[:, 2], needs[:, 3] = 0, producer.out_w
        needs[:, 6], needs[:, 7] = 0, producer.out_k
    elif producer.out_k == consumer.in_c and producer.out_h != consumer.in_c:
        # Score product (Q @ K^T): row j of the operand feeds output
        # column j.
        needs[:, 0], needs[:, 1] = dest_regions[:, 6], dest_regions[:, 7]
        needs[:, 2], needs[:, 3] = 0, producer.out_w
        needs[:, 6], needs[:, 7] = 0, producer.out_k
    else:
        # Context product (P @ V): column k feeds output channel k.
        needs[:, 0], needs[:, 1] = 0, producer.out_h
        needs[:, 2], needs[:, 3] = 0, producer.out_w
        needs[:, 6], needs[:, 7] = dest_regions[:, 6], dest_regions[:, 7]
    ext = needs[:, 1::2] - needs[:, 0::2]
    return needs, (ext > 0).all(axis=1)


class GroupTrafficAnalyzer:
    """Builds :class:`GroupTraffic` for a parsed layer group."""

    def __init__(
        self,
        graph: DNNGraph,
        arch: ArchConfig,
        topo: Topology,
        collect_flows: bool = False,
    ):
        self.graph = graph
        self.arch = arch
        self.topo = topo
        self.collect_flows = collect_flows
        self._mcast_counter = 0

    def _record(self, out, kind, layer, src, dst, volume, src_layer=None,
                multicast_group=None, once=False):
        if out.flows is not None and volume > 0:
            out.flows.append(
                FlowRecord(kind, layer, src, dst, volume, src_layer,
                           multicast_group, once)
            )

    # ------------------------------------------------------------------

    def analyze(
        self,
        parsed: ParsedGroup,
        lms: LayerGroupMapping,
        intra: dict[str, list[IntraCoreResult]],
        stored_at: dict[str, int],
        cache=None,
    ) -> GroupTraffic:
        """Per-round traffic for the group.

        ``intra`` maps layer name -> per-part intra-core results (same
        order as the parsed parts); ``stored_at`` maps producers in
        *earlier* groups to the FD selector their ofmaps were written
        with.  ``cache`` (an :class:`~repro.perf.LruDict`) memoizes the
        per-layer traffic blocks; the merged result is identical with or
        without it because the uncached path runs the very same per-layer
        computation.
        """
        topo = self.topo
        n_dram = len(topo.dram_nodes())
        out = GroupTraffic(
            traffic=TrafficMap(topo),
            dram_read=np.zeros(n_dram),
            dram_write=np.zeros(n_dram),
            dram_weight_once=np.zeros(n_dram),
            flows=[] if self.collect_flows else None,
        )
        blocks = []
        for name in parsed.group.layers:
            blocks.append(
                self._inputs_block(parsed, lms, intra, stored_at, name, cache)
            )
            blocks.append(self._self_block(parsed, lms, intra, name, cache))
        # One stacked fold over all link-volume arrays (sequential along
        # axis 0, so per-link sums match the += loop exactly).
        out.traffic.volumes += np.add.reduce(
            np.stack([b.volumes for b in blocks]), axis=0
        )
        for block in blocks:
            if block.dram_read is not None:
                out.dram_read += block.dram_read
            if block.dram_write is not None:
                out.dram_write += block.dram_write
            if block.dram_weight_once is not None:
                out.dram_weight_once += block.dram_weight_once
            out.weight_tree_hop_bytes += block.weight_tree_hop_bytes
            if out.flows is not None and block.flows:
                out.flows.extend(block.flows)
        return out

    def _inputs_key(self, parsed, lms, stored_at, name):
        """Everything a layer's ifmap traffic depends on (see module doc)."""
        deps = []
        for inp in self.graph.input_slices(name):
            p = inp.producer
            if p is None:
                continue  # the DRAM selector is in the layer's own scheme
            if p in parsed.group:
                deps.append((p, lms.scheme(p)))
            else:
                deps.append((p, stored_at.get(p, INTERLEAVED)))
        return (name, lms.scheme(name), parsed.group.batch_unit, tuple(deps))

    def _fresh_accumulator(self) -> GroupTraffic:
        n_dram = len(self.topo.dram_nodes())
        return GroupTraffic(
            traffic=TrafficMap(self.topo),
            dram_read=np.zeros(n_dram),
            dram_write=np.zeros(n_dram),
            dram_weight_once=np.zeros(n_dram),
            flows=[] if self.collect_flows else None,
        )

    def _freeze_block(self, tmp: GroupTraffic) -> LayerTrafficBlock:
        return LayerTrafficBlock(
            volumes=tmp.traffic.volumes,
            dram_read=tmp.dram_read if tmp.dram_read.any() else None,
            dram_write=tmp.dram_write if tmp.dram_write.any() else None,
            dram_weight_once=(
                tmp.dram_weight_once if tmp.dram_weight_once.any() else None
            ),
            weight_tree_hop_bytes=tmp.weight_tree_hop_bytes,
            flows=tuple(tmp.flows) if tmp.flows is not None else None,
        )

    def _inputs_block(
        self, parsed, lms, intra, stored_at, name, cache
    ) -> LayerTrafficBlock:
        """Ifmap flows of one layer (producer- and placement-dependent)."""
        key = None
        if cache is not None and not self.collect_flows:
            key = self._inputs_key(parsed, lms, stored_at, name)
            block = cache.get_lru(key)
            if block is not None:
                PERF.add("traffic.layer.hits")
                return block
            PERF.add("traffic.layer.misses")
        tmp = self._fresh_accumulator()
        self._layer_inputs(parsed, lms, intra, stored_at, name, tmp)
        block = self._freeze_block(tmp)
        if key is not None:
            cache.put(key, block)
        return block

    def _self_block(
        self, parsed, lms, intra, name, cache
    ) -> LayerTrafficBlock:
        """Weight and ofmap flows — a function of the layer's own scheme
        only, so a producer-side SA move never invalidates this part."""
        key = None
        if cache is not None and not self.collect_flows:
            key = (name, lms.scheme(name), parsed.group.batch_unit, "self")
            block = cache.get_lru(key)
            if block is not None:
                PERF.add("traffic.layer.hits")
                return block
            PERF.add("traffic.layer.misses")
        tmp = self._fresh_accumulator()
        self._layer_weights(parsed, lms, intra, name, tmp)
        self._layer_outputs(parsed, lms, name, tmp)
        block = self._freeze_block(tmp)
        if key is not None:
            cache.put(key, block)
        return block

    # ------------------------------------------------------------------
    # Ifmaps: inter-layer and DRAM flows
    # ------------------------------------------------------------------

    def _layer_inputs(self, parsed, lms, intra, stored_at, name, out):
        graph = self.graph
        consumer = graph.layer(name)
        dest_layer = parsed.layer(name)
        results = intra[name]
        slices = graph.input_slices(name)
        is_matmul = consumer.kind is LayerType.MATMUL
        # Requirement regions depend only on the consumer's own parsed
        # parts and the (fixed) input slices — memoize per parsed layer.
        needs_memo = getattr(dest_layer, "_needs_memo", None)
        if needs_memo is None:
            needs_memo = {}
            object.__setattr__(dest_layer, "_needs_memo", needs_memo)
        for op_idx, inp in enumerate(slices):
            producer = graph.layer(inp.producer) if inp.producer else None
            in_group = inp.producer in parsed.group if inp.producer else False
            cached_needs = needs_memo.get(op_idx)
            if cached_needs is None:
                dest_regions = dest_layer.part_arrays()[0]
                if is_matmul:
                    cached_needs = _matmul_needs(
                        consumer, dest_regions, op_idx, producer
                    )
                else:
                    cached_needs = _conv_needs(
                        consumer, dest_regions, inp.c_lo, inp.c_hi
                    )
                needs_memo[op_idx] = cached_needs
            needs, valid = cached_needs
            if not valid.any():
                continue
            if in_group:
                self._from_producer_parts(
                    parsed, inp.producer, needs, valid, dest_layer,
                    results, name, out,
                )
            else:
                if inp.producer is None:
                    fd = lms.scheme(name).fd.ifmap
                else:
                    fd = stored_at.get(inp.producer, INTERLEAVED)
                self._ifmap_from_dram(
                    fd, needs, valid, dest_layer, results, consumer,
                    name, out,
                )

    def _ifmap_from_dram(self, fd, needs, valid, dest_layer, results,
                         consumer, name, out):
        ext = needs[:, 1::2] - needs[:, 0::2]
        volumes = ext[:, 0] * ext[:, 1] * ext[:, 2] * ext[:, 3]
        cores = dest_layer.part_arrays()[1]
        bytes_per_elem = consumer.bytes_per_elem
        idx = np.nonzero(valid)[0]
        if out.flows is None:
            fetches = np.array(
                [results[i].if_fetches for i in idx], dtype=np.float64
            )
            self._dram_flows_batch(
                fd, cores[idx], volumes[idx] * bytes_per_elem * fetches,
                out, write=False,
            )
            return
        for i in idx:
            volume = int(volumes[i]) * bytes_per_elem * results[i].if_fetches
            self._from_dram(fd, int(cores[i]), volume, name, out)

    def _dram_flows_batch(self, fd, cores, volumes, out, write):
        """Scatter-add core<->DRAM flows (see :func:`dram_scatter_batch`)."""
        tally = out.dram_write if write else out.dram_read
        dram_scatter_batch(
            self.topo, fd, cores, volumes, out.traffic.volumes, tally, write
        )

    def _from_producer_parts(self, parsed, producer_name, need_arr, valid,
                             dest_layer, results, consumer_name, out):
        """Producer-part -> consumer-part overlap flows for one input.

        ``need_arr``/``valid`` hold one producer-coordinate requirement
        region per destination part.  The 4-D interval intersections of
        every (destination, producer-part) pair are evaluated as one
        vector operation; flows are then emitted in the same
        destination-major order the part lists define.
        """
        topo = self.topo
        bytes_per_elem = self.graph.layer(producer_name).bytes_per_elem
        regions, src_cores = parsed.layer(producer_name).part_arrays()
        dest_cores = dest_layer.part_arrays()[1]
        lo = np.maximum(need_arr[:, None, 0::2], regions[None, :, 0::2])
        hi = np.minimum(need_arr[:, None, 1::2], regions[None, :, 1::2])
        ext = hi - lo
        hits = (ext > 0).all(axis=2) & valid[:, None]
        # Same-core data stays inside the core's GLB.
        hits &= src_cores[None, :] != dest_cores[:, None]
        if not hits.any():
            return
        overlaps = ext[..., 0] * ext[..., 1] * ext[..., 2] * ext[..., 3]
        di, sj = np.nonzero(hits)
        fetches = np.array([r.if_fetches for r in results], dtype=np.float64)
        volumes = overlaps[di, sj] * bytes_per_elem * fetches[di]
        if out.flows is None:
            # Fast path: accumulate every flow's route in one unbuffered
            # scatter-add (bit-identical to sequential add_flow calls).
            core_scatter_batch(
                topo, src_cores[sj], dest_cores[di], volumes,
                out.traffic.volumes,
            )
            return
        for idx, (i, j) in enumerate(zip(di, sj)):
            volume = float(volumes[idx])
            src_node = topo.core_node(int(src_cores[j]))
            dst_node = topo.core_node(int(dest_cores[i]))
            out.traffic.add_flow(src_node, dst_node, volume)
            self._record(out, "ifmap", consumer_name, src_node, dst_node,
                         volume, src_layer=producer_name)

    def _from_dram(self, fd_value, core, volume, layer_name, out):
        topo = self.topo
        dst = topo.core_node(core)
        for dram, share in _dram_targets(topo, fd_value):
            v = volume * share
            out.traffic.add_flow(dram, dst, v)
            out.dram_read[dram[1]] += v
            self._record(out, "ifmap", layer_name, dram, dst, v)

    # ------------------------------------------------------------------
    # Weights: deduplicated multicast per K-slice
    # ------------------------------------------------------------------

    def _layer_weights(self, parsed, lms, intra, name, out):
        graph, topo = self.graph, self.topo
        layer = graph.layer(name)
        if not layer.has_weights:
            return
        fd = lms.scheme(name).fd.weight
        results = intra[name]
        parsed_layer = parsed.layer(name)
        weight_bytes = parsed_layer.weight_bytes_array()
        #: (k_lo, k_hi) -> (bytes incl. refetch, destination cores)
        by_slice: dict[tuple[int, int], list] = {}
        for i, part in enumerate(parsed_layer.parts):
            key = (part.region.k_lo, part.region.k_hi)
            vol = weight_bytes[i] * results[i].w_fetches
            entry = by_slice.setdefault(key, [0.0, []])
            entry[0] = max(entry[0], vol)
            entry[1].append(part.core)
        for (volume, cores) in by_slice.values():
            dsts = [topo.core_node(c) for c in cores]
            resident = volume <= self.arch.glb_bytes / 2
            for dram, share in _dram_targets(topo, fd):
                tree = multicast_tree(topo, dram, dsts)
                v = volume * share
                if resident:
                    # Loaded once per inference, amortized by the caller.
                    out.dram_weight_once[dram[1]] += v
                    out.weight_tree_hop_bytes += v * len(tree)
                else:
                    out.traffic.add_on_links(tree, v)
                    out.dram_read[dram[1]] += v
                self._mcast_counter += 1
                for dst in dsts:
                    self._record(out, "weight", name, dram, dst, v,
                                 multicast_group=self._mcast_counter,
                                 once=resident)

    # ------------------------------------------------------------------
    # Ofmaps: explicit DRAM writes
    # ------------------------------------------------------------------

    def _layer_outputs(self, parsed, lms, name, out):
        topo = self.topo
        fd = lms.scheme(name).fd.ofmap
        if fd < 0:
            return
        bytes_per_elem = self.graph.layer(name).bytes_per_elem
        parsed_layer = parsed.layer(name)
        if out.flows is None:
            regions, cores = parsed_layer.part_arrays()
            ext = regions[:, 1::2] - regions[:, 0::2]
            volumes = (
                ext[:, 0] * ext[:, 1] * ext[:, 2] * ext[:, 3]
                * bytes_per_elem
            )
            self._dram_flows_batch(
                fd, cores, volumes.astype(np.float64), out, write=True
            )
            return
        for part in parsed_layer.parts:
            volume = part.region.volume() * bytes_per_elem
            src = topo.core_node(part.core)
            for dram, share in _dram_targets(topo, fd):
                v = volume * share
                out.traffic.add_flow(src, dram, v)
                out.dram_write[dram[1]] += v
                self._record(out, "ofmap", name, src, dram, v, src_layer=name)
