"""Traffic analysis: parsed scheme -> per-round link and DRAM volumes.

This implements the Evaluator's global analysis (Sec V-B2): the data
communication volume on every NoC/D2D link and the access pattern of
every DRAM, for one pipeline round (one batch unit) of a layer group.

Flows handled:

* **inter-layer** — producer part -> consumer part overlap volumes
  (4-D interval intersections of the producer's owned ofmap regions with
  the consumer's halo-aware ifmap requirement), unicast over XY routes;
* **DRAM ifmap** — layers reading the DNN input or a cross-group
  producer fetch from the DRAM selected by FD (0 = interleaved over all
  DRAMs, d > 0 = DRAM d; cross-group inputs come from wherever the
  producer group stored its ofmaps);
* **weights** — cores sharing a K-slice receive the same bytes, so each
  distinct slice is read from DRAM once and multicast along an XY tree;
* **DRAM ofmap** — explicit OF flows write each part's ofmap out.

MATMUL layers are special-cased: the first operand is consumed row-wise
(its H range follows the consumer's), the second operand either row-wise
by the consumer's K range (score products) or channel-wise (context
products), detected from the contraction geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.params import ArchConfig
from repro.arch.topology import MeshTopology, NodeId
from repro.core.encoding import INTERLEAVED, LayerGroupMapping
from repro.core.parser import (
    ParsedGroup,
    PlacedPart,
    Region,
    required_channels,
    required_input_box,
)
from repro.intracore.result import IntraCoreResult
from repro.noc.multicast import multicast_tree
from repro.noc.traffic import TrafficMap
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


@dataclass(frozen=True)
class FlowRecord:
    """One logical transfer, kept when flow collection is enabled.

    ``kind`` is one of ``ifmap`` (inter-layer or DRAM input), ``weight``
    or ``ofmap``; endpoints are topology nodes.
    """

    kind: str
    layer: str
    src: tuple
    dst: tuple
    volume: float
    #: Producer layer when the source endpoint is a core computing it.
    src_layer: str | None = None
    #: Records sharing an id are one multicast: the same bytes traverse
    #: each tree link once (simulators must deduplicate; instruction
    #: generation keeps every destination's copy).
    multicast_group: int | None = None
    #: True for once-per-inference transfers (resident weight loads),
    #: which do not belong to a steady-state round.
    once: bool = False


@dataclass
class GroupTraffic:
    """Per-round traffic of one layer group."""

    traffic: TrafficMap
    dram_read: np.ndarray
    dram_write: np.ndarray
    #: Weight bytes loaded once per inference (resident weights), per DRAM.
    dram_weight_once: np.ndarray
    weight_tree_hop_bytes: float = 0.0
    flows: list[FlowRecord] | None = None

    @property
    def dram_round_bytes(self) -> np.ndarray:
        return self.dram_read + self.dram_write


def round_flows(flows, topo) -> list["FlowRecord"]:
    """Steady-state per-round flows for simulators.

    Excludes once-per-inference transfers (resident weight prologues)
    and collapses each multicast to its longest-route representative —
    the tree's trunk carries the bytes once; side branches reuse them.
    """
    kept: list[FlowRecord] = []
    best_per_group: dict[int, FlowRecord] = {}
    for f in flows or []:
        if f.once:
            continue
        if f.multicast_group is None:
            kept.append(f)
            continue
        cur = best_per_group.get(f.multicast_group)
        if cur is None or len(topo.route(f.src, f.dst)) > \
                len(topo.route(cur.src, cur.dst)):
            best_per_group[f.multicast_group] = f
    kept.extend(best_per_group.values())
    return kept


def _dram_targets(
    topo: MeshTopology, fd_value: int
) -> list[tuple[NodeId, float]]:
    """(dram node, share) pairs for an FD selector."""
    drams = topo.dram_nodes()
    if fd_value == INTERLEAVED:
        share = 1.0 / len(drams)
        return [(d, share) for d in drams]
    return [(drams[fd_value - 1], 1.0)]


def _required_region(
    consumer: Layer, dest: Region, c_lo: int, c_hi: int,
    slice_lo: int, slice_hi: int, producer: Layer | None,
) -> Region | None:
    """Producer-coordinate region the consumer part needs from a slice.

    ``(c_lo, c_hi)`` is the consumer-ifmap channel requirement and
    ``(slice_lo, slice_hi)`` the producer's channel placement; their
    overlap maps onto producer output channels.
    """
    lo = max(c_lo, slice_lo)
    hi = min(c_hi, slice_hi)
    if hi <= lo:
        return None
    ih_lo, ih_hi, iw_lo, iw_hi = required_input_box(consumer, dest)
    return Region(
        ih_lo, ih_hi, iw_lo, iw_hi,
        dest.b_lo, dest.b_hi,
        lo - slice_lo, hi - slice_lo,
    )


def _matmul_required_region(
    consumer: Layer, dest: Region, operand: int, producer: Layer
) -> Region:
    """Producer region a MATMUL consumer part needs (see module doc)."""
    if operand == 0:
        # First operand: rows follow the consumer's H range.
        return Region(
            dest.h_lo, dest.h_hi, 0, producer.out_w,
            dest.b_lo, dest.b_hi, 0, producer.out_k,
        )
    if producer.out_k == consumer.in_c and producer.out_h != consumer.in_c:
        # Score product (Q @ K^T): row j of the operand feeds output
        # column j.
        return Region(
            dest.k_lo, dest.k_hi, 0, producer.out_w,
            dest.b_lo, dest.b_hi, 0, producer.out_k,
        )
    # Context product (P @ V): column k feeds output channel k; all rows.
    return Region(
        0, producer.out_h, 0, producer.out_w,
        dest.b_lo, dest.b_hi, dest.k_lo, dest.k_hi,
    )


class GroupTrafficAnalyzer:
    """Builds :class:`GroupTraffic` for a parsed layer group."""

    def __init__(
        self,
        graph: DNNGraph,
        arch: ArchConfig,
        topo: MeshTopology,
        collect_flows: bool = False,
    ):
        self.graph = graph
        self.arch = arch
        self.topo = topo
        self.collect_flows = collect_flows
        self._mcast_counter = 0

    def _record(self, out, kind, layer, src, dst, volume, src_layer=None,
                multicast_group=None, once=False):
        if out.flows is not None and volume > 0:
            out.flows.append(
                FlowRecord(kind, layer, src, dst, volume, src_layer,
                           multicast_group, once)
            )

    # ------------------------------------------------------------------

    def analyze(
        self,
        parsed: ParsedGroup,
        lms: LayerGroupMapping,
        intra: dict[str, list[IntraCoreResult]],
        stored_at: dict[str, int],
    ) -> GroupTraffic:
        """Per-round traffic for the group.

        ``intra`` maps layer name -> per-part intra-core results (same
        order as the parsed parts); ``stored_at`` maps producers in
        *earlier* groups to the FD selector their ofmaps were written
        with.
        """
        topo = self.topo
        n_dram = len(topo.dram_nodes())
        out = GroupTraffic(
            traffic=TrafficMap(topo),
            dram_read=np.zeros(n_dram),
            dram_write=np.zeros(n_dram),
            dram_weight_once=np.zeros(n_dram),
            flows=[] if self.collect_flows else None,
        )
        for name in parsed.group.layers:
            self._layer_inputs(parsed, lms, intra, stored_at, name, out)
            self._layer_weights(parsed, lms, intra, name, out)
            self._layer_outputs(parsed, lms, name, out)
        return out

    # ------------------------------------------------------------------
    # Ifmaps: inter-layer and DRAM flows
    # ------------------------------------------------------------------

    def _layer_inputs(self, parsed, lms, intra, stored_at, name, out):
        graph, topo = self.graph, self.topo
        consumer = graph.layer(name)
        dest_parts = parsed.layer(name).parts
        results = intra[name]
        slices = graph.input_slices(name)
        is_matmul = consumer.kind is LayerType.MATMUL
        for op_idx, inp in enumerate(slices):
            producer = graph.layer(inp.producer) if inp.producer else None
            in_group = inp.producer in parsed.group if inp.producer else False
            for dest, res in zip(dest_parts, results):
                if is_matmul:
                    need = _matmul_required_region(
                        consumer, dest.region, op_idx, producer
                    )
                else:
                    c_lo, c_hi = required_channels(consumer, dest.region)
                    need = _required_region(
                        consumer, dest.region, c_lo, c_hi,
                        inp.c_lo, inp.c_hi, producer,
                    )
                if need is None or need.is_empty():
                    continue
                fetch = res.if_fetches
                if in_group:
                    self._from_producer_parts(
                        parsed, inp.producer, need, dest, fetch, name, out
                    )
                else:
                    volume = need.volume() * consumer.bytes_per_elem * fetch
                    if inp.producer is None:
                        fd = lms.scheme(name).fd.ifmap
                    else:
                        fd = stored_at.get(inp.producer, INTERLEAVED)
                    self._from_dram(fd, dest.core, volume, name, out)

    def _from_producer_parts(self, parsed, producer_name, need, dest,
                             fetch, consumer_name, out):
        topo = self.topo
        bytes_per_elem = self.graph.layer(producer_name).bytes_per_elem
        dst_node = topo.core_node(dest.core)
        for src in parsed.layer(producer_name).parts:
            overlap = src.region.intersection_volume(need)
            if overlap == 0:
                continue
            volume = overlap * bytes_per_elem * fetch
            if src.core == dest.core:
                continue  # stays inside the core's GLB
            src_node = topo.core_node(src.core)
            out.traffic.add_flow(src_node, dst_node, volume)
            self._record(out, "ifmap", consumer_name, src_node, dst_node,
                         volume, src_layer=producer_name)

    def _from_dram(self, fd_value, core, volume, layer_name, out):
        topo = self.topo
        dst = topo.core_node(core)
        for dram, share in _dram_targets(topo, fd_value):
            v = volume * share
            out.traffic.add_flow(dram, dst, v)
            out.dram_read[dram[1]] += v
            self._record(out, "ifmap", layer_name, dram, dst, v)

    # ------------------------------------------------------------------
    # Weights: deduplicated multicast per K-slice
    # ------------------------------------------------------------------

    def _layer_weights(self, parsed, lms, intra, name, out):
        graph, topo = self.graph, self.topo
        layer = graph.layer(name)
        if not layer.has_weights:
            return
        fd = lms.scheme(name).fd.weight
        results = intra[name]
        #: (k_lo, k_hi) -> (bytes incl. refetch, destination cores)
        by_slice: dict[tuple[int, int], list] = {}
        for part, res in zip(parsed.layer(name).parts, results):
            key = (part.region.k_lo, part.region.k_hi)
            vol = part.workload.weight_bytes() * res.w_fetches
            entry = by_slice.setdefault(key, [0.0, []])
            entry[0] = max(entry[0], vol)
            entry[1].append(part.core)
        for (volume, cores) in by_slice.values():
            dsts = [topo.core_node(c) for c in cores]
            resident = volume <= self.arch.glb_bytes / 2
            for dram, share in _dram_targets(topo, fd):
                tree = multicast_tree(topo, dram, dsts)
                v = volume * share
                if resident:
                    # Loaded once per inference, amortized by the caller.
                    out.dram_weight_once[dram[1]] += v
                    out.weight_tree_hop_bytes += v * len(tree)
                else:
                    out.traffic.add_on_links(tree, v)
                    out.dram_read[dram[1]] += v
                self._mcast_counter += 1
                for dst in dsts:
                    self._record(out, "weight", name, dram, dst, v,
                                 multicast_group=self._mcast_counter,
                                 once=resident)

    # ------------------------------------------------------------------
    # Ofmaps: explicit DRAM writes
    # ------------------------------------------------------------------

    def _layer_outputs(self, parsed, lms, name, out):
        topo = self.topo
        fd = lms.scheme(name).fd.ofmap
        if fd < 0:
            return
        bytes_per_elem = self.graph.layer(name).bytes_per_elem
        for part in parsed.layer(name).parts:
            volume = part.region.volume() * bytes_per_elem
            src = topo.core_node(part.core)
            for dram, share in _dram_targets(topo, fd):
                v = volume * share
                out.traffic.add_flow(src, dram, v)
                out.dram_write[dram[1]] += v
                self._record(out, "ofmap", name, src, dram, v, src_layer=name)
