"""Energy accounting (Sec V-B2).

Energy is the sum of operation counts times unit energies:

* **intra-tile** — MAC/vector ops, GLB traffic and register traffic from
  the intra-core results (paper's "Intra-tile Energy");
* **NoC** — byte-hops on regular on-chip links x per-hop router energy
  (constant per flit, Orion [60]);
* **D2D** — bytes crossing D2D links x GRS energy (clock-forwarding
  default), or interface power x latency for clock-embedded SerDes;
* **DRAM** — bytes read/written x per-byte DRAM energy.
"""

from __future__ import annotations


from repro.arch.energy import EnergyModel
from repro.arch.params import ArchConfig
from repro.evalmodel.breakdown import EnergyBreakdown
from repro.evalmodel.traffic_analysis import GroupTraffic
from repro.intracore.result import IntraCoreResult


def intra_energy(intra: dict[str, list[IntraCoreResult]]) -> float:
    return sum(res.energy for results in intra.values() for res in results)


def network_energy(
    traffic: GroupTraffic, energy: EnergyModel, arch: ArchConfig,
    latency_s: float, n_d2d_interfaces: int,
) -> tuple[float, float]:
    """(NoC joules, D2D joules) for one round of the group."""
    noc_hops = traffic.traffic.noc_byte_hops()
    d2d_bytes = traffic.traffic.d2d_volume()
    noc_j = noc_hops * energy.e_noc_hop
    d2d_j = energy.d2d_energy(d2d_bytes, n_d2d_interfaces, latency_s)
    return noc_j, d2d_j


def dram_energy(traffic: GroupTraffic, energy: EnergyModel) -> float:
    return float(traffic.dram_round_bytes.sum()) * energy.e_dram


def group_energy(
    arch: ArchConfig,
    energy: EnergyModel,
    intra: dict[str, list[IntraCoreResult]],
    traffic: GroupTraffic,
    rounds: int,
    stage_time: float,
    n_d2d_interfaces: int,
) -> EnergyBreakdown:
    """Total energy of one layer group over a full inference."""
    return group_energy_from_intra(
        arch, energy, intra_energy(intra), traffic, rounds,
        stage_time, n_d2d_interfaces,
    )


def group_energy_from_intra(
    arch: ArchConfig,
    energy: EnergyModel,
    intra_j: float,
    traffic: GroupTraffic,
    rounds: int,
    stage_time: float,
    n_d2d_interfaces: int,
) -> EnergyBreakdown:
    """Group energy given a precomputed intra-tile joule total.

    The evaluator caches per-layer intra-core energy sums so the SA loop
    does not re-sum every part on every evaluation.
    """
    noc_j, d2d_j = network_energy(
        traffic, energy, arch, stage_time, n_d2d_interfaces
    )
    once_bytes = float(traffic.dram_weight_once.sum())
    once_dram_j = once_bytes * energy.e_dram
    once_noc_j = traffic.weight_tree_hop_bytes * energy.e_noc_hop
    return EnergyBreakdown(
        intra=intra_j * rounds,
        noc=noc_j * rounds + once_noc_j,
        d2d=d2d_j * rounds,
        dram=dram_energy(traffic, energy) * rounds + once_dram_j,
    )
