"""Result records of the Gemini Evaluator (Sec V-B2).

The paper reports energy in four buckets — network (router hops), D2D,
intra-tile (MAC + GLB + registers) and DRAM — and delay per DNN.  These
records carry those buckets plus the per-link traffic needed for the
Fig 9 heatmaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.traffic import TrafficMap


@dataclass
class EnergyBreakdown:
    """Joules per component bucket."""

    intra: float = 0.0
    noc: float = 0.0
    d2d: float = 0.0
    dram: float = 0.0

    @property
    def network(self) -> float:
        """NoC + D2D, the paper's "Network Energy" bucket."""
        return self.noc + self.d2d

    @property
    def total(self) -> float:
        return self.intra + self.noc + self.d2d + self.dram

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            intra=self.intra + other.intra,
            noc=self.noc + other.noc,
            d2d=self.d2d + other.d2d,
            dram=self.dram + other.dram,
        )

    def scaled(self, f: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            intra=self.intra * f, noc=self.noc * f,
            d2d=self.d2d * f, dram=self.dram * f,
        )

    def fractions(self) -> dict[str, float]:
        """Per-bucket share of the total energy.

        Degenerate layers the frontend can produce (zero-MAC ELTWISE /
        VECTOR-only graphs) can drive individual buckets — and in the
        all-zero corner the total — to 0; shares are then 0 rather
        than a ZeroDivisionError.
        """
        total = self.total
        if total <= 0:
            return {"intra": 0.0, "noc": 0.0, "d2d": 0.0, "dram": 0.0}
        return {
            "intra": self.intra / total,
            "noc": self.noc / total,
            "d2d": self.d2d / total,
            "dram": self.dram / total,
        }


@dataclass
class GroupEval:
    """Evaluation of one layer group for a full inference pass."""

    delay: float
    energy: EnergyBreakdown
    stage_time: float
    rounds: int
    compute_time: float
    network_time: float
    dram_time: float
    traffic: TrafficMap | None = None
    #: Immutable so cached evaluations can be returned without copying.
    dram_round_bytes: tuple[float, ...] = ()
    fits: bool = True

    @property
    def bound(self) -> str:
        """Which resource bounds the pipeline stage."""
        times = {
            "compute": self.compute_time,
            "network": self.network_time,
            "dram": self.dram_time,
        }
        return max(times, key=times.get)


@dataclass
class MappingEval:
    """Evaluation of a whole DNN (all layer groups, one inference)."""

    delay: float
    energy: EnergyBreakdown
    groups: list[GroupEval] = field(default_factory=list)

    @property
    def edp(self) -> float:
        return self.delay * self.energy.total

    def cost(self, beta: float = 1.0, gamma: float = 1.0) -> float:
        """The mapping-engine objective ``E^beta * D^gamma``."""
        return (self.energy.total ** beta) * (self.delay ** gamma)
