"""The Gemini Evaluator: traffic, delay, energy and breakdowns."""

from repro.evalmodel.breakdown import EnergyBreakdown, GroupEval, MappingEval
from repro.evalmodel.delay import (
    StageTimes,
    group_delay,
    pipeline_utilization,
    stage_times,
)
from repro.evalmodel.evaluator import Evaluator
from repro.evalmodel.metrics import (
    average_concurrent_layers,
    d2d_energy_share,
    dram_bytes_per_inference,
    pipeline_fill_drain_loss,
    stage_bound_histogram,
)
from repro.evalmodel.traffic_analysis import GroupTraffic, GroupTrafficAnalyzer

__all__ = [
    "EnergyBreakdown",
    "Evaluator",
    "GroupEval",
    "GroupTraffic",
    "GroupTrafficAnalyzer",
    "MappingEval",
    "StageTimes",
    "average_concurrent_layers",
    "d2d_energy_share",
    "dram_bytes_per_inference",
    "group_delay",
    "pipeline_fill_drain_loss",
    "pipeline_utilization",
    "stage_bound_histogram",
    "stage_times",
]
