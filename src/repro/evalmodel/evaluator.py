"""The Gemini Evaluator facade (Sec V-B2, Fig 4).

Combines the parser, the intra-core exploration engine, the traffic
analyzer and the delay/energy models into the two interfaces the paper
describes: per-group evaluation (called inside the SA loop) and
whole-mapping evaluation (chaining groups, propagating where each
group's ofmaps were stored so later groups fetch from the right DRAM).

The evaluator layers four caches over the pipeline (all per graph, all
enabled by default, all disabled with ``cache=False``):

1. parsed-layer records per ``(layer, scheme, batch_unit)``;
2. intra-core result lists per parsed layer;
3. per-layer traffic blocks (see ``traffic_analysis``);
4. whole :class:`GroupEval` records keyed by the LMS digest, the batch
   and the DRAM placement of the group's cross-group inputs.

On top of the caches, the default configuration routes group
evaluations through the **array-native compiled core**
(:mod:`repro.compiled`): the graph is lowered once into flat numpy
tables and the hot path never walks Python object graphs.  Flow
collection (``keep_traffic`` / the max–min network model) stays on the
object path.

Every cache — and the compiled path — memoizes an immutable value of
the same computation the uncached path runs, so all configurations are
bit-identical; the SA loop gets its speed from reuse and array layout,
not from approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.arch.energy import DEFAULT_ENERGY, EnergyModel
from repro.arch.params import ArchConfig
from repro.core.encoding import INTERLEAVED, LayerGroupMapping
from repro.fabric import Topology, build_topology
from repro.core.parser import parse_lms
from repro.evalmodel.breakdown import EnergyBreakdown, GroupEval, MappingEval
from repro.evalmodel.delay import group_delay, stage_times_from_compute
from repro.evalmodel.energy import group_energy_from_intra
from repro.evalmodel.traffic_analysis import GroupTrafficAnalyzer
from repro.intracore.cache import IntraCoreEngine
from repro.intracore.result import IntraCoreResult
from repro.perf import PERF, LruDict
from repro.workloads.graph import DNNGraph


@dataclass
class _GraphCaches:
    """Evaluation caches scoped to one (graph, evaluator) pair."""

    parse: LruDict = field(
        default_factory=lambda: LruDict(32768, name="eval.parse"))
    intra: LruDict = field(
        default_factory=lambda: LruDict(32768, name="eval.intra"))
    traffic: LruDict = field(
        default_factory=lambda: LruDict(16384, name="eval.traffic"))
    group: LruDict = field(
        default_factory=lambda: LruDict(8192, name="eval.group"))
    #: layer-group layers tuple -> sorted cross-group producer names
    ext_producers: dict = field(default_factory=dict)


def lms_digest(lms: LayerGroupMapping) -> tuple:
    """A hashable digest of every scheme choice an LMS encodes."""
    return (
        lms.group.layers,
        lms.group.batch_unit,
        tuple(lms.scheme(name) for name in lms.group.layers),
    )


class Evaluator:
    """Delay / energy evaluator bound to one architecture instance.

    ``network_model`` selects the network stage-time estimate:
    ``"bound"`` (default, the paper's analytic most-loaded-link bound)
    or ``"maxmin"`` (max–min-fair flow simulation of the round's
    transfers — slower, upper-bounds the analytic estimate, useful for
    validating schemes the search has already picked).

    ``cache=False`` turns off all evaluation caches (the behaviour of
    the original single-shot pipeline); results are identical either
    way.
    """

    def __init__(
        self,
        arch: ArchConfig,
        topo: Topology | None = None,
        energy: EnergyModel = DEFAULT_ENERGY,
        network_model: str = "bound",
        cache: bool = True,
        compiled: bool | None = None,
    ):
        if network_model not in ("bound", "maxmin"):
            raise ValueError(f"unknown network model {network_model!r}")
        self.arch = arch
        self.topo = topo if topo is not None else build_topology(arch)
        self.energy = energy
        self.network_model = network_model
        self.cache_enabled = cache
        # The array-native path needs its caches and computes only the
        # analytic bound (flow collection stays on the object path);
        # results are bit-identical either way, so it defaults on
        # wherever it applies.  ``compiled=False`` pins the object path
        # (the A/B baseline the perf benchmarks measure against).
        if compiled is None:
            compiled = True
        self.compiled_enabled = (
            compiled and cache and network_model == "bound"
        )
        self.intracore = IntraCoreEngine(arch, energy)
        self._caches: WeakKeyDictionary[DNNGraph, _GraphCaches] = (
            WeakKeyDictionary()
        )
        self._compiled: WeakKeyDictionary[DNNGraph, object] = (
            WeakKeyDictionary()
        )
        self._routes_warmed = False

    # ------------------------------------------------------------------

    def warm(self, graph: DNNGraph | None = None) -> None:
        """Precompute route tables (and ``graph``'s compiled tables).

        Idempotent: the SA controller (once per restart) and the
        warm-start path both call this, so the route warming runs once
        per evaluator and the table lowering once per (evaluator,
        graph) — repeat calls are counted and skipped.
        """
        if self.cache_enabled and not self._routes_warmed:
            from repro.obs.trace import trace

            with PERF.time("evaluator.warm.routes"), \
                    trace("evaluator.warm", topo=self.topo.kind):
                self.topo.core_route_table()
                self.topo.dram_route_tables()
            self._routes_warmed = True
        else:
            PERF.add("evaluator.warm.skipped")
        if graph is not None:
            self.compiled_for(graph)

    def compiled_for(self, graph: DNNGraph):
        """The graph's :class:`~repro.compiled.CompiledEval`, or ``None``
        when the array-native path does not apply to this evaluator."""
        if not self.compiled_enabled:
            return None
        ce = self._compiled.get(graph)
        if ce is None:
            from repro.compiled import CompiledEval, compile_graph

            ce = CompiledEval(self, compile_graph(graph))
            self._compiled[graph] = ce
        return ce

    def _graph_caches(self, graph: DNNGraph) -> _GraphCaches | None:
        if not self.cache_enabled:
            return None
        caches = self._caches.get(graph)
        if caches is None:
            caches = _GraphCaches()
            self._caches[graph] = caches
        return caches

    def _n_d2d_interfaces(self) -> int:
        arch = self.arch
        if arch.is_monolithic:
            return 0
        return arch.n_chiplets * 2 * (
            arch.chiplet_cores_x + arch.chiplet_cores_y
        )

    def _intra_results(
        self, parsed, cache: dict | None = None
    ) -> dict[str, list[IntraCoreResult]]:
        return self._intra_aggregate(parsed, cache)[0]

    def _intra_aggregate(
        self, parsed, cache: dict | None = None
    ) -> tuple[dict[str, list[IntraCoreResult]], float, float, bool]:
        """Per-layer intra-core results plus the group-level aggregates.

        Returns ``(results, compute_max, intra_joules, fits)``.  The
        per-layer (results, max compute time, energy sum, fits) tuples
        are memoized so repeated evaluations of unchanged layers reduce
        to three scalar folds.
        """
        results: dict[str, list[IntraCoreResult]] = {}
        batch_unit = parsed.group.batch_unit
        compute = 0.0
        intra_j = 0.0
        fits = True
        lookup = store = None
        if cache is not None:
            lookup = getattr(cache, "get_lru", cache.get)
            store = getattr(cache, "put", cache.__setitem__)
        for name, parsed_layer in parsed.layers.items():
            entry = None
            key = None
            if cache is not None:
                key = (name, parsed_layer.scheme, batch_unit)
                entry = lookup(key)
            if entry is None:
                per_layer = [
                    self.intracore.schedule(part.workload)
                    for part in parsed_layer.parts
                ]
                layer_compute = 0.0
                layer_j = 0.0
                layer_fits = True
                for res in per_layer:
                    if res.compute_time > layer_compute:
                        layer_compute = res.compute_time
                    layer_j += res.energy
                    layer_fits = layer_fits and res.fits
                entry = (per_layer, layer_compute, layer_j, layer_fits)
                if cache is not None:
                    store(key, entry)
            per_layer, layer_compute, layer_j, layer_fits = entry
            results[name] = per_layer
            if layer_compute > compute:
                compute = layer_compute
            intra_j += layer_j
            fits = fits and layer_fits
        return results, compute, intra_j, fits

    # ------------------------------------------------------------------

    def _stored_slice(
        self, graph: DNNGraph, lms: LayerGroupMapping,
        stored_at: dict[str, int], caches: _GraphCaches | None,
    ) -> tuple:
        """The part of ``stored_at`` this group's evaluation reads."""
        group = lms.group
        ext = None if caches is None else caches.ext_producers.get(group.layers)
        if ext is None:
            names: set[str] = set()
            for name in group.layers:
                for inp in graph.input_slices(name):
                    p = inp.producer
                    if p is not None and p not in group:
                        names.add(p)
            ext = tuple(sorted(names))
            if caches is not None:
                caches.ext_producers[group.layers] = ext
        return tuple(stored_at.get(p, INTERLEAVED) for p in ext)

    def evaluate_group(
        self,
        graph: DNNGraph,
        lms: LayerGroupMapping,
        batch: int,
        stored_at: dict[str, int] | None = None,
        keep_traffic: bool = False,
    ) -> GroupEval:
        """Evaluate one layer group for a full inference of ``batch``."""
        stored_at = stored_at or {}
        caches = self._graph_caches(graph)
        key = None
        if caches is not None and not keep_traffic:
            key = (
                lms_digest(lms), batch,
                self._stored_slice(graph, lms, stored_at, caches),
            )
            # The named LruDict tallies hits/misses (lru.eval.group).
            hit = caches.group.get_lru(key)
            if hit is not None:
                return hit
        compiled = None if keep_traffic else self.compiled_for(graph)
        if compiled is not None:
            ev = compiled.evaluate_group(lms, batch, stored_at)
        else:
            ev = self._evaluate_group_uncached(
                graph, lms, batch, stored_at, keep_traffic, caches
            )
        if key is not None:
            caches.group.put(key, ev)
        return ev

    def _evaluate_group_uncached(
        self, graph, lms, batch, stored_at, keep_traffic, caches
    ) -> GroupEval:
        parsed = parse_lms(
            graph, lms, cache=None if caches is None else caches.parse
        )
        intra, compute_max, intra_j, fits = self._intra_aggregate(
            parsed, cache=None if caches is None else caches.intra
        )
        analyzer = GroupTrafficAnalyzer(
            graph, self.arch, self.topo,
            collect_flows=self.network_model == "maxmin",
        )
        traffic = analyzer.analyze(
            parsed, lms, intra, stored_at,
            cache=None if caches is None else caches.traffic,
        )
        rounds = math.ceil(batch / lms.group.batch_unit)
        depth = len(lms.group)
        times = stage_times_from_compute(self.arch, compute_max, traffic)
        if self.network_model == "maxmin":
            times = self._refine_network_time(traffic, times)
        delay = group_delay(times, rounds, depth)
        energy = group_energy_from_intra(
            self.arch, self.energy, intra_j, traffic, rounds,
            times.stage, self._n_d2d_interfaces(),
        )
        return GroupEval(
            delay=delay,
            energy=energy,
            stage_time=times.stage,
            rounds=rounds,
            compute_time=times.compute,
            network_time=times.network,
            dram_time=times.dram,
            traffic=traffic.traffic if keep_traffic else None,
            dram_round_bytes=tuple(traffic.dram_round_bytes),
            fits=fits,
        )

    def _refine_network_time(self, traffic, times):
        """Replace the analytic network bound by a max–min simulation.

        Weight multicasts are simulated as per-destination unicasts
        (slightly conservative); the simulated time can never be below
        the analytic bound.
        """
        from repro.evalmodel.delay import StageTimes
        from repro.evalmodel.traffic_analysis import round_flows
        from repro.noc.flowsim import Flow, simulate_completion_time

        flows = [
            Flow(self.topo.route(f.src, f.dst), f.volume)
            for f in round_flows(traffic.flows, self.topo)
        ]
        if not flows:
            return times
        simulated = simulate_completion_time(self.topo, flows)
        return StageTimes(
            compute=times.compute,
            network=max(times.network, simulated),
            dram=times.dram,
            prologue=times.prologue,
        )

    def evaluate_mapping(
        self,
        graph: DNNGraph,
        lmss: list[LayerGroupMapping],
        batch: int,
        keep_traffic: bool = False,
    ) -> MappingEval:
        """Evaluate a whole DNN mapping: chained layer groups.

        Groups must be given in topological order; each group's explicit
        OF selections feed later groups' cross-group ifmap fetches.
        """
        stored_at: dict[str, int] = {}
        total_delay = 0.0
        total_energy = EnergyBreakdown()
        evals = []
        for lms in lmss:
            ev = self.evaluate_group(
                graph, lms, batch, stored_at, keep_traffic=keep_traffic
            )
            evals.append(ev)
            total_delay += ev.delay
            total_energy = total_energy + ev.energy
            for name in lms.group.layers:
                of = lms.scheme(name).fd.ofmap
                if of >= 0:
                    stored_at[name] = of
        return MappingEval(delay=total_delay, energy=total_energy, groups=evals)
