"""The Gemini Evaluator facade (Sec V-B2, Fig 4).

Combines the parser, the intra-core exploration engine, the traffic
analyzer and the delay/energy models into the two interfaces the paper
describes: per-group evaluation (called inside the SA loop) and
whole-mapping evaluation (chaining groups, propagating where each
group's ofmaps were stored so later groups fetch from the right DRAM).
"""

from __future__ import annotations

import math

from repro.arch.energy import DEFAULT_ENERGY, EnergyModel
from repro.arch.params import ArchConfig
from repro.arch.topology import MeshTopology
from repro.core.encoding import LayerGroupMapping
from repro.core.parser import parse_lms
from repro.evalmodel.breakdown import EnergyBreakdown, GroupEval, MappingEval
from repro.evalmodel.delay import group_delay, stage_times
from repro.evalmodel.energy import group_energy
from repro.evalmodel.traffic_analysis import GroupTraffic, GroupTrafficAnalyzer
from repro.intracore.cache import IntraCoreEngine
from repro.intracore.result import IntraCoreResult
from repro.workloads.graph import DNNGraph


class Evaluator:
    """Delay / energy evaluator bound to one architecture instance.

    ``network_model`` selects the network stage-time estimate:
    ``"bound"`` (default, the paper's analytic most-loaded-link bound)
    or ``"maxmin"`` (max–min-fair flow simulation of the round's
    transfers — slower, upper-bounds the analytic estimate, useful for
    validating schemes the search has already picked).
    """

    def __init__(
        self,
        arch: ArchConfig,
        topo: MeshTopology | None = None,
        energy: EnergyModel = DEFAULT_ENERGY,
        network_model: str = "bound",
    ):
        if network_model not in ("bound", "maxmin"):
            raise ValueError(f"unknown network model {network_model!r}")
        self.arch = arch
        self.topo = topo if topo is not None else MeshTopology(arch)
        self.energy = energy
        self.network_model = network_model
        self.intracore = IntraCoreEngine(arch, energy)

    # ------------------------------------------------------------------

    def _n_d2d_interfaces(self) -> int:
        arch = self.arch
        if arch.is_monolithic:
            return 0
        return arch.n_chiplets * 2 * (
            arch.chiplet_cores_x + arch.chiplet_cores_y
        )

    def _intra_results(self, parsed) -> dict[str, list[IntraCoreResult]]:
        results: dict[str, list[IntraCoreResult]] = {}
        for name, parsed_layer in parsed.layers.items():
            results[name] = [
                self.intracore.schedule(part.workload)
                for part in parsed_layer.parts
            ]
        return results

    # ------------------------------------------------------------------

    def evaluate_group(
        self,
        graph: DNNGraph,
        lms: LayerGroupMapping,
        batch: int,
        stored_at: dict[str, int] | None = None,
        keep_traffic: bool = False,
    ) -> GroupEval:
        """Evaluate one layer group for a full inference of ``batch``."""
        stored_at = stored_at or {}
        parsed = parse_lms(graph, lms)
        intra = self._intra_results(parsed)
        analyzer = GroupTrafficAnalyzer(
            graph, self.arch, self.topo,
            collect_flows=self.network_model == "maxmin",
        )
        traffic = analyzer.analyze(parsed, lms, intra, stored_at)
        rounds = math.ceil(batch / lms.group.batch_unit)
        depth = len(lms.group)
        times = stage_times(self.arch, intra, traffic)
        if self.network_model == "maxmin":
            times = self._refine_network_time(traffic, times)
        delay = group_delay(times, rounds, depth)
        energy = group_energy(
            self.arch, self.energy, intra, traffic, rounds,
            times.stage, self._n_d2d_interfaces(),
        )
        fits = all(r.fits for results in intra.values() for r in results)
        return GroupEval(
            delay=delay,
            energy=energy,
            stage_time=times.stage,
            rounds=rounds,
            compute_time=times.compute,
            network_time=times.network,
            dram_time=times.dram,
            traffic=traffic.traffic if keep_traffic else None,
            dram_round_bytes=list(traffic.dram_round_bytes),
            fits=fits,
        )

    def _refine_network_time(self, traffic, times):
        """Replace the analytic network bound by a max–min simulation.

        Weight multicasts are simulated as per-destination unicasts
        (slightly conservative); the simulated time can never be below
        the analytic bound.
        """
        from dataclasses import replace

        from repro.evalmodel.delay import StageTimes
        from repro.evalmodel.traffic_analysis import round_flows
        from repro.noc.flowsim import Flow, simulate_completion_time

        flows = [
            Flow(self.topo.route(f.src, f.dst), f.volume)
            for f in round_flows(traffic.flows, self.topo)
        ]
        if not flows:
            return times
        simulated = simulate_completion_time(self.topo, flows)
        return StageTimes(
            compute=times.compute,
            network=max(times.network, simulated),
            dram=times.dram,
            prologue=times.prologue,
        )

    def evaluate_mapping(
        self,
        graph: DNNGraph,
        lmss: list[LayerGroupMapping],
        batch: int,
        keep_traffic: bool = False,
    ) -> MappingEval:
        """Evaluate a whole DNN mapping: chained layer groups.

        Groups must be given in topological order; each group's explicit
        OF selections feed later groups' cross-group ifmap fetches.
        """
        stored_at: dict[str, int] = {}
        total_delay = 0.0
        total_energy = EnergyBreakdown()
        evals = []
        for lms in lmss:
            ev = self.evaluate_group(
                graph, lms, batch, stored_at, keep_traffic=keep_traffic
            )
            evals.append(ev)
            total_delay += ev.delay
            total_energy = total_energy + ev.energy
            for name in lms.group.layers:
                of = lms.scheme(name).fd.ofmap
                if of >= 0:
                    stored_at[name] = of
        return MappingEval(delay=total_delay, energy=total_energy, groups=evals)
