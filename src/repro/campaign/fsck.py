"""Store integrity check and repair: ``repro store fsck [--repair]``.

The result store tolerates exactly one kind of damage by design: a
*torn tail* — the final line of a segment left incomplete by a killed
writer.  Anything else (corrupt lines in the middle of a segment,
bit-rotted JSON, foreign junk) is silently skipped by the loader too,
but silence is the wrong posture for real corruption: records a
campaign believes are checkpointed may be gone, and resume would
quietly re-evaluate them — or worse, export a partial table as if it
were complete.

``fsck_store`` makes the damage visible: it classifies every bad line
as tolerated tail or mid-segment corruption, reports which *keys* have
no survivor record anywhere (what resume would lose), and checks the
derived ``index.json`` against the segments.  With ``repair=True`` it
quarantines bad lines to a sidecar (``quarantine/<segment>.bad``),
rewrites each damaged segment atomically with only its good lines, and
rebuilds the index atomically.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.atomic import atomic_write_json, atomic_write_text

#: Sidecar directory (under the store root) for quarantined bad lines.
QUARANTINE_DIR = "quarantine"

_KEY_RE = re.compile(r'"key"\s*:\s*"([^"]+)"')


@dataclass
class SegmentReport:
    """Scan result of one segment file."""

    name: str
    records: int = 0
    #: Trailing unparseable lines — the damage the loader tolerates.
    torn_tail: int = 0
    #: Unparseable lines with valid records after them: real corruption.
    corrupt: int = 0
    #: Keys salvaged (regex) from bad lines, best-effort.
    bad_keys: list[str] = field(default_factory=list)

    @property
    def damaged(self) -> bool:
        return self.torn_tail > 0 or self.corrupt > 0


@dataclass
class FsckReport:
    """Outcome of one ``fsck_store`` pass."""

    root: Path
    segments: list[SegmentReport]
    #: ``(kind, key)`` pairs with at least one valid record.
    live_keys: int
    #: Keys named by bad lines that have *no* valid record anywhere —
    #: the evaluations a resume would have to redo.
    lost_keys: list[str]
    #: ``ok`` / ``missing`` / ``corrupt`` / ``stale``.
    index_status: str
    repaired: bool = False
    quarantined_lines: int = 0

    @property
    def corrupt_lines(self) -> int:
        return sum(s.corrupt for s in self.segments)

    @property
    def torn_lines(self) -> int:
        return sum(s.torn_tail for s in self.segments)

    @property
    def clean(self) -> bool:
        """No damage beyond the tolerated kind.

        A torn tail (unacknowledged final write of a killed process)
        and a stale or missing index (close() never ran; the index is
        derived anyway) are design-tolerated.  Mid-segment corruption
        and an unparseable index are not.
        """
        if self.repaired:
            return True
        return self.corrupt_lines == 0 and self.index_status != "corrupt"


def _parse_line(line: str):
    """``(kind, key, payload)`` of a record line, or ``None``."""
    try:
        rec = json.loads(line)
        return rec["kind"], rec["key"], rec["payload"]
    except (json.JSONDecodeError, KeyError, TypeError):
        return None


def _scan_segment(seg: Path):
    """Split a segment into good (line, kind, key) triples and bad lines
    (with their position classification)."""
    good: list[tuple[str, str, str]] = []
    bad: list[str] = []
    lines = [l for l in seg.read_text().splitlines() if l.strip()]
    last_good = -1
    parsed = [(_parse_line(l), l) for l in lines]
    for i, (rec, _) in enumerate(parsed):
        if rec is not None:
            last_good = i
    report = SegmentReport(name=seg.name)
    for i, (rec, line) in enumerate(parsed):
        if rec is not None:
            report.records += 1
            good.append((line, rec[0], rec[1]))
        else:
            bad.append(line)
            if i > last_good:
                report.torn_tail += 1
            else:
                report.corrupt += 1
            m = _KEY_RE.search(line)
            if m:
                report.bad_keys.append(m.group(1))
    return report, good, bad


def _index_status(root: Path, live: set[tuple[str, str]]) -> str:
    path = root / "index.json"
    if not path.exists():
        return "missing"
    try:
        index = json.loads(path.read_text())
        keys = index["keys"]
        indexed = {
            (kind, key)
            for kind, kmap in keys.items()
            for key in kmap
        }
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError):
        return "corrupt"
    return "ok" if indexed == live else "stale"


def fsck_store(root: str | Path, repair: bool = False) -> FsckReport:
    """Scan (and optionally repair) a result store directory."""
    root = Path(root)
    segments_dir = root / "segments"
    seg_reports: list[SegmentReport] = []
    live: set[tuple[str, str]] = set()
    per_segment: dict[str, tuple[list, list]] = {}
    seg_paths = sorted(segments_dir.glob("*.jsonl")) \
        if segments_dir.is_dir() else []
    for seg in seg_paths:
        report, good, bad = _scan_segment(seg)
        seg_reports.append(report)
        per_segment[seg.name] = (good, bad)
        live.update((kind, key) for _, kind, key in good)

    live_names = {key for _, key in live}
    lost = sorted({
        k
        for s in seg_reports
        for k in s.bad_keys
        if k not in live_names
    })
    index_status = _index_status(root, live)

    report = FsckReport(
        root=root,
        segments=seg_reports,
        live_keys=len(live),
        lost_keys=lost,
        index_status=index_status,
    )
    if not repair:
        return report

    # -- repair --------------------------------------------------------
    quarantined = 0
    for seg_report in seg_reports:
        if not seg_report.damaged:
            continue
        good, bad = per_segment[seg_report.name]
        qdir = root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        qpath = qdir / f"{seg_report.name}.bad"
        existing = qpath.read_text() if qpath.exists() else ""
        atomic_write_text(qpath, existing + "".join(l + "\n" for l in bad))
        quarantined += len(bad)
        atomic_write_text(
            segments_dir / seg_report.name,
            "".join(line + "\n" for line, _, _ in good),
        )

    # Rebuild the index from the repaired segments (last record wins,
    # matching the loader).
    locations: dict[tuple[str, str], str] = {}
    for seg in sorted(segments_dir.glob("*.jsonl")):
        for line in seg.read_text().splitlines():
            rec = _parse_line(line) if line.strip() else None
            if rec is not None:
                locations[(rec[0], rec[1])] = seg.name
    counts: dict[str, int] = {}
    for kind, _ in locations:
        counts[kind] = counts.get(kind, 0) + 1
    index = {"counts": counts, "skipped_lines": 0, "keys": {}}
    for (kind, key), seg_name in sorted(locations.items()):
        index["keys"].setdefault(kind, {})[key] = seg_name
    atomic_write_json(root / "index.json", index)

    report.repaired = True
    report.quarantined_lines = quarantined
    report.index_status = "ok"
    return report


def render_fsck(report: FsckReport) -> str:
    """Human-readable fsck summary."""
    lines = [
        f"store {report.root}: {len(report.segments)} segment(s), "
        f"{report.live_keys} live record key(s)",
    ]
    for s in report.segments:
        if s.damaged:
            lines.append(
                f"  {s.name}: {s.records} record(s), "
                f"{s.corrupt} corrupt line(s), "
                f"{s.torn_tail} torn tail line(s)"
            )
    lines.append(f"index.json: {report.index_status}")
    if report.lost_keys:
        lines.append(
            f"{len(report.lost_keys)} key(s) have no surviving record "
            "(resume would re-evaluate them):"
        )
        for k in report.lost_keys[:10]:
            lines.append(f"  {k}")
        if len(report.lost_keys) > 10:
            lines.append(f"  ... and {len(report.lost_keys) - 10} more")
    if report.repaired:
        lines.append(
            f"repaired: {report.quarantined_lines} bad line(s) "
            f"quarantined under {QUARANTINE_DIR}/, index rebuilt"
        )
    elif not report.clean:
        lines.append("store is DAMAGED; run with --repair to quarantine "
                     "bad lines and rebuild the index")
    elif report.torn_lines or report.index_status != "ok":
        lines.append("store is clean (tolerated torn tail / derived "
                     "index out of date; --repair tidies both)")
    else:
        lines.append("store is clean")
    return "\n".join(lines)
