"""The resumable, sharded campaign runner.

A *campaign* is a named DSE: a candidate grid x a workload list x one
search configuration, bound to a directory.  The runner

* computes the content key of every candidate up front and records them
  in an atomic ``manifest.json`` (so ``status`` and ``export`` never
  need to re-enumerate the grid or re-load models);
* shards the *pending* candidates — keys missing from the store —
  across a process pool, checkpointing each result into the store the
  moment it arrives;
* on restart with the same spec, serves every completed candidate from
  the store and evaluates only what is missing: resuming after a crash
  re-evaluates **zero** finished candidates and reproduces the exact
  report an uninterrupted run would have produced;
* warm-starts the SA from stored mappings of *nearby* architectures
  (same core count, different bandwidths/cuts).  Warm sources are
  snapshotted into the manifest when the campaign is first created, so
  an interrupted-and-resumed run sees exactly the warm sources the
  uninterrupted run saw — determinism survives the crash.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.arch.params import ArchConfig
from repro.campaign import keys as ck
from repro.campaign.faults import (
    CAUSE_CRASH,
    CAUSE_ERROR,
    CAUSE_TIMEOUT,
    RetryPolicy,
)
from repro.campaign.store import (
    KIND_CANDIDATE,
    KIND_MAPPING,
    ResultStore,
)
from repro.core.sa import SASettings
from repro.dse.explorer import (
    CandidateResult,
    DesignSpaceExplorer,
    Workload,
)
from repro.dse.objective import OBJECTIVE_MCED, Objective
from repro.dse.pareto import AXES, pareto_front
from repro.errors import ReproError
from repro.io.atomic import atomic_write_json
from repro.io.serialization import (
    arch_from_dict,
    arch_to_dict,
    candidate_result_from_dict,
    candidate_result_summary,
)
from repro.obs.ledger import LEDGER_NAME, RunLedger, failure_digest
from repro.perf import PERF

MANIFEST_NAME = "manifest.json"
STORE_DIR = "store"


class CampaignError(ReproError):
    """The campaign directory disagrees with the requested spec."""


class CampaignInterrupted(ReproError):
    """Raised by the fault-injection hook after N checkpointed results.

    Everything evaluated before the interruption is already durable in
    the store; re-running the campaign resumes from there.
    """


class WorkerCrashed(ReproError):
    """A pool worker died (SIGKILL, OOM, segfault) mid-evaluation."""


class CandidateTimeout(ReproError):
    """An evaluation attempt exceeded the policy deadline."""


@dataclass
class CampaignSpec:
    """Everything that defines a campaign's work list."""

    name: str
    candidates: list[ArchConfig]
    workloads: list[Workload]
    sa: SASettings = field(default_factory=lambda: SASettings(iterations=100))
    objective: Objective = OBJECTIVE_MCED
    max_group_layers: int = 10
    seed_stride: int = 0
    warm_start: bool = True


@dataclass
class CampaignReport:
    """Outcome of one (possibly resumed) campaign run."""

    name: str
    #: Aligned with the spec's candidate list; ``None`` where the
    #: candidate failed (failures are retried on the next run).
    results: list[CandidateResult | None]
    objective: Objective
    evaluated: int
    store_hits: int
    failed: int
    #: Candidates quarantined as poison (now or by an earlier run);
    #: skipped by default on resume.
    quarantined: int = 0

    @property
    def done(self) -> list[CandidateResult]:
        return [r for r in self.results if r is not None]

    @property
    def best(self) -> CandidateResult:
        return min(self.done, key=lambda r: r.score)

    def best_per_objective(self) -> dict[str, CandidateResult]:
        out = {}
        for axis, keyfn in AXES.items():
            if self.done:
                out[axis] = min(self.done, key=keyfn)
        return out

    def pareto(self, axes=("edp", "mc")) -> list[CandidateResult]:
        return pareto_front(self.done, axes)


class CampaignRunner:
    """Drives one campaign inside a campaigns *home* directory.

    Layout of ``home``::

        home/store/...              result store SHARED by every campaign
        home/<name>/manifest.json   one manifest per campaign
        home/<name>/export/...      default export destination

    Sharing the store is what powers warm starts: a new campaign's
    manifest snapshots whatever mappings earlier campaigns (same grid
    family, other bandwidths/cuts, other SA budgets) already published
    for its workloads.
    """

    def __init__(self, spec: CampaignSpec, home: str | Path):
        if not spec.candidates:
            raise CampaignError("campaign needs at least one candidate")
        self.spec = spec
        self.home = Path(home)
        self.root = self.home / spec.name
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = ResultStore(self.home / STORE_DIR)
        self.explorer = DesignSpaceExplorer(
            spec.workloads,
            objective=spec.objective,
            sa_settings=spec.sa,
            max_group_layers=spec.max_group_layers,
            seed_stride=spec.seed_stride,
        )
        # Warm sources come from the manifest when resuming (pinned at
        # first start) and from a store snapshot when creating.  The
        # per-candidate warm *selection* is folded into each candidate
        # key: a warm-started evaluation is a different computation
        # than a cold one, so the two never share a store record.
        self.warm_sources = self._initial_warm_sources()
        self._warm_archs = self._parse_warm_archs()
        self.warm_selection = [
            self._select_warm_keys(arch) for arch in spec.candidates
        ]
        self.candidate_keys = [
            self.explorer.candidate_key(arch, i, warm_keys=sel or None)
            for i, (arch, sel) in enumerate(
                zip(spec.candidates, self.warm_selection)
            )
        ]
        #: True once a manifest pre-existed (or a run completed): the
        #: next ``run()`` reports itself as a resume in the ledger.
        self.resumed = self._manifest_path().exists()
        self.manifest = self._load_or_create_manifest()
        self._ledger: RunLedger | None = None
        self._policy: RetryPolicy | None = None

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _read_manifest(self) -> dict | None:
        import json

        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            # Manifest writes are atomic, so a corrupt manifest means
            # external damage.  The runner holds the full spec and can
            # rebuild it losslessly (the store, not the manifest, is
            # the source of truth for results) — warn via counter and
            # recreate rather than bricking the campaign.
            PERF.add("campaign.manifest.corrupt")
            return None

    def _load_or_create_manifest(self) -> dict:
        manifest = self._read_manifest()
        if manifest is not None:
            if manifest.get("candidate_keys") != self.candidate_keys:
                raise CampaignError(
                    f"campaign directory {self.root} was created for a "
                    "different spec (grid, workloads, settings or warm "
                    "sources changed); use a fresh campaign name or the "
                    "original arguments"
                )
            return manifest
        manifest = {
            "name": self.spec.name,
            "version": ck.CODE_MODEL_VERSION,
            "candidate_keys": self.candidate_keys,
            "archs": [arch_to_dict(a) for a in self.spec.candidates],
            "workload_names": [wl.name for wl in self.spec.workloads],
            "workload_digests": self.explorer.workload_digests(),
            "settings_digest": ck.settings_digest(
                self.spec.sa, self.spec.max_group_layers, self.spec.objective
            ),
            "warm_start": self.spec.warm_start,
            "warm_sources": self.warm_sources,
        }
        atomic_write_json(self._manifest_path(), manifest)
        return manifest

    # ------------------------------------------------------------------
    # Warm starts
    # ------------------------------------------------------------------

    def _initial_warm_sources(self) -> dict[str, list[str]]:
        """Eligible mapping keys per workload digest.

        Loaded from the manifest when resuming — the snapshot is pinned
        at the campaign's first start, so resumed runs see exactly what
        the uninterrupted run saw.  On a fresh campaign, snapshot the
        store as it is *now*.
        """
        if not self.spec.warm_start:
            return {wd: [] for wd in self.explorer.workload_digests()}
        manifest = self._read_manifest()
        if manifest is not None and "warm_sources" in manifest:
            return manifest["warm_sources"]
        warm_sources: dict[str, list[str]] = {}
        for wd in self.explorer.workload_digests():
            eligible = []
            for mkey in sorted(self.store.keys(KIND_MAPPING)):
                rec = self.store.get(KIND_MAPPING, mkey)
                if rec.get("workload_digest") == wd:
                    eligible.append(mkey)
            warm_sources[wd] = eligible
        return warm_sources

    def _parse_warm_archs(self) -> dict[str, tuple[str, ArchConfig]]:
        """``mapping key -> (family, source arch)``, parsed once.

        Selection visits every warm source once per candidate; parsing
        the arch dicts here keeps construction O(candidates x sources)
        comparisons instead of O(candidates x sources) JSON rebuilds.
        """
        parsed: dict[str, tuple[str, ArchConfig]] = {}
        for mkeys in self.warm_sources.values():
            for mkey in mkeys:
                if mkey in parsed:
                    continue
                rec = self.store.get(KIND_MAPPING, mkey)
                if rec is None or "family" not in rec:
                    continue
                try:
                    parsed[mkey] = (rec["family"], arch_from_dict(rec["arch"]))
                except (ReproError, KeyError):
                    continue
        return parsed

    def _select_warm_keys(self, arch: ArchConfig) -> dict[str, str]:
        """The nearest snapshotted mapping key per workload name."""
        if not self.spec.warm_start:
            return {}
        selection: dict[str, str] = {}
        family = ck.arch_family(arch)
        digests = self.explorer.workload_digests()
        for wl, wd in zip(self.spec.workloads, digests):
            best_key, best_dist = None, None
            for mkey in self.warm_sources.get(wd, ()):
                src = self._warm_archs.get(mkey)
                if src is None or src[0] != family:
                    continue
                dist = ck.arch_distance(arch, src[1])
                if best_dist is None or (dist, mkey) < (best_dist, best_key):
                    best_key, best_dist = mkey, dist
            if best_key is not None:
                selection[wl.name] = best_key
        return selection

    def _warm_for(self, index: int) -> dict[str, list] | None:
        """The selected warm mappings of candidate ``index``, as LMS
        dict lists ready to ship to a worker."""
        warm = {
            name: self.store.get(KIND_MAPPING, mkey)["lmss"]
            for name, mkey in self.warm_selection[index].items()
            if self.store.has(KIND_MAPPING, mkey)
        }
        return warm or None

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def pending(
        self, retry_quarantined: bool = False
    ) -> list[tuple[int, ArchConfig]]:
        """Candidates whose key is not yet in the store.

        Quarantined (poison) candidates are excluded by default — they
        already used up their attempts crashing workers or hanging, and
        a clean resume must not re-run them.  ``retry_quarantined``
        opts back in (e.g. after a code fix).
        """
        skip: set[str] = set()
        if not retry_quarantined:
            skip = self.store.quarantined_keys(KIND_CANDIDATE)
        return [
            (i, arch)
            for i, (arch, key) in enumerate(
                zip(self.spec.candidates, self.candidate_keys)
            )
            if not self.store.has(KIND_CANDIDATE, key) and key not in skip
        ]

    def ledger_path(self) -> Path:
        return self.root / LEDGER_NAME

    @staticmethod
    def _restart_stats(result: CandidateResult) -> tuple[int, float, float]:
        """(count, mean, population variance) of the candidate's SA
        restart wall times, pooled across workloads."""
        times = [t for ts in result.restart_times.values() for t in ts]
        if not times:
            return 0, 0.0, 0.0
        mean = sum(times) / len(times)
        var = sum((t - mean) ** 2 for t in times) / len(times)
        return len(times), mean, var

    def _checkpoint(self, index: int, arch: ArchConfig,
                    result: CandidateResult,
                    shard: int | None = None) -> None:
        policy = self._policy or RetryPolicy()
        for put_attempt in range(1, policy.store_attempts + 1):
            try:
                self.explorer.publish(
                    self.store, arch, index, result,
                    key=self.candidate_keys[index],
                )
                break
            except OSError as exc:
                # The store already rotated to a fresh segment; a retry
                # re-appends the full record set (duplicates are
                # harmless: identical payloads, last record wins).
                PERF.add("campaign.store_put_retries")
                if self._ledger is not None:
                    self._ledger.emit(
                        "store_put_retried",
                        index=index,
                        key=self.candidate_keys[index],
                        attempt=put_attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if put_attempt >= policy.store_attempts:
                    raise
                time.sleep(policy.store_backoff_s)
        PERF.add("campaign.evaluated")
        if self._ledger is not None:
            restarts, mean, var = self._restart_stats(result)
            self._ledger.emit(
                "candidate_evaluated",
                index=index,
                key=self.candidate_keys[index],
                score=result.score,
                energy=result.energy,
                delay=result.delay,
                duration_s=result.wall_time_s,
                warm_started=result.warm_started,
                attempts=result.attempts,
                shard=os.getpid() if shard is None else shard,
                restarts=restarts,
                restart_mean_s=mean,
                restart_var_s=var,
            )

    def _record_failure(self, index: int, error: Exception,
                        shard: int | None = None) -> None:
        self.store.record_failure(
            KIND_CANDIDATE, self.candidate_keys[index],
            f"{type(error).__name__}: {error}",
        )
        PERF.add("campaign.failed")
        if self._ledger is not None:
            self._ledger.emit(
                "candidate_failed",
                index=index,
                key=self.candidate_keys[index],
                error=f"{type(error).__name__}: {error}",
                digest=failure_digest(error),
                shard=os.getpid() if shard is None else shard,
            )

    def _record_quarantine(self, index: int, error: Exception,
                           attempts: int, cause: str) -> None:
        """Finalize a poison candidate: structured failure record, but
        the campaign continues and a resume skips it by default."""
        self.store.record_quarantine(
            KIND_CANDIDATE, self.candidate_keys[index],
            f"{type(error).__name__}: {error}",
            attempts=attempts, cause=cause,
        )
        PERF.add("campaign.quarantined")
        if self._ledger is not None:
            self._ledger.emit(
                "candidate_quarantined",
                index=index,
                key=self.candidate_keys[index],
                cause=cause,
                attempts=attempts,
                error=f"{type(error).__name__}: {error}",
                digest=failure_digest(error),
                shard=os.getpid(),
            )

    def _emit_retry(self, index: int, cause: str, attempt: int,
                    delay: float) -> None:
        PERF.add("campaign.retries")
        if self._ledger is not None:
            self._ledger.emit(
                "candidate_retried",
                index=index,
                key=self.candidate_keys[index],
                cause=cause,
                attempt=attempt,
                delay_s=delay,
                shard=os.getpid(),
            )

    def run(
        self,
        workers: int | None = 1,
        fail_after: int | None = None,
        policy: RetryPolicy | None = None,
        chaos=None,
        retry_quarantined: bool = False,
    ) -> CampaignReport:
        """Evaluate every pending candidate, checkpointing continuously.

        ``fail_after`` is the fault-injection hook used by the crash
        tests and the CI smoke job: after that many *fresh* evaluations
        have been checkpointed, :class:`CampaignInterrupted` is raised —
        at an arbitrary-looking but fully durable point, exactly like a
        kill signal between two checkpoints.

        ``policy`` arms fault handling (retries with backoff, per-
        candidate deadlines, poison quarantine); ``chaos`` is an
        installable fault plan (duck-typed: ``install``/``uninstall``,
        see :mod:`repro.testing.chaos`) injected for the duration of
        the run.  A timeout policy or a chaos plan forces the
        supervised pool path even for one worker — deadlines are
        enforced on futures, and injected worker crashes must not take
        the parent process down.
        """
        from repro.obs.trace import trace

        policy = policy or RetryPolicy()
        self._policy = policy
        todo = self.pending(retry_quarantined=retry_quarantined)
        hits = sum(
            1 for key in self.candidate_keys
            if self.store.has(KIND_CANDIDATE, key)
        )
        PERF.add("campaign.store_hits", hits)
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(workers, len(todo) or 1))
        tasks = [(i, arch, self._warm_for(i)) for i, arch in todo]
        use_pool = bool(tasks) and (
            workers > 1 or policy.needs_supervision or chaos is not None
        )
        completed = failed = 0
        self._ledger = RunLedger(self.ledger_path())
        self._ledger.emit(
            "run_resumed" if self.resumed else "run_started",
            name=self.spec.name,
            total=len(self.spec.candidates),
            pending=len(todo),
            store_hits=hits,
            workers=workers,
        )
        # Anything short of a clean fall-through — fault injection,
        # a kill, an unexpected error — logs as an interruption.
        outcome = "run_interrupted"
        if chaos is not None:
            chaos.install()
        try:
            with trace("campaign.run", campaign=self.spec.name,
                       pending=len(todo), workers=workers):
                if use_pool:
                    completed, failed = self._run_pool(
                        tasks, workers, fail_after, policy
                    )
                else:
                    completed, failed = self._run_serial(
                        tasks, fail_after, policy
                    )
            outcome = "run_finished"
        finally:
            if chaos is not None:
                chaos.uninstall()
            self.store.write_index()
            self._ledger.emit(
                outcome,
                evaluated=completed, failed=failed, store_hits=hits,
            )
            snap = PERF.snapshot()
            snap.pop("spans", None)
            perf_fields = {
                "counters": snap.get("counters", {}),
                "timers": snap.get("timers", {}),
            }
            # Per-pid operator-effectiveness totals (present only when
            # the campaign ran with SASettings.diag) — what makes
            # ``repro campaign report`` store-only.
            if snap.get("diag"):
                perf_fields["diag"] = snap["diag"]
            self._ledger.emit("perf", **perf_fields)
            self._ledger.close()
            self._ledger = None
            self._policy = None
            self.resumed = True
        return self.report(evaluated=completed, store_hits=hits,
                           failed=failed)

    def _run_serial(self, tasks, fail_after: int | None,
                    policy: RetryPolicy) -> tuple[int, int]:
        """In-process evaluation with retries (no deadlines possible)."""
        completed = failed = 0
        for i, arch, warm in tasks:
            key = self.candidate_keys[i]
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = self.explorer.evaluate_candidate(
                        arch, index=i, warm=warm
                    )
                except ReproError as exc:
                    if attempt >= policy.max_attempts:
                        self._record_failure(i, exc)
                        failed += 1
                        break
                    delay = policy.delay_s(key, attempt + 1)
                    self._emit_retry(i, CAUSE_ERROR, attempt + 1, delay)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                result.attempts = attempt
                self._checkpoint(i, arch, result)
                completed += 1
                break
            if fail_after is not None and completed >= fail_after:
                raise CampaignInterrupted(
                    f"fault injection after {completed} candidates"
                )
        return completed, failed

    def _run_pool(self, tasks, workers: int, fail_after: int | None,
                  policy: RetryPolicy) -> tuple[int, int]:
        """Shard ``tasks`` over the persistent pool under supervision.

        The pool lives on the explorer and survives this call: resumed
        runs, multi-campaign sessions and the store-hit/pending split
        all dispatch into already-warm workers (fork-inherited compiled
        tables) instead of respawning per run.

        Supervision invariants:

        * at most ``workers`` tasks are in flight, so a worker death
          has a bounded casualty list;
        * a break with exactly *one* task in flight unambiguously
          attributes the crash; with several, every casualty moves to a
          *probe* queue and is re-dispatched solo — the next crash
          identifies the culprit, and innocents are never penalized;
        * a task whose deadline expires is attributed a timeout (the
          hung worker is killed by the respawn) and other in-flight
          tasks are re-queued as collateral, no fault charged;
        * a candidate whose *attributed* crash/timeout count reaches
          ``policy.max_attempts`` is quarantined as poison; plain
          evaluation errors exhaust into an ordinary retryable failure
          record.
        """
        completed = failed = 0
        pool = self.explorer.pool(workers)
        # fault counts (attributed) per candidate index; the dispatch
        # attempt number is faults+1, so injected chaos faults key on a
        # deterministic attempt sequence even across collateral
        # re-dispatches (which charge no fault).
        faults: dict[int, int] = {}
        cause_of: dict[int, str] = {}
        pending = deque(tasks)
        probes: deque = deque()
        delayed: list[tuple[float, tuple, bool]] = []
        inflight: dict = {}

        def dispatch(task, probe: bool) -> None:
            i = task[0]
            attempt = faults.get(i, 0) + 1
            try:
                fut = pool.submit((task[0], task[1], task[2], attempt))
            except BrokenProcessPool:
                # A worker died while the executor sat idle (detected
                # at submit, not through a future).  Nobody's fault:
                # respawn and dispatch again.
                pool.respawn()
                if self._ledger is not None:
                    self._ledger.emit("pool_respawned",
                                      workers=pool.workers)
                fut = pool.submit((task[0], task[1], task[2], attempt))
            deadline = (
                time.monotonic() + policy.timeout_s
                if policy.timeout_s is not None else None
            )
            inflight[fut] = (task, attempt, deadline, probe)

        def requeue(task, cause: str, probe: bool) -> bool:
            """Charge one fault; re-dispatch or finalize.  Returns True
            when the candidate was finalized (quarantine/failure)."""
            i = task[0]
            faults[i] = faults.get(i, 0) + 1
            cause_of[i] = cause
            if faults[i] >= policy.max_attempts:
                if cause == CAUSE_CRASH:
                    err: Exception = WorkerCrashed(
                        f"candidate {i} killed its worker "
                        f"{faults[i]} time(s)"
                    )
                elif cause == CAUSE_TIMEOUT:
                    err = CandidateTimeout(
                        f"candidate {i} exceeded the {policy.timeout_s}s "
                        f"deadline {faults[i]} time(s)"
                    )
                else:  # pragma: no cover - errors finalize at the caller
                    err = ReproError(f"candidate {i} failed")
                self._record_quarantine(
                    i, err, attempts=faults[i], cause=cause
                )
                return True
            delay = policy.delay_s(self.candidate_keys[i], faults[i] + 1)
            self._emit_retry(i, cause, faults[i] + 1, delay)
            if delay > 0:
                delayed.append((time.monotonic() + delay, task, probe))
            elif probe:
                probes.append(task)
            else:
                pending.appendleft(task)
            return False

        def handle_break(casualties: list) -> int:
            """One or more workers died; attribute, re-queue, respawn."""
            nonlocal failed
            PERF.add("dse.pool.worker_deaths")
            if self._ledger is not None:
                self._ledger.emit(
                    "worker_died",
                    casualties=[t[0] for t, _, _, _ in casualties],
                    probing=len(casualties) > 1,
                )
            quarantined_now = 0
            if len(casualties) == 1:
                task, _, _, probe = casualties[0]
                if requeue(task, CAUSE_CRASH, probe=True):
                    quarantined_now += 1
            else:
                # Ambiguous: any of them may be the poison one.  No
                # fault is charged; each goes to the probe queue and
                # runs solo so the next crash is attributable.
                for task, _, _, _ in casualties:
                    probes.append(task)
            pool.respawn()
            if self._ledger is not None:
                self._ledger.emit("pool_respawned", workers=pool.workers)
            return quarantined_now

        while pending or probes or delayed or inflight:
            now = time.monotonic()
            # Promote backoff-expired tasks.
            still: list[tuple[float, tuple, bool]] = []
            for ready_at, task, probe in delayed:
                if ready_at <= now:
                    (probes if probe else pending).append(task)
                else:
                    still.append((ready_at, task, probe))
            delayed[:] = still

            # Dispatch: probe tasks run strictly solo; otherwise fill
            # the in-flight window up to the worker count.
            if probes:
                if not inflight:
                    dispatch(probes.popleft(), probe=True)
            else:
                while pending and len(inflight) < workers:
                    dispatch(pending.popleft(), probe=False)

            if not inflight:
                if delayed:
                    time.sleep(
                        max(0.0, min(r for r, _, _ in delayed)
                            - time.monotonic())
                    )
                continue

            # Wait bounded by the nearest deadline or backoff expiry.
            timeout = None
            deadlines = [d for _, _, d, _ in inflight.values()
                         if d is not None]
            bounds = deadlines + [r for r, _, _ in delayed]
            if bounds:
                timeout = max(0.05, min(bounds) - time.monotonic())
            done, _ = wait(
                inflight.keys(), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )

            # Checkpoint the whole finished batch before anything else —
            # results that already exist must never be thrown away.
            broke = False
            casualties: list = []
            for fut in done:
                task, attempt, _, probe = inflight.pop(fut)
                i, arch, _ = task
                try:
                    result, snapshot = fut.result()
                except BrokenProcessPool:
                    broke = True
                    casualties.append((task, attempt, None, probe))
                    continue
                except ReproError as exc:
                    faults_now = faults.get(i, 0) + 1
                    if faults_now >= policy.max_attempts:
                        faults[i] = faults_now
                        self._record_failure(i, exc)
                        failed += 1
                    else:
                        requeue(task, CAUSE_ERROR, probe)
                    continue
                PERF.merge(snapshot)
                result.attempts = attempt
                self._checkpoint(i, arch, result,
                                 shard=snapshot.get("pid"))
                completed += 1

            if broke:
                # Every other in-flight future is broken too.
                casualties.extend(inflight.values())
                inflight.clear()
                failed += handle_break(casualties)
            elif policy.timeout_s is not None:
                now = time.monotonic()
                expired = [
                    (fut, flight) for fut, flight in inflight.items()
                    if flight[2] is not None and flight[2] <= now
                ]
                if expired:
                    # The hung workers only die with the respawn; the
                    # rest of the in-flight tasks are collateral and
                    # re-queue without a fault charge.
                    expired_futs = {fut for fut, _ in expired}
                    collateral = [
                        flight for fut, flight in inflight.items()
                        if fut not in expired_futs
                    ]
                    inflight.clear()
                    for _, (task, attempt, _, probe) in expired:
                        PERF.add("campaign.timeouts")
                        if self._ledger is not None:
                            self._ledger.emit(
                                "candidate_timeout",
                                index=task[0],
                                key=self.candidate_keys[task[0]],
                                attempt=attempt,
                                timeout_s=policy.timeout_s,
                            )
                        if requeue(task, CAUSE_TIMEOUT, probe):
                            failed += 1
                    for task, _, _, probe in collateral:
                        (probes if probe else pending).appendleft(task)
                    pool.respawn()
                    if self._ledger is not None:
                        self._ledger.emit(
                            "pool_respawned", workers=pool.workers
                        )

            if fail_after is not None and completed >= fail_after:
                for f in inflight:
                    f.cancel()
                raise CampaignInterrupted(
                    f"fault injection after {completed} candidates"
                )
        return completed, failed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self, evaluated: int = 0, store_hits: int = 0,
               failed: int = 0) -> CampaignReport:
        """Assemble the campaign report from the store (candidate order)."""
        results: list[CandidateResult | None] = []
        for key in self.candidate_keys:
            rec = self.store.get(KIND_CANDIDATE, key)
            results.append(
                None if rec is None else candidate_result_from_dict(rec)
            )
        quarantined = self.store.quarantined_keys(KIND_CANDIDATE)
        return CampaignReport(
            name=self.spec.name,
            results=results,
            objective=self.spec.objective,
            evaluated=evaluated,
            store_hits=store_hits,
            failed=failed,
            quarantined=sum(
                1 for k in self.candidate_keys if k in quarantined
            ),
        )

    def close(self) -> None:
        self.explorer.close()
        self.store.close()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Directory-level status / export (no models or grids needed)
# ----------------------------------------------------------------------


def _load_manifest(home: str | Path, name: str) -> dict:
    import json

    path = Path(home) / name / MANIFEST_NAME
    if not path.exists():
        raise CampaignError(f"no campaign manifest at {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CampaignError(
            f"campaign manifest {path} is corrupt ({exc}); re-running "
            "the campaign with its original arguments rebuilds it"
        ) from exc


def campaign_status(home: str | Path, name: str) -> dict:
    """Done/pending/failed counts + best-so-far per objective axis.

    Works purely from the manifest and the store — models are never
    loaded, so status on a huge campaign is instant.
    """
    manifest = _load_manifest(home, name)
    store = ResultStore(Path(home) / STORE_DIR)
    keys = manifest["candidate_keys"]
    done_results = []
    for key in keys:
        rec = store.get(KIND_CANDIDATE, key)
        if rec is not None:
            done_results.append(candidate_result_from_dict(rec))
    key_set = set(keys)
    failed = {
        k for k in store.failed_keys(KIND_CANDIDATE) if k in key_set
    }
    quarantined = {
        k for k in store.quarantined_keys(KIND_CANDIDATE) if k in key_set
    }
    best = {}
    for axis, keyfn in AXES.items():
        if done_results:
            r = min(done_results, key=keyfn)
            best[axis] = {
                "arch": r.arch.paper_tuple(),
                "value": keyfn(r),
            }
    return {
        "name": manifest["name"],
        "total": len(keys),
        "done": len(done_results),
        "failed": len(failed),
        "quarantined": len(quarantined),
        "pending": len(keys) - len(done_results) - len(quarantined),
        "warm_started": sum(1 for r in done_results if r.warm_started),
        "best": best,
    }


def export_campaign(
    home: str | Path,
    name: str,
    dest: str | Path | None = None,
    pareto_axes=("edp", "mc"),
) -> dict[str, Path]:
    """Write the full result table + Pareto front as CSV and JSON.

    Rows are summaries (no wall-clock fields), so two stores holding the
    same evaluations export byte-identical files — the property the
    resume tests pin down.
    """
    from repro.reporting import write_csv

    manifest = _load_manifest(home, name)
    store = ResultStore(Path(home) / STORE_DIR)
    dest = Path(dest) if dest is not None else Path(home) / name / "export"
    dest.mkdir(parents=True, exist_ok=True)

    indexed: list[tuple[int, CandidateResult]] = []
    for i, key in enumerate(manifest["candidate_keys"]):
        rec = store.get(KIND_CANDIDATE, key)
        if rec is not None:
            indexed.append((i, candidate_result_from_dict(rec)))

    def row_dict(i: int, r: CandidateResult) -> dict:
        out = {"candidate": i, **candidate_result_summary(r)}
        out["edp"] = r.edp
        out["warm_started"] = r.warm_started
        for name, (e, d) in sorted(r.per_workload.items()):
            out[f"{name}.energy_j"] = e
            out[f"{name}.delay_s"] = d
        return out

    full = [row_dict(i, r) for i, r in indexed]
    front_results = pareto_front([r for _, r in indexed], pareto_axes)
    front_ids = {id(r) for r in front_results}
    front = [row for (i, r), row in zip(indexed, full) if id(r) in front_ids]

    paths: dict[str, Path] = {}
    for label, rows in (("campaign", full), ("pareto", front)):
        headers = list(rows[0].keys()) if rows else ["candidate"]
        csv_path = dest / f"{label}.csv"
        write_csv(csv_path, headers, [list(r.values()) for r in rows])
        json_path = dest / f"{label}.json"
        atomic_write_json(json_path, {
            "name": manifest["name"],
            "pareto_axes": list(pareto_axes),
            "rows": rows,
        })
        paths[f"{label}.csv"] = csv_path
        paths[f"{label}.json"] = json_path
    return paths
