"""Campaign subsystem: durable, resumable evaluation at scale.

The paper's DSE runs "on 80-100 threads" over thousands of candidates;
one crash used to throw the whole search away.  This package makes
evaluation campaigns durable:

* :mod:`repro.campaign.keys` — canonical content digests for
  architectures, workloads and search settings, stable across processes
  and cosmetic differences (``ArchConfig.name``, float formatting);
* :mod:`repro.campaign.store` — an append-only JSONL result store with
  an index, atomic writes and safe concurrent appends, holding full
  candidate results and the winning mapping per (arch, workload);
* :mod:`repro.campaign.runner` — a sharded, checkpointing
  :class:`CampaignRunner` that resumes after interruption with zero
  re-evaluation and warm-starts SA from mappings of nearby
  architectures.
"""

from repro.campaign.keys import (
    CODE_MODEL_VERSION,
    arch_digest,
    arch_distance,
    arch_family,
    candidate_key,
    canonical_json,
    content_digest,
    graph_digest,
    mapping_key,
    scenario_key,
    settings_digest,
    workload_digest,
)
from repro.campaign.faults import RetryPolicy
from repro.campaign.fsck import FsckReport, fsck_store
from repro.campaign.runner import (
    CampaignError,
    CampaignInterrupted,
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    CandidateTimeout,
    WorkerCrashed,
    campaign_status,
    export_campaign,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CODE_MODEL_VERSION",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CandidateTimeout",
    "FsckReport",
    "ResultStore",
    "RetryPolicy",
    "WorkerCrashed",
    "fsck_store",
    "arch_digest",
    "arch_distance",
    "arch_family",
    "campaign_status",
    "candidate_key",
    "canonical_json",
    "export_campaign",
    "content_digest",
    "graph_digest",
    "mapping_key",
    "scenario_key",
    "settings_digest",
    "workload_digest",
]
