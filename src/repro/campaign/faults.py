"""Fault-handling policy for campaign execution.

A :class:`RetryPolicy` describes how the supervised campaign runner
reacts when evaluating one candidate goes wrong: how many attempts a
candidate gets before it is quarantined as *poison*, how long a single
attempt may run before it is declared hung, and how re-dispatches are
spaced (exponential backoff with deterministic, seeded jitter — two
runs of the same campaign retry at the same offsets, so fault-recovery
paths stay as reproducible as the evaluations themselves).

The policy also covers the runner's *store* writes: a transient
``OSError`` on a checkpoint put (ENOSPC, EIO) is retried a few times
against a freshly rotated segment before the campaign gives up.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ReproError


class FaultPolicyError(ReproError):
    """A retry/timeout policy is malformed."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the campaign runner treats per-candidate faults.

    The default policy (one attempt, no timeout) keeps today's
    semantics — a crash or error fails the candidate immediately — but
    still buys supervision: a dead worker no longer kills the campaign,
    and checkpoint puts retry transient store errors.
    """

    #: Evaluation attempts per candidate before it is finalized (as a
    #: quarantined poison record for crashes/timeouts, or a plain
    #: retryable failure record for evaluation errors).
    max_attempts: int = 1
    #: Per-attempt wall-clock deadline in seconds; ``None`` disables
    #: hang detection (an evaluation may run forever).
    timeout_s: float | None = None
    #: Base delay before re-dispatching a failed attempt.  0 retries
    #: immediately.
    backoff_s: float = 0.0
    #: Multiplier applied per additional attempt (exponential backoff).
    backoff_factor: float = 2.0
    #: Fractional jitter width: the delay is scaled by ``1 + jitter*u``
    #: with ``u in [-1, 1)`` derived deterministically from
    #: ``(seed, key, attempt)``.
    jitter: float = 0.1
    #: Seed folded into the jitter derivation.
    seed: int = 0
    #: Attempts for one store checkpoint put (transient ``OSError``).
    store_attempts: int = 3
    #: Pause between store put attempts.
    store_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultPolicyError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise FaultPolicyError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.store_backoff_s < 0:
            raise FaultPolicyError("backoff must be non-negative")
        if self.store_attempts < 1:
            raise FaultPolicyError("store_attempts must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise FaultPolicyError("jitter must be within [0, 1]")

    # ------------------------------------------------------------------

    @property
    def needs_supervision(self) -> bool:
        """True when the policy requires the supervised pool path
        (deadlines can only be enforced on futures, never on an
        in-process serial evaluation)."""
        return self.timeout_s is not None

    def jitter_u(self, key: str, attempt: int) -> float:
        """Deterministic ``u in [-1, 1)`` for ``(seed, key, attempt)``."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        # 53 bits -> uniform in [0, 1), exactly like random.random().
        u01 = int.from_bytes(digest[:7], "big") >> 3
        return 2.0 * (u01 / (1 << 53)) - 1.0

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before dispatching ``attempt`` (2-based: the first
        retry).  Deterministic per ``(seed, key, attempt)``."""
        if attempt <= 1 or self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * self.backoff_factor ** (attempt - 2)
        return max(0.0, base * (1.0 + self.jitter * self.jitter_u(key, attempt)))


#: Failure causes recorded on quarantine / retry events.
CAUSE_CRASH = "crash"
CAUSE_TIMEOUT = "timeout"
CAUSE_ERROR = "error"
