"""Canonical content digests for campaign records.

A campaign must recognize work it has already done *across process
lifetimes*, so every store key is a SHA-256 over a canonical JSON
rendering of the evaluation inputs:

* dict keys are sorted, so field ordering never matters;
* every number is normalized to its float value before rendering, so
  ``256.0 * GB`` and ``int(256 * GB)`` digest identically;
* cosmetic fields (``ArchConfig.name``, ``Objective.name``) are
  excluded — renaming an architecture must not invalidate its results;
* :data:`CODE_MODEL_VERSION` is folded into every evaluation key, so
  results computed by an older cost model are never served as current.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict

from repro.arch.params import ArchConfig
from repro.core.sa import SASettings
from repro.dse.objective import Objective
from repro.fabric.spec import DEFAULT_FABRIC
from repro.io.serialization import arch_to_dict, graph_to_dict
from repro.workloads.graph import DNNGraph

#: Version of the evaluation semantics (cost model, SA schedule, traffic
#: analysis).  Bump whenever a change makes previously stored results
#: incomparable with freshly computed ones; stored records keyed under
#: an older version then simply stop matching and get re-evaluated.
CODE_MODEL_VERSION = "1"


def _canon(obj):
    """Normalize ``obj`` for canonical JSON rendering."""
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (int, float)):
        value = float(obj)
        if math.isnan(value):
            raise ValueError(f"cannot digest NaN {obj!r}")
        if math.isinf(value):
            # JSON has no infinity; cost models use inf tier bounds.
            return "__inf__" if value > 0 else "__-inf__"
        return value
    if isinstance(obj, dict):
        return {str(k): _canon(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    raise TypeError(f"cannot digest object of type {type(obj).__name__}")


def canonical_json(obj) -> str:
    """The canonical rendering digests are computed over."""
    return json.dumps(_canon(obj), sort_keys=True, separators=(",", ":"))


def content_digest(obj) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


# ----------------------------------------------------------------------
# Domain digests
# ----------------------------------------------------------------------


def arch_digest(arch: ArchConfig) -> str:
    """Digest of an architecture, ignoring the cosmetic ``name``.

    The fabric participates by *content*: a different kind, routing
    policy or knob changes the digest, while the fabric's cosmetic
    ``name`` — like the architecture's — does not.  A fabric whose
    content equals the default (mesh + XY) digests exactly as if the
    field were absent, so records stored before the fabric existed
    keep matching.
    """
    data = arch_to_dict(arch)
    data.pop("name", None)
    data.pop("fabric", None)
    fab = arch.fabric.content()  # normalized, name-free
    if fab != DEFAULT_FABRIC.content():
        data["fabric"] = fab
    return content_digest(data)


def graph_digest(graph: DNNGraph) -> str:
    """Digest of a workload graph (layers, shapes, typed edges)."""
    return content_digest(graph_to_dict(graph))


def workload_digest(graph: DNNGraph, batch: int) -> str:
    """Digest of one DSE workload: a graph at a batch size."""
    return content_digest({"graph": graph_to_dict(graph), "batch": batch})


def settings_digest(
    sa: SASettings,
    max_group_layers: int = 10,
    objective: Objective | None = None,
) -> str:
    """Digest of everything that steers the search besides the inputs."""
    sa_dict = asdict(sa)
    # Diagnostics recording is pure observation — it never changes what
    # gets computed, so a diag'd evaluation must keep matching the
    # store records a plain run wrote (and vice versa).
    sa_dict.pop("diag", None)
    # population=1 is exactly the serial walk (the population fields
    # did not exist when older stores were written), so N=1 digests
    # must stay byte-identical to pre-population ones; any N>1 keys a
    # genuinely different search and digests distinctly.
    if sa_dict.get("population", 1) == 1:
        sa_dict.pop("population", None)
        sa_dict.pop("tempering", None)
    data: dict = {
        "sa": {**sa_dict, "operators": (
            None if sa.operators is None else list(sa.operators)
        )},
        "max_group_layers": max_group_layers,
        "version": CODE_MODEL_VERSION,
    }
    if objective is not None:
        data["objective"] = {
            "alpha": objective.alpha,
            "beta": objective.beta,
            "gamma": objective.gamma,
        }
    return content_digest(data)


def candidate_key(
    arch: ArchConfig,
    workload_digests: list[str],
    sa: SASettings,
    max_group_layers: int = 10,
    objective: Objective | None = None,
    mc_evaluator=None,
    warm_keys: dict[str, str] | None = None,
) -> str:
    """Store key of one DSE candidate evaluation.

    ``sa`` must be the candidate's *effective* settings (after any
    per-candidate seed stride), and ``workload_digests`` the workloads
    in evaluation order — both are part of what was computed.  The
    monetary-cost model's parameters (``mc_evaluator``, a dataclass
    tree of plain numbers) are folded in so results priced under a
    different cost model never collide.  ``warm_keys`` records warm-
    start provenance — the mapping key each workload's SA was seeded
    from — because a warm-started evaluation is a *different*
    computation than a cold one and must never share its key.
    """
    data = {
        "kind": "candidate",
        "arch": arch_digest(arch),
        "workloads": list(workload_digests),
        "settings": settings_digest(sa, max_group_layers, objective),
    }
    if mc_evaluator is not None:
        data["mc"] = asdict(mc_evaluator)
    if warm_keys:
        data["warm"] = dict(sorted(warm_keys.items()))
    return content_digest(data)


def mapping_key(candidate_key: str, workload_digest: str) -> str:
    """Store key of the winning mapping of one candidate evaluation.

    Derived from the full candidate key (which already covers the
    architecture, settings, cost model and warm-start provenance), so a
    mapping record's key uniquely identifies the computation that
    produced it — two evaluations that could anneal differently can
    never collide on a mapping record.
    """
    return content_digest({
        "kind": "mapping",
        "candidate": candidate_key,
        "workload": workload_digest,
    })


def scenario_key(
    arch: ArchConfig,
    graph: DNNGraph,
    batch: int,
    iters: int,
    seed: int,
) -> str:
    """Store key of one sweep scenario evaluation."""
    return content_digest({
        "kind": "scenario",
        "arch": arch_digest(arch),
        "workload": workload_digest(graph, batch),
        "iters": iters,
        "seed": seed,
        "version": CODE_MODEL_VERSION,
    })


# ----------------------------------------------------------------------
# Warm-start neighborhoods
# ----------------------------------------------------------------------


def arch_family(arch: ArchConfig) -> str:
    """Warm-start neighborhood: architectures with the same core count.

    A mapping references cores by index and DRAM attach points by
    ordinal, so any same-core-count architecture can at least *attempt*
    to reuse it (validation still guards ``n_dram``); bandwidths, cuts
    and buffer sizes only shift the cost surface the SA re-anneals.
    """
    return f"cores-{arch.n_cores}"


def _log_ratio(a: float, b: float) -> float:
    if a <= 0 or b <= 0:
        return 0.0 if a == b else 10.0
    return abs(math.log(a / b))


def arch_distance(a: ArchConfig, b: ArchConfig) -> float:
    """How far apart two same-family architectures are.

    Used to pick the *nearest* stored mapping as a warm start; smaller
    is closer.  Bandwidth and buffer deltas count logarithmically,
    differing chiplet cuts add a fixed penalty each (a cut changes the
    D2D topology, which perturbs the cost surface more than a bandwidth
    scale), and a different interconnect fabric adds a larger one still
    (swapping the mesh for a torus reshapes every route).
    """
    d = (
        _log_ratio(a.dram_bw, b.dram_bw)
        + _log_ratio(a.noc_bw, b.noc_bw)
        + _log_ratio(a.d2d_bw, b.d2d_bw)
        + _log_ratio(a.glb_bytes, b.glb_bytes)
        + _log_ratio(a.macs_per_core, b.macs_per_core)
    )
    if (a.xcut, a.ycut) != (b.xcut, b.ycut):
        d += 1.0
    if (a.cores_x, a.cores_y) != (b.cores_x, b.cores_y):
        d += 1.0
    if a.fabric.content() != b.fabric.content():
        d += 2.0
    return d
