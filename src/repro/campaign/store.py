"""The persistent campaign result store.

Layout of a store directory::

    store/
      segments/seg-<pid>-<nonce>.jsonl   append-only record segments
      index.json                         atomic key -> segment index

Records are one compact JSON object per line: ``{"kind", "key",
"payload"}``.  Each :class:`ResultStore` instance appends to its *own*
segment file, named after the process id plus a random nonce, so any
number of worker processes can publish into the same store without a
lock: no two writers ever touch the same file, and readers simply scan
every segment.  A crash can at worst leave a torn final line in one
segment; the loader skips unparseable trailing data, so everything
checkpointed before the crash survives.

``index.json`` is a derived artifact — the segments are the source of
truth — rewritten atomically on :meth:`ResultStore.write_index`; it
gives external tooling (and ``repro campaign status``) a cheap summary
without parsing payloads.

Keys come from :mod:`repro.campaign.keys`: content digests over the
evaluation inputs.  Two processes that compute the same key would store
bit-identical payloads, so duplicate appends are harmless (last record
wins on load, and all of them agree).
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

from repro.errors import ReproError
from repro.io.atomic import atomic_write_json

#: Record kinds.
KIND_CANDIDATE = "candidate"
KIND_MAPPING = "mapping"
KIND_SCENARIO = "scenario"
KIND_FAILURE = "failure"


class StoreError(ReproError):
    """The store directory is unusable or a record is malformed."""


class ResultStore:
    """Append-only, content-addressed result store over JSONL segments."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self._records: dict[tuple[str, str], dict] = {}
        self._locations: dict[tuple[str, str], str] = {}
        self._skipped_lines = 0
        self._fh = None
        self._segment_path = self.segments_dir / (
            f"seg-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        )
        self.reload()

    # -- loading -------------------------------------------------------

    def reload(self) -> None:
        """(Re)scan every segment; picks up other processes' appends."""
        self._records.clear()
        self._locations.clear()
        self._skipped_lines = 0
        for seg in sorted(self.segments_dir.glob("*.jsonl")):
            self._scan_segment(seg)

    def _scan_segment(self, seg: Path) -> None:
        try:
            text = seg.read_text()
        except OSError as exc:
            raise StoreError(f"cannot read segment {seg}: {exc}") from exc
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                kind, key, payload = rec["kind"], rec["key"], rec["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # Torn tail of a crashed writer (or foreign junk): the
                # record was never acknowledged, so dropping it is safe.
                self._skipped_lines += 1
                continue
            self._records[(kind, key)] = payload
            self._locations[(kind, key)] = seg.name

    @property
    def skipped_lines(self) -> int:
        """Unparseable lines tolerated during the last scan."""
        return self._skipped_lines

    # -- writing -------------------------------------------------------

    def put(self, kind: str, key: str, payload: dict) -> None:
        """Durably append one record and make it visible immediately."""
        from repro.obs.trace import trace

        with trace("store.put", kind=kind):
            line = json.dumps(
                {"kind": kind, "key": key, "payload": payload},
                separators=(",", ":"),
            )
            if "\n" in line:
                raise StoreError("record serialization produced a newline")
            if self._fh is None:
                self._fh = open(self._segment_path, "a")
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._records[(kind, key)] = payload
            self._locations[(kind, key)] = self._segment_path.name

    # -- reading -------------------------------------------------------

    def get(self, kind: str, key: str) -> dict | None:
        return self._records.get((kind, key))

    def has(self, kind: str, key: str) -> bool:
        return (kind, key) in self._records

    def keys(self, kind: str) -> set[str]:
        return {k for (kd, k) in self._records if kd == kind}

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for kind, _ in self._records:
            out[kind] = out.get(kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._records)

    # -- failures ------------------------------------------------------

    def record_failure(self, kind: str, key: str, error: str) -> None:
        """Remember that computing ``(kind, key)`` raised ``error``.

        Failure records never shadow results: a later successful record
        under the real kind supersedes the failure (see
        :meth:`failed_keys`), and failed keys count as pending again on
        the next run.
        """
        self.put(KIND_FAILURE, key, {"for_kind": kind, "error": error})

    def failed_keys(self, kind: str) -> set[str]:
        """Keys whose last computation failed and has not succeeded since."""
        failed = set()
        for (kd, key), payload in self._records.items():
            if kd == KIND_FAILURE and payload.get("for_kind") == kind:
                if not self.has(kind, key):
                    failed.add(key)
        return failed

    # -- index ---------------------------------------------------------

    def write_index(self) -> Path:
        """Atomically rewrite ``index.json`` from the in-memory state."""
        index = {
            "counts": self.counts(),
            "skipped_lines": self._skipped_lines,
            "keys": {},
        }
        for (kind, key), seg in sorted(self._locations.items()):
            index["keys"].setdefault(kind, {})[key] = seg
        return atomic_write_json(self.root / "index.json", index)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        # An unused writer never created its segment; don't index it.
        self.write_index()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
