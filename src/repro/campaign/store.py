"""The persistent campaign result store.

Layout of a store directory::

    store/
      segments/seg-<pid>-<nonce>.jsonl   append-only record segments
      index.json                         atomic key -> segment index

Records are one compact JSON object per line: ``{"kind", "key",
"payload"}``.  Each :class:`ResultStore` instance appends to its *own*
segment file, named after the process id plus a random nonce, so any
number of worker processes can publish into the same store without a
lock: no two writers ever touch the same file, and readers simply scan
every segment.  A crash can at worst leave a torn final line in one
segment; the loader skips unparseable trailing data, so everything
checkpointed before the crash survives.

``index.json`` is a derived artifact — the segments are the source of
truth — rewritten atomically on :meth:`ResultStore.write_index`; it
gives external tooling (and ``repro campaign status``) a cheap summary
without parsing payloads.

Keys come from :mod:`repro.campaign.keys`: content digests over the
evaluation inputs.  Two processes that compute the same key would store
bit-identical payloads, so duplicate appends are harmless (last record
wins on load, and all of them agree).
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

from repro.errors import ReproError
from repro.io.atomic import atomic_write_json
from repro.perf import PERF

#: Record kinds.
KIND_CANDIDATE = "candidate"
KIND_MAPPING = "mapping"
KIND_SCENARIO = "scenario"
KIND_FAILURE = "failure"

#: Fault-injection seam (chaos harness): when armed, called as
#: ``hook(fh, line)`` right before every segment write.  ``None`` in
#: production — one identity check per put.
_PUT_HOOK = None


class StoreError(ReproError):
    """The store directory is unusable or a record is malformed."""


class ResultStore:
    """Append-only, content-addressed result store over JSONL segments."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self._records: dict[tuple[str, str], dict] = {}
        self._locations: dict[tuple[str, str], str] = {}
        self._skipped_lines = 0
        self._fh = None
        self._segment_path = self.segments_dir / (
            f"seg-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        )
        self.reload()

    # -- loading -------------------------------------------------------

    def reload(self) -> None:
        """(Re)scan every segment; picks up other processes' appends."""
        self._records.clear()
        self._locations.clear()
        self._skipped_lines = 0
        for seg in sorted(self.segments_dir.glob("*.jsonl")):
            self._scan_segment(seg)

    def _scan_segment(self, seg: Path) -> None:
        try:
            text = seg.read_text()
        except OSError as exc:
            raise StoreError(f"cannot read segment {seg}: {exc}") from exc
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                kind, key, payload = rec["kind"], rec["key"], rec["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # Torn tail of a crashed writer (or foreign junk): the
                # record was never acknowledged, so dropping it is safe.
                self._skipped_lines += 1
                continue
            self._records[(kind, key)] = payload
            self._locations[(kind, key)] = seg.name

    @property
    def skipped_lines(self) -> int:
        """Unparseable lines tolerated during the last scan."""
        return self._skipped_lines

    # -- writing -------------------------------------------------------

    def put(self, kind: str, key: str, payload: dict) -> None:
        """Durably append one record and make it visible immediately.

        A failed write (ENOSPC, EIO, a chaos fault) re-raises, but only
        after the writer has *rotated* to a fresh segment file: whatever
        partial line the failure left behind becomes the tolerated torn
        tail of the abandoned segment, and a retried put can never
        concatenate onto it and corrupt an otherwise good record.
        """
        from repro.obs.trace import trace

        with trace("store.put", kind=kind):
            line = json.dumps(
                {"kind": kind, "key": key, "payload": payload},
                separators=(",", ":"),
            )
            if "\n" in line:
                raise StoreError("record serialization produced a newline")
            if self._fh is None:
                self._fh = open(self._segment_path, "a")
            try:
                if _PUT_HOOK is not None:
                    _PUT_HOOK(self._fh, line)
                self._fh.write(line + "\n")
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError:
                PERF.add("store.put.errors")
                self._rotate_segment()
                raise
            self._records[(kind, key)] = payload
            self._locations[(kind, key)] = self._segment_path.name

    def _rotate_segment(self) -> None:
        """Abandon the current segment file and start a fresh one."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - double-fault close
                pass
            self._fh = None
        self._segment_path = self.segments_dir / (
            f"seg-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        )

    # -- reading -------------------------------------------------------

    def get(self, kind: str, key: str) -> dict | None:
        return self._records.get((kind, key))

    def has(self, kind: str, key: str) -> bool:
        return (kind, key) in self._records

    def keys(self, kind: str) -> set[str]:
        return {k for (kd, k) in self._records if kd == kind}

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for kind, _ in self._records:
            out[kind] = out.get(kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._records)

    # -- failures ------------------------------------------------------

    def record_failure(self, kind: str, key: str, error: str) -> None:
        """Remember that computing ``(kind, key)`` raised ``error``.

        Failure records never shadow results: a later successful record
        under the real kind supersedes the failure (see
        :meth:`failed_keys`), and failed keys count as pending again on
        the next run.
        """
        self.put(KIND_FAILURE, key, {"for_kind": kind, "error": error})

    def record_quarantine(self, kind: str, key: str, error: str,
                          attempts: int, cause: str) -> None:
        """Commit ``(kind, key)`` as *poison*: it crashed its worker or
        timed out ``attempts`` times and must not be retried by default.

        Quarantine is a structured failure record (``poison: true``), so
        everything that understands failures — supersede-on-success,
        ``status``, fsck — works unchanged; only :meth:`failed_keys`
        treats poison specially (quarantined keys are not pending).
        """
        self.put(KIND_FAILURE, key, {
            "for_kind": kind, "error": error, "poison": True,
            "attempts": attempts, "cause": cause,
        })

    def failed_keys(self, kind: str) -> set[str]:
        """Keys whose last computation failed retryably and has not
        succeeded since (quarantined poison keys are excluded — see
        :meth:`quarantined_keys`)."""
        failed = set()
        for (kd, key), payload in self._records.items():
            if kd == KIND_FAILURE and payload.get("for_kind") == kind \
                    and not payload.get("poison"):
                if not self.has(kind, key):
                    failed.add(key)
        return failed

    def quarantined_keys(self, kind: str) -> set[str]:
        """Poison keys of ``kind`` without a superseding success."""
        out = set()
        for (kd, key), payload in self._records.items():
            if kd == KIND_FAILURE and payload.get("for_kind") == kind \
                    and payload.get("poison"):
                if not self.has(kind, key):
                    out.add(key)
        return out

    # -- index ---------------------------------------------------------

    def write_index(self) -> Path | None:
        """Atomically rewrite ``index.json`` from the in-memory state.

        Best-effort: the index is a derived artifact (segments are the
        source of truth, fsck rebuilds it), so a failed write — disk
        full at the end of an otherwise durable run — must not take the
        run's results down with it.
        """
        index = {
            "counts": self.counts(),
            "skipped_lines": self._skipped_lines,
            "keys": {},
        }
        for (kind, key), seg in sorted(self._locations.items()):
            index["keys"].setdefault(kind, {})[key] = seg
        try:
            return atomic_write_json(self.root / "index.json", index)
        except OSError:
            PERF.add("store.index.errors")
            return None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        # An unused writer never created its segment; don't index it.
        self.write_index()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
