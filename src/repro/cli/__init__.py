"""Command-line interface (see ``python -m repro --help``)."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
