"""Command-line interface mirroring the paper artifact's workflow.

The artifact drives everything through ``dse.sh`` (find the best arch),
``compare.sh`` (pit it against the baselines) and ``Fig5_reproduce.py``
(collect the figure rows).  The equivalents here:

* ``python -m repro dse``      — explore a (scaled) Table-I grid,
  write ``result.csv`` and ``best_arch.json``;
* ``python -m repro map``      — map one model onto one architecture;
* ``python -m repro compare``  — G-Arch+G-Map vs S-Arch+T-Map vs
  S-Arch+G-Map over the evaluation DNNs, write ``fig5.csv``;
* ``python -m repro heatmap``  — Fig 9 ASCII traffic heatmaps;
* ``python -m repro space``    — Sec IV-B space-size table;
* ``python -m repro mc``       — Monetary-Cost breakdown of an arch.

Beyond the artifact, the workload frontend adds:

* ``python -m repro import``   — ingest an ONNX model / declarative
  spec, print the lowering report, optionally save the graph JSON;
* ``python -m repro sweep``    — run a scenario grid (model x batch x
  arch) with per-scenario artifacts and a sweep.csv; ``--resume``
  re-evaluates only scenarios missing from the result store.

Durable, resumable exploration lives under ``repro campaign``:

* ``python -m repro campaign run``    — evaluate a named candidate
  grid against a workload list, checkpointing every result into a
  persistent store; interrupt it and re-run with the same arguments to
  resume with zero re-evaluation;
* ``python -m repro campaign status`` — done/pending/failed counts and
  best-so-far per objective, straight from the store;
* ``python -m repro campaign export`` — Pareto front + full table as
  CSV/JSON.

Wherever a model is expected, a registry abbreviation, an ``.onnx``
file, a spec ``.json``/``.yaml`` or a saved graph JSON all work.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.arch.params import ArchConfig
from repro.baselines import tangram_map
from repro.core import MappingEngine, MappingEngineSettings, SASettings
from repro.cost import DEFAULT_MC
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    Workload,
    enumerate_candidates,
    geomean,
)
from repro.frontend import (
    SCENARIO_REGISTRY,
    grid_scenarios,
    load_model,
    run_sweep,
)
from repro.frontend import resolve_arch as _resolve_arch
from repro.frontend.scenarios import SWEEP_COLUMNS, sweep_rows
from repro.io import (
    candidate_result_summary,
    mapping_result_summary,
    save_arch,
    save_graph,
    save_mapping,
)
from repro.reporting import format_table, write_csv
from repro.workloads.graph import DNNGraph
from repro.workloads.models import MODEL_REGISTRY


def resolve_arch(spec: str) -> ArchConfig:
    """A preset name or a path to a JSON file saved by ``dse``."""
    from repro.errors import ReproError

    try:
        return _resolve_arch(spec)
    except (ValueError, ReproError) as exc:
        raise SystemExit(str(exc)) from exc


def fabric_overridden(arch: ArchConfig, args) -> ArchConfig:
    """``arch`` with the ``--fabric`` / ``--routing`` flags applied."""
    from repro.errors import ReproError
    from repro.fabric import apply_fabric

    try:
        return apply_fabric(
            arch,
            fabric=getattr(args, "fabric", None),
            routing=getattr(args, "routing", None),
        )
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def fabric_axis(args) -> list | None:
    """Parsed ``--fabric`` list for grid commands (None = mesh only)."""
    from dataclasses import replace

    from repro.errors import ReproError
    from repro.fabric import parse_fabric

    if not getattr(args, "fabric", None):
        return None
    try:
        specs = [parse_fabric(f) for f in args.fabric]
        if getattr(args, "routing", None):
            specs = [replace(s, routing=args.routing) for s in specs]
        return specs
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def add_fabric_flags(p, multiple: bool = False) -> None:
    from repro.fabric import ROUTING_POLICIES, fabric_kinds

    kinds = ", ".join(fabric_kinds())
    if multiple:
        p.add_argument("--fabric", nargs="+", default=None,
                       help=f"interconnect fabric axis ({kinds}); each "
                            "entry is kind[:routing][:cN][:wrap=dims] and "
                            "the grid is crossed with every entry")
    else:
        p.add_argument("--fabric", default=None,
                       help=f"interconnect fabric ({kinds}), as "
                            "kind[:routing][:cN][:wrap=dims]")
    p.add_argument("--routing", default=None, choices=ROUTING_POLICIES,
                   help="deterministic routing policy override")


def add_population_flags(p) -> None:
    """``--population`` / ``--tempering`` on the search commands."""
    p.add_argument("--population", type=int, default=1,
                   help="SA walkers annealed in lockstep batches (1 = the "
                        "paper's serial walk; >1 evaluates the whole "
                        "population per step through the batched compiled "
                        "core)")
    p.add_argument("--tempering", type=int, default=1,
                   help="parallel-tempering rungs spread over the "
                        "population (requires --population > 1; rung 0 "
                        "anneals at the base schedule, higher rungs run "
                        "hotter with periodic replica exchange)")


def add_obs_flags(p) -> None:
    """``--trace`` / ``--metrics`` on the long-running commands."""
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record phase spans and write a Chrome-trace JSON "
                        "(open in chrome://tracing or ui.perfetto.dev)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write the final perf snapshot here (.prom/.txt = "
                        "Prometheus text exposition, anything else = JSON)")


def resolve_model(spec: str) -> DNNGraph:
    """A registry abbreviation or a model file (onnx / spec / graph)."""
    from repro.errors import ReproError

    try:
        graph, report = load_model(spec)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    if report is not None and not report.is_exact:
        print(report.describe())
    return graph


def engine_for(arch: ArchConfig, iterations: int, seed: int = 0,
               proposal_batch: int = 1, population: int = 1,
               tempering: int = 1) -> MappingEngine:
    return MappingEngine(
        arch,
        settings=MappingEngineSettings(
            sa=SASettings(iterations=iterations, seed=seed,
                          proposal_batch=proposal_batch,
                          population=population, tempering=tempering)
        ),
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def profile_report(args, extra: dict | None = None) -> None:
    """``--profile``: print the perf counters and write BENCH_perf.json."""
    from repro.perf import PERF, emit_bench

    snap = PERF.snapshot()
    # Spans belong in the --trace file; a span dump would bloat
    # BENCH_perf.json without being a benchmarkable number.
    snap.pop("spans", None)
    rows = PERF.rows()
    if rows:
        print()
        print(format_table(["kind", "name", "value"], rows))
    caches = PERF.cache_stats()
    if caches:
        print()
        print(format_table(
            ["cache", "hits", "misses", "hit rate"],
            [
                [name, int(s["hits"]), int(s["misses"]),
                 f"{s['hit_rate']:.1%}"]
                for name, s in sorted(caches.items())
            ],
        ))
    payload = dict(extra or {})
    payload["perf"] = snap
    payload["caches"] = caches
    path = emit_bench(f"cli.{args.command}", payload)
    print(f"wrote profile to {path}")


def table1_candidates(tops: int, full: bool, fabrics: list | None = None) -> list:
    """The Table-I grid (``full``) or its fast laptop-scale subset —
    shared by ``dse`` and ``campaign run`` so the two commands can
    never drift apart (campaign keys digest the grid).  ``fabrics``
    (a list of :class:`~repro.fabric.FabricSpec`) crosses the grid
    with an interconnect axis; fabrics alternate innermost, so a
    truncated grid still covers each one."""
    if full:
        grid = DseGrid.paper_grid(tops)
    else:
        cuts = (1, 2, 3, 6) if tops == 72 else (1, 2, 4)
        grid = DseGrid(
            tops=tops, cuts=cuts, dram_bw_per_tops=(2.0,),
            noc_bw_gbps=(32, 64), d2d_ratio=(0.5,),
            glb_kb=(1024, 2048), macs_per_core=(1024, 2048),
        )
    if fabrics:
        from dataclasses import replace

        grid = replace(grid, fabrics=tuple(fabrics))
    return enumerate_candidates(grid)


def cmd_dse(args) -> int:
    candidates = table1_candidates(args.tops, args.full, fabric_axis(args))
    if args.max_candidates:
        candidates = candidates[: args.max_candidates]
    print(f"exploring {len(candidates)} candidates at {args.tops} TOPs "
          f"(SA x{args.iters}, {args.workers or 'all'} worker(s))")
    with DesignSpaceExplorer(
        [Workload(resolve_model(m), args.batch) for m in args.models],
        sa_settings=SASettings(iterations=args.iters,
                               population=args.population,
                               tempering=args.tempering),
        record_mappings=False,  # no store attached; keep IPC lean
    ) as explorer:
        report = explorer.explore(candidates, workers=args.workers or None)
    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    rows = [list(candidate_result_summary(r).values())
            for r in sorted(report.results, key=lambda r: r.score)]
    headers = list(candidate_result_summary(report.best).keys())
    write_csv(outdir / "result.csv", headers, rows)
    save_arch(report.best.arch, outdir / "best_arch.json")
    print(format_table(headers, rows[:10]))
    print(f"\nbest architecture: {report.best.arch.paper_tuple()}")
    print(f"wrote {outdir / 'result.csv'} and {outdir / 'best_arch.json'}")
    if args.profile:
        profile_report(args, {
            "candidates": len(candidates),
            "workers": args.workers,
            "wall_time_s": report.wall_time_s,
        })
    return 0


def cmd_map(args) -> int:
    arch = fabric_overridden(resolve_arch(args.arch), args)
    graph = resolve_model(args.model)
    result = engine_for(
        arch, args.iters, proposal_batch=args.proposal_batch,
        population=args.population, tempering=args.tempering,
    ).map(graph, args.batch)
    summary = mapping_result_summary(result)
    print(format_table(
        ["field", "value"], [[k, v] for k, v in summary.items()],
    ))
    if args.save_mapping:
        save_mapping(result.lmss, args.save_mapping)
        print(f"wrote {args.save_mapping}")
    if args.profile:
        stats = result.sa_stats
        extra = {"model": args.model, "batch": args.batch}
        if stats is not None:
            extra["sa_iters_per_sec"] = stats.iters_per_sec
            extra["sa_wall_time_s"] = stats.wall_time_s
            print(f"\nSA throughput: {stats.iters_per_sec:.0f} iterations/s")
        profile_report(args, extra)
    return 0


def cmd_compare(args) -> int:
    """Fig 5 comparison; with ``--fabric`` also the Sec VI-B2 study.

    ``--baseline`` swaps the S-Arch reference (e.g. ``t-arch``, the
    Grayskull-like folded-torus accelerator), and ``--fabric`` applies
    an interconnect override to *both* architectures, so::

        repro compare --fabric folded-torus --baseline t-arch \\
            --arch g-arch-120

    reproduces the paper's T-Arch vs G-Arch-120 torus comparison.
    ``--quick`` shrinks the run to one model at batch 1 with a tiny SA
    budget (CI smoke).
    """
    g = fabric_overridden(resolve_arch(args.arch), args)
    s = fabric_overridden(resolve_arch(args.baseline), args)
    models = args.models
    batches: tuple[int, ...] = (64, 1)
    iters = args.iters
    if args.quick:
        models = models[:1]
        batches = (1,)
        iters = min(iters, 8)
    base_label = s.name or args.baseline
    headers = ["dnn", "batch", "base_tmap_delay", "base_tmap_energy",
               "base_gmap_delay", "base_gmap_energy",
               "garch_gmap_delay", "garch_gmap_energy"]
    rows = []
    perf, eff = [], []
    for seed, model in enumerate(models):
        graph = resolve_model(model)
        for batch in batches:
            base = tangram_map(graph, s, batch)
            sg = engine_for(s, iters, seed).map(graph, batch)
            gg = engine_for(g, iters, seed + 50).map(graph, batch)
            rows.append([
                model, batch, base.delay, base.energy,
                sg.delay, sg.energy, gg.delay, gg.energy,
            ])
            perf.append(base.delay / gg.delay)
            eff.append(base.energy / gg.energy)
    out = Path(args.out)
    write_csv(out, headers, rows)
    mc_ratio = DEFAULT_MC.evaluate(g).total / DEFAULT_MC.evaluate(s).total
    print(format_table(headers, rows))
    from repro.fabric import format_fabric

    print(
        f"\n{g.name or args.arch}+G-Map vs {base_label}+T-Map "
        f"(fabric {format_fabric(g.fabric)}): "
        f"{geomean(perf):.2f}x performance, "
        f"{geomean(eff):.2f}x energy efficiency, {mc_ratio - 1:+.1%} MC"
        + (" (paper: 1.98x, 1.41x, +14.3%)"
           if args.baseline == "s-arch" and not args.fabric else "")
    )
    print(f"wrote {out}")
    return 0


def cmd_import(args) -> int:
    from repro.errors import ReproError

    try:
        graph, report = load_model(args.source)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    graph.validate()
    kinds: dict[str, int] = {}
    for layer in graph.layers():
        kinds[layer.kind.value] = kinds.get(layer.kind.value, 0) + 1
    rows = [
        ["model", graph.name],
        ["layers", len(graph)],
        ["kinds", ", ".join(f"{k}:{n}" for k, n in sorted(kinds.items()))],
        ["macs/sample", f"{graph.total_macs(1):,}"],
        ["weight bytes", f"{graph.total_weight_bytes():,}"],
        ["ofmap bytes/sample", f"{graph.total_ofmap_bytes(1):,}"],
    ]
    print(format_table(["field", "value"], rows))
    if report is not None:
        print()
        print(report.describe())
    if args.out:
        save_graph(graph, args.out)
        print(f"\nwrote {args.out}")
    return 0


def sweep_fabrics(args) -> list[str] | None:
    """``--fabric``/``--routing`` as scenario fabric strings.

    ``--routing`` folds into every entry (a routing override with no
    ``--fabric`` applies to the default mesh), so neither flag is ever
    silently dropped.  Bad specs abort before any scenario runs.
    """
    from dataclasses import replace

    from repro.errors import ReproError
    from repro.fabric import format_fabric, parse_fabric

    if not args.fabric and not args.routing:
        return None
    try:
        out = []
        for entry in args.fabric or ["mesh"]:
            spec = parse_fabric(entry)
            if args.routing:
                spec = replace(spec, routing=args.routing)
            out.append(format_fabric(spec))
        return out
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def cmd_sweep(args) -> int:
    from repro.errors import ReproError as _ReproError

    fabrics = sweep_fabrics(args)
    if args.scenarios:
        missing = [n for n in args.scenarios if n not in SCENARIO_REGISTRY]
        if missing:
            raise SystemExit(
                f"unknown scenario(s) {missing}; registered: "
                f"{sorted(SCENARIO_REGISTRY)}"
            )
        scenarios = [SCENARIO_REGISTRY[n] for n in args.scenarios]
        overrides = {}
        if args.iters:
            overrides["iters"] = args.iters
        if fabrics:
            # Registered scenarios keep their names, so only a single
            # fabric override is unambiguous here; use the grid flags
            # (--models/--batches/--archs) for a fabric dimension.
            if len(fabrics) > 1:
                raise SystemExit(
                    "--fabric accepts one value with --scenarios; use "
                    "--models/--batches/--archs for a fabric axis"
                )
            overrides["fabric"] = fabrics[0]
        if overrides:
            from repro.frontend.scenarios import scaled

            scenarios = [scaled(s, **overrides) for s in scenarios]
    else:
        try:
            scenarios = grid_scenarios(
                args.models, args.batches, args.archs,
                iters=args.iters or 100, fabrics=fabrics,
            )
        except _ReproError as exc:
            raise SystemExit(str(exc)) from exc
    # Pre-flight: fail with a clean message before any scenario runs
    # (a bad name or unloadable file surfacing from a worker process
    # mid-sweep wastes the scenarios already mapped).
    from repro.errors import ReproError

    from repro.frontend.loader import validate_model_source

    for arch in {sc.arch for sc in scenarios}:
        resolve_arch(arch)
    for fabric in {sc.fabric for sc in scenarios if sc.fabric}:
        try:
            from repro.fabric import parse_fabric

            parse_fabric(fabric)
        except ReproError as exc:
            raise SystemExit(f"fabric {fabric!r}: {exc}") from exc
    for model in {sc.model for sc in scenarios}:
        try:
            validate_model_source(model)
        except ReproError as exc:
            raise SystemExit(f"model {model!r}: {exc}") from exc
    print(f"sweeping {len(scenarios)} scenario(s) on "
          f"{args.workers or 'all'} worker(s)"
          + (" [resume]" if args.resume else ""))
    try:
        summaries = run_sweep(
            scenarios, out_dir=args.out, workers=args.workers or None,
            resume=args.resume,
        )
    except (ValueError, ReproError) as exc:
        raise SystemExit(str(exc)) from exc
    print(format_table(list(SWEEP_COLUMNS), sweep_rows(summaries)))
    if args.resume:
        from repro.perf import PERF

        print(f"\nevaluated {PERF.get('sweep.evaluated'):.0f}, served "
              f"{PERF.get('sweep.store_hits'):.0f} from {args.out}/store")
    print(f"\nwrote {Path(args.out) / 'sweep.csv'} and "
          f"{len(summaries)} scenario dir(s) under {args.out}/")
    if args.profile:
        profile_report(args, {"scenarios": len(summaries),
                              "workers": args.workers})
    return 0


def cmd_campaign_run(args) -> int:
    from repro.campaign import (
        CampaignInterrupted,
        CampaignRunner,
        CampaignSpec,
        RetryPolicy,
    )
    from repro.errors import ReproError

    candidates = table1_candidates(args.tops, args.full, fabric_axis(args))
    if args.max_candidates:
        candidates = candidates[: args.max_candidates]
    spec = CampaignSpec(
        name=args.name,
        candidates=candidates,
        workloads=[Workload(resolve_model(m), args.batch)
                   for m in args.models],
        sa=SASettings(iterations=args.iters, seed=args.seed,
                      diag=args.diag, population=args.population,
                      tempering=args.tempering),
        seed_stride=args.seed_stride,
        warm_start=not args.no_warm_start,
    )
    try:
        policy = RetryPolicy(
            max_attempts=args.retries,
            timeout_s=args.timeout,
            backoff_s=args.backoff,
            seed=args.seed,
        )
        chaos = None
        if args.chaos:
            from repro.testing.chaos import parse_chaos

            chaos = parse_chaos(args.chaos, seed=args.seed)
        with CampaignRunner(spec, args.out) as runner:
            pending = len(
                runner.pending(retry_quarantined=args.retry_quarantined)
            )
            total = len(candidates)
            print(f"campaign {args.name!r}: {total} candidate(s), "
                  f"{total - pending} stored, {pending} pending "
                  f"({args.workers or 'all'} worker(s))")
            report = runner.run(
                workers=args.workers or None, fail_after=args.fail_after,
                policy=policy, chaos=chaos,
                retry_quarantined=args.retry_quarantined,
            )
    except CampaignInterrupted as exc:
        print(f"interrupted: {exc}")
        print(f"re-run the same command to resume: "
              f"repro campaign run --name {args.name} --out {args.out} ...")
        return 130
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"evaluated {report.evaluated}, served {report.store_hits} from "
          f"the store, {report.failed} failed"
          + (f", {report.quarantined} quarantined"
             if report.quarantined else ""))
    done = report.done
    if done:
        rows = [list(candidate_result_summary(r).values())
                for r in sorted(done, key=lambda r: r.score)[:10]]
        headers = list(candidate_result_summary(done[0]).keys())
        print(format_table(headers, rows))
        print(f"\nbest architecture: {report.best.arch.paper_tuple()}")
    if args.profile:
        profile_report(args, {
            "campaign": args.name,
            "candidates": len(candidates),
            "evaluated": report.evaluated,
            "store_hits": report.store_hits,
            "workers": args.workers,
        })
    return 0


def cmd_campaign_status(args) -> int:
    from repro.campaign import CampaignError, campaign_status
    from repro.dse.pareto import AXES

    try:
        status = campaign_status(args.out, args.name)
    except CampaignError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"campaign {status['name']!r}: {status['done']}/{status['total']} "
          f"done, {status['pending']} pending, {status['failed']} failed, "
          f"{status.get('quarantined', 0)} quarantined, "
          f"{status['warm_started']} warm-started")
    rows = [
        [axis, status["best"][axis]["arch"], status["best"][axis]["value"]]
        for axis in AXES if axis in status["best"]
    ]
    if rows:
        print()
        print(format_table(["objective", "best arch", "value"], rows))
    return 0


def cmd_campaign_export(args) -> int:
    from repro.campaign import CampaignError, export_campaign

    try:
        paths = export_campaign(args.out, args.name, dest=args.dest)
    except CampaignError as exc:
        raise SystemExit(str(exc)) from exc
    for label, path in sorted(paths.items()):
        print(f"wrote {path}")
    return 0


def cmd_campaign_watch(args) -> int:
    from repro.campaign import CampaignError
    from repro.obs.watch import campaign_watch

    try:
        return campaign_watch(
            args.out, args.name, once=args.once, interval=args.interval,
            as_json=args.json,
        )
    except CampaignError as exc:
        raise SystemExit(str(exc)) from exc


def cmd_campaign_report(args) -> int:
    from repro.campaign import CampaignError
    from repro.obs.diag import campaign_report_data, render_campaign_report

    try:
        data = campaign_report_data(args.out, args.name)
    except CampaignError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(data, sort_keys=True))
    else:
        print(render_campaign_report(data))
    return 0


def cmd_store_fsck(args) -> int:
    """Integrity-check (and optionally repair) a result store."""
    from repro.campaign.fsck import fsck_store, render_fsck

    root = Path(args.store) if args.store else Path(args.out) / "store"
    if not root.is_dir():
        raise SystemExit(f"no result store at {root}")
    report = fsck_store(root, repair=args.repair)
    print(render_fsck(report))
    return 0 if report.clean else 1


def cmd_sa_report(args) -> int:
    """Map one model with diagnostics forced on; report the search."""
    from repro.obs.diag import render_sa_diag

    arch = fabric_overridden(resolve_arch(args.arch), args)
    graph = resolve_model(args.model)
    engine = MappingEngine(
        arch,
        settings=MappingEngineSettings(
            sa=SASettings(iterations=args.iters, seed=args.seed,
                          proposal_batch=args.proposal_batch, diag=True),
            restarts=args.restarts,
        ),
    )
    result = engine.map(graph, args.batch)
    print(f"{args.model} @ batch {args.batch} on "
          f"{arch.name or args.arch} {arch.paper_tuple()}: "
          f"EDP {result.edp:.4g} "
          f"(delay {result.delay:.4g}s, energy {result.energy:.4g}J)")
    print()
    print(render_sa_diag(result.restart_diags))
    if args.profile:
        stats = result.sa_stats
        extra = {"model": args.model, "batch": args.batch}
        if stats is not None:
            extra["sa_iters_per_sec"] = stats.iters_per_sec
            extra["sa_wall_time_s"] = stats.wall_time_s
        profile_report(args, extra)
    return 0


def cmd_perf_history(args) -> int:
    from repro.perf.history import read_history, render_history

    rows, skipped = read_history(args.path)
    if not rows:
        print(f"no history rows in {args.path}")
        return 0
    if args.section:
        rows = [r for r in rows if r.get("section") == args.section]
        if not rows:
            print(f"no rows for section {args.section!r} in {args.path}")
            return 0
    print(render_history(rows, pattern=args.metric, last=args.last))
    if skipped:
        print(f"\n({skipped} unparseable line(s) skipped)")
    return 0


def cmd_perf_diff(args) -> int:
    from repro.perf.history import diff_rows, read_history, render_diff

    rows, skipped = read_history(args.path)
    section = args.section or (rows[-1].get("section") if rows else None)
    rows = [r for r in rows if r.get("section") == section]
    if len(rows) < 2:
        print(f"need two rows of section {section!r} in {args.path} to "
              f"diff, have {len(rows)}")
        return 0
    try:
        row_a, row_b = rows[args.a], rows[args.b]
    except IndexError:
        raise SystemExit(
            f"row index out of range: {len(rows)} row(s) for "
            f"section {section!r}"
        ) from None
    diff = diff_rows(row_a, row_b)
    print(render_diff(diff))
    if skipped:
        print(f"\n({skipped} unparseable line(s) skipped)")
    if args.out:
        from repro.io import atomic_write_text

        atomic_write_text(args.out, json.dumps(diff, indent=2,
                                               sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    # Deliberately exit 0 either way: the gate is advisory (single-CPU
    # CI noise must not block merges); consumers read diff["verdict"].
    return 0


def cmd_profile_report(args) -> int:
    from repro.obs.report import (
        PROFILE_HEADERS,
        TraceFormatError,
        aggregate_trace,
        load_chrome_trace,
        profile_rows,
    )

    try:
        events = load_chrome_trace(args.trace_file)
    except TraceFormatError as exc:
        raise SystemExit(str(exc)) from exc
    agg = aggregate_trace(events)
    if not agg:
        print(f"no complete spans in {args.trace_file}")
        return 0
    print(format_table(PROFILE_HEADERS, profile_rows(agg, sort=args.sort)))
    return 0


def cmd_heatmap(args) -> int:
    from repro.core import SAController
    from repro.core.graphpart import partition_graph
    from repro.core.initial import initial_lms
    from repro.core.parser import parse_lms
    from repro.evalmodel import Evaluator, GroupTrafficAnalyzer
    from repro.reporting import heat_summary, render_ascii

    arch = fabric_overridden(resolve_arch(args.arch), args)
    graph = resolve_model(args.model)
    evaluator = Evaluator(arch)
    groups = partition_graph(graph, arch, batch=args.batch)
    group = max(groups, key=len)
    tangram = initial_lms(graph, group, arch)
    gemini = SAController(
        graph, evaluator, [tangram], args.batch,
        SASettings(iterations=args.iters),
    ).run()[0]
    lines = []
    for label, lms in (("Tangram", tangram), ("Gemini", gemini)):
        parsed = parse_lms(graph, lms)
        intra = evaluator._intra_results(parsed)
        traffic = GroupTrafficAnalyzer(graph, arch, evaluator.topo).analyze(
            parsed, lms, intra, {}
        )
        lines.append(f"\n{label} SPM ({json.dumps(heat_summary(traffic.traffic))}):")
        lines.append(render_ascii(traffic.traffic))
    print("\n".join(lines))
    if args.out:
        from repro.io import atomic_write_text

        atomic_write_text(args.out, "\n".join(lines) + "\n")
        print(f"\nwrote {args.out}")
    return 0


def cmd_space(args) -> int:
    from repro.core import gemini_space_size, log10_size, tangram_space_size

    rows = []
    for n in args.layers:
        g = gemini_space_size(args.cores, n)
        t = tangram_space_size(args.cores, n)
        rows.append([args.cores, n, log10_size(g), log10_size(t)])
    print(format_table(
        ["cores M", "layers N", "log10 Gemini", "log10 Tangram"],
        rows, floatfmt=".1f",
    ))
    return 0


def cmd_mc(args) -> int:
    arch = resolve_arch(args.arch)
    report = DEFAULT_MC.evaluate(arch)
    print(f"{arch}")
    print(report.describe())
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dse", help="explore a Table-I grid")
    p.add_argument("--tops", type=int, default=72, choices=(72, 128, 512))
    p.add_argument("--models", nargs="+", default=["TF"],
                   help=f"registry names ({', '.join(sorted(MODEL_REGISTRY))}) "
                        "or model files (.onnx / spec .json/.yaml)")
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--iters", type=int, default=80)
    p.add_argument("--full", action="store_true",
                   help="use the full Table-I grid (slow)")
    p.add_argument("--out", default="dse_log")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel candidate evaluators (0 = all CPUs); "
                        "results are identical for any worker count")
    p.add_argument("--max-candidates", type=int, default=0,
                   help="truncate the grid to its first N candidates "
                        "(smoke tests; fabrics alternate, so every "
                        "--fabric entry stays represented)")
    add_population_flags(p)
    add_fabric_flags(p, multiple=True)
    p.add_argument("--profile", action="store_true",
                   help="print perf counters and write BENCH_perf.json")
    add_obs_flags(p)
    p.set_defaults(func=cmd_dse)

    p = sub.add_parser("map", help="map one model onto one architecture")
    p.add_argument("--model", default="TF",
                   help=f"registry name ({', '.join(sorted(MODEL_REGISTRY))}) "
                        "or a model file (.onnx / spec / graph JSON)")
    p.add_argument("--arch", default="g-arch")
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--iters", type=int, default=200)
    p.add_argument("--proposal-batch", type=int, default=1,
                   help="SA proposals scored per iteration (best-of-K "
                        "delta evaluation; 1 = the paper's plain walk)")
    add_population_flags(p)
    add_fabric_flags(p)
    p.add_argument("--save-mapping")
    p.add_argument("--profile", action="store_true",
                   help="print SA throughput / perf counters and write "
                        "BENCH_perf.json")
    add_obs_flags(p)
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("compare", help="reproduce the Fig 5 comparison "
                                       "(or, with --fabric, Sec VI-B2)")
    p.add_argument("--arch", default="g-arch",
                   help="the G-Arch (preset or best_arch.json)")
    p.add_argument("--baseline", default="s-arch",
                   help="baseline architecture (preset or JSON; t-arch "
                        "for the Sec VI-B2 torus comparison)")
    p.add_argument("--models", nargs="+",
                   default=["RN-50", "RNX", "IRes", "PNas", "TF"],
                   help="registry names or model files")
    p.add_argument("--iters", type=int, default=150)
    add_fabric_flags(p)
    p.add_argument("--quick", action="store_true",
                   help="one model at batch 1 with a tiny SA budget "
                        "(smoke runs)")
    p.add_argument("--out", default="fig5.csv")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("import", help="ingest a model through the frontend")
    p.add_argument("source",
                   help="an .onnx file, a spec .json/.yaml, a saved graph "
                        "JSON, or a registry name")
    p.add_argument("--out", help="write the validated graph JSON here")
    p.set_defaults(func=cmd_import)

    p = sub.add_parser("sweep", help="run a (model x batch x arch) grid")
    p.add_argument("--scenarios", nargs="+",
                   help=f"registered scenarios ({', '.join(sorted(SCENARIO_REGISTRY))}); "
                        "omit to use --models/--batches/--archs")
    p.add_argument("--models", nargs="+",
                   default=["BERT", "MBV2", "UNet", "GPT-Dec"])
    p.add_argument("--batches", type=int, nargs="+", default=[1, 64])
    p.add_argument("--archs", nargs="+", default=["g-arch"])
    p.add_argument("--iters", type=int, default=0,
                   help="SA budget per layer group (0 = scenario default)")
    add_fabric_flags(p, multiple=True)
    p.add_argument("--out", default="sweep_out")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel scenario runners (0 = all CPUs)")
    p.add_argument("--resume", action="store_true",
                   help="checkpoint into <out>/store and skip scenarios "
                        "already evaluated there")
    p.add_argument("--profile", action="store_true",
                   help="print perf counters and write BENCH_perf.json")
    add_obs_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="durable, resumable evaluation campaigns",
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("run", help="run (or resume) a campaign")
    c.add_argument("--name", required=True, help="campaign name")
    c.add_argument("--out", default="campaigns",
                   help="campaigns home directory (shared result store)")
    c.add_argument("--tops", type=int, default=72, choices=(72, 128, 512))
    c.add_argument("--full", action="store_true",
                   help="use the full Table-I grid (slow)")
    c.add_argument("--max-candidates", type=int, default=0,
                   help="truncate the grid to its first N candidates "
                        "(smoke tests)")
    c.add_argument("--models", nargs="+", default=["TF"],
                   help="registry names or model files")
    c.add_argument("--batch", type=int, default=64)
    c.add_argument("--iters", type=int, default=80)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--seed-stride", type=int, default=0)
    add_population_flags(c)
    add_fabric_flags(c, multiple=True)
    c.add_argument("--workers", type=int, default=1,
                   help="parallel candidate evaluators (0 = all CPUs)")
    c.add_argument("--no-warm-start", action="store_true",
                   help="disable SA warm starts from stored mappings")
    c.add_argument("--timeout", type=float, default=None,
                   help="per-candidate evaluation deadline in seconds; "
                        "a hung worker is killed and the attempt retried "
                        "(forces the supervised pool path)")
    c.add_argument("--retries", type=int, default=1,
                   help="evaluation attempts per candidate before it is "
                        "finalized (crash/timeout exhaustion quarantines "
                        "it as poison; default 1)")
    c.add_argument("--backoff", type=float, default=0.0,
                   help="base re-dispatch delay in seconds (exponential, "
                        "deterministically jittered; default 0)")
    c.add_argument("--retry-quarantined", action="store_true",
                   help="re-try candidates quarantined as poison by "
                        "earlier runs")
    c.add_argument("--chaos", default=None, metavar="PLAN",
                   help="inject a deterministic fault plan, e.g. "
                        "'crash:1,hang:0:1:45,enospc:2' "
                        "(kind:target[:count[:seconds]]; kinds: crash, "
                        "hang, slow per candidate index; enospc, torn "
                        "per store put)")
    c.add_argument("--fail-after", type=int, default=None,
                   help="fault injection: interrupt after N fresh "
                        "evaluations (CI smoke / crash drills)")
    c.add_argument("--diag", action="store_true",
                   help="record search diagnostics (convergence curves, "
                        "operator effectiveness) into the store and "
                        "ledger; view with 'repro campaign report'")
    c.add_argument("--profile", action="store_true",
                   help="print perf counters and write BENCH_perf.json")
    add_obs_flags(c)
    c.set_defaults(func=cmd_campaign_run, command="campaign-run")

    c = csub.add_parser("status", help="campaign progress + best-so-far")
    c.add_argument("--name", required=True)
    c.add_argument("--out", default="campaigns")
    c.set_defaults(func=cmd_campaign_status, command="campaign-status")

    c = csub.add_parser("export", help="Pareto front + full table")
    c.add_argument("--name", required=True)
    c.add_argument("--out", default="campaigns")
    c.add_argument("--dest", default=None,
                   help="destination directory (default <out>/<name>/export)")
    c.set_defaults(func=cmd_campaign_export, command="campaign-export")

    c = csub.add_parser(
        "watch",
        help="live progress / shard-health monitor (store-only: no "
             "models are loaded, works on running or crashed campaigns)",
    )
    c.add_argument("--name", required=True)
    c.add_argument("--out", default="campaigns")
    c.add_argument("--once", action="store_true",
                   help="render one frame and exit (scripts / CI)")
    c.add_argument("--interval", type=float, default=2.0,
                   help="refresh period in seconds")
    c.add_argument("--json", action="store_true",
                   help="emit each frame as one JSON line (dashboards, "
                        "scripts) instead of the text report")
    c.set_defaults(func=cmd_campaign_watch, command="campaign-watch")

    c = csub.add_parser(
        "report",
        help="search-quality report (convergence curves, operator "
             "effectiveness, warm-vs-cold); store-only, best with "
             "campaigns run under --diag",
    )
    c.add_argument("--name", required=True)
    c.add_argument("--out", default="campaigns")
    c.add_argument("--json", action="store_true",
                   help="emit the raw report data as JSON")
    c.set_defaults(func=cmd_campaign_report, command="campaign-report")

    p = sub.add_parser(
        "store",
        help="result-store maintenance",
    )
    ssub = p.add_subparsers(dest="store_command", required=True)
    c = ssub.add_parser(
        "fsck",
        help="scan JSONL segments for torn/corrupt records, report what "
             "resume would lose; --repair quarantines bad lines and "
             "rebuilds the index",
    )
    c.add_argument("--out", default="campaigns",
                   help="campaigns home directory (store at <out>/store)")
    c.add_argument("--store", default=None,
                   help="explicit store directory (overrides --out)")
    c.add_argument("--repair", action="store_true",
                   help="quarantine bad lines to a sidecar and rebuild "
                        "index.json atomically")
    c.set_defaults(func=cmd_store_fsck, command="store-fsck")

    p = sub.add_parser("heatmap", help="Fig 9 traffic heatmaps")
    p.add_argument("--model", default="TF",
                   help="registry name or model file")
    p.add_argument("--arch", default="g-arch")
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--iters", type=int, default=400)
    add_fabric_flags(p)
    p.add_argument("--out", default=None,
                   help="also write the rendered heatmaps to this file")
    p.set_defaults(func=cmd_heatmap)

    p = sub.add_parser("space", help="Sec IV-B space sizes")
    p.add_argument("--cores", type=int, default=36)
    p.add_argument("--layers", type=int, nargs="+", default=[2, 4, 8])
    p.set_defaults(func=cmd_space)

    p = sub.add_parser("mc", help="monetary-cost breakdown")
    p.add_argument("--arch", default="g-arch")
    p.set_defaults(func=cmd_mc)

    p = sub.add_parser(
        "profile-report",
        help="aggregate a --trace file into a self-time-per-span table",
    )
    p.add_argument("trace_file", help="Chrome-trace JSON written by --trace")
    p.add_argument("--sort", default="self",
                   choices=("calls", "cpu", "self", "total"),
                   help="table order (heaviest first)")
    p.set_defaults(func=cmd_profile_report)

    p = sub.add_parser(
        "sa-report",
        help="map one model with search diagnostics forced on and "
             "report per-restart convergence + operator effectiveness",
    )
    p.add_argument("--model", default="TF",
                   help="registry name or model file")
    p.add_argument("--arch", default="g-arch")
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--iters", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--restarts", type=int, default=1,
                   help="independent SA restarts (best run wins)")
    p.add_argument("--proposal-batch", type=int, default=1,
                   help="SA proposals scored per iteration")
    add_fabric_flags(p)
    p.add_argument("--profile", action="store_true",
                   help="print perf counters and write BENCH_perf.json")
    add_obs_flags(p)
    p.set_defaults(func=cmd_sa_report, command="sa-report")

    p = sub.add_parser(
        "perf",
        help="benchmark-history analytics over BENCH_history.jsonl",
    )
    psub = p.add_subparsers(dest="perf_command", required=True)

    c = psub.add_parser("history", help="metric trend table (sparklines)")
    c.add_argument("--path", default="BENCH_history.jsonl")
    c.add_argument("--section", default=None,
                   help="only rows of this bench section (default: all)")
    c.add_argument("--metric", default="_mean",
                   help="substring selecting which metrics to trend")
    c.add_argument("--last", type=int, default=12,
                   help="trend over the newest N rows")
    c.set_defaults(func=cmd_perf_history, command="perf-history")

    c = psub.add_parser(
        "diff",
        help="variance-aware comparison of two history rows (Welch "
             "z-test where mean/var/n are recorded); always exits 0 — "
             "the verdict is advisory",
    )
    c.add_argument("a", nargs="?", type=int, default=-2,
                   help="old row index within the section (default -2)")
    c.add_argument("b", nargs="?", type=int, default=-1,
                   help="new row index within the section (default -1)")
    c.add_argument("--path", default="BENCH_history.jsonl")
    c.add_argument("--section", default=None,
                   help="bench section to compare (default: the last "
                        "row's section)")
    c.add_argument("--out", default=None,
                   help="also write the diff record as JSON here")
    c.set_defaults(func=cmd_perf_diff, command="perf-diff")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Tracing turns on before dispatch so pool workers fork with it
    # enabled; the trace/metrics files are written even when the
    # command exits early (e.g. an interrupted campaign).
    tracing = bool(getattr(args, "trace", None))
    if tracing:
        from repro.obs.trace import TRACER

        TRACER.enable()
    try:
        rc = args.func(args)
    finally:
        if tracing:
            from repro.obs.trace import TRACER

            TRACER.write_chrome_trace(args.trace)
            print(f"wrote trace to {args.trace}")
        if getattr(args, "metrics", None):
            from repro.obs.metrics import write_metrics
            from repro.perf import PERF

            write_metrics(args.metrics, PERF.snapshot())
            print(f"wrote metrics to {args.metrics}")
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
