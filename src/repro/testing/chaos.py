"""Deterministic chaos harness: seeded fault plans for campaigns.

A :class:`ChaosPlan` generalizes the runner's original ``fail_after``
hook into a reproducible fault schedule.  Faults come in two families:

* **evaluation faults** fire inside a pool worker, keyed by the
  candidate *index* and the 1-based *attempt* number — ``crash``
  (SIGKILL the worker mid-evaluation), ``hang`` (sleep past any
  deadline), ``slow`` (sleep but finish);
* **store faults** fire in the parent on a 1-based *put* ordinal —
  ``enospc`` (raise ``OSError(ENOSPC)`` before anything is written),
  ``torn`` (write half a record without a newline, then fail), the two
  ways a checkpoint write dies in the wild.

Evaluation faults are *pure* functions of ``(index, attempt)``: no
state has to survive the worker they just killed.  The parent tracks
attempt numbers and ships them with each task, so "crash the first two
attempts of candidate 3" means exactly that on every run of the plan.
Store faults use a parent-local put counter (campaign checkpoints only
ever put from the parent process).

Plans parse from a compact spec — ``"crash:1,hang:0:1:45,enospc:2"``
is "SIGKILL candidate 1's first attempt, hang candidate 0's first
attempt for 45s, ENOSPC the 2nd store put" — usable from tests and
``repro campaign run --chaos``.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Fault kinds fired inside a worker during candidate evaluation.
EVAL_KINDS = ("crash", "hang", "slow")
#: Fault kinds fired in the parent on a store put.
STORE_KINDS = ("enospc", "torn")

#: Default sleep of a ``hang`` fault — long enough to trip any sane
#: deadline, short enough that an unsupervised test still terminates.
DEFAULT_HANG_S = 30.0


class ChaosError(ReproError):
    """A chaos plan spec is malformed."""


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled fault.

    ``target`` is a candidate index for evaluation faults and a 1-based
    put ordinal for store faults.  ``count`` arms evaluation faults for
    attempts ``1..count`` (a candidate that crashes twice then succeeds
    has ``count=2``); store faults always fire exactly once.
    """

    kind: str
    target: int
    count: int = 1
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVAL_KINDS + STORE_KINDS:
            raise ChaosError(f"unknown fault kind {self.kind!r}")
        if self.target < 0:
            raise ChaosError("fault target must be >= 0")
        if self.count < 1:
            raise ChaosError("fault count must be >= 1")
        if self.seconds is not None and self.seconds < 0:
            raise ChaosError("fault seconds must be >= 0")


def parse_chaos(spec: str, seed: int = 0) -> "ChaosPlan":
    """Parse ``"kind:target[:count[:seconds]]"`` comma-separated specs."""
    faults = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        bits = part.split(":")
        if not 2 <= len(bits) <= 4:
            raise ChaosError(
                f"bad fault spec {part!r} "
                "(want kind:target[:count[:seconds]])"
            )
        try:
            kind = bits[0]
            target = int(bits[1])
            count = int(bits[2]) if len(bits) > 2 else 1
            seconds = float(bits[3]) if len(bits) > 3 else None
        except ValueError as exc:
            raise ChaosError(f"bad fault spec {part!r}: {exc}") from exc
        faults.append(ChaosFault(kind, target, count, seconds))
    if not faults:
        raise ChaosError(f"empty chaos spec {spec!r}")
    return ChaosPlan(faults, seed=seed)


def format_chaos(plan: "ChaosPlan") -> str:
    """Inverse of :func:`parse_chaos` (round-trips a plan)."""
    parts = []
    for f in plan.faults:
        bits = [f.kind, str(f.target)]
        if f.count != 1 or f.seconds is not None:
            bits.append(str(f.count))
        if f.seconds is not None:
            bits.append(f"{f.seconds:g}")
        parts.append(":".join(bits))
    return ",".join(parts)


@dataclass
class ChaosPlan:
    """A seeded, deterministic schedule of injected faults."""

    faults: list[ChaosFault]
    seed: int = 0
    #: Parent-local 1-based put counter (store faults only).
    _puts: int = field(default=0, repr=False, compare=False)
    _installed: bool = field(default=False, repr=False, compare=False)

    # -- pure schedule lookups -----------------------------------------

    def eval_fault(self, index: int, attempt: int) -> ChaosFault | None:
        """The evaluation fault armed for ``(index, attempt)``, if any."""
        for f in self.faults:
            if f.kind in EVAL_KINDS and f.target == index \
                    and attempt <= f.count:
                return f
        return None

    def store_fault(self, put_number: int) -> ChaosFault | None:
        """The store fault armed for the given 1-based put ordinal."""
        for f in self.faults:
            if f.kind in STORE_KINDS and f.target == put_number:
                return f
        return None

    def slow_seconds(self, index: int) -> float:
        """Deterministic default duration of a ``slow`` fault."""
        return 0.05 + 0.05 * ((self.seed + index) % 4)

    # -- hook bodies ---------------------------------------------------

    def fire_eval(self, index: int, attempt: int) -> None:
        """Run in the worker at the start of an evaluation attempt."""
        fault = self.eval_fault(index, attempt)
        if fault is None:
            return
        if fault.kind == "crash":
            # Bypass every interpreter cleanup path: this is a kernel
            # OOM-kill / node power-loss stand-in, not an exception.
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.kind == "hang":
            time.sleep(DEFAULT_HANG_S if fault.seconds is None
                       else fault.seconds)
        elif fault.kind == "slow":
            time.sleep(self.slow_seconds(index) if fault.seconds is None
                       else fault.seconds)

    def fire_put(self, fh, line: str) -> None:
        """Run in the parent on every store put (fh is the open segment)."""
        self._puts += 1
        fault = self.store_fault(self._puts)
        if fault is None:
            return
        if fault.kind == "enospc":
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        if fault.kind == "torn":
            # Half a record, no newline, then the write "fails": what a
            # crash mid-write leaves behind in a real segment.
            fh.write(line[: len(line) // 2])
            fh.flush()
            raise OSError(errno.EIO, "chaos: torn write")

    # -- installation --------------------------------------------------

    def install(self) -> None:
        """Arm the hook seams.  Must run before the eval pool spawns so
        forked workers inherit the evaluation hook."""
        from repro.campaign import store as store_mod
        from repro.dse import explorer as explorer_mod

        explorer_mod._EVAL_HOOK = self.fire_eval
        store_mod._PUT_HOOK = self.fire_put
        self._installed = True

    def uninstall(self) -> None:
        from repro.campaign import store as store_mod
        from repro.dse import explorer as explorer_mod

        if explorer_mod._EVAL_HOOK == self.fire_eval:
            explorer_mod._EVAL_HOOK = None
        if store_mod._PUT_HOOK == self.fire_put:
            store_mod._PUT_HOOK = None
        self._installed = False

    def __enter__(self) -> "ChaosPlan":
        self.install()
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()
