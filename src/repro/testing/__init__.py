"""Deterministic test harnesses (fault injection, chaos plans).

Production modules never import this package; chaos plans reach into
the runtime through explicit hook seams (`repro.dse.explorer._EVAL_HOOK`,
`repro.campaign.store._PUT_HOOK`) that are ``None`` unless a test or
``repro campaign run --chaos`` arms them.
"""

from repro.testing.chaos import (
    ChaosError,
    ChaosFault,
    ChaosPlan,
    format_chaos,
    parse_chaos,
)

__all__ = [
    "ChaosError",
    "ChaosFault",
    "ChaosPlan",
    "format_chaos",
    "parse_chaos",
]
