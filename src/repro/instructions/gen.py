"""Instruction generation: parsed scheme -> per-core round programs.

Lowers one layer group's parsed LP SPM scheme into the static programs
the template's control units would execute each pipeline round.  The
flow records collected by the traffic analyzer become RECV / LOAD_WEIGHT
/ SEND instructions ordered by the group's layer order; every core ends
its round with a SYNC barrier.
"""

from __future__ import annotations

from repro.arch.params import ArchConfig
from repro.fabric import Topology, build_topology
from repro.core.encoding import LayerGroupMapping
from repro.core.parser import parse_lms
from repro.evalmodel.traffic_analysis import GroupTrafficAnalyzer
from repro.instructions.isa import CoreProgram, Instruction, Opcode
from repro.intracore.cache import IntraCoreEngine
from repro.workloads.graph import DNNGraph


def generate_programs(
    graph: DNNGraph,
    lms: LayerGroupMapping,
    arch: ArchConfig,
    topo: Topology | None = None,
    intracore: IntraCoreEngine | None = None,
    stored_at: dict[str, int] | None = None,
) -> dict[int, CoreProgram]:
    """Static round programs for every core used by the group."""
    from repro.arch.energy import DEFAULT_ENERGY

    topo = topo or build_topology(arch)
    intracore = intracore or IntraCoreEngine(arch, DEFAULT_ENERGY)
    parsed = parse_lms(graph, lms)
    intra = {
        name: [intracore.schedule(p.workload) for p in pl.parts]
        for name, pl in parsed.layers.items()
    }
    analyzer = GroupTrafficAnalyzer(graph, arch, topo, collect_flows=True)
    traffic = analyzer.analyze(parsed, lms, intra, stored_at or {})

    order = {name: i for i, name in enumerate(lms.group.layers)}
    programs: dict[int, list[Instruction]] = {}

    def emit(core: int, instr: Instruction):
        programs.setdefault(core, []).append(instr)

    # Data movement from flow records.
    inbound: dict[int, list[Instruction]] = {}
    outbound: dict[int, list[Instruction]] = {}
    for flow in traffic.flows:
        if flow.dst[0] == "core":
            core = topo.core_index(flow.dst)
            op = Opcode.LOAD_WEIGHT if flow.kind == "weight" else Opcode.RECV
            inbound.setdefault(core, []).append(
                Instruction(op, flow.layer, peer=flow.src, amount=flow.volume)
            )
        if flow.src[0] == "core":
            core = topo.core_index(flow.src)
            outbound.setdefault(core, []).append(
                Instruction(Opcode.SEND, flow.src_layer or flow.layer,
                            peer=flow.dst, amount=flow.volume)
            )

    compute: dict[int, list[Instruction]] = {}
    for name, pl in parsed.layers.items():
        for part in pl.parts:
            compute.setdefault(part.core, []).append(
                Instruction(Opcode.COMPUTE, name, amount=part.workload.macs())
            )

    cores = set(inbound) | set(outbound) | set(compute)
    out: dict[int, CoreProgram] = {}
    for core in sorted(cores):
        seq: list[Instruction] = []
        # Per-layer phase order: receive, compute, send.
        by_layer: dict[str, dict[str, list[Instruction]]] = {}
        for instr in inbound.get(core, []):
            by_layer.setdefault(instr.layer, {}).setdefault("in", []).append(instr)
        for instr in compute.get(core, []):
            by_layer.setdefault(instr.layer, {}).setdefault("c", []).append(instr)
        for instr in outbound.get(core, []):
            by_layer.setdefault(instr.layer, {}).setdefault("out", []).append(instr)
        for layer in sorted(by_layer, key=lambda n: order.get(n, 1 << 30)):
            phases = by_layer[layer]
            seq.extend(phases.get("in", []))
            seq.extend(phases.get("c", []))
            seq.extend(phases.get("out", []))
        seq.append(Instruction(Opcode.SYNC, layer="", amount=0.0))
        out[core] = CoreProgram(core, tuple(seq))
    return out


def conservation_check(programs: dict[int, CoreProgram]) -> tuple[float, float]:
    """(core->core bytes sent, core->core bytes received) totals.

    A correct lowering conserves bytes: every SEND whose peer is a core
    must appear as a RECV on that core and vice versa.
    """
    sent = sum(
        i.amount
        for p in programs.values()
        for i in p.instructions
        if i.op is Opcode.SEND and i.peer and i.peer[0] == "core"
    )
    received = sum(
        i.amount
        for p in programs.values()
        for i in p.instructions
        if i.op is Opcode.RECV and i.peer and i.peer[0] == "core"
    )
    return sent, received
