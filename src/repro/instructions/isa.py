"""Per-core static instruction set (Fig 2b / Fig 4 "Instruction Gen.").

The template's control unit manages "computation tasks based on
statically-compiled instructions" (Sec III).  This tiny ISA captures the
events one core executes during one pipeline round: receive ifmap bytes,
load weight bytes, compute its partitioned workload tile, send ofmap
bytes onward, and a round barrier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    RECV = "recv"          # ifmap bytes from a core or DRAM
    LOAD_WEIGHT = "loadw"  # weight bytes from DRAM
    COMPUTE = "compute"    # run the PE-array / vector tile
    SEND = "send"          # ofmap bytes to a core or DRAM
    SYNC = "sync"          # end-of-round barrier


@dataclass(frozen=True)
class Instruction:
    """One static instruction of a core's round program."""

    op: Opcode
    layer: str
    #: Peer node for data movement ops (None for COMPUTE / SYNC).
    peer: tuple | None = None
    #: Payload bytes for data movement; MAC count for COMPUTE.
    amount: float = 0.0

    def is_transfer(self) -> bool:
        return self.op in (Opcode.RECV, Opcode.SEND, Opcode.LOAD_WEIGHT)


@dataclass(frozen=True)
class CoreProgram:
    """The static round program of one core."""

    core: int
    instructions: tuple[Instruction, ...]

    def bytes_received(self) -> float:
        return sum(
            i.amount for i in self.instructions
            if i.op in (Opcode.RECV, Opcode.LOAD_WEIGHT)
        )

    def bytes_sent(self) -> float:
        return sum(i.amount for i in self.instructions if i.op is Opcode.SEND)

    def compute_macs(self) -> float:
        return sum(
            i.amount for i in self.instructions if i.op is Opcode.COMPUTE
        )
