"""Instruction generation for the template's statically-scheduled cores."""

from repro.instructions.gen import conservation_check, generate_programs
from repro.instructions.isa import CoreProgram, Instruction, Opcode

__all__ = [
    "CoreProgram",
    "Instruction",
    "Opcode",
    "conservation_check",
    "generate_programs",
]
