"""The DSE driver (Sec V-A, Fig 4 left).

All architecture candidates are exhaustively explored: for each, the
Mapping Engine optimizes every input DNN (``E_i``, ``D_i``), the overall
energy and delay are the geometric means across DNNs, the MC Evaluator
prices the architecture, and the objective ``MC^a x E^b x D^g`` ranks
the candidate.

Candidates are independent, so :meth:`DesignSpaceExplorer.explore` can
fan them out over a process pool (``workers=N``) — the paper's artifact
runs its DSE "on 80-100 threads" (Sec VI-A2).  Every candidate's SA is
seeded deterministically from the candidate's position in the list, so
``workers=4`` returns bit-identical reports to ``workers=1``.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

from repro.arch.params import ArchConfig
from repro.core.engine import MappingEngine, MappingEngineSettings
from repro.core.sa import SASettings
from repro.cost.mc import DEFAULT_MC, MCEvaluator, MCReport
from repro.dse.objective import OBJECTIVE_MCED, Objective
from repro.perf import PERF
from repro.workloads.graph import DNNGraph


@dataclass(frozen=True)
class Workload:
    """One DSE input DNN with its batch size."""

    graph: DNNGraph
    batch: int

    @property
    def name(self) -> str:
        return f"{self.graph.name}@b{self.batch}"


@dataclass
class CandidateResult:
    """Evaluation record of one architecture candidate."""

    arch: ArchConfig
    mc: MCReport
    energy: float       # geomean joules per inference pass
    delay: float        # geomean seconds per inference pass
    score: float
    per_workload: dict[str, tuple[float, float]] = field(default_factory=dict)
    wall_time_s: float = 0.0
    #: Winning mapping per workload name, as JSON-ready LMS dicts —
    #: what the campaign store persists and warm starts reuse.
    mappings: dict[str, list] = field(default_factory=dict)
    #: 1-based SA iteration of the last improvement, per workload.
    iters_to_best: dict[str, int] = field(default_factory=dict)
    #: True when at least one workload annealed from a warm start.
    warm_started: bool = False
    #: Wall seconds of each independent SA restart, per workload — the
    #: ledger reports their mean/variance as the candidate's
    #: seed-robustness signal.  Empty when SA is disabled.
    restart_times: dict[str, list[float]] = field(default_factory=dict)
    #: Per-operator draw counts of the winning SA run, per workload
    #: (``SAStats.operator_uses``); recorded whenever SA ran.
    operator_uses: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Search diagnostics per workload: ``{"warm": bool, "restarts":
    #: [per-restart diag dicts]}``.  Empty unless ``SASettings.diag``.
    sa_diag: dict[str, dict] = field(default_factory=dict)
    #: 1-based evaluation attempt that produced this result (> 1 when
    #: the supervised runner retried after a crash/timeout/error).
    #: Provenance only — excluded from content keys and export rows, so
    #: retried and clean evaluations stay interchangeable.
    attempts: int = 1

    @property
    def edp(self) -> float:
        return self.energy * self.delay


@dataclass
class DseReport:
    """Outcome of one design-space exploration."""

    best: CandidateResult
    results: list[CandidateResult]
    objective: Objective
    wall_time_s: float

    def top(self, n: int = 10) -> list[CandidateResult]:
        return sorted(self.results, key=lambda r: r.score)[:n]

    def by_chiplet_count(self) -> dict[int, list[CandidateResult]]:
        out: dict[int, list[CandidateResult]] = {}
        for r in self.results:
            out.setdefault(r.arch.n_chiplets, []).append(r)
        return out

    def by_core_count(self) -> dict[int, list[CandidateResult]]:
        out: dict[int, list[CandidateResult]] = {}
        for r in self.results:
            out.setdefault(r.arch.n_cores, []).append(r)
        return out


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Worker-process state: the explorer shipped once via the pool
#: initializer instead of once per submitted candidate.
_WORKER_EXPLORER: "DesignSpaceExplorer | None" = None

#: Fault-injection seam (chaos harness): when armed, called as
#: ``hook(index, attempt)`` at the start of every worker evaluation.
#: ``None`` in production — the cost of the dormant seam is one
#: identity check per *candidate*, never per SA iteration.
_EVAL_HOOK = None


def _init_worker(explorer: "DesignSpaceExplorer") -> None:
    global _WORKER_EXPLORER
    _WORKER_EXPLORER = explorer


def _evaluate_in_worker(args) -> tuple[CandidateResult, dict]:
    """Evaluate one ``(index, arch[, warm[, attempt]])`` task.

    Short tuples stay accepted for older call sites; ``attempt`` is the
    parent-tracked 1-based attempt number the supervised runner ships
    so injected faults (and retry provenance) key on it deterministically.
    """
    index, arch = args[0], args[1]
    warm = args[2] if len(args) > 2 else None
    attempt = args[3] if len(args) > 3 else 1
    if _EVAL_HOOK is not None:
        _EVAL_HOOK(index, attempt)
    PERF.reset()  # process-local; each candidate ships its own delta
    result = _WORKER_EXPLORER.evaluate_candidate(arch, index=index, warm=warm)
    result.attempts = attempt
    return result, PERF.snapshot()


def _evaluate_chunk(chunk) -> list:
    """Evaluate a chunk of tasks, capturing per-item failures.

    Returns ``("ok", (result, snapshot))`` / ``("err", exception)``
    pairs so one failing candidate cannot take its chunk-mates' already
    computed results down with it (``Executor.map`` would fail the
    whole chunk future).
    """
    out = []
    for task in chunk:
        try:
            out.append(("ok", _evaluate_in_worker(task)))
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            out.append(("err", exc))
    return out


class DesignSpaceExplorer:
    """Exhaustive co-exploration of architecture and mapping.

    ``seed_stride`` decorrelates the SA seeds of successive candidates
    (candidate *i* anneals with ``seed + i * seed_stride``); the default
    of 0 gives every candidate the same schedule, matching the original
    serial driver.  Either way the seed depends only on the candidate's
    index, never on scheduling, so parallel and serial exploration are
    bit-identical.
    """

    def __init__(
        self,
        workloads: list[Workload],
        objective: Objective = OBJECTIVE_MCED,
        mc_evaluator: MCEvaluator = DEFAULT_MC,
        sa_settings: SASettings | None = None,
        max_group_layers: int = 10,
        seed_stride: int = 0,
        record_mappings: bool = True,
    ):
        if not workloads:
            raise ValueError("DSE needs at least one workload")
        self.workloads = workloads
        self.objective = objective
        self.mc_evaluator = mc_evaluator
        self.sa_settings = sa_settings or SASettings(iterations=100)
        self.max_group_layers = max_group_layers
        self.seed_stride = seed_stride
        #: Serialize each candidate's winning mappings into
        #: :attr:`CandidateResult.mappings` (needed when publishing to a
        #: store / warm-starting campaigns).  Disable on plain
        #: exploration to keep worker IPC and report memory lean.
        self.record_mappings = record_mappings
        self._pool = None

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Compile every workload's graph tables (idempotent).

        Called in the parent before pool workers exist so fork-based
        workers inherit the compiled tables instead of rebuilding them
        per candidate.
        """
        from repro.compiled import compile_graph

        for wl in self.workloads:
            compile_graph(wl.graph)

    def pool(self, workers: int):
        """The persistent worker pool, grown on demand.

        A live pool with at least ``workers`` workers is reused
        (amortizing spawn + explorer shipping across ``explore`` calls
        and campaign runs — small follow-up batches must not tear a
        warm pool down); only a request for *more* workers recreates
        it.
        """
        from repro.dse.pool import PersistentEvalPool

        if self._pool is not None and self._pool.workers < workers:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = PersistentEvalPool(self, workers)
        else:
            PERF.add("dse.pool.reused")
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (if any)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "DesignSpaceExplorer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getstate__(self):
        # Pools hold OS resources; workers re-derive state from the
        # shipped explorer, never from its pool.
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    # ------------------------------------------------------------------

    def _candidate_settings(self, index: int) -> SASettings:
        if index == 0 or self.seed_stride == 0:
            return self.sa_settings
        from dataclasses import replace
        return replace(
            self.sa_settings,
            seed=self.sa_settings.seed + index * self.seed_stride,
        )

    def evaluate_candidate(
        self,
        arch: ArchConfig,
        index: int = 0,
        warm: dict[str, list] | None = None,
    ) -> CandidateResult:
        """Map every workload onto ``arch`` and score the candidate.

        ``warm`` optionally maps workload names to serialized LMS lists
        (:func:`repro.io.serialization.lms_to_dict` records) used to
        seed the SA instead of the stripe-heuristic initial mapping.  A
        warm mapping that fails validation against this architecture
        falls back to a cold start (counted under ``sa.warm.rejected``).
        """
        from repro.errors import InvalidMappingError
        from repro.io.serialization import (
            SerializationError,
            lms_from_dict,
            lms_to_dict,
        )
        from repro.obs.trace import trace

        t0 = time.perf_counter()
        engine = MappingEngine(
            arch,
            settings=MappingEngineSettings(
                sa=self._candidate_settings(index),
                max_group_layers=self.max_group_layers,
            ),
        )
        per: dict[str, tuple[float, float]] = {}
        mappings: dict[str, list] = {}
        iters_to_best: dict[str, int] = {}
        restart_times: dict[str, list[float]] = {}
        operator_uses: dict[str, dict[str, int]] = {}
        sa_diag: dict[str, dict] = {}
        warm_started = False
        energies, delays = [], []
        with trace("candidate", index=index,
                   arch=str(arch.paper_tuple()), warm=bool(warm)):
            for wl in self.workloads:
                result, used_warm = None, False
                if warm and wl.name in warm:
                    # Warm data is advisory: a record that fails to parse
                    # or validate falls back to a cold start, never to a
                    # failed candidate.
                    try:
                        initial = [lms_from_dict(d) for d in warm[wl.name]]
                        with trace("map", workload=wl.name, warm=True):
                            result = engine.map(
                                wl.graph, wl.batch, initial=initial
                            )
                        used_warm = True
                    except (InvalidMappingError, SerializationError):
                        PERF.add("sa.warm.rejected")
                if result is None:
                    with trace("map", workload=wl.name, warm=False):
                        result = engine.map(wl.graph, wl.batch)
                warm_started = warm_started or used_warm
                per[wl.name] = (result.energy, result.delay)
                if self.record_mappings:
                    mappings[wl.name] = [lms_to_dict(l) for l in result.lmss]
                if result.restart_wall_times:
                    restart_times[wl.name] = list(result.restart_wall_times)
                if result.sa_stats is not None:
                    iters_to_best[wl.name] = result.sa_stats.best_iteration
                    operator_uses[wl.name] = dict(
                        result.sa_stats.operator_uses
                    )
                    mode = "warm" if used_warm else "cold"
                    PERF.add(f"sa.iters_to_best.{mode}",
                             result.sa_stats.best_iteration)
                    PERF.add(f"sa.iters_to_best.{mode}.runs")
                if result.restart_diags:
                    sa_diag[wl.name] = {
                        "warm": used_warm,
                        "restarts": result.restart_diags,
                    }
                energies.append(result.energy)
                delays.append(result.delay)
            mc = self.mc_evaluator.evaluate(arch)
        energy = geomean(energies)
        delay = geomean(delays)
        PERF.add("dse.candidates")
        return CandidateResult(
            arch=arch,
            mc=mc,
            energy=energy,
            delay=delay,
            score=self.objective.score(mc.total, energy, delay),
            per_workload=per,
            wall_time_s=time.perf_counter() - t0,
            mappings=mappings,
            iters_to_best=iters_to_best,
            warm_started=warm_started,
            restart_times=restart_times,
            operator_uses=operator_uses,
            sa_diag=sa_diag,
        )

    # ------------------------------------------------------------------
    # Store integration
    # ------------------------------------------------------------------

    def workload_digests(self) -> list[str]:
        """Content digests of the workloads, in evaluation order."""
        if getattr(self, "_workload_digests", None) is None:
            from repro.campaign.keys import workload_digest

            self._workload_digests = [
                workload_digest(wl.graph, wl.batch) for wl in self.workloads
            ]
        return self._workload_digests

    def candidate_key(
        self,
        arch: ArchConfig,
        index: int = 0,
        warm_keys: dict[str, str] | None = None,
    ) -> str:
        """Store key of candidate ``index``: inputs + effective settings.

        ``warm_keys`` (workload name -> mapping key the SA is seeded
        from) must be passed when the evaluation warm-starts: it is part
        of what gets computed, so it is part of the key.
        """
        from repro.campaign.keys import candidate_key

        return candidate_key(
            arch,
            self.workload_digests(),
            self._candidate_settings(index),
            self.max_group_layers,
            self.objective,
            mc_evaluator=self.mc_evaluator,
            warm_keys=warm_keys,
        )

    def publish(self, store, arch: ArchConfig, index: int,
                result: CandidateResult, key: str | None = None) -> None:
        """Write a candidate's full result + winning mappings to a store.

        ``key`` overrides the computed candidate key — the campaign
        runner passes its warm-provenance-aware key here.
        """
        from repro.campaign import keys as ck
        from repro.campaign.store import KIND_CANDIDATE, KIND_MAPPING
        from repro.io.serialization import arch_to_dict, candidate_result_to_dict

        cand_key = key or self.candidate_key(arch, index)
        store.put(KIND_CANDIDATE, cand_key, candidate_result_to_dict(result))
        digests = self.workload_digests()
        for wl, wd in zip(self.workloads, digests):
            if wl.name not in result.mappings:
                continue
            mkey = ck.mapping_key(cand_key, wd)
            store.put(KIND_MAPPING, mkey, {
                "family": ck.arch_family(arch),
                "arch": arch_to_dict(arch),
                "workload": wl.name,
                "workload_digest": wd,
                "lmss": result.mappings[wl.name],
            })

    # ------------------------------------------------------------------

    def _explore_serial(self, tasks, on_result=None) -> list[CandidateResult]:
        results = []
        for i, a, w in tasks:
            result = self.evaluate_candidate(a, index=i, warm=w)
            results.append(result)
            if on_result is not None:
                on_result(i, a, result)
        return results

    def _explore_parallel(
        self, tasks, workers: int, on_result=None
    ) -> list[CandidateResult]:
        results = []
        pool = self.pool(workers)
        # map_tasks yields lazily in task order, so results are handed
        # to on_result (e.g. a store publish) as the ordered stream
        # advances instead of after the whole batch.
        outcomes = pool.map_tasks(tasks)
        for (i, a, _), (result, snapshot) in zip(tasks, outcomes):
            PERF.merge(snapshot)
            results.append(result)
            if on_result is not None:
                on_result(i, a, result)
        return results

    def explore(
        self,
        candidates: list[ArchConfig],
        workers: int | None = 1,
        store=None,
        force_pool: bool = False,
    ) -> DseReport:
        """Explore every candidate; ``workers`` > 1 uses a process pool.

        ``workers=None`` uses every available CPU.  ``force_pool``
        dispatches through the persistent pool even for one worker —
        how the benchmark measures pure dispatch overhead on
        single-CPU machines.  Results (order, scores, winning
        candidate) are identical for any worker count; only
        ``wall_time_s`` depends on the machine.

        With a :class:`~repro.campaign.store.ResultStore` attached,
        candidates whose key is already stored are served from it
        (``dse.store_hits``) and every fresh evaluation is published
        back as soon as it is collected, so an interrupted exploration
        re-run against the same store re-evaluates at most the
        candidates that had not been checkpointed yet.
        """
        from repro.obs.trace import trace

        if not candidates:
            raise ValueError("no candidates to explore")
        if workers is None:
            workers = os.cpu_count() or 1
        t0 = time.perf_counter()
        with PERF.time("dse.explore"), \
                trace("dse.explore", candidates=len(candidates),
                      workers=workers):
            slots: list[CandidateResult | None] = [None] * len(candidates)
            if store is not None:
                from repro.io.serialization import candidate_result_from_dict
                from repro.campaign.store import KIND_CANDIDATE

                for i, arch in enumerate(candidates):
                    rec = store.get(KIND_CANDIDATE, self.candidate_key(arch, i))
                    if rec is not None:
                        slots[i] = candidate_result_from_dict(rec)
                        PERF.add("dse.store_hits")
            tasks = [
                (i, arch, None)
                for i, arch in enumerate(candidates)
                if slots[i] is None
            ]
            def collect(i, arch, result):
                slots[i] = result
                if store is not None:
                    self.publish(store, arch, i, result)

            if tasks:
                workers = min(workers, len(tasks))
                if workers > 1 or force_pool:
                    self._explore_parallel(tasks, workers, on_result=collect)
                else:
                    self._explore_serial(tasks, on_result=collect)
            results = slots
        best = min(results, key=lambda r: r.score)
        return DseReport(
            best=best,
            results=results,
            objective=self.objective,
            wall_time_s=time.perf_counter() - t0,
        )
