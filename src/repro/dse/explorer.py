"""The DSE driver (Sec V-A, Fig 4 left).

All architecture candidates are exhaustively explored: for each, the
Mapping Engine optimizes every input DNN (``E_i``, ``D_i``), the overall
energy and delay are the geometric means across DNNs, the MC Evaluator
prices the architecture, and the objective ``MC^a x E^b x D^g`` ranks
the candidate.

Candidates are independent, so :meth:`DesignSpaceExplorer.explore` can
fan them out over a process pool (``workers=N``) — the paper's artifact
runs its DSE "on 80-100 threads" (Sec VI-A2).  Every candidate's SA is
seeded deterministically from the candidate's position in the list, so
``workers=4`` returns bit-identical reports to ``workers=1``.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.arch.params import ArchConfig
from repro.core.engine import MappingEngine, MappingEngineSettings
from repro.core.sa import SASettings
from repro.cost.mc import DEFAULT_MC, MCEvaluator, MCReport
from repro.dse.objective import OBJECTIVE_MCED, Objective
from repro.perf import PERF
from repro.workloads.graph import DNNGraph


@dataclass(frozen=True)
class Workload:
    """One DSE input DNN with its batch size."""

    graph: DNNGraph
    batch: int

    @property
    def name(self) -> str:
        return f"{self.graph.name}@b{self.batch}"


@dataclass
class CandidateResult:
    """Evaluation record of one architecture candidate."""

    arch: ArchConfig
    mc: MCReport
    energy: float       # geomean joules per inference pass
    delay: float        # geomean seconds per inference pass
    score: float
    per_workload: dict[str, tuple[float, float]] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def edp(self) -> float:
        return self.energy * self.delay


@dataclass
class DseReport:
    """Outcome of one design-space exploration."""

    best: CandidateResult
    results: list[CandidateResult]
    objective: Objective
    wall_time_s: float

    def top(self, n: int = 10) -> list[CandidateResult]:
        return sorted(self.results, key=lambda r: r.score)[:n]

    def by_chiplet_count(self) -> dict[int, list[CandidateResult]]:
        out: dict[int, list[CandidateResult]] = {}
        for r in self.results:
            out.setdefault(r.arch.n_chiplets, []).append(r)
        return out

    def by_core_count(self) -> dict[int, list[CandidateResult]]:
        out: dict[int, list[CandidateResult]] = {}
        for r in self.results:
            out.setdefault(r.arch.n_cores, []).append(r)
        return out


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


#: Worker-process state: the explorer shipped once via the pool
#: initializer instead of once per submitted candidate.
_WORKER_EXPLORER: "DesignSpaceExplorer | None" = None


def _init_worker(explorer: "DesignSpaceExplorer") -> None:
    global _WORKER_EXPLORER
    _WORKER_EXPLORER = explorer


def _evaluate_in_worker(
    args: tuple[int, ArchConfig]
) -> tuple[CandidateResult, dict]:
    index, arch = args
    PERF.reset()  # process-local; each candidate ships its own delta
    result = _WORKER_EXPLORER.evaluate_candidate(arch, index=index)
    return result, PERF.snapshot()


class DesignSpaceExplorer:
    """Exhaustive co-exploration of architecture and mapping.

    ``seed_stride`` decorrelates the SA seeds of successive candidates
    (candidate *i* anneals with ``seed + i * seed_stride``); the default
    of 0 gives every candidate the same schedule, matching the original
    serial driver.  Either way the seed depends only on the candidate's
    index, never on scheduling, so parallel and serial exploration are
    bit-identical.
    """

    def __init__(
        self,
        workloads: list[Workload],
        objective: Objective = OBJECTIVE_MCED,
        mc_evaluator: MCEvaluator = DEFAULT_MC,
        sa_settings: SASettings | None = None,
        max_group_layers: int = 10,
        seed_stride: int = 0,
    ):
        if not workloads:
            raise ValueError("DSE needs at least one workload")
        self.workloads = workloads
        self.objective = objective
        self.mc_evaluator = mc_evaluator
        self.sa_settings = sa_settings or SASettings(iterations=100)
        self.max_group_layers = max_group_layers
        self.seed_stride = seed_stride

    # ------------------------------------------------------------------

    def _candidate_settings(self, index: int) -> SASettings:
        if index == 0 or self.seed_stride == 0:
            return self.sa_settings
        from dataclasses import replace
        return replace(
            self.sa_settings,
            seed=self.sa_settings.seed + index * self.seed_stride,
        )

    def evaluate_candidate(
        self, arch: ArchConfig, index: int = 0
    ) -> CandidateResult:
        t0 = time.perf_counter()
        engine = MappingEngine(
            arch,
            settings=MappingEngineSettings(
                sa=self._candidate_settings(index),
                max_group_layers=self.max_group_layers,
            ),
        )
        per: dict[str, tuple[float, float]] = {}
        energies, delays = [], []
        for wl in self.workloads:
            result = engine.map(wl.graph, wl.batch)
            per[wl.name] = (result.energy, result.delay)
            energies.append(result.energy)
            delays.append(result.delay)
        mc = self.mc_evaluator.evaluate(arch)
        energy = geomean(energies)
        delay = geomean(delays)
        PERF.add("dse.candidates")
        return CandidateResult(
            arch=arch,
            mc=mc,
            energy=energy,
            delay=delay,
            score=self.objective.score(mc.total, energy, delay),
            per_workload=per,
            wall_time_s=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------

    def _explore_serial(self, candidates) -> list[CandidateResult]:
        return [
            self.evaluate_candidate(a, index=i)
            for i, a in enumerate(candidates)
        ]

    def _explore_parallel(self, candidates, workers: int) -> list[CandidateResult]:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self,),
        ) as pool:
            outcomes = list(
                pool.map(
                    _evaluate_in_worker,
                    list(enumerate(candidates)),
                    chunksize=max(1, len(candidates) // (workers * 4)),
                )
            )
        for _, snapshot in outcomes:
            PERF.merge(snapshot)
        return [result for result, _ in outcomes]

    def explore(
        self, candidates: list[ArchConfig], workers: int | None = 1
    ) -> DseReport:
        """Explore every candidate; ``workers`` > 1 uses a process pool.

        ``workers=None`` uses every available CPU.  Results (order,
        scores, winning candidate) are identical for any worker count;
        only ``wall_time_s`` depends on the machine.
        """
        if not candidates:
            raise ValueError("no candidates to explore")
        if workers is None:
            workers = os.cpu_count() or 1
        workers = min(workers, len(candidates))
        t0 = time.perf_counter()
        with PERF.time("dse.explore"):
            if workers > 1:
                results = self._explore_parallel(candidates, workers)
            else:
                results = self._explore_serial(candidates)
        best = min(results, key=lambda r: r.score)
        return DseReport(
            best=best,
            results=results,
            objective=self.objective,
            wall_time_s=time.perf_counter() - t0,
        )
