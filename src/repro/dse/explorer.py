"""The DSE driver (Sec V-A, Fig 4 left).

All architecture candidates are exhaustively explored: for each, the
Mapping Engine optimizes every input DNN (``E_i``, ``D_i``), the overall
energy and delay are the geometric means across DNNs, the MC Evaluator
prices the architecture, and the objective ``MC^a x E^b x D^g`` ranks
the candidate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.arch.params import ArchConfig
from repro.core.engine import MappingEngine, MappingEngineSettings
from repro.core.sa import SASettings
from repro.cost.mc import DEFAULT_MC, MCEvaluator, MCReport
from repro.dse.objective import OBJECTIVE_MCED, Objective
from repro.workloads.graph import DNNGraph


@dataclass(frozen=True)
class Workload:
    """One DSE input DNN with its batch size."""

    graph: DNNGraph
    batch: int

    @property
    def name(self) -> str:
        return f"{self.graph.name}@b{self.batch}"


@dataclass
class CandidateResult:
    """Evaluation record of one architecture candidate."""

    arch: ArchConfig
    mc: MCReport
    energy: float       # geomean joules per inference pass
    delay: float        # geomean seconds per inference pass
    score: float
    per_workload: dict[str, tuple[float, float]] = field(default_factory=dict)
    wall_time_s: float = 0.0

    @property
    def edp(self) -> float:
        return self.energy * self.delay


@dataclass
class DseReport:
    """Outcome of one design-space exploration."""

    best: CandidateResult
    results: list[CandidateResult]
    objective: Objective
    wall_time_s: float

    def top(self, n: int = 10) -> list[CandidateResult]:
        return sorted(self.results, key=lambda r: r.score)[:n]

    def by_chiplet_count(self) -> dict[int, list[CandidateResult]]:
        out: dict[int, list[CandidateResult]] = {}
        for r in self.results:
            out.setdefault(r.arch.n_chiplets, []).append(r)
        return out

    def by_core_count(self) -> dict[int, list[CandidateResult]]:
        out: dict[int, list[CandidateResult]] = {}
        for r in self.results:
            out.setdefault(r.arch.n_cores, []).append(r)
        return out


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class DesignSpaceExplorer:
    """Exhaustive co-exploration of architecture and mapping."""

    def __init__(
        self,
        workloads: list[Workload],
        objective: Objective = OBJECTIVE_MCED,
        mc_evaluator: MCEvaluator = DEFAULT_MC,
        sa_settings: SASettings | None = None,
        max_group_layers: int = 10,
    ):
        if not workloads:
            raise ValueError("DSE needs at least one workload")
        self.workloads = workloads
        self.objective = objective
        self.mc_evaluator = mc_evaluator
        self.sa_settings = sa_settings or SASettings(iterations=100)
        self.max_group_layers = max_group_layers

    # ------------------------------------------------------------------

    def evaluate_candidate(self, arch: ArchConfig) -> CandidateResult:
        t0 = time.perf_counter()
        engine = MappingEngine(
            arch,
            settings=MappingEngineSettings(
                sa=self.sa_settings,
                max_group_layers=self.max_group_layers,
            ),
        )
        per: dict[str, tuple[float, float]] = {}
        energies, delays = [], []
        for wl in self.workloads:
            result = engine.map(wl.graph, wl.batch)
            per[wl.name] = (result.energy, result.delay)
            energies.append(result.energy)
            delays.append(result.delay)
        mc = self.mc_evaluator.evaluate(arch)
        energy = geomean(energies)
        delay = geomean(delays)
        return CandidateResult(
            arch=arch,
            mc=mc,
            energy=energy,
            delay=delay,
            score=self.objective.score(mc.total, energy, delay),
            per_workload=per,
            wall_time_s=time.perf_counter() - t0,
        )

    def explore(self, candidates: list[ArchConfig]) -> DseReport:
        if not candidates:
            raise ValueError("no candidates to explore")
        t0 = time.perf_counter()
        results = [self.evaluate_candidate(a) for a in candidates]
        best = min(results, key=lambda r: r.score)
        return DseReport(
            best=best,
            results=results,
            objective=self.objective,
            wall_time_s=time.perf_counter() - t0,
        )
