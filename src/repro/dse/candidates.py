"""Architecture candidate enumeration from the Table-I DSE grid.

Table I (Sec VI-A1) lists candidate values per parameter; a candidate is
valid when the MAC/core choice divides the target computing power into an
integer core count, the core array arranges near-square, and XCut / YCut
divide the per-edge core counts.  D2D bandwidth candidates are expressed
relative to the NoC bandwidth (NoC/4, NoC/2, NoC).

Beyond Table I, the grid carries an interconnect-fabric axis
(``DseGrid.fabrics``): every parameter combination is crossed with each
fabric spec, making the topology an explored variable in the spirit of
the paper's Sec VI-B2 generality study.  The fabric axis iterates
innermost, so consecutive candidates alternate fabrics and a truncated
grid (``--max-candidates``) still covers every fabric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.arch.params import ArchConfig, arrange_cores, cores_for_tops
from repro.errors import InvalidArchitectureError
from repro.fabric.spec import DEFAULT_FABRIC, FabricSpec
from repro.units import GB, KB


@dataclass(frozen=True)
class DseGrid:
    """Candidate values per Table-I parameter (defaults = the paper's)."""

    tops: int = 72
    cuts: tuple[int, ...] = (1, 2, 3, 6)
    dram_bw_per_tops: tuple[float, ...] = (0.5, 1.0, 2.0)  # GB/s per TOPs
    noc_bw_gbps: tuple[int, ...] = (8, 16, 32, 64, 128)
    d2d_ratio: tuple[float, ...] = (0.25, 0.5, 1.0)
    glb_kb: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192)
    macs_per_core: tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
    #: Interconnect fabrics to cross the grid with (default: the
    #: paper's mesh only, keeping Table-I candidate lists unchanged).
    fabrics: tuple[FabricSpec, ...] = (DEFAULT_FABRIC,)

    @staticmethod
    def paper_grid(tops: int) -> "DseGrid":
        """The exact Table-I grid for one of the paper's power targets."""
        cuts = (1, 2, 3, 6) if tops == 72 else (1, 2, 4, 8)
        return DseGrid(tops=tops, cuts=cuts)


def candidate_from(
    tops: int,
    macs_per_core: int,
    xcut: int,
    ycut: int,
    dram_per_tops: float,
    noc_gbps: float,
    d2d_ratio: float,
    glb_kb: int,
    fabric: FabricSpec = DEFAULT_FABRIC,
) -> ArchConfig | None:
    """Build one candidate; ``None`` when the combination is invalid.

    Invalid includes fabric/geometry mismatches (e.g. a concentration
    factor that does not divide the arranged core array).
    """
    n_cores = cores_for_tops(tops, macs_per_core)
    if n_cores is None:
        return None
    cores_x, cores_y = arrange_cores(n_cores)
    if cores_x % xcut or cores_y % ycut:
        return None
    monolithic = xcut * ycut == 1
    noc_bw = noc_gbps * GB
    d2d_bw = noc_bw if monolithic else noc_bw * d2d_ratio
    try:
        return ArchConfig(
            cores_x=cores_x,
            cores_y=cores_y,
            xcut=xcut,
            ycut=ycut,
            dram_bw=dram_per_tops * tops * GB,
            noc_bw=noc_bw,
            d2d_bw=d2d_bw,
            glb_bytes=glb_kb * KB,
            macs_per_core=macs_per_core,
            fabric=fabric,
        )
    except InvalidArchitectureError:
        return None


def enumerate_candidates(grid: DseGrid) -> list[ArchConfig]:
    """All valid, de-duplicated candidates of a grid."""
    seen: set[tuple] = set()
    out: list[ArchConfig] = []
    for macs, xcut, ycut, dram, noc, ratio, glb, fabric in itertools.product(
        grid.macs_per_core, grid.cuts, grid.cuts, grid.dram_bw_per_tops,
        grid.noc_bw_gbps, grid.d2d_ratio, grid.glb_kb, grid.fabrics,
    ):
        arch = candidate_from(
            grid.tops, macs, xcut, ycut, dram, noc, ratio, glb, fabric
        )
        if arch is None:
            continue
        key = (
            arch.cores_x, arch.cores_y, arch.xcut, arch.ycut, arch.dram_bw,
            arch.noc_bw, arch.d2d_bw, arch.glb_bytes, arch.macs_per_core,
            tuple(sorted(arch.fabric.content().items())),
        )
        if key in seen:
            continue  # monolithic candidates collapse the D2D ratios
        seen.add(key)
        out.append(arch)
    return out
