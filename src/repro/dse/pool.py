"""Persistent DSE worker pool with fork-inherited explorer state.

The old driver paid worker spawn + explorer shipping on every
``explore()`` call, which made parallel DSE *slower* than serial for
small candidate batches.  :class:`PersistentEvalPool` amortizes those
costs across the pool's lifetime:

* workers are spawned once and reused for every subsequent dispatch
  (the explorer caches its pool, and the campaign runner shares it);
* on platforms with ``fork`` (Linux), the explorer — including the
  compiled graph tables built by :meth:`DesignSpaceExplorer.prepare`
  and any warmed caches — is *inherited* by the forked workers through
  copy-on-write memory: nothing is pickled, and every worker starts
  with hot tables;
* elsewhere the explorer is pickled once per worker process (at spawn),
  not once per ``explore()`` call;
* candidates are dispatched in chunks so per-task IPC overhead is paid
  per chunk, not per candidate.

The explorer must be treated as immutable once a pool exists — workers
saw its state at fork/spawn time.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import weakref
from concurrent.futures import Future, ProcessPoolExecutor

from repro.perf import PERF

#: Explorers registered for fork inheritance, keyed by token.  The
#: parent keeps every live pool's explorer here so workers forked at
#: any later submit still find their token (pools may interleave).
_FORK_STATE: dict[int, object] = {}
_TOKENS = itertools.count()


def _init_fork_worker(token: int) -> None:
    """Adopt the fork-inherited explorer as this worker's evaluator."""
    from repro.dse import explorer as explorer_mod

    explorer_mod._WORKER_EXPLORER = _FORK_STATE[token]


def default_chunksize(n_tasks: int, workers: int) -> int:
    """Chunked dispatch: ~4 chunks per worker balances skew vs. IPC."""
    return max(1, n_tasks // (workers * 4))


def _release(executor: ProcessPoolExecutor, token: int | None) -> None:
    """Shut a pool's resources down (close() or garbage collection).

    Registered as a ``weakref.finalize`` callback so an abandoned pool
    (an explorer dropped without ``close()``) still stops its workers
    and unpins its explorer from :data:`_FORK_STATE`.
    """
    executor.shutdown(wait=False, cancel_futures=True)
    if token is not None:
        _FORK_STATE.pop(token, None)


class PersistentEvalPool:
    """A long-lived process pool bound to one explorer."""

    def __init__(self, explorer, workers: int):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = workers
        self._token: int | None = None
        # Compile the workloads' graph tables in the parent before any
        # worker exists, so fork inheritance ships them for free.
        explorer.prepare()
        if "fork" in mp.get_all_start_methods():
            self._token = next(_TOKENS)
            _FORK_STATE[self._token] = explorer
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp.get_context("fork"),
                initializer=_init_fork_worker,
                initargs=(self._token,),
            )
        else:  # pragma: no cover - non-POSIX fallback
            from repro.dse.explorer import _init_worker

            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(explorer,),
            )
        self._finalizer = weakref.finalize(
            self, _release, self._pool, self._token
        )
        self.dispatched = 0
        PERF.add("dse.pool.created")

    # ------------------------------------------------------------------

    def map_tasks(self, tasks, chunksize: int | None = None):
        """Ordered lazy map of ``(index, arch, warm)`` tasks.

        Yields ``(result, perf_snapshot)`` pairs in task order as they
        complete, like ``Executor.map`` — callers can checkpoint the
        ordered stream as it advances.
        """
        from repro.dse.explorer import _evaluate_in_worker
        from repro.obs.trace import trace

        if chunksize is None:
            chunksize = default_chunksize(len(tasks), self.workers)
        self.dispatched += len(tasks)
        PERF.add("dse.pool.dispatched", len(tasks))
        # The span covers submission only — the returned map is lazy;
        # workers report their own spans through the snapshot channel.
        with trace("dse.pool.dispatch", tasks=len(tasks),
                   chunksize=chunksize, workers=self.workers):
            return self._pool.map(
                _evaluate_in_worker, tasks, chunksize=chunksize
            )

    def submit(self, task) -> Future:
        """Dispatch one ``(index, arch, warm)`` task (unordered use)."""
        from repro.dse.explorer import _evaluate_in_worker

        self.dispatched += 1
        PERF.add("dse.pool.dispatched")
        return self._pool.submit(_evaluate_in_worker, task)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._finalizer.detach()
        if self._token is not None:
            _FORK_STATE.pop(self._token, None)
            self._token = None

    def __enter__(self) -> "PersistentEvalPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
