"""Persistent DSE worker pool with shared-memory table handoff.

The old driver paid worker spawn + explorer shipping on every
``explore()`` call, which made parallel DSE *slower* than serial for
small candidate batches.  :class:`PersistentEvalPool` amortizes those
costs across the pool's lifetime:

* workers are spawned once and reused for every subsequent dispatch
  (the explorer caches its pool, and the campaign runner shares it);
* the workloads' compiled graph tables are published **once** into
  ``multiprocessing.shared_memory`` arenas
  (:mod:`repro.compiled.shm`); workers attach them zero-copy, so the
  tables exist once in physical memory regardless of start method or
  worker count;
* the explorer itself rides the cheapest channel the start method
  offers — inherited memory under ``fork``, pickled once per worker
  (at spawn, not per ``explore()`` call) under ``spawn``;
* candidates are dispatched in chunks so per-task IPC overhead is paid
  per chunk, not per candidate.

The pool honors ``multiprocessing.set_start_method``: under ``spawn``
(macOS/Windows default, or opted into anywhere) workers receive the
explorer, the arena handles, and any armed chaos evaluation hook
through the initializer — no fork dependence anywhere.

The pool is also *supervisable*: a SIGKILL'd or hung worker breaks a
``ProcessPoolExecutor`` permanently (every outstanding future raises
``BrokenProcessPool`` and the executor refuses new work), so
:meth:`respawn` tears the broken executor down — force-killing any
still-running workers, which is the only way to clear a hung task —
and builds a fresh one bound to the same explorer and the same arenas.
The campaign runner calls it to keep a campaign alive across worker
deaths.

The explorer must be treated as immutable once a pool exists — workers
saw its state at fork/spawn time.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import weakref
from concurrent.futures import Future, ProcessPoolExecutor

from repro.perf import PERF

#: Explorers registered for fork inheritance, keyed by token.  The
#: parent keeps every live pool's explorer here so workers forked at
#: any later submit still find their token (pools may interleave).
#: Spawn pools ship the explorer through initargs instead.
_FORK_STATE: dict[int, object] = {}
_TOKENS = itertools.count()


def _init_worker(token, explorer, handles, hook) -> None:
    """Adopt the pool's state as this worker's evaluation context.

    One initializer for every start method: ``explorer`` is ``None``
    under fork (the inherited :data:`_FORK_STATE` registry has it) and
    the pickled explorer under spawn; ``handles`` are the shared-memory
    arena handles of the workloads' compiled tables; ``hook`` is the
    chaos evaluation hook armed in the parent at executor creation (a
    no-op ``None`` in production).
    """
    from repro.compiled.shm import adopt_shared_tables
    from repro.dse import explorer as explorer_mod

    if explorer is None:
        explorer = _FORK_STATE[token]
    explorer_mod._WORKER_EXPLORER = explorer
    if hook is not None:
        explorer_mod._EVAL_HOOK = hook
    for workload, handle in zip(explorer.workloads, handles):
        adopt_shared_tables(workload.graph, handle)


def default_chunksize(n_tasks: int, workers: int) -> int:
    """Chunked dispatch: ~4 chunks per worker balances skew vs. IPC."""
    return max(1, n_tasks // (workers * 4))


def _release(executor: ProcessPoolExecutor, token: int | None,
             arenas: list) -> None:
    """Shut a pool's resources down (close() or garbage collection).

    Registered as a ``weakref.finalize`` callback so an abandoned pool
    (an explorer dropped without ``close()``) still stops its workers,
    unpins its explorer from :data:`_FORK_STATE`, and releases its
    arena references (unlinking the segments when it held the last).
    """
    executor.shutdown(wait=False, cancel_futures=True)
    if token is not None:
        _FORK_STATE.pop(token, None)
    for arena in arenas:
        arena.release()
    arenas.clear()


def _kill_workers(executor: ProcessPoolExecutor) -> int:
    """SIGKILL an executor's worker processes (hung tasks cannot be
    cancelled any other way).  Returns how many were still alive."""
    killed = 0
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        if proc.is_alive():
            try:
                proc.kill()
                killed += 1
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
    return killed


def pool_start_method() -> str:
    """The start method pools use: whatever the application configured
    via ``multiprocessing.set_start_method``, else ``fork`` where
    available (cheapest handoff), else the platform default."""
    method = mp.get_start_method(allow_none=True)
    if method is not None:
        return method
    if "fork" in mp.get_all_start_methods():
        return "fork"
    return mp.get_start_method()  # pragma: no cover - non-POSIX


class PersistentEvalPool:
    """A long-lived process pool bound to one explorer."""

    def __init__(self, explorer, workers: int):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = workers
        self._explorer = explorer
        self._token: int | None = None
        # Compile the workloads' graph tables in the parent before any
        # worker exists, then publish them as shared-memory arenas so
        # every worker — fork or spawn — attaches the same physical
        # tables.
        explorer.prepare()
        from repro.compiled import compile_graph
        from repro.compiled.shm import publish_graph_tables

        self._arenas = [
            publish_graph_tables(compile_graph(wl.graph))
            for wl in explorer.workloads
        ]
        self.start_method = pool_start_method()
        if self.start_method == "fork":
            self._token = next(_TOKENS)
            _FORK_STATE[self._token] = explorer
        self._pool = self._spawn_executor()
        self._finalizer = weakref.finalize(
            self, _release, self._pool, self._token, self._arenas
        )
        self.dispatched = 0
        self.respawns = 0
        PERF.add("dse.pool.created")

    def _spawn_executor(self) -> ProcessPoolExecutor:
        from repro.dse import explorer as explorer_mod

        handles = tuple(arena.handle for arena in self._arenas)
        # The chaos hook is captured here so a respawned executor's
        # workers re-arm it — under fork they would inherit it anyway,
        # under spawn it must ride the initargs.
        hook = explorer_mod._EVAL_HOOK
        if self.start_method == "fork":
            initargs = (self._token, None, handles, hook)
        else:
            initargs = (None, self._explorer, handles, hook)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp.get_context(self.start_method),
            initializer=_init_worker,
            initargs=initargs,
        )

    def respawn(self) -> None:
        """Replace a broken (or hung) executor with a fresh one.

        Outstanding futures of the old executor are abandoned: a broken
        executor has already failed them with ``BrokenProcessPool``,
        and a hung worker only dies by force — the supervisor decides
        which of its tasks get re-dispatched.  The published arenas are
        kept: new workers re-attach the same segments at next submit.
        """
        _kill_workers(self._pool)
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._finalizer.detach()
        self._pool = self._spawn_executor()
        self._finalizer = weakref.finalize(
            self, _release, self._pool, self._token, self._arenas
        )
        self.respawns += 1
        PERF.add("dse.pool.respawned")

    # ------------------------------------------------------------------

    def map_tasks(self, tasks, chunksize: int | None = None):
        """Ordered lazy map of ``(index, arch, warm)`` tasks.

        Yields ``(result, perf_snapshot)`` pairs in task order as they
        complete, like ``Executor.map`` — callers can checkpoint the
        ordered stream as it advances.  Unlike ``Executor.map``, one
        failing task does not poison its whole dispatch chunk: workers
        capture per-task outcomes, so every result computed *before*
        the first failing task is yielded before its exception re-raises.
        """
        from repro.dse.explorer import _evaluate_chunk
        from repro.obs.trace import trace

        if chunksize is None:
            chunksize = default_chunksize(len(tasks), self.workers)
        self.dispatched += len(tasks)
        PERF.add("dse.pool.dispatched", len(tasks))
        # The span covers submission only — the generator is lazy;
        # workers report their own spans through the snapshot channel.
        with trace("dse.pool.dispatch", tasks=len(tasks),
                   chunksize=chunksize, workers=self.workers):
            futures = [
                self._pool.submit(_evaluate_chunk, tasks[i:i + chunksize])
                for i in range(0, len(tasks), chunksize)
            ]

        def _results():
            for fut in futures:
                for status, payload in fut.result():
                    if status == "err":
                        raise payload
                    yield payload

        return _results()

    def submit(self, task) -> Future:
        """Dispatch one ``(index, arch, warm[, attempt])`` task
        (unordered use)."""
        from repro.dse.explorer import _evaluate_in_worker

        self.dispatched += 1
        PERF.add("dse.pool.dispatched")
        return self._pool.submit(_evaluate_in_worker, task)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._finalizer.detach()
        if self._token is not None:
            _FORK_STATE.pop(self._token, None)
            self._token = None
        for arena in self._arenas:
            arena.release()
        self._arenas = []

    def __enter__(self) -> "PersistentEvalPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
