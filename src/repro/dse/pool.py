"""Persistent DSE worker pool with fork-inherited explorer state.

The old driver paid worker spawn + explorer shipping on every
``explore()`` call, which made parallel DSE *slower* than serial for
small candidate batches.  :class:`PersistentEvalPool` amortizes those
costs across the pool's lifetime:

* workers are spawned once and reused for every subsequent dispatch
  (the explorer caches its pool, and the campaign runner shares it);
* on platforms with ``fork`` (Linux), the explorer — including the
  compiled graph tables built by :meth:`DesignSpaceExplorer.prepare`
  and any warmed caches — is *inherited* by the forked workers through
  copy-on-write memory: nothing is pickled, and every worker starts
  with hot tables;
* elsewhere the explorer is pickled once per worker process (at spawn),
  not once per ``explore()`` call;
* candidates are dispatched in chunks so per-task IPC overhead is paid
  per chunk, not per candidate.

The pool is also *supervisable*: a SIGKILL'd or hung worker breaks a
``ProcessPoolExecutor`` permanently (every outstanding future raises
``BrokenProcessPool`` and the executor refuses new work), so
:meth:`respawn` tears the broken executor down — force-killing any
still-running workers, which is the only way to clear a hung task —
and builds a fresh one bound to the same explorer.  The campaign
runner calls it to keep a campaign alive across worker deaths.

The explorer must be treated as immutable once a pool exists — workers
saw its state at fork/spawn time.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import weakref
from concurrent.futures import Future, ProcessPoolExecutor

from repro.perf import PERF

#: Explorers registered for fork inheritance, keyed by token.  The
#: parent keeps every live pool's explorer here so workers forked at
#: any later submit still find their token (pools may interleave).
_FORK_STATE: dict[int, object] = {}
_TOKENS = itertools.count()


def _init_fork_worker(token: int) -> None:
    """Adopt the fork-inherited explorer as this worker's evaluator."""
    from repro.dse import explorer as explorer_mod

    explorer_mod._WORKER_EXPLORER = _FORK_STATE[token]


def default_chunksize(n_tasks: int, workers: int) -> int:
    """Chunked dispatch: ~4 chunks per worker balances skew vs. IPC."""
    return max(1, n_tasks // (workers * 4))


def _release(executor: ProcessPoolExecutor, token: int | None) -> None:
    """Shut a pool's resources down (close() or garbage collection).

    Registered as a ``weakref.finalize`` callback so an abandoned pool
    (an explorer dropped without ``close()``) still stops its workers
    and unpins its explorer from :data:`_FORK_STATE`.
    """
    executor.shutdown(wait=False, cancel_futures=True)
    if token is not None:
        _FORK_STATE.pop(token, None)


def _kill_workers(executor: ProcessPoolExecutor) -> int:
    """SIGKILL an executor's worker processes (hung tasks cannot be
    cancelled any other way).  Returns how many were still alive."""
    killed = 0
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        if proc.is_alive():
            try:
                proc.kill()
                killed += 1
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
    return killed


class PersistentEvalPool:
    """A long-lived process pool bound to one explorer."""

    def __init__(self, explorer, workers: int):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = workers
        self._explorer = explorer
        self._token: int | None = None
        # Compile the workloads' graph tables in the parent before any
        # worker exists, so fork inheritance ships them for free.
        explorer.prepare()
        self._use_fork = "fork" in mp.get_all_start_methods()
        if self._use_fork:
            self._token = next(_TOKENS)
            _FORK_STATE[self._token] = explorer
        self._pool = self._spawn_executor()
        self._finalizer = weakref.finalize(
            self, _release, self._pool, self._token
        )
        self.dispatched = 0
        self.respawns = 0
        PERF.add("dse.pool.created")

    def _spawn_executor(self) -> ProcessPoolExecutor:
        if self._use_fork:
            return ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp.get_context("fork"),
                initializer=_init_fork_worker,
                initargs=(self._token,),
            )
        from repro.dse.explorer import _init_worker  # pragma: no cover

        return ProcessPoolExecutor(  # pragma: no cover - non-POSIX
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self._explorer,),
        )

    def respawn(self) -> None:
        """Replace a broken (or hung) executor with a fresh one.

        Outstanding futures of the old executor are abandoned: a broken
        executor has already failed them with ``BrokenProcessPool``,
        and a hung worker only dies by force — the supervisor decides
        which of its tasks get re-dispatched.  Workers of the new
        executor fork from the *current* parent state at next submit,
        so fork-inherited explorer tables (and any armed chaos hooks)
        carry over.
        """
        _kill_workers(self._pool)
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._finalizer.detach()
        self._pool = self._spawn_executor()
        self._finalizer = weakref.finalize(
            self, _release, self._pool, self._token
        )
        self.respawns += 1
        PERF.add("dse.pool.respawned")

    # ------------------------------------------------------------------

    def map_tasks(self, tasks, chunksize: int | None = None):
        """Ordered lazy map of ``(index, arch, warm)`` tasks.

        Yields ``(result, perf_snapshot)`` pairs in task order as they
        complete, like ``Executor.map`` — callers can checkpoint the
        ordered stream as it advances.  Unlike ``Executor.map``, one
        failing task does not poison its whole dispatch chunk: workers
        capture per-task outcomes, so every result computed *before*
        the first failing task is yielded before its exception re-raises.
        """
        from repro.dse.explorer import _evaluate_chunk
        from repro.obs.trace import trace

        if chunksize is None:
            chunksize = default_chunksize(len(tasks), self.workers)
        self.dispatched += len(tasks)
        PERF.add("dse.pool.dispatched", len(tasks))
        # The span covers submission only — the generator is lazy;
        # workers report their own spans through the snapshot channel.
        with trace("dse.pool.dispatch", tasks=len(tasks),
                   chunksize=chunksize, workers=self.workers):
            futures = [
                self._pool.submit(_evaluate_chunk, tasks[i:i + chunksize])
                for i in range(0, len(tasks), chunksize)
            ]

        def _results():
            for fut in futures:
                for status, payload in fut.result():
                    if status == "err":
                        raise payload
                    yield payload

        return _results()

    def submit(self, task) -> Future:
        """Dispatch one ``(index, arch, warm[, attempt])`` task
        (unordered use)."""
        from repro.dse.explorer import _evaluate_in_worker

        self.dispatched += 1
        PERF.add("dse.pool.dispatched")
        return self._pool.submit(_evaluate_in_worker, task)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._finalizer.detach()
        if self._token is not None:
            _FORK_STATE.pop(self._token, None)
            self._token = None

    def __enter__(self) -> "PersistentEvalPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
