"""Pareto-front utilities over DSE results (the Fig 6 scatter view).

Fig 6 plots candidates in the (EDP, MC) plane; the interesting designs
are the Pareto-optimal ones.  These helpers compute Pareto fronts over
arbitrary minimization axes of :class:`CandidateResult` records and the
per-category "top p %" filtering the paper uses ("only the top 50 % of
each category is plotted").
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dse.explorer import CandidateResult

#: Named axes over CandidateResult, all to be minimized.
AXES: dict[str, Callable[[CandidateResult], float]] = {
    "mc": lambda r: r.mc.total,
    "energy": lambda r: r.energy,
    "delay": lambda r: r.delay,
    "edp": lambda r: r.edp,
    "score": lambda r: r.score,
}


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when point a is no worse than b everywhere and better once."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    results: list[CandidateResult], axes: Sequence[str] = ("edp", "mc")
) -> list[CandidateResult]:
    """Pareto-optimal results under the named minimization axes."""
    keyfns = [AXES[a] for a in axes]
    points = [tuple(f(r) for f in keyfns) for r in results]
    front = []
    for i, (r, p) in enumerate(zip(results, points)):
        if not any(
            dominates(q, p) for j, q in enumerate(points) if j != i
        ):
            front.append(r)
    return front


def top_fraction(
    results: list[CandidateResult],
    fraction: float = 0.5,
    axis: str = "score",
) -> list[CandidateResult]:
    """The best ``fraction`` of results under one axis (Fig 6's top-50%)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(results, key=AXES[axis])
    keep = max(1, int(len(ordered) * fraction))
    return ordered[:keep]


def category_bests(
    results: list[CandidateResult],
    category: Callable[[CandidateResult], int],
    axis: str = "score",
) -> dict[int, CandidateResult]:
    """Best result per category (e.g. per chiplet count)."""
    keyfn = AXES[axis]
    best: dict[int, CandidateResult] = {}
    for r in results:
        c = category(r)
        if c not in best or keyfn(r) < keyfn(best[c]):
            best[c] = r
    return best
