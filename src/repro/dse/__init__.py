"""Architecture/mapping co-exploration (DSE) driver and helpers."""

from repro.dse.candidates import DseGrid, candidate_from, enumerate_candidates
from repro.dse.explorer import (
    CandidateResult,
    DesignSpaceExplorer,
    DseReport,
    Workload,
    geomean,
)
from repro.dse.joint import (
    JointCandidateResult,
    JointDseReport,
    JointExplorer,
    scale_with_chiplets,
)
from repro.dse.pool import PersistentEvalPool
from repro.dse.pareto import (
    category_bests,
    dominates,
    pareto_front,
    top_fraction,
)
from repro.dse.objective import (
    FIG7_OBJECTIVES,
    OBJECTIVE_DELAY,
    OBJECTIVE_EDP,
    OBJECTIVE_ENERGY,
    OBJECTIVE_MC,
    OBJECTIVE_MCED,
    Objective,
)

__all__ = [
    "CandidateResult",
    "DesignSpaceExplorer",
    "DseGrid",
    "DseReport",
    "FIG7_OBJECTIVES",
    "JointCandidateResult",
    "JointDseReport",
    "JointExplorer",
    "OBJECTIVE_DELAY",
    "OBJECTIVE_EDP",
    "OBJECTIVE_ENERGY",
    "OBJECTIVE_MC",
    "OBJECTIVE_MCED",
    "Objective",
    "PersistentEvalPool",
    "Workload",
    "candidate_from",
    "category_bests",
    "dominates",
    "enumerate_candidates",
    "geomean",
    "pareto_front",
    "scale_with_chiplets",
    "top_fraction",
]
