"""Chiplet reuse across computing-power levels (Sec VII-B, Fig 8).

"Gemini strategically organizes the chiplets of each architecture
candidate with the lowest computational power into accelerators designed
for higher computational power requirements", then minimizes the product
of ``MC x E x D`` across all levels (the *Joint Optimal*).

:func:`scale_with_chiplets` rebuilds an accelerator of a different
computing power out of an existing design's chiplets: the chiplet itself
(cores, per-core resources, D2D interfaces) is frozen; only the number of
chiplets on the substrate and the DRAM provisioning change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.params import ArchConfig, arrange_cores
from repro.cost.mc import DEFAULT_MC, MCEvaluator
from repro.dse.explorer import (
    CandidateResult,
    DesignSpaceExplorer,
    Workload,
)
from repro.dse.objective import OBJECTIVE_MCED, Objective
from repro.errors import InvalidArchitectureError


def scale_with_chiplets(base: ArchConfig, target_tops: float) -> ArchConfig | None:
    """Build a ``target_tops`` accelerator from ``base``'s chiplets.

    Returns ``None`` when the target power is not an integer number of
    the base design's chiplets.
    """
    chiplet_tops = base.tops / base.n_chiplets
    n_chiplets = target_tops / chiplet_tops
    if abs(n_chiplets - round(n_chiplets)) > 1e-9 or round(n_chiplets) < 1:
        return None
    n_chiplets = round(n_chiplets)
    grid_x, grid_y = arrange_cores(n_chiplets)
    dram_per_tops = base.dram_bw / base.tops
    try:
        return replace(
            base,
            cores_x=base.chiplet_cores_x * grid_x,
            cores_y=base.chiplet_cores_y * grid_y,
            xcut=grid_x,
            ycut=grid_y,
            dram_bw=dram_per_tops * target_tops,
            name=f"{base.name or 'arch'}-x{n_chiplets}",
        )
    except InvalidArchitectureError:
        return None


@dataclass
class JointCandidateResult:
    """One chiplet design evaluated at every power level."""

    base: ArchConfig
    per_level: dict[float, CandidateResult]
    score: float


@dataclass
class JointDseReport:
    best: JointCandidateResult
    results: list[JointCandidateResult]


class JointExplorer:
    """DSE for one chiplet reused across several computing powers."""

    def __init__(
        self,
        workloads_per_level: dict[float, list[Workload]],
        objective: Objective = OBJECTIVE_MCED,
        mc_evaluator: MCEvaluator = DEFAULT_MC,
        sa_settings=None,
        max_group_layers: int = 10,
    ):
        self.levels = sorted(workloads_per_level)
        self.workloads_per_level = workloads_per_level
        self.objective = objective
        self.mc_evaluator = mc_evaluator
        self.sa_settings = sa_settings
        self.max_group_layers = max_group_layers

    def _explorer(self, level: float) -> DesignSpaceExplorer:
        return DesignSpaceExplorer(
            self.workloads_per_level[level],
            objective=self.objective,
            mc_evaluator=self.mc_evaluator,
            sa_settings=self.sa_settings,
            max_group_layers=self.max_group_layers,
        )

    def evaluate_base(self, base: ArchConfig) -> JointCandidateResult | None:
        """Evaluate one lowest-level candidate across every level."""
        per_level: dict[float, CandidateResult] = {}
        score = 1.0
        for level in self.levels:
            arch = scale_with_chiplets(base, level)
            if arch is None:
                return None
            result = self._explorer(level).evaluate_candidate(arch)
            per_level[level] = result
            score *= result.score
        return JointCandidateResult(base=base, per_level=per_level, score=score)

    def explore(self, bases: list[ArchConfig]) -> JointDseReport:
        results = [
            r for r in (self.evaluate_base(b) for b in bases) if r is not None
        ]
        if not results:
            raise InvalidArchitectureError(
                "no base design scales to every requested power level"
            )
        best = min(results, key=lambda r: r.score)
        return JointDseReport(best=best, results=results)
