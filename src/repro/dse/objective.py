"""DSE optimization objectives: ``MC^alpha x E^beta x D^gamma`` (Sec V-A).

The exponents weight monetary cost, energy and delay.  The paper's
default DSE objective is ``MC * E * D``; Fig 7 compares the optima under
four instances (pure E, pure D, pure MC and the product).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Objective:
    alpha: float = 1.0  # monetary cost
    beta: float = 1.0   # energy
    gamma: float = 1.0  # delay
    name: str = "MC*E*D"

    def score(self, mc: float, energy: float, delay: float) -> float:
        return (mc ** self.alpha) * (energy ** self.beta) * (delay ** self.gamma)


#: The four objectives of Fig 7 (left-to-right order in the figure is
#: E, D, MC, MC*E*D after the paper's caption).
OBJECTIVE_ENERGY = Objective(alpha=0.0, beta=1.0, gamma=0.0, name="E")
OBJECTIVE_DELAY = Objective(alpha=0.0, beta=0.0, gamma=1.0, name="D")
OBJECTIVE_MC = Objective(alpha=1.0, beta=0.0, gamma=0.0, name="MC")
OBJECTIVE_MCED = Objective(alpha=1.0, beta=1.0, gamma=1.0, name="MC*E*D")
OBJECTIVE_EDP = Objective(alpha=0.0, beta=1.0, gamma=1.0, name="E*D")

FIG7_OBJECTIVES = (
    OBJECTIVE_ENERGY,
    OBJECTIVE_DELAY,
    OBJECTIVE_MC,
    OBJECTIVE_MCED,
)
