"""Intra-core exploration engine (NVDLA-style tiling search)."""

from repro.intracore.cache import IntraCoreEngine
from repro.intracore.dataflow import CoreWorkload, PEArray
from repro.intracore.result import IntraCoreResult
from repro.intracore.tiling import schedule_workload

__all__ = [
    "CoreWorkload",
    "IntraCoreEngine",
    "IntraCoreResult",
    "PEArray",
    "schedule_workload",
]
