"""Result record of the intra-core exploration engine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntraCoreResult:
    """Outcome of scheduling one :class:`CoreWorkload` on one core.

    ``*_fetches`` are the re-fetch multipliers the chosen tiling/loop
    order implies for externally supplied data: the global evaluator
    multiplies the base ifmap/weight volumes by them when accounting
    NoC/DRAM traffic.  ``glb_bytes`` is the total GLB port traffic and
    ``reg_bytes`` the PE-local register traffic (energy only).
    """

    cycles: int
    compute_time: float
    if_fetches: float
    w_fetches: float
    of_writebacks: float
    glb_bytes: float
    reg_bytes: float
    energy: float
    tiling: tuple[int, int, int]
    loop_order: str
    fits: bool

    @property
    def time(self) -> float:
        return self.compute_time

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.loop_order} tile={self.tiling} cycles={self.cycles} "
            f"fetches=({self.if_fetches:.1f},{self.w_fetches:.1f},"
            f"{self.of_writebacks:.1f})"
        )
