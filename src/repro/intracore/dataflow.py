"""Core-level workload description and the NVDLA-style PE-array model.

The template's computing core (Sec III, Fig 2b) runs GEMM/Conv tiles on a
PE array with the classic NVDLA dataflow [39], [58] and everything else
on a vector unit.  :class:`CoreWorkload` is the per-core slice of a layer
produced by the LP SPM parser; :class:`PEArray` models the array's
K-lane x C-lane parallelism and the ceil-quantization utilization losses
different partition shapes incur (one of the hidden optimization
opportunities of Sec IV-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workloads.layer import LayerType


@dataclass(frozen=True)
class CoreWorkload:
    """The tile of one layer assigned to one core for one batch unit.

    Output geometry ``(h, w, k)`` and batch ``b`` describe this core's
    slice of the ofmap cube; ``c`` is the input-channel extent it reads
    (full layer ``in_c`` for Conv/FC, its own ``k`` for channelwise
    layers), and ``r, s, stride`` give the receptive-field geometry.
    """

    kind: LayerType
    b: int
    k: int
    h: int
    w: int
    c: int
    r: int = 1
    s: int = 1
    stride: int = 1
    groups: int = 1
    bytes_per_elem: int = 1

    @property
    def in_h(self) -> int:
        return (self.h - 1) * self.stride + self.r

    @property
    def in_w(self) -> int:
        return (self.w - 1) * self.stride + self.s

    @property
    def c_per_group(self) -> int:
        return max(1, self.c // self.groups)

    def macs(self) -> int:
        spatial = self.b * self.h * self.w * self.k
        if self.kind in (LayerType.CONV, LayerType.FC, LayerType.DWCONV):
            return spatial * self.c_per_group * self.r * self.s
        if self.kind is LayerType.MATMUL:
            return spatial * self.c
        if self.kind is LayerType.POOL:
            return spatial * self.r * self.s
        return spatial

    def is_pe_workload(self) -> bool:
        return self.kind in (
            LayerType.CONV,
            LayerType.FC,
            LayerType.DWCONV,
            LayerType.MATMUL,
        )

    def ofmap_bytes(self) -> int:
        return self.b * self.h * self.w * self.k * self.bytes_per_elem

    def ifmap_bytes(self) -> int:
        return self.b * self.in_h * self.in_w * self.c * self.bytes_per_elem

    def weight_bytes(self) -> int:
        """Bytes of the stationary operand.

        Conv/FC weights are shared across the batch; a MATMUL's second
        operand is per-sample activation data.
        """
        if self.kind in (LayerType.CONV, LayerType.FC, LayerType.DWCONV):
            return self.k * self.c_per_group * self.r * self.s * self.bytes_per_elem
        if self.kind is LayerType.MATMUL:
            return self.b * self.k * self.c * self.bytes_per_elem
        return 0


@dataclass(frozen=True)
class PEArray:
    """K-lane x C-lane MAC array (NVDLA-style)."""

    n_macs: int

    @property
    def lanes_k(self) -> int:
        """Output-channel lanes: the power of two nearest sqrt(n_macs)."""
        return 1 << (max(0, self.n_macs.bit_length() - 1) // 2)

    @property
    def lanes_c(self) -> int:
        return max(1, self.n_macs // self.lanes_k)

    def cycles(self, wl: CoreWorkload) -> int:
        """PE-array cycles with ceil quantization on both lane dims."""
        if not wl.is_pe_workload():
            return 0
        reduce_depth = (
            wl.c if wl.kind is LayerType.MATMUL
            else wl.c_per_group * wl.r * wl.s
        )
        k_steps = math.ceil(wl.k / self.lanes_k)
        c_steps = math.ceil(reduce_depth / self.lanes_c)
        return wl.b * wl.h * wl.w * k_steps * c_steps

    def utilization(self, wl: CoreWorkload) -> float:
        cycles = self.cycles(wl)
        if cycles == 0:
            return 0.0
        return wl.macs() / (cycles * self.n_macs)
