"""Exhaustive tiling + loop-order search for one core (Sec V-B1).

"The partitioned workload will be scheduled in [the] intra-core
exploration engine, which performs exhaustive search optimization for
tiling and loop reorder like many existing works [29], [41], [53],
[58]."  We search tile sizes over the output-channel (K), input-channel
(C) and output-row (H) dimensions and three canonical loop orders, under
the GLB capacity constraint (double-buffered), and pick the minimum
energy-delay product.

Re-fetch multipliers per loop order (outer -> inner over tile loops):

==============  ========  ==========  ===========
order           ifmap     weights     psum passes
==============  ========  ==========  ===========
WS (k, c, h)    n_k       1           n_c
OS (k, h, c)    n_k       n_h         1
IS (c, h, k)    1         n_h         n_c
==============  ========  ==========  ===========

where ``n_x`` is the trip count of the ``x`` tile loop (multipliers
collapse to 1 when a single tile covers the dimension).
"""

from __future__ import annotations

import math

import numpy as np

from repro.arch.energy import EnergyModel
from repro.intracore.dataflow import CoreWorkload, PEArray
from repro.intracore.result import IntraCoreResult

#: Loop orders: name -> (ifmap multiplier, weight multiplier, psum passes)
#: expressed as functions of the (n_k, n_c, n_h) trip counts.
_LOOP_ORDERS = {
    "WS": lambda nk, nc, nh: (nk, 1, nc),
    "OS": lambda nk, nc, nh: (nk, nh, 1),
    "IS": lambda nk, nc, nh: (1, nh, nc),
}

#: Bytes per partial sum held in GLB when accumulation spans C tiles.
_PSUM_BYTES = 4


def _geometric_choices(dim: int, cap: int = 8) -> list[int]:
    """Candidate tile sizes: powers of two up to dim, plus dim itself."""
    choices = []
    t = 1
    while t < dim and len(choices) < cap - 1:
        choices.append(t)
        t *= 2
    choices.append(dim)
    return choices


def _vector_schedule(
    wl: CoreWorkload,
    glb_bytes: int,
    glb_bw: float,
    vector_lanes: int,
    frequency: float,
    energy: EnergyModel,
) -> IntraCoreResult:
    """Vector-unit layers: streaming, no tiling search needed."""
    ops = wl.macs()
    if_vol, of_vol = wl.ifmap_bytes(), wl.ofmap_bytes()
    glb_traffic = if_vol + of_vol
    compute = ops / (vector_lanes * frequency)
    time = max(compute, glb_traffic / glb_bw)
    e = ops * energy.e_vector + glb_traffic * energy.e_glb
    working_set = if_vol + of_vol
    return IntraCoreResult(
        cycles=math.ceil(ops / vector_lanes),
        compute_time=time,
        if_fetches=1.0,
        w_fetches=1.0,
        of_writebacks=1.0,
        glb_bytes=glb_traffic,
        reg_bytes=0.0,
        energy=e,
        tiling=(wl.k, wl.c, wl.h),
        loop_order="VEC",
        fits=working_set <= glb_bytes,
    )


def schedule_workload(
    wl: CoreWorkload,
    glb_bytes: int,
    macs_per_core: int,
    frequency: float,
    glb_bytes_per_cycle: int,
    vector_lanes: int,
    energy: EnergyModel,
) -> IntraCoreResult:
    """Exhaustively search tilings/loop orders; return the best schedule.

    Always returns a result: when nothing fits within the GLB, the
    smallest-tile schedule is returned with ``fits=False`` and its spill
    traffic inflated, which steers the SA search away from such schemes
    while keeping every encoding evaluable.
    """
    glb_bw = glb_bytes_per_cycle * frequency
    if not wl.is_pe_workload():
        return _vector_schedule(
            wl, glb_bytes, glb_bw, vector_lanes, frequency, energy
        )

    pe = PEArray(macs_per_core)
    cycles = pe.cycles(wl)
    macs = wl.macs()
    bpe = wl.bytes_per_elem
    if_vol, w_vol, of_vol = wl.ifmap_bytes(), wl.weight_bytes(), wl.ofmap_bytes()
    budget = glb_bytes / 2  # double buffering

    # Everything outside the tiling choice is loop-invariant; the whole
    # (tk, tc, th, order) grid is then evaluated as one broadcast
    # computation and only the winning schedule materializes a result.
    read_if = cycles * pe.lanes_c * bpe
    reg = 2 * macs * bpe
    mac_j = macs * energy.e_mac
    reg_j = reg * energy.e_reg
    compute_floor = cycles / frequency
    is_matmul = wl.kind.value == "matmul"

    tks = np.array(_geometric_choices(wl.k), dtype=np.int64)[:, None, None]
    tcs = np.array(_geometric_choices(wl.c), dtype=np.int64)[None, :, None]
    ths = np.array(_geometric_choices(wl.h), dtype=np.int64)[None, None, :]
    n_k = -(-wl.k // tks)
    n_c = -(-wl.c // tcs)
    n_h = -(-wl.h // ths)

    if is_matmul:
        w_tile = wl.b * tks * tcs * bpe
    else:
        w_tile = tks * np.maximum(1, -(-tcs // wl.groups)) * wl.r * wl.s * bpe
    in_th = (ths - 1) * wl.stride + wl.r
    if_tile = wl.b * in_th * wl.in_w * tcs * bpe
    psum_width = np.where(n_c > 1, _PSUM_BYTES, bpe)
    of_tile = wl.b * ths * wl.w * tks * psum_width
    working_set = w_tile + if_tile + of_tile
    fits = working_set <= budget

    # Loop-order multipliers stacked on a trailing axis (WS, OS, IS) —
    # the same innermost position the scalar search iterated them in.
    full = np.broadcast_shapes(n_k.shape, n_c.shape, n_h.shape)
    ones = np.broadcast_to(np.int64(1), full)
    m_if = np.stack(np.broadcast_arrays(n_k, n_k, ones), axis=-1)
    m_w = np.stack(np.broadcast_arrays(ones, n_h, n_h), axis=-1)
    m_psum = np.stack(np.broadcast_arrays(n_c, ones, n_c), axis=-1)

    glb_traffic = (
        if_vol * m_if + 2 * (w_vol * m_w)
        + of_vol * (2 * m_psum - 1) + read_if
    )
    glb_traffic = np.where(fits[..., None], glb_traffic, glb_traffic * 4)
    e = mac_j + glb_traffic * energy.e_glb + reg_j
    time = np.maximum(compute_floor, glb_traffic / glb_bw)

    fits4 = np.broadcast_to(fits[..., None], m_if.shape)
    if fits4.any():
        cost = np.where(fits4, e * time, np.inf).ravel()
        idx = int(np.argmin(cost))  # first minimum == scalar scan order
    else:
        # Nothing fits: the smallest-working-set tiling under the WS
        # order (the first order the scalar scan recorded).
        idx = int(np.argmin(working_set)) * 3
    pick = np.unravel_index(idx, fits4.shape)
    ki, ci, hi, oi = (int(v) for v in pick)
    return IntraCoreResult(
        cycles=cycles,
        compute_time=float(time[pick]),
        if_fetches=float(m_if[pick]),
        w_fetches=float(m_w[pick]),
        of_writebacks=float(m_psum[pick]),
        glb_bytes=int(glb_traffic[pick]),
        reg_bytes=float(reg),
        energy=float(e[pick]),
        tiling=(int(tks.ravel()[ki]), int(tcs.ravel()[ci]), int(ths.ravel()[hi])),
        loop_order=("WS", "OS", "IS")[oi],
        fits=bool(fits[ki, ci, hi]),
    )
