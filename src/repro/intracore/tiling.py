"""Exhaustive tiling + loop-order search for one core (Sec V-B1).

"The partitioned workload will be scheduled in [the] intra-core
exploration engine, which performs exhaustive search optimization for
tiling and loop reorder like many existing works [29], [41], [53],
[58]."  We search tile sizes over the output-channel (K), input-channel
(C) and output-row (H) dimensions and three canonical loop orders, under
the GLB capacity constraint (double-buffered), and pick the minimum
energy-delay product.

Re-fetch multipliers per loop order (outer -> inner over tile loops):

==============  ========  ==========  ===========
order           ifmap     weights     psum passes
==============  ========  ==========  ===========
WS (k, c, h)    n_k       1           n_c
OS (k, h, c)    n_k       n_h         1
IS (c, h, k)    1         n_h         n_c
==============  ========  ==========  ===========

where ``n_x`` is the trip count of the ``x`` tile loop (multipliers
collapse to 1 when a single tile covers the dimension).
"""

from __future__ import annotations

import math

from repro.arch.energy import EnergyModel
from repro.intracore.dataflow import CoreWorkload, PEArray
from repro.intracore.result import IntraCoreResult

#: Loop orders: name -> (ifmap multiplier, weight multiplier, psum passes)
#: expressed as functions of the (n_k, n_c, n_h) trip counts.
_LOOP_ORDERS = {
    "WS": lambda nk, nc, nh: (nk, 1, nc),
    "OS": lambda nk, nc, nh: (nk, nh, 1),
    "IS": lambda nk, nc, nh: (1, nh, nc),
}

#: Bytes per partial sum held in GLB when accumulation spans C tiles.
_PSUM_BYTES = 4


def _geometric_choices(dim: int, cap: int = 8) -> list[int]:
    """Candidate tile sizes: powers of two up to dim, plus dim itself."""
    choices = []
    t = 1
    while t < dim and len(choices) < cap - 1:
        choices.append(t)
        t *= 2
    choices.append(dim)
    return choices


def _vector_schedule(
    wl: CoreWorkload,
    glb_bytes: int,
    glb_bw: float,
    vector_lanes: int,
    frequency: float,
    energy: EnergyModel,
) -> IntraCoreResult:
    """Vector-unit layers: streaming, no tiling search needed."""
    ops = wl.macs()
    if_vol, of_vol = wl.ifmap_bytes(), wl.ofmap_bytes()
    glb_traffic = if_vol + of_vol
    compute = ops / (vector_lanes * frequency)
    time = max(compute, glb_traffic / glb_bw)
    e = ops * energy.e_vector + glb_traffic * energy.e_glb
    working_set = if_vol + of_vol
    return IntraCoreResult(
        cycles=math.ceil(ops / vector_lanes),
        compute_time=time,
        if_fetches=1.0,
        w_fetches=1.0,
        of_writebacks=1.0,
        glb_bytes=glb_traffic,
        reg_bytes=0.0,
        energy=e,
        tiling=(wl.k, wl.c, wl.h),
        loop_order="VEC",
        fits=working_set <= glb_bytes,
    )


def schedule_workload(
    wl: CoreWorkload,
    glb_bytes: int,
    macs_per_core: int,
    frequency: float,
    glb_bytes_per_cycle: int,
    vector_lanes: int,
    energy: EnergyModel,
) -> IntraCoreResult:
    """Exhaustively search tilings/loop orders; return the best schedule.

    Always returns a result: when nothing fits within the GLB, the
    smallest-tile schedule is returned with ``fits=False`` and its spill
    traffic inflated, which steers the SA search away from such schemes
    while keeping every encoding evaluable.
    """
    glb_bw = glb_bytes_per_cycle * frequency
    if not wl.is_pe_workload():
        return _vector_schedule(
            wl, glb_bytes, glb_bw, vector_lanes, frequency, energy
        )

    pe = PEArray(macs_per_core)
    cycles = pe.cycles(wl)
    macs = wl.macs()
    bpe = wl.bytes_per_elem
    if_vol, w_vol, of_vol = wl.ifmap_bytes(), wl.weight_bytes(), wl.ofmap_bytes()
    budget = glb_bytes / 2  # double buffering

    best: IntraCoreResult | None = None
    best_cost = math.inf
    fallback: IntraCoreResult | None = None
    fallback_set = math.inf

    for tk in _geometric_choices(wl.k):
        n_k = math.ceil(wl.k / tk)
        for tc in _geometric_choices(wl.c):
            n_c = math.ceil(wl.c / tc)
            w_tile = tk * max(1, math.ceil(tc / wl.groups)) * wl.r * wl.s * bpe
            if wl.kind.value == "matmul":
                w_tile = wl.b * tk * tc * bpe
            for th in _geometric_choices(wl.h):
                n_h = math.ceil(wl.h / th)
                in_th = (th - 1) * wl.stride + wl.r
                if_tile = wl.b * in_th * wl.in_w * tc * bpe
                psum_width = _PSUM_BYTES if n_c > 1 else bpe
                of_tile = wl.b * th * wl.w * tk * psum_width
                working_set = w_tile + if_tile + of_tile
                fits = working_set <= budget
                for order, mults in _LOOP_ORDERS.items():
                    m_if, m_w, m_psum = mults(n_k, n_c, n_h)
                    fetch_if = if_vol * m_if
                    fetch_w = w_vol * m_w
                    psum_glb = of_vol * (2 * m_psum - 1)
                    read_if = cycles * pe.lanes_c * bpe
                    glb_traffic = (
                        fetch_if + 2 * fetch_w + psum_glb + read_if
                    )
                    if not fits:
                        glb_traffic *= 4  # spill penalty
                    reg = 2 * macs * bpe
                    e = (
                        macs * energy.e_mac
                        + glb_traffic * energy.e_glb
                        + reg * energy.e_reg
                    )
                    time = max(cycles / frequency, glb_traffic / glb_bw)
                    cost = e * time
                    result = IntraCoreResult(
                        cycles=cycles,
                        compute_time=time,
                        if_fetches=float(m_if),
                        w_fetches=float(m_w),
                        of_writebacks=float(m_psum),
                        glb_bytes=glb_traffic,
                        reg_bytes=float(reg),
                        energy=e,
                        tiling=(tk, tc, th),
                        loop_order=order,
                        fits=fits,
                    )
                    if fits and cost < best_cost:
                        best, best_cost = result, cost
                    if not fits and working_set < fallback_set:
                        fallback, fallback_set = result, working_set
    return best if best is not None else fallback
