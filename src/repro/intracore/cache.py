"""Memoized front-end of the intra-core exploration engine.

SA iterations repeatedly evaluate the same partitioned-workload shapes
(layer partitions change one attribute at a time), so caching schedule
results by the full workload/core signature removes the dominant cost of
re-evaluation.  The cache is a true LRU: at capacity the stalest entry
is evicted, so a long DSE sweep over many candidates keeps its working
set instead of periodically dropping everything.
"""

from __future__ import annotations

from repro.arch.energy import EnergyModel
from repro.arch.params import ArchConfig
from repro.intracore.dataflow import CoreWorkload
from repro.intracore.result import IntraCoreResult
from repro.intracore.tiling import schedule_workload
from repro.perf import PERF, LruDict


class IntraCoreEngine:
    """LRU-caching wrapper around :func:`schedule_workload`."""

    def __init__(self, arch: ArchConfig, energy: EnergyModel,
                 max_entries: int = 200_000):
        self.arch = arch
        self.energy = energy
        self.max_entries = max_entries
        self._cache: LruDict = LruDict(max_entries)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def evictions(self) -> int:
        return self.misses - len(self._cache)

    def schedule(self, wl: CoreWorkload) -> IntraCoreResult:
        cached = self._cache.get_lru(wl)
        if cached is not None:
            self.hits += 1
            PERF.add("intracore.hits")
            return cached
        self.misses += 1
        PERF.add("intracore.misses")
        result = schedule_workload(
            wl,
            glb_bytes=self.arch.glb_bytes,
            macs_per_core=self.arch.macs_per_core,
            frequency=self.arch.frequency,
            glb_bytes_per_cycle=self.arch.glb_bytes_per_cycle,
            vector_lanes=self.arch.vector_lanes,
            energy=self.energy,
        )
        self._cache.put(wl, result)
        return result
