"""Max–min fair flow simulator.

The analytic delay model bounds network time by the most-loaded link's
serialization time.  This module provides a finer-grained check: flows
share links under max–min fairness and the simulator advances through
flow completions, re-solving rates each epoch (progressive filling).
It is used to validate the analytic bound on small cases and can be
enabled in the evaluator for higher-fidelity stage times.

The analytic bound is provably a lower bound of the simulated finish
time, and the two coincide when the bottleneck link carries every flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fabric import Topology


@dataclass
class Flow:
    """One transfer: a fixed route and a byte volume."""

    route: tuple[int, ...]
    volume: float


def max_min_rates(
    flows: list[Flow], bandwidths: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Progressive-filling max–min fair rates for the active flows."""
    n_links = len(bandwidths)
    rates = np.zeros(len(flows))
    remaining_bw = bandwidths.astype(float).copy()
    unfixed = [i for i in range(len(flows)) if active[i] and flows[i].route]
    for i in range(len(flows)):
        if active[i] and not flows[i].route:
            rates[i] = np.inf  # same-node transfer: no network constraint
    link_users: list[set[int]] = [set() for _ in range(n_links)]
    for i in unfixed:
        for l in flows[i].route:
            link_users[l].add(i)
    unfixed = set(unfixed)
    while unfixed:
        # Fair share each link could give its remaining unfixed users.
        best_share, best_link = None, None
        for l in range(n_links):
            users = link_users[l] & unfixed
            if not users:
                continue
            share = remaining_bw[l] / len(users)
            if best_share is None or share < best_share:
                best_share, best_link = share, l
        if best_link is None:
            break
        saturated = link_users[best_link] & unfixed
        for i in saturated:
            rates[i] = best_share
            for l in flows[i].route:
                remaining_bw[l] -= best_share
            unfixed.discard(i)
    return rates


def simulate_completion_time(topo: Topology, flows: list[Flow]) -> float:
    """Time until every flow finishes under max–min fair sharing."""
    flows = [f for f in flows if f.volume > 0]
    if not flows:
        return 0.0
    bandwidths = np.array([l.bandwidth for l in topo.links])
    remaining = np.array([f.volume for f in flows], dtype=float)
    active = remaining > 0
    now = 0.0
    # Flows with empty routes (src == dst) complete instantly.
    for i, f in enumerate(flows):
        if not f.route:
            active[i] = False
    guard = 0
    while active.any():
        guard += 1
        if guard > 10 * len(flows) + 10:  # pragma: no cover - safety net
            raise RuntimeError("flow simulation failed to converge")
        rates = max_min_rates(flows, bandwidths, active)
        with np.errstate(divide="ignore", invalid="ignore"):
            finish = np.where(active & (rates > 0), remaining / rates, np.inf)
        dt = float(finish.min())
        now += dt
        remaining = np.where(active, remaining - rates * dt, remaining)
        active = active & (remaining > 1e-9)
    return now


def analytic_lower_bound(topo: Topology, flows: list[Flow]) -> float:
    """Most-loaded-link serialization time (the evaluator's bound)."""
    volumes = np.zeros(topo.n_links)
    for f in flows:
        if f.route:
            volumes[list(f.route)] += f.volume
    bandwidths = np.array([l.bandwidth for l in topo.links])
    if not len(volumes):
        return 0.0
    return float(np.max(volumes / bandwidths))
