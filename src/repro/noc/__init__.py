"""NoC substrate: traffic accounting, multicast, flow simulation."""

from repro.noc.flowsim import Flow, analytic_lower_bound, simulate_completion_time
from repro.noc.multicast import multicast_hop_savings, multicast_tree
from repro.noc.traffic import TrafficMap

__all__ = [
    "Flow",
    "TrafficMap",
    "analytic_lower_bound",
    "multicast_hop_savings",
    "multicast_tree",
    "simulate_completion_time",
]
