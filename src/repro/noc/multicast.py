"""Multicast trees over deterministic XY routing.

When the same bytes go from one source to several cores (weights shared
by cores computing different spatial parts of a layer, or interleaved
DRAM reads with overlapping halos), the NoC carries them once per link of
the multicast tree rather than once per destination — the "multicast
capabilities" the paper's partition analysis assumes (Sec IV-C).

With a deterministic routing function, the union of the unicast paths
from one source is always a tree (every router has a unique path from
the source), so the tree is simply the set union of per-destination
routes.
"""

from __future__ import annotations

from repro.arch.topology import MeshTopology, NodeId


def multicast_tree(
    topo: MeshTopology, src: NodeId, dsts: list[NodeId]
) -> frozenset[int]:
    """Link-index set of the XY multicast tree from src to all dsts."""
    links: set[int] = set()
    for dst in dsts:
        links.update(topo.route(src, dst))
    return frozenset(links)


def multicast_hop_savings(
    topo: MeshTopology, src: NodeId, dsts: list[NodeId]
) -> int:
    """Hops saved vs. unicasting to every destination separately."""
    unicast = sum(len(topo.route(src, d)) for d in dsts)
    return unicast - len(multicast_tree(topo, src, dsts))
