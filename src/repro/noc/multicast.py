"""Multicast trees over a fabric's deterministic routing.

When the same bytes go from one source to several cores (weights shared
by cores computing different spatial parts of a layer, or interleaved
DRAM reads with overlapping halos), the NoC carries them once per link of
the multicast tree rather than once per destination — the "multicast
capabilities" the paper's partition analysis assumes (Sec IV-C).

With a deterministic routing function, the union of the unicast paths
from one source is always a tree (every router has a unique path from
the source), so the tree is simply the set union of per-destination
routes.  This holds for every registered fabric: each routes a
(source, destination) pair along exactly one path.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.fabric import NodeId, Topology
from repro.perf import LruDict

#: Per-topology memo of computed trees — the SA loop requests the same
#: (source, destination-set) combinations over and over.
_TREE_CACHES: WeakKeyDictionary[Topology, LruDict] = WeakKeyDictionary()
_TREE_CACHE_MAX = 65536


def multicast_tree(
    topo: Topology, src: NodeId, dsts: list[NodeId]
) -> frozenset[int]:
    """Link-index set of the deterministic multicast tree src -> dsts."""
    cache = _TREE_CACHES.get(topo)
    if cache is None:
        cache = LruDict(_TREE_CACHE_MAX, name="noc.mcast")
        _TREE_CACHES[topo] = cache
    key = (src, tuple(dsts))
    tree = cache.get_lru(key)
    if tree is None:
        links: set[int] = set()
        for dst in dsts:
            links.update(topo.route(src, dst))
        tree = frozenset(links)
        cache.put(key, tree)
    return tree


def multicast_hop_savings(
    topo: Topology, src: NodeId, dsts: list[NodeId]
) -> int:
    """Hops saved vs. unicasting to every destination separately."""
    unicast = sum(len(topo.route(src, d)) for d in dsts)
    return unicast - len(multicast_tree(topo, src, dsts))
