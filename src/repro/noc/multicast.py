"""Multicast trees over deterministic XY routing.

When the same bytes go from one source to several cores (weights shared
by cores computing different spatial parts of a layer, or interleaved
DRAM reads with overlapping halos), the NoC carries them once per link of
the multicast tree rather than once per destination — the "multicast
capabilities" the paper's partition analysis assumes (Sec IV-C).

With a deterministic routing function, the union of the unicast paths
from one source is always a tree (every router has a unique path from
the source), so the tree is simply the set union of per-destination
routes.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.arch.topology import MeshTopology, NodeId
from repro.perf import LruDict

#: Per-topology memo of computed trees — the SA loop requests the same
#: (source, destination-set) combinations over and over.
_TREE_CACHES: WeakKeyDictionary[MeshTopology, LruDict] = WeakKeyDictionary()
_TREE_CACHE_MAX = 65536


def multicast_tree(
    topo: MeshTopology, src: NodeId, dsts: list[NodeId]
) -> frozenset[int]:
    """Link-index set of the XY multicast tree from src to all dsts."""
    cache = _TREE_CACHES.get(topo)
    if cache is None:
        cache = LruDict(_TREE_CACHE_MAX)
        _TREE_CACHES[topo] = cache
    key = (src, tuple(dsts))
    tree = cache.get_lru(key)
    if tree is None:
        links: set[int] = set()
        for dst in dsts:
            links.update(topo.route(src, dst))
        tree = frozenset(links)
        cache.put(key, tree)
    return tree


def multicast_hop_savings(
    topo: MeshTopology, src: NodeId, dsts: list[NodeId]
) -> int:
    """Hops saved vs. unicasting to every destination separately."""
    unicast = sum(len(topo.route(src, d)) for d in dsts)
    return unicast - len(multicast_tree(topo, src, dsts))
