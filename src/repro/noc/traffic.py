"""Per-link traffic accounting.

The Gemini evaluator "analyz[es] the data communication volume on each
on-chip network link and D2D link" (Sec V-B2).  :class:`TrafficMap`
accumulates bytes per directed link in a flat numpy array so that SA
iterations can evaluate schemes quickly, and answers the aggregate
queries the delay/energy models need: serialization time of the most
loaded link, total byte-hops, D2D volume, and per-link heat data
(Fig 9).
"""

from __future__ import annotations

import numpy as np

from repro.fabric import Topology


class TrafficMap:
    """Bytes accumulated on every directed link of a topology."""

    def __init__(self, topo: Topology):
        self.topo = topo
        self.volumes = np.zeros(topo.n_links, dtype=np.float64)
        # Shared read-only views built once per topology.
        self._bandwidths, self._is_d2d, self._is_io = topo.link_arrays()
        self._noc_idx, self._d2d_idx, self._io_idx = topo.link_index_arrays()

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------

    def add_flow(self, src, dst, volume: float) -> None:
        """Add a unicast transfer of ``volume`` bytes from src to dst."""
        if volume <= 0:
            return
        route = self.topo.route_array(src, dst)
        if len(route):
            self.volumes[route] += volume

    def add_on_links(self, link_indices, volume: float) -> None:
        """Add ``volume`` bytes on an explicit link set (multicast tree)."""
        if volume <= 0 or len(link_indices) == 0:
            return
        if isinstance(link_indices, np.ndarray):
            self.volumes[link_indices] += volume
        else:
            self.volumes[list(link_indices)] += volume

    def merge(self, other: "TrafficMap") -> None:
        self.volumes += other.volumes

    def scaled(self, factor: float) -> "TrafficMap":
        out = TrafficMap(self.topo)
        out.volumes = self.volumes * factor
        return out

    # ------------------------------------------------------------------
    # Aggregate queries
    # ------------------------------------------------------------------

    def serialization_time(self) -> float:
        """Time for the most-loaded link to drain, seconds."""
        if not len(self.volumes):
            return 0.0
        return float(np.max(self.volumes / self._bandwidths))

    def bottleneck_link(self) -> int:
        """Index of the link with the largest drain time."""
        return int(np.argmax(self.volumes / self._bandwidths))

    def total_byte_hops(self) -> float:
        """Σ bytes x hops — the NoC energy proxy (Sec VII-C)."""
        return float(self.volumes.sum())

    def noc_byte_hops(self) -> float:
        """Byte-hops on regular on-chip links only.

        Index gathers visit the same links in the same order as the
        boolean-mask selection, so the sums are bit-identical.
        """
        return float(self.volumes[self._noc_idx].sum())

    def d2d_volume(self) -> float:
        """Bytes crossing D2D links (each crossing counted once)."""
        return float(self.volumes[self._d2d_idx].sum())

    def io_volume(self) -> float:
        return float(self.volumes[self._io_idx].sum())

    def utilizations(self, window_s: float) -> np.ndarray:
        """Per-link utilization over a time window (for heatmaps)."""
        if window_s <= 0:
            return np.zeros_like(self.volumes)
        return self.volumes / (self._bandwidths * window_s)

    def nonzero_links(self) -> list[tuple[int, float]]:
        idx = np.nonzero(self.volumes)[0]
        return [(int(i), float(self.volumes[i])) for i in idx]
