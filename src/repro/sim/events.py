"""Discrete-event simulation of one pipeline round (Sec V-B2).

The paper's Evaluator includes "a simulator [that] assesses the delay of
the DNN" on top of the analytic traffic analysis.  This module provides
that finer-grained check: a store-and-forward, event-driven model of one
steady-state pipeline round where

* every core starts computing its partitioned workload at t = 0 and
  finishes after its intra-core compute time;
* a producer core's outgoing messages enter the network when its
  compute finishes (DRAM-sourced messages enter at t = 0);
* each directed link serializes messages FIFO at its bandwidth
  (store-and-forward per hop), so congestion shows up as queueing;
* the round completes when every message has been delivered and every
  core has finished computing.

The resulting makespan upper-bounds the analytic stage-time bound
``max(compute, volume/bandwidth per link)`` — the two coincide when a
single congested link dominates — and exposes per-link busy fractions
for diagnosis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.fabric import NodeId, Topology


@dataclass(frozen=True)
class SimMessage:
    """One transfer injected into the simulated round."""

    src: NodeId
    dst: NodeId
    volume: float
    #: Simulation time at which the message becomes ready to send.
    ready_at: float = 0.0


@dataclass
class RoundStats:
    """Outcome of one simulated round."""

    makespan: float
    compute_finish: float
    delivery_finish: float
    link_busy: dict[int, float] = field(default_factory=dict)
    message_latencies: list[float] = field(default_factory=list)

    def max_link_utilization(self) -> float:
        if not self.link_busy or self.makespan <= 0:
            return 0.0
        return max(self.link_busy.values()) / self.makespan


class RoundSimulator:
    """Event-driven store-and-forward simulator over a topology."""

    def __init__(self, topo: Topology):
        self.topo = topo

    def simulate(
        self,
        compute_times: dict[int, float],
        messages: list[SimMessage],
    ) -> RoundStats:
        """Simulate one round.

        ``compute_times`` maps core index -> seconds of PE/vector work;
        message ``ready_at`` values should already reflect producer
        compute completion (use :func:`messages_from_flows`).
        """
        topo = self.topo
        #: Next instant each directed link becomes free.
        free_at = [0.0] * topo.n_links
        busy = [0.0] * topo.n_links
        latencies: list[float] = []
        # Event queue entries: (time, seq, route, hop_index, volume, t0).
        queue: list[tuple] = []
        seq = 0
        for msg in messages:
            if msg.volume <= 0:
                continue
            route = topo.route(msg.src, msg.dst)
            if not route:
                continue
            heapq.heappush(
                queue, (msg.ready_at, seq, route, 0, msg.volume, msg.ready_at)
            )
            seq += 1

        delivery_finish = 0.0
        while queue:
            time, _, route, hop, volume, t0 = heapq.heappop(queue)
            link = topo.links[route[hop]]
            start = max(time, free_at[link.index])
            duration = volume / link.bandwidth
            done = start + duration
            free_at[link.index] = done
            busy[link.index] += duration
            if hop + 1 < len(route):
                heapq.heappush(
                    queue, (done, seq, route, hop + 1, volume, t0)
                )
                seq += 1
            else:
                delivery_finish = max(delivery_finish, done)
                latencies.append(done - t0)

        compute_finish = max(compute_times.values(), default=0.0)
        return RoundStats(
            makespan=max(compute_finish, delivery_finish),
            compute_finish=compute_finish,
            delivery_finish=delivery_finish,
            link_busy={
                i: b for i, b in enumerate(busy) if b > 0.0
            },
            message_latencies=latencies,
        )


def messages_from_flows(
    topo: Topology,
    flows,
    compute_times: dict[int, float],
) -> list[SimMessage]:
    """Convert analyzer :class:`FlowRecord` s into simulator messages.

    Core-sourced messages become ready when their producer core's
    compute finishes; DRAM-sourced messages are ready immediately.
    """
    from repro.evalmodel.traffic_analysis import round_flows

    messages = []
    for f in round_flows(flows, topo):
        if f.src[0] == "core":
            ready = compute_times.get(topo.core_index(f.src), 0.0)
        else:
            ready = 0.0
        messages.append(SimMessage(f.src, f.dst, f.volume, ready))
    return messages


def simulate_group_round(graph, arch, lms, topo=None, stored_at=None):
    """Convenience: parse, analyze and simulate one round of a group.

    Returns ``(RoundStats, analytic_stage_time)`` so callers can compare
    the event-driven makespan against the Evaluator's bound.
    """
    from repro.evalmodel.delay import stage_times
    from repro.evalmodel.evaluator import Evaluator
    from repro.evalmodel.traffic_analysis import GroupTrafficAnalyzer
    from repro.core.parser import parse_lms

    evaluator = Evaluator(arch, topo=topo)
    topo = evaluator.topo
    parsed = parse_lms(graph, lms)
    intra = evaluator._intra_results(parsed)
    analyzer = GroupTrafficAnalyzer(graph, arch, topo, collect_flows=True)
    traffic = analyzer.analyze(parsed, lms, intra, stored_at or {})
    compute_times: dict[int, float] = {}
    for name, parsed_layer in parsed.layers.items():
        for part, res in zip(parsed_layer.parts, intra[name]):
            compute_times[part.core] = max(
                compute_times.get(part.core, 0.0), res.compute_time
            )
    messages = messages_from_flows(topo, traffic.flows, compute_times)
    stats = RoundSimulator(topo).simulate(compute_times, messages)
    analytic = stage_times(arch, intra, traffic).stage
    return stats, analytic
