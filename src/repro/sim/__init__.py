"""Discrete-event round simulator: validates the analytic delay model."""

from repro.sim.events import (
    RoundSimulator,
    RoundStats,
    SimMessage,
    messages_from_flows,
    simulate_group_round,
)

__all__ = [
    "RoundSimulator",
    "RoundStats",
    "SimMessage",
    "messages_from_flows",
    "simulate_group_round",
]
