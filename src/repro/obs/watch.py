"""Live, store-only campaign monitoring: ``repro campaign watch``.

Everything here reads derived artifacts — the campaign manifest, the
result store and the run ledger.  No models are loaded, no grids are
re-enumerated, no evaluators are built, so watching a huge (or crashed,
or still-running) campaign is instant and side-effect free, exactly
like ``campaign status``.

One :func:`watch_snapshot` call folds the three sources into a single
dict: progress counts, per-shard health (which worker pids are
evaluating, how fast, when last seen), throughput (candidates/s and SA
iterations/s), the cache hit-ratio table from the last perf event, and
an ETA for the pending tail.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.campaign.runner import campaign_status
from repro.obs.ledger import LEDGER_NAME, read_ledger

#: Ledger event names (shared with :class:`repro.campaign.runner.CampaignRunner`).
EVENT_RUN_STARTED = "run_started"
EVENT_RUN_RESUMED = "run_resumed"
EVENT_EVALUATED = "candidate_evaluated"
EVENT_FAILED = "candidate_failed"
EVENT_RETRIED = "candidate_retried"
EVENT_TIMEOUT = "candidate_timeout"
EVENT_QUARANTINED = "candidate_quarantined"
EVENT_WORKER_DIED = "worker_died"
EVENT_POOL_RESPAWNED = "pool_respawned"
EVENT_INTERRUPTED = "run_interrupted"
EVENT_FINISHED = "run_finished"
EVENT_PERF = "perf"

_RUN_EVENTS = (EVENT_RUN_STARTED, EVENT_RUN_RESUMED)

_SHARD_DEFAULTS = {
    "evaluated": 0, "failed": 0, "busy_s": 0.0, "last_ts": 0.0,
    "attempts": 0, "retries": 0, "timeouts": 0, "quarantined": 0,
}


def ledger_path(home: str | Path, name: str) -> Path:
    return Path(home) / name / LEDGER_NAME


def _cache_stats(counters: dict) -> dict[str, dict]:
    """Hit/miss/ratio per ``<prefix>.hits/.misses`` pair in a counter
    dict (a ledger perf event, not the live registry — watch must not
    fold in whatever caches happen to live in *this* process)."""
    out: dict[str, dict] = {}
    for name in counters:
        for suffix in (".hits", ".misses"):
            if name.endswith(suffix):
                prefix = name[: -len(suffix)]
                break
        else:
            continue
        if prefix in out:
            continue
        hits = counters.get(f"{prefix}.hits", 0)
        misses = counters.get(f"{prefix}.misses", 0)
        total = hits + misses
        out[prefix] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }
    return out


def watch_snapshot(home: str | Path, name: str,
                   now: float | None = None) -> dict:
    """Progress + shard health + throughput of one campaign, store-only."""
    status = campaign_status(home, name)
    events, skipped = read_ledger(ledger_path(home, name))
    now = time.time() if now is None else now

    # Events of the *latest* run segment: shard pids and rates from a
    # run that crashed yesterday must not dilute today's throughput.
    last_run_idx = 0
    run_count = 0
    for i, ev in enumerate(events):
        if ev["event"] in _RUN_EVENTS:
            run_count += 1
            last_run_idx = i
    segment = events[last_run_idx:]
    run_event = next(
        (ev for ev in segment if ev["event"] in _RUN_EVENTS), None
    )

    shards: dict[int, dict] = {}
    faults = {"retries": 0, "timeouts": 0, "quarantined": 0,
              "worker_deaths": 0, "pool_respawns": 0}

    def shard_of(ev: dict) -> dict:
        return shards.setdefault(
            int(ev.get("shard", ev["pid"])), dict(_SHARD_DEFAULTS)
        )

    for ev in segment:
        if ev["event"] == EVENT_EVALUATED:
            shard = shard_of(ev)
            shard["evaluated"] += 1
            shard["attempts"] += int(ev.get("attempts", 1))
            shard["busy_s"] += float(ev.get("duration_s", 0.0))
            shard["last_ts"] = max(shard["last_ts"], ev["ts"])
        elif ev["event"] == EVENT_FAILED:
            shard = shard_of(ev)
            shard["failed"] += 1
            shard["last_ts"] = max(shard["last_ts"], ev["ts"])
        elif ev["event"] == EVENT_RETRIED:
            shard_of(ev)["retries"] += 1
            faults["retries"] += 1
        elif ev["event"] == EVENT_TIMEOUT:
            shard_of(ev)["timeouts"] += 1
            faults["timeouts"] += 1
        elif ev["event"] == EVENT_QUARANTINED:
            shard = shard_of(ev)
            shard["quarantined"] += 1
            shard["last_ts"] = max(shard["last_ts"], ev["ts"])
            faults["quarantined"] += 1
        elif ev["event"] == EVENT_WORKER_DIED:
            faults["worker_deaths"] += 1
        elif ev["event"] == EVENT_POOL_RESPAWNED:
            faults["pool_respawns"] += 1

    # Aggregate throughput: shards run in parallel, so the campaign
    # rate is the sum of the per-shard rates (count / busy time).
    cand_rate = 0.0
    for shard in shards.values():
        if shard["busy_s"] > 0:
            shard["rate"] = shard["evaluated"] / shard["busy_s"]
            cand_rate += shard["rate"]
        else:
            shard["rate"] = 0.0
    busy_s = sum(s["busy_s"] for s in shards.values())

    perf_event = next(
        (ev for ev in reversed(events) if ev["event"] == EVENT_PERF), None
    )
    counters = (perf_event or {}).get("counters", {})
    sa_iters = counters.get("sa.iterations", 0)
    iters_rate = sa_iters / busy_s if busy_s > 0 else 0.0

    pending = status["pending"]
    eta_s = pending / cand_rate if cand_rate > 0 and pending else None
    finished = any(
        ev["event"] in (EVENT_FINISHED, EVENT_INTERRUPTED) for ev in segment
    )

    return {
        "status": status,
        "runs": run_count,
        "resumed": bool(run_event and run_event["event"] == EVENT_RUN_RESUMED),
        "run_event": run_event,
        "run_active": bool(segment) and not finished,
        "shards": shards,
        "faults": faults,
        "cands_per_sec": cand_rate,
        "sa_iters_per_sec": iters_rate,
        "busy_s": busy_s,
        "eta_s": eta_s,
        "caches": _cache_stats(counters),
        "ledger_events": len(events),
        "ledger_skipped": skipped,
        "now": now,
    }


def render_watch(snap: dict) -> str:
    """One text frame of a watch snapshot."""
    from repro.reporting import format_table

    status = snap["status"]
    total = status["total"] or 1
    done = status["done"]
    bar_w = 30
    filled = int(round(bar_w * done / total))
    bar = "#" * filled + "-" * (bar_w - filled)
    state = "running" if snap["run_active"] else "idle"
    lines = [
        f"campaign {status['name']!r} [{bar}] {done}/{status['total']} done, "
        f"{status['pending']} pending, {status['failed']} failed"
        + (f", {status['quarantined']} quarantined"
           if status.get("quarantined") else "")
        + f" ({state}, run {snap['runs']}"
        + (" resumed" if snap["resumed"] else "") + ")",
    ]
    faults = snap.get("faults") or {}
    if any(faults.values()):
        lines.append(
            "faults: "
            f"{faults['retries']} retried, {faults['timeouts']} timed out, "
            f"{faults['quarantined']} quarantined, "
            f"{faults['worker_deaths']} worker death(s), "
            f"{faults['pool_respawns']} pool respawn(s)"
        )
    thr = (f"throughput: {snap['cands_per_sec']:.2f} cand/s, "
           f"{snap['sa_iters_per_sec']:.0f} SA it/s")
    if snap["eta_s"] is not None:
        thr += f" — ETA {snap['eta_s']:.0f}s"
    lines.append(thr)
    if snap["shards"]:
        rows = []
        for pid, s in sorted(snap["shards"].items()):
            mean = s["busy_s"] / s["evaluated"] if s["evaluated"] else 0.0
            age = max(0.0, snap["now"] - s["last_ts"])
            rows.append([
                pid, s["evaluated"], s["failed"],
                s.get("attempts", s["evaluated"]), s.get("retries", 0),
                s.get("timeouts", 0), s.get("quarantined", 0),
                f"{s['busy_s']:.1f}s", f"{mean:.2f}s", f"{age:.0f}s ago",
            ])
        lines.append("")
        lines.append(format_table(
            ["shard", "evaluated", "failed", "attempts", "retries",
             "timeouts", "poison", "busy", "s/cand", "last seen"],
            rows,
        ))
    if snap["caches"]:
        rows = [
            [name, int(c["hits"]), int(c["misses"]), f"{c['hit_rate']:.1%}"]
            for name, c in sorted(snap["caches"].items())
        ]
        lines.append("")
        lines.append(format_table(
            ["cache", "hits", "misses", "hit rate"], rows,
        ))
    best = status.get("best", {})
    if best:
        rows = [[axis, rec["arch"], rec["value"]]
                for axis, rec in best.items()]
        lines.append("")
        lines.append(format_table(["objective", "best arch", "value"], rows))
    lines.append("")
    lines.append(f"ledger: {snap['ledger_events']} event(s)"
                 + (f", {snap['ledger_skipped']} skipped"
                    if snap["ledger_skipped"] else ""))
    return "\n".join(lines)


def campaign_watch(
    home: str | Path,
    name: str,
    once: bool = False,
    interval: float = 2.0,
    stream=None,
    as_json: bool = False,
) -> int:
    """Render the campaign until interrupted (or once); returns 0.

    ``as_json`` emits each frame as one machine-readable JSON line
    (the raw :func:`watch_snapshot` dict) instead of the text report,
    so dashboards and scripts can poll a campaign without screen-
    scraping tables.
    """
    import json
    import sys

    stream = sys.stdout if stream is None else stream
    try:
        while True:
            snap = watch_snapshot(home, name)
            if as_json:
                frame = json.dumps(snap, sort_keys=True)
            else:
                frame = render_watch(snap)
                if not once and getattr(stream, "isatty", lambda: False)():
                    stream.write("\x1b[2J\x1b[H")
            stream.write(frame + "\n")
            stream.flush()
            if once:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
