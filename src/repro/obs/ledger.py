"""The structured run ledger: an append-only JSONL event stream.

Every campaign run appends one line per notable event — run started or
resumed, candidate evaluated (with duration and the mean/variance of
its per-restart SA wall times), candidate failed (with a traceback
digest), run interrupted/finished, final perf snapshot — into
``<home>/<name>/ledger.jsonl``.  ``repro campaign watch`` tails this
file store-only; no models, grids or evaluators are ever loaded.

Durability follows the :class:`~repro.campaign.store.ResultStore`
conventions: a single writer appends flushed whole lines, and the
reader skips unparseable trailing data, so a kill between two events
costs at most the torn final line.  Telemetry must never take a run
down with it: write errors are swallowed and counted under
``obs.ledger.errors``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from pathlib import Path

from repro.perf.counters import PERF

#: Ledger file name inside a campaign directory.
LEDGER_NAME = "ledger.jsonl"


class RunLedger:
    """Single-writer append-only event stream for one campaign."""

    def __init__(self, path: str | Path, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self._fh = None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            PERF.add("obs.ledger.errors")

    def emit(self, event: str, **fields) -> None:
        """Append one event line (best-effort, never raises)."""
        rec = {"ts": time.time(), "pid": os.getpid(), "event": event}
        rec.update(fields)
        try:
            line = json.dumps(rec, separators=(",", ":"), default=str)
        except (TypeError, ValueError):
            PERF.add("obs.ledger.errors")
            return
        if "\n" in line:
            PERF.add("obs.ledger.errors")
            return
        try:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except OSError:
            PERF.add("obs.ledger.errors")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                PERF.add("obs.ledger.errors")
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_ledger(path: str | Path) -> tuple[list[dict], int]:
    """``(events, skipped_lines)`` of a ledger file, torn-tail tolerant.

    A missing file reads as an empty ledger; unparseable lines (the
    torn tail of a killed writer, or foreign junk) are skipped and
    counted, exactly like the result-store segment scan.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    events: list[dict] = []
    skipped = 0
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(rec, dict) or "event" not in rec:
            skipped += 1
            continue
        events.append(rec)
    return events, skipped


def failure_digest(error: BaseException) -> str:
    """A short stable digest of an exception's traceback.

    Two crashes with the same stack collapse to the same digest, so the
    ledger (and dashboards over it) can group failures without storing
    full tracebacks per event.
    """
    text = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    return hashlib.sha256(text.encode()).hexdigest()[:12]
