"""Nested span tracing over the coarse phases of a run.

A *span* is one timed region — a graph compilation, an SA restart, a
candidate evaluation, a store put — recorded with wall time, process
CPU time, pid/tid attribution and a parent link, so a whole parallel
DSE run renders as a flame graph in ``chrome://tracing`` / Perfetto.

Design constraints, in order:

* **Zero cost when off.**  Tracing is disabled by default; a disabled
  :func:`trace` call returns a shared no-op context manager without
  touching the clock.  Call sites are coarse (per run / per candidate,
  never per SA iteration), so even the enabled overhead is a handful
  of spans per seconds-long phase.
* **One channel for workers.**  The tracer registers itself on the
  :func:`repro.perf.counters.register_snapshot_extra` channel: the
  span buffer rides inside ``PERF.snapshot()`` and is folded back by
  ``PERF.merge()`` — exactly the round trip pool workers already make,
  so spans from every pid land in the parent with no extra IPC.
* **Bounded memory.**  The buffer holds at most ``max_spans`` records;
  overflow drops the newest span and counts ``obs.trace.dropped``.

Spans are plain dicts (JSON-ready); parent links (``sid``/``parent``)
are only meaningful within one pid — worker roots are top-level spans
of their own process row in the trace viewer.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

from repro.perf.counters import PERF, register_snapshot_extra


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


class _ActiveSpan:
    """One live span: times the enclosed block and records on exit."""

    __slots__ = ("tracer", "name", "attrs", "ts", "t0", "c0", "sid",
                 "parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        stack = self.tracer._stack()
        self.sid = next(self.tracer._ids)
        self.parent = stack[-1] if stack else -1
        stack.append(self.sid)
        self.ts = time.time()
        self.c0 = time.process_time()
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter() - self.t0
        cpu = time.process_time() - self.c0
        stack = self.tracer._stack()
        if stack and stack[-1] == self.sid:
            stack.pop()
        self.tracer._record({
            "name": self.name,
            "ts": self.ts,
            "dur": dur,
            "cpu": cpu,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "sid": self.sid,
            "parent": self.parent,
            "attrs": self.attrs,
        })
        return False


class Tracer:
    """Bounded in-process span buffer with per-thread parent tracking."""

    def __init__(self, max_spans: int = 100_000):
        self.enabled = False
        self.max_spans = max_spans
        self.spans: list[dict] = []
        self.dropped = 0
        self._ids = itertools.count()
        self._local = threading.local()

    # -- recording -----------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def trace(self, name: str, /, **attrs):
        """Context manager timing one named span (no-op when disabled)."""
        if not self.enabled:
            return _NULL
        return _ActiveSpan(self, name, attrs)

    def _record(self, span: dict) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            PERF.add("obs.trace.dropped")
            return
        self.spans.append(span)

    # -- lifecycle -----------------------------------------------------

    def enable(self, max_spans: int | None = None) -> None:
        if max_spans is not None:
            self.max_spans = max_spans
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop recorded spans *and* the open-parent stacks.

        Resetting the stacks matters across ``fork``: a pool worker
        inherits whatever spans the parent had open at fork time, and
        without a reset every span the worker records would hang off a
        phantom parent that only exists in the parent process.  The
        per-task ``PERF.reset()`` in the worker routes through here.
        """
        self.spans = []
        self.dropped = 0
        self._local = threading.local()

    # -- worker channel ------------------------------------------------

    def snapshot(self) -> list[dict]:
        """The recorded spans, JSON-ready (does not clear the buffer).

        Workers call this implicitly through ``PERF.snapshot()``; each
        task resets first, so successive snapshots ship deltas.
        """
        return list(self.spans)

    def merge(self, spans: list[dict]) -> None:
        """Fold shipped spans (e.g. a worker snapshot) into the buffer.

        Pid/tid attribution is preserved — merged spans keep their own
        process row in the rendered trace.
        """
        for span in spans:
            self._record(dict(span))

    # -- Chrome trace export -------------------------------------------

    def chrome_trace(self, spans: list[dict] | None = None) -> dict:
        """The buffer as a Chrome-trace-viewer / Perfetto JSON object.

        Complete (``"ph": "X"``) events with microsecond timestamps
        rebased to the earliest span, one row per (pid, tid); span
        attrs plus CPU time and the ``sid``/``parent`` links ride in
        ``args`` so :mod:`repro.obs.report` can rebuild the call tree.
        """
        spans = self.snapshot() if spans is None else spans
        t0 = min((s["ts"] for s in spans), default=0.0)
        events = []
        pids = set()
        for s in spans:
            pids.add(s["pid"])
            events.append({
                "name": s["name"],
                "ph": "X",
                "ts": (s["ts"] - t0) * 1e6,
                "dur": s["dur"] * 1e6,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": {
                    **s.get("attrs", {}),
                    "cpu_ms": s["cpu"] * 1e3,
                    "sid": s["sid"],
                    "parent": s["parent"],
                },
            })
        this_pid = os.getpid()
        for pid in sorted(pids):
            label = "main" if pid == this_pid else f"worker-{pid}"
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {label}"},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Atomically write :meth:`chrome_trace` JSON to ``path``."""
        # Lazy import: obs.trace must stay importable from the layers
        # below repro.io (same constraint as repro.perf.bench).
        from repro.io.atomic import atomic_write_json

        atomic_write_json(path, self.chrome_trace(), indent=None)


#: The process-global tracer every instrumented subsystem reports into.
TRACER = Tracer()

register_snapshot_extra(
    "spans",
    collect=lambda: TRACER.snapshot() or None,
    merge=TRACER.merge,
    reset=TRACER.clear,
)


def trace(name: str, /, **attrs):
    """Module-level shorthand for ``TRACER.trace`` (the call sites'
    spelling: ``with trace("sa.run", groups=3): ...``)."""
    if not TRACER.enabled:
        return _NULL
    return _ActiveSpan(TRACER, name, attrs)
