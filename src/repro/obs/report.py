"""Trace-file aggregation: ``repro profile-report``.

Loads a Chrome-trace JSON written by ``--trace``, validates its shape,
and folds the complete events into a per-span-name table: calls, total
wall time, *self* time (total minus the time spent in child spans) and
CPU time, across every pid in the file.  Self time is what makes a
flat table out of nested spans — a ``candidate`` span's total includes
its ``map``/``sa.run`` children, but its self time is only the glue
around them.

Parenting uses the ``sid``/``parent`` links the tracer records in each
event's ``args`` (scoped per pid).  Events without links (foreign
traces) still aggregate, with self time equal to total time.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError


class TraceFormatError(ReproError):
    """The file is not a loadable Chrome-trace JSON object."""


def validate_chrome_trace(data) -> list[dict]:
    """Check the Chrome-trace shape; returns the event list.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare array form; every complete (``"X"``) event must carry numeric
    ``ts``/``dur`` and a ``pid`` — what trace viewers require to render
    anything at all.
    """
    if isinstance(data, dict):
        events = data.get("traceEvents")
    elif isinstance(data, list):
        events = data
    else:
        raise TraceFormatError(
            f"expected a trace object or event array, got {type(data).__name__}"
        )
    if not isinstance(events, list):
        raise TraceFormatError("traceEvents is not a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise TraceFormatError(f"event {i} is not a phased event object")
        if ev["ph"] == "X":
            for field in ("name", "ts", "dur", "pid"):
                if field not in ev:
                    raise TraceFormatError(
                        f"complete event {i} is missing {field!r}"
                    )
            if not isinstance(ev["ts"], (int, float)) or \
                    not isinstance(ev["dur"], (int, float)):
                raise TraceFormatError(
                    f"complete event {i} has non-numeric ts/dur"
                )
    return events


def load_chrome_trace(path: str | Path) -> list[dict]:
    """Load + validate a trace file; returns its event list."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise TraceFormatError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path} is not valid JSON: {exc}") from exc
    return validate_chrome_trace(data)


def aggregate_trace(events: list[dict]) -> dict[str, dict]:
    """Fold complete events into per-name totals.

    Returns ``name -> {calls, total_ms, self_ms, cpu_ms, pids}`` where
    ``self_ms`` is total minus direct children's wall time (clamped at
    zero against clock skew).
    """
    complete = [e for e in events if e.get("ph") == "X"]
    # Wall time of each span's direct children, keyed by (pid, sid).
    child_dur: dict[tuple, float] = {}
    for ev in complete:
        args = ev.get("args") or {}
        parent = args.get("parent", -1)
        if parent is not None and parent != -1:
            key = (ev["pid"], parent)
            child_dur[key] = child_dur.get(key, 0.0) + ev["dur"]
    out: dict[str, dict] = {}
    for ev in complete:
        args = ev.get("args") or {}
        sid = args.get("sid")
        children = child_dur.get((ev["pid"], sid), 0.0) if sid is not None \
            else 0.0
        rec = out.setdefault(ev["name"], {
            "calls": 0, "total_ms": 0.0, "self_ms": 0.0, "cpu_ms": 0.0,
            "pids": set(),
        })
        rec["calls"] += 1
        rec["total_ms"] += ev["dur"] / 1e3
        rec["self_ms"] += max(0.0, ev["dur"] - children) / 1e3
        rec["cpu_ms"] += float(args.get("cpu_ms", 0.0))
        rec["pids"].add(ev["pid"])
    return out


#: Sort keys accepted by ``repro profile-report --sort``.
SORT_KEYS = {
    "self": "self_ms",
    "total": "total_ms",
    "calls": "calls",
    "cpu": "cpu_ms",
}


def profile_rows(agg: dict[str, dict], sort: str = "self") -> list[list]:
    """Display rows of an aggregation, heaviest first."""
    key = SORT_KEYS.get(sort, "self_ms")
    total_self = sum(rec["self_ms"] for rec in agg.values()) or 1.0
    rows = []
    for name, rec in sorted(
        agg.items(), key=lambda kv: kv[1][key], reverse=True
    ):
        rows.append([
            name,
            rec["calls"],
            f"{rec['total_ms']:.2f}",
            f"{rec['self_ms']:.2f}",
            f"{rec['self_ms'] / total_self:.1%}",
            f"{rec['cpu_ms']:.2f}",
            len(rec["pids"]),
        ])
    return rows


#: Header row matching :func:`profile_rows`.
PROFILE_HEADERS = ["span", "calls", "total ms", "self ms", "self %",
                   "cpu ms", "pids"]
