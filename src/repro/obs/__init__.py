"""Observability: span tracing, run ledger, metrics export, reports.

The package layers on :mod:`repro.perf` — the tracer ships worker spans
through the same ``PERF.snapshot()``/``PERF.merge()`` round trip the
counters already make — and stays importable from every layer above
``repro.perf`` (``repro.io`` is imported lazily, like
:mod:`repro.perf.bench`).

:mod:`repro.obs.watch` is deliberately *not* imported here: it depends
on :mod:`repro.campaign.runner`, which itself uses the ledger, and
eager import would cycle.  ``repro campaign watch`` imports it
directly.
"""

from repro.obs.diag import (
    DIAG,
    DiagAggregator,
    SARunDiag,
    StreamingMoments,
    render_campaign_report,
    render_sa_diag,
    sparkline,
)
from repro.obs.ledger import (
    LEDGER_NAME,
    RunLedger,
    failure_digest,
    read_ledger,
)
from repro.obs.metrics import metrics_json, prometheus_text, write_metrics
from repro.obs.report import (
    PROFILE_HEADERS,
    SORT_KEYS,
    TraceFormatError,
    aggregate_trace,
    load_chrome_trace,
    profile_rows,
    validate_chrome_trace,
)
from repro.obs.trace import TRACER, Tracer, trace

__all__ = [
    "DIAG",
    "DiagAggregator",
    "LEDGER_NAME",
    "PROFILE_HEADERS",
    "RunLedger",
    "SARunDiag",
    "SORT_KEYS",
    "StreamingMoments",
    "TRACER",
    "TraceFormatError",
    "Tracer",
    "aggregate_trace",
    "failure_digest",
    "load_chrome_trace",
    "metrics_json",
    "profile_rows",
    "prometheus_text",
    "read_ledger",
    "render_campaign_report",
    "render_sa_diag",
    "sparkline",
    "trace",
    "validate_chrome_trace",
    "write_metrics",
]
