"""Metrics export: ``PERF.snapshot()`` as Prometheus text or JSON.

The Prometheus exposition covers every counter (``repro_<name>``) and
timer (``repro_<label>_seconds_total`` + ``_calls_total``), with metric
names sanitized to the ``[a-zA-Z_][a-zA-Z0-9_]*`` charset.  Everything
is exported as the ``counter`` type: the registry only ever
accumulates, which is exactly Prometheus's counter contract — rates
and hit ratios are derived server-side.

The output is deterministic (sorted) so repeated scrapes of the same
snapshot are byte-identical; the serve daemon (ROADMAP item 1) can
mount :func:`prometheus_text` directly as its ``/metrics`` endpoint.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, prefix: str = "repro_") -> str:
    out = prefix + _SANITIZE.sub("_", name)
    if not re.match(r"[a-zA-Z_]", out):
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(snap: dict, prefix: str = "repro_") -> str:
    """One ``PERF.snapshot()`` in the Prometheus text exposition format."""
    lines: list[str] = []

    def sample(metric: str, value: float, help_text: str) -> None:
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in sorted(snap.get("counters", {}).items()):
        sample(_metric_name(name, prefix), value,
               f"repro counter {name!r}")
    for label, rec in sorted(snap.get("timers", {}).items()):
        base = _metric_name(label, prefix)
        sample(f"{base}_seconds_total", rec["seconds"],
               f"accumulated wall seconds of timer {label!r}")
        sample(f"{base}_calls_total", rec["calls"],
               f"accumulated calls of timer {label!r}")
    return "\n".join(lines) + "\n" if lines else ""


def metrics_json(snap: dict) -> str:
    """Counters + timers as deterministic JSON (spans stripped)."""
    return json.dumps(
        {
            "counters": snap.get("counters", {}),
            "timers": snap.get("timers", {}),
        },
        indent=2, sort_keys=True,
    ) + "\n"


def write_metrics(path: str | Path, snap: dict) -> Path:
    """Write a snapshot as Prometheus text (``.prom``/``.txt``) or JSON.

    The format follows the file suffix; anything that is not ``.prom``
    or ``.txt`` gets JSON.  Writes are atomic.
    """
    from repro.io.atomic import atomic_write_text

    path = Path(path)
    if path.suffix in (".prom", ".txt"):
        return atomic_write_text(path, prometheus_text(snap))
    return atomic_write_text(path, metrics_json(snap))
