"""Search-quality diagnostics: convergence curves + operator effectiveness.

PRs 6-7 made *execution* observable; this module makes the *search*
observable.  With ``SASettings(diag=True)`` every annealing run records

* a **convergence curve** — (iteration, best cost, current cost)
  triples, stride-sampled to a bounded number of points: when the
  buffer fills, every other point is dropped and the stride doubles,
  so a 10^6-iteration run still costs <= ``max_points`` triples and
  the kept points are exactly the iterations divisible by the final
  stride (deterministic, so identical seeds yield identical curves);
* **per-operator effectiveness** — draw/proposal/accept/improve counts
  and the delta-score distribution as streaming count/mean/M2 moments
  (Welford), never raw lists;
* **temperature checkpoints** — (iteration, T) at a coarse stride,
  enough to reconstruct the cooling schedule.

Design constraints mirror :mod:`repro.obs.trace`:

* **Opt-in and near-free when off.**  The controller holds ``None``
  instead of a recorder; the dormant cost is a ``None`` check per
  iteration.  Diagnostics never change what gets computed, so
  :func:`repro.campaign.keys.settings_digest` excludes the flag.
* **One channel for workers.**  The process-global :data:`DIAG`
  aggregator registers on the ``PERF.snapshot()`` extras channel;
  per-pid operator stats ride the same round trip pool workers
  already make, and the campaign ledger's final ``perf`` event
  carries the per-pid table for store-only reporting.
* **Bounded memory.**  Curves are downsampled, distributions are
  three floats, temperatures are <= ~33 checkpoints.
"""

from __future__ import annotations

import math
import os

from repro.perf.counters import register_snapshot_extra

#: Curve buffer bound: on reaching this many points, every other point
#: is dropped and the sampling stride doubles.
MAX_CURVE_POINTS = 512

#: Temperature checkpoints per run (plus the final iteration's).
TEMP_CHECKPOINTS = 32

#: Unicode sparkline ramp (space for "no signal").
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 32) -> str:
    """Render a numeric series as a fixed-width unicode sparkline."""
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        # Bucket means keep the overall shape at a glance.
        step = len(values) / width
        buckets = []
        for i in range(width):
            lo = int(i * step)
            hi = max(lo + 1, int((i + 1) * step))
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - lo) / span * len(_SPARK)))]
        for v in values
    )


class StreamingMoments:
    """Welford count/mean/M2 accumulator (population variance)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self, count: int = 0, mean: float = 0.0, m2: float = 0.0):
        self.count = count
        self.mean = mean
        self.m2 = m2

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    def merge(self, other: "StreamingMoments") -> None:
        """Chan's parallel-merge of two accumulators."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = (
                other.count, other.mean, other.m2
            )
            return
        n = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / n
        self.mean += delta * other.count / n
        self.count = n

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingMoments":
        return cls(
            count=int(data.get("count", 0)),
            mean=float(data.get("mean", 0.0)),
            m2=float(data.get("m2", 0.0)),
        )


class SARunDiag:
    """Recorder attached to one :class:`~repro.core.sa.SAController` run.

    The controller calls :meth:`draw` per operator draw,
    :meth:`proposal` per scored move, and — stride-gated by
    :meth:`want` — :meth:`sample` once per recorded iteration; all fast
    paths are dict lookups and integer adds.
    """

    __slots__ = ("seed", "iterations", "curve", "curve_stride",
                 "max_points", "temps", "temp_stride", "ops")

    def __init__(self, iterations: int, seed: int,
                 max_points: int = MAX_CURVE_POINTS):
        self.seed = seed
        self.iterations = iterations
        self.curve: list[list[float]] = []
        self.curve_stride = 1
        self.max_points = max_points
        self.temps: list[list[float]] = []
        self.temp_stride = max(1, iterations // TEMP_CHECKPOINTS)
        #: name -> {uses, proposed, accepted, improved, delta moments}
        self.ops: dict[str, dict] = {}

    # -- operator effectiveness ----------------------------------------

    def _op(self, name: str) -> dict:
        rec = self.ops.get(name)
        if rec is None:
            rec = self.ops[name] = {
                "uses": 0, "proposed": 0, "accepted": 0, "improved": 0,
                "delta": StreamingMoments(),
            }
        return rec

    def draw(self, name: str) -> None:
        """One operator draw (counted even when the op returns None)."""
        self._op(name)["uses"] += 1

    def proposal(self, name: str, rel_delta: float,
                 accepted: bool, improved: bool) -> None:
        """One scored move: its relative cost delta and outcome."""
        rec = self._op(name)
        rec["proposed"] += 1
        if accepted:
            rec["accepted"] += 1
        if improved:
            rec["improved"] += 1
        rec["delta"].add(rel_delta)

    # -- curve + temperature sampling ----------------------------------

    def want(self, iteration: int) -> bool:
        """True when ``iteration`` should be sampled (cheap gate)."""
        return (iteration % self.curve_stride == 0
                or iteration % self.temp_stride == 0)

    def sample(self, iteration: int, best: float, current: float,
               temperature: float) -> None:
        if iteration % self.temp_stride == 0:
            self.temps.append([iteration, temperature])
        if iteration % self.curve_stride == 0:
            self.curve.append([iteration, best, current])
            if len(self.curve) >= self.max_points:
                # Keep points where iteration % (2*stride) == 0 — the
                # same set a run started at the doubled stride would
                # have kept, so downsampling stays deterministic.
                self.curve = self.curve[::2]
                self.curve_stride *= 2

    # -- export --------------------------------------------------------

    def to_dict(self, stats=None) -> dict:
        """JSON-ready record of this run (curve, temps, operators)."""
        out = {
            "seed": self.seed,
            "iterations": self.iterations,
            "curve": [list(p) for p in self.curve],
            "curve_stride": self.curve_stride,
            "temps": [list(p) for p in self.temps],
            "operators": {
                name: {
                    "uses": rec["uses"],
                    "proposed": rec["proposed"],
                    "accepted": rec["accepted"],
                    "improved": rec["improved"],
                    "delta": rec["delta"].to_dict(),
                }
                for name, rec in sorted(self.ops.items())
            },
        }
        if stats is not None:
            out["initial_cost"] = stats.initial_cost
            out["final_cost"] = stats.final_cost
            out["best_iteration"] = stats.best_iteration
        return out


# ----------------------------------------------------------------------
# The per-pid aggregator on the PERF snapshot channel
# ----------------------------------------------------------------------


def _merge_op_stats(into: dict, ops: dict) -> None:
    """Fold one run's serialized operator table into ``into``."""
    for name, rec in ops.items():
        slot = into.get(name)
        if slot is None:
            slot = into[name] = {
                "uses": 0, "proposed": 0, "accepted": 0, "improved": 0,
                "delta": {"count": 0, "mean": 0.0, "m2": 0.0},
            }
        for key in ("uses", "proposed", "accepted", "improved"):
            slot[key] += int(rec.get(key, 0))
        moments = StreamingMoments.from_dict(slot["delta"])
        moments.merge(StreamingMoments.from_dict(rec.get("delta", {})))
        slot["delta"] = moments.to_dict()


class DiagAggregator:
    """Per-pid operator-effectiveness totals, shipped like spans.

    Keys are stringified pids (JSON round-trips dict keys as strings);
    a worker's snapshot merges into the parent under the *worker's*
    pid, so a 2-worker campaign's ledger perf event shows two rows per
    operator — the acceptance signal that sharding actually spread.
    """

    def __init__(self):
        self.by_pid: dict[str, dict] = {}

    def record(self, ops: dict) -> None:
        """Fold one finished run's operator table into this pid's slot."""
        _merge_op_stats(self.by_pid.setdefault(str(os.getpid()), {}), ops)

    def snapshot(self) -> dict:
        """JSON-ready copy (does not clear)."""
        return {
            pid: {
                name: {**rec, "delta": dict(rec["delta"])}
                for name, rec in ops.items()
            }
            for pid, ops in self.by_pid.items()
        }

    def merge(self, payload: dict) -> None:
        for pid, ops in payload.items():
            _merge_op_stats(self.by_pid.setdefault(str(pid), {}), ops)

    def clear(self) -> None:
        self.by_pid = {}


#: The process-global aggregator every diag-enabled SA run folds into.
DIAG = DiagAggregator()

register_snapshot_extra(
    "diag",
    collect=lambda: DIAG.snapshot() or None,
    merge=DIAG.merge,
    reset=DIAG.clear,
)


# ----------------------------------------------------------------------
# Rendering helpers (sa-report and campaign report)
# ----------------------------------------------------------------------


OPERATOR_HEADERS = ["operator", "uses", "proposed", "accepted", "accept%",
                    "improved", "mean Δ", "σ(Δ)"]


def operator_rows(ops: dict) -> list[list]:
    """Table rows of one serialized operator-effectiveness dict."""
    rows = []
    for name, rec in sorted(ops.items()):
        moments = StreamingMoments.from_dict(rec.get("delta", {}))
        proposed = rec.get("proposed", 0)
        accepted = rec.get("accepted", 0)
        rows.append([
            name, rec.get("uses", 0), proposed, accepted,
            f"{accepted / proposed:.1%}" if proposed else "-",
            rec.get("improved", 0),
            f"{moments.mean:+.4f}" if moments.count else "-",
            f"{moments.stddev:.4f}" if moments.count else "-",
        ])
    return rows


def merged_operator_table(by_pid: dict) -> dict:
    """One operator table pooled over every pid's slot."""
    merged: dict[str, dict] = {}
    for ops in by_pid.values():
        _merge_op_stats(merged, ops)
    return merged


def curve_summary(diag: dict) -> dict:
    """Headline numbers of one run diag (initial/final/spark/points)."""
    curve = diag.get("curve", [])
    best = [p[1] for p in curve]
    return {
        "points": len(curve),
        "stride": diag.get("curve_stride", 1),
        "initial": best[0] if best else diag.get("initial_cost", 0.0),
        "final": best[-1] if best else diag.get("final_cost", 0.0),
        "best_iteration": diag.get("best_iteration", 0),
        "spark": sparkline(best),
    }


def render_sa_diag(restart_diags: list[dict]) -> str:
    """Text report of one mapping's per-restart diagnostics."""
    from repro.reporting import format_table

    lines = []
    rows = []
    for i, diag in enumerate(restart_diags):
        cs = curve_summary(diag)
        improvement = (1.0 - cs["final"] / cs["initial"]
                       if cs["initial"] else 0.0)
        rows.append([
            i, diag.get("seed", "-"), cs["points"], cs["stride"],
            f"{cs['initial']:.4g}", f"{cs['final']:.4g}",
            f"{improvement:.1%}", cs["best_iteration"], cs["spark"],
        ])
    lines.append(format_table(
        ["restart", "seed", "points", "stride", "initial", "final",
         "improved", "best@", "best-cost curve"],
        rows,
    ))
    merged: dict[str, dict] = {}
    for diag in restart_diags:
        _merge_op_stats(merged, diag.get("operators", {}))
    if merged:
        lines.append("")
        lines.append(format_table(OPERATOR_HEADERS, operator_rows(merged)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Store-only campaign report
# ----------------------------------------------------------------------


def campaign_report_data(home, name) -> dict:
    """Assemble the search-quality report of a campaign, store-only.

    Joins the manifest (candidate order), the result store (scores,
    per-workload diagnostics) and the run ledger (per-pid operator
    stats from the final perf event, failure digests).  Imports are
    lazy for the same reason :mod:`repro.obs.watch` is kept out of
    ``repro.obs.__init__``: the campaign layer sits above this one.
    """
    from pathlib import Path

    from repro.campaign.runner import STORE_DIR, _load_manifest
    from repro.campaign.store import KIND_CANDIDATE, ResultStore
    from repro.io.serialization import candidate_result_from_dict
    from repro.obs.ledger import LEDGER_NAME, read_ledger

    manifest = _load_manifest(home, name)
    store = ResultStore(Path(home) / STORE_DIR)
    events, skipped = read_ledger(Path(home) / name / LEDGER_NAME)

    candidates = []
    warm_itb, cold_itb = [], []
    for i, key in enumerate(manifest["candidate_keys"]):
        rec = store.get(KIND_CANDIDATE, key)
        if rec is None:
            continue
        result = candidate_result_from_dict(rec)
        itb = (sum(result.iters_to_best.values())
               / len(result.iters_to_best)) if result.iters_to_best else None
        if itb is not None:
            (warm_itb if result.warm_started else cold_itb).append(itb)
        curves = {}
        for wl, diag in sorted(result.sa_diag.items()):
            restarts = diag.get("restarts", [])
            if not restarts:
                continue
            # The winning restart is the cheapest one.
            best = min(
                restarts,
                key=lambda d: d.get("final_cost", float("inf")),
            )
            curves[wl] = curve_summary(best)
        candidates.append({
            "index": i,
            "arch": result.arch.paper_tuple(),
            "score": result.score,
            "warm_started": result.warm_started,
            "iters_to_best": result.iters_to_best,
            "operator_uses": result.operator_uses,
            "curves": curves,
        })

    perf_event = next(
        (ev for ev in reversed(events) if ev.get("event") == "perf"), None
    )
    diag_by_pid = (perf_event or {}).get("diag", {}) or {}

    failures: dict[str, dict] = {}
    for ev in events:
        if ev.get("event") != "candidate_failed":
            continue
        digest = ev.get("digest", "?")
        slot = failures.setdefault(
            digest, {"count": 0, "error": ev.get("error", ""), "indices": []}
        )
        slot["count"] += 1
        slot["indices"].append(ev.get("index"))

    # Poison candidates, keyed by index (later verdicts win: a
    # re-quarantine after --retry-quarantined updates the row).
    quarantined: dict[int, dict] = {}
    for ev in events:
        if ev.get("event") != "candidate_quarantined":
            continue
        quarantined[ev.get("index", -1)] = {
            "index": ev.get("index"),
            "cause": ev.get("cause", "?"),
            "attempts": ev.get("attempts", 0),
            "error": ev.get("error", ""),
            "digest": ev.get("digest", "?"),
        }

    def _mean(xs):
        return sum(xs) / len(xs) if xs else None

    return {
        "name": manifest["name"],
        "total": len(manifest["candidate_keys"]),
        "done": len(candidates),
        "candidates": candidates,
        "iters_to_best": {
            "warm_mean": _mean(warm_itb), "warm_runs": len(warm_itb),
            "cold_mean": _mean(cold_itb), "cold_runs": len(cold_itb),
        },
        "diag_by_pid": diag_by_pid,
        "failures": failures,
        "quarantined": sorted(quarantined.values(),
                              key=lambda q: q["index"]),
        "ledger_skipped": skipped,
    }


def render_campaign_report(data: dict) -> str:
    """One text frame of :func:`campaign_report_data`."""
    from repro.reporting import format_table

    lines = [
        f"campaign {data['name']!r} search report — "
        f"{data['done']}/{data['total']} candidates evaluated",
    ]

    rows = []
    for cand in data["candidates"]:
        if cand["curves"]:
            for wl, cs in sorted(cand["curves"].items()):
                rows.append([
                    cand["index"], cand["arch"], f"{cand['score']:.4g}",
                    "warm" if cand["warm_started"] else "cold",
                    wl, cand["iters_to_best"].get(wl, "-"),
                    f"{cs['initial']:.3g}→{cs['final']:.3g}",
                    cs["spark"],
                ])
        else:
            rows.append([
                cand["index"], cand["arch"], f"{cand['score']:.4g}",
                "warm" if cand["warm_started"] else "cold",
                "-", "-", "-", "",
            ])
    if rows:
        lines.append("")
        lines.append(format_table(
            ["cand", "arch", "score", "start", "workload", "best@",
             "cost", "convergence"],
            rows,
        ))

    itb = data["iters_to_best"]
    if itb["warm_runs"] or itb["cold_runs"]:
        lines.append("")
        lines.append(format_table(
            ["start", "runs", "mean iters-to-best"],
            [
                ["warm", itb["warm_runs"],
                 f"{itb['warm_mean']:.1f}" if itb["warm_mean"] is not None
                 else "-"],
                ["cold", itb["cold_runs"],
                 f"{itb['cold_mean']:.1f}" if itb["cold_mean"] is not None
                 else "-"],
            ],
        ))

    if data["diag_by_pid"]:
        lines.append("")
        lines.append("operator effectiveness (per shard pid, last run):")
        rows = []
        for pid, ops in sorted(data["diag_by_pid"].items()):
            for row in operator_rows(ops):
                rows.append([pid, *row])
        lines.append(format_table(["pid", *OPERATOR_HEADERS], rows))
        merged = merged_operator_table(data["diag_by_pid"])
        lines.append("")
        lines.append("pooled over shards:")
        lines.append(format_table(OPERATOR_HEADERS, operator_rows(merged)))

    if data["failures"]:
        lines.append("")
        rows = [
            [digest, rec["count"],
             ",".join(str(i) for i in rec["indices"][:8]),
             rec["error"][:60]]
            for digest, rec in sorted(data["failures"].items())
        ]
        lines.append(format_table(
            ["failure digest", "count", "candidates", "error"], rows,
        ))

    if data.get("quarantined"):
        lines.append("")
        lines.append("quarantined (poison) candidates — resume skips "
                     "these; re-try with --retry-quarantined:")
        rows = [
            [q["index"], q["cause"], q["attempts"], q["digest"],
             q["error"][:60]]
            for q in data["quarantined"]
        ]
        lines.append(format_table(
            ["cand", "cause", "attempts", "digest", "error"], rows,
        ))

    if data["ledger_skipped"]:
        lines.append("")
        lines.append(f"ledger: {data['ledger_skipped']} unparseable line(s) "
                     "skipped")
    return "\n".join(lines)
