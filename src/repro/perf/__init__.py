"""Performance instrumentation: counters, timers, bench emission."""

from repro.perf.bench import DEFAULT_BENCH_PATH, emit_bench, read_bench
from repro.perf.counters import PERF, LruDict, PerfRegistry

__all__ = [
    "DEFAULT_BENCH_PATH",
    "LruDict",
    "PERF",
    "PerfRegistry",
    "emit_bench",
    "read_bench",
]
