"""Performance instrumentation: counters, timers, bench emission."""

from repro.perf.bench import DEFAULT_BENCH_PATH, emit_bench, read_bench
from repro.perf.counters import PERF, LruDict, PerfRegistry
from repro.perf.history import (
    DEFAULT_HISTORY_PATH,
    append_history,
    diff_rows,
    history_path_for,
    read_history,
)

__all__ = [
    "DEFAULT_BENCH_PATH",
    "DEFAULT_HISTORY_PATH",
    "LruDict",
    "PERF",
    "PerfRegistry",
    "append_history",
    "diff_rows",
    "emit_bench",
    "history_path_for",
    "read_bench",
    "read_history",
]
