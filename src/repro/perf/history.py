"""The benchmark trajectory: ``BENCH_history.jsonl``.

``BENCH_perf.json`` is one overwritten snapshot — useful as "the
current numbers", blind as a trend.  Every :func:`repro.perf.bench.
emit_bench` therefore also appends one compact row here: timestamp,
git SHA, a machine fingerprint, and the numeric leaves of the emitted
payload (means, variances and sample counts included, raw sample lists
reduced to their length).  The file is append-only JSONL with the same
durability contract as the run ledger and store segments: a single
writer appends flushed whole lines, readers skip an unparseable
trailing line, and a kill mid-append costs at most that line.

``repro perf history`` renders the trajectory; ``repro perf diff``
compares two rows with a **variance-aware verdict** per metric: where
both rows carry ``<base>_mean`` / ``<base>_var`` / ``<base>_n``, a
Welch-style overlap test (z = Δmean / sqrt(va/na + vb/nb)) decides
significance, so noisy single-CPU CI runs don't flag phantom
regressions — the heteroscedastic-weighting stance of Hong, Fessler &
Balzano applied to benchmark gating.  History appends are telemetry:
they must never break a bench emit, so every failure path is swallowed
and counted under ``perf.history.errors``.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from pathlib import Path

#: Default history file, a sibling of BENCH_perf.json.
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: Per-row metric cap: payloads are flattened to numeric leaves and the
#: first this-many (sorted by dotted path) are kept.
MAX_METRICS = 400

#: |z| above which a Welch-tested delta counts as significant (~95%).
Z_SIGNIFICANT = 2.0

#: Relative change above which a variance-free metric is *noted*
#: (never a verdict by itself — without spread there is no test).
PLAIN_CHANGE_NOTE = 0.10

#: Substrings classifying a metric's good direction.  Checked in
#: order; the first hit wins, unknown metrics never regress.
_HIGHER_IS_BETTER = ("iters_per_sec", "per_sec", "speedup", "rate",
                     "throughput", "hits")
_LOWER_IS_BETTER = ("overhead", "wall", "time", "seconds", "duration",
                    "cpu_s", "_s", "cost", "errors", "misses")


def history_path_for(bench_path: str | Path) -> Path:
    """The history file that rides alongside a bench JSON file."""
    return Path(bench_path).with_name(DEFAULT_HISTORY_PATH)


def machine_fingerprint(info: dict) -> str:
    """Short stable digest of a machine-info dict."""
    blob = json.dumps(info, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _git_sha() -> str | None:
    """Short SHA of the repository HEAD, or None outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def extract_metrics(payload: dict, cap: int = MAX_METRICS) -> dict:
    """Flatten a bench payload to its numeric leaves.

    Nested dicts become dotted paths; a list under a ``*_samples`` key
    is reduced to ``<base>_n`` (its length — the sample count the
    Welch test needs); other lists and non-numeric leaves are dropped.
    Booleans are dropped too (they are flags, not measurements).
    """
    out: dict[str, float] = {}

    def visit(prefix: str, value) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            if isinstance(value, float) and not math.isfinite(value):
                return
            out[prefix] = float(value)
        elif isinstance(value, dict):
            for key in value:
                visit(f"{prefix}.{key}" if prefix else str(key), value[key])
        elif isinstance(value, list) and prefix.endswith("_samples"):
            out[prefix[: -len("_samples")] + "_n"] = float(len(value))

    visit("", payload)
    return dict(sorted(out.items())[:cap])


def append_history(section: str, payload: dict,
                   path: str | Path = DEFAULT_HISTORY_PATH) -> Path | None:
    """Append one trajectory row (best-effort, never raises)."""
    from repro.perf.bench import _machine_info
    from repro.perf.counters import PERF

    path = Path(path)
    info = _machine_info()
    row = {
        "ts": time.time(),
        "section": section,
        "git": _git_sha(),
        "machine": {**info, "fingerprint": machine_fingerprint(info)},
        "metrics": extract_metrics(payload),
    }
    try:
        line = json.dumps(row, separators=(",", ":"))
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
    except (OSError, TypeError, ValueError):
        PERF.add("perf.history.errors")
        return None
    return path


def read_history(
    path: str | Path = DEFAULT_HISTORY_PATH,
) -> tuple[list[dict], int]:
    """Every parseable row plus the count of skipped (torn) lines."""
    path = Path(path)
    if not path.exists():
        return [], 0
    rows, skipped = [], 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(row, dict) and "metrics" in row:
                rows.append(row)
            else:
                skipped += 1
    return rows, skipped


# ----------------------------------------------------------------------
# Variance-aware diffing
# ----------------------------------------------------------------------


def metric_direction(name: str) -> int:
    """+1 when higher is better, -1 when lower is, 0 when unknown."""
    low = name.lower()
    for needle in _HIGHER_IS_BETTER:
        if needle in low:
            return 1
    for needle in _LOWER_IS_BETTER:
        if needle in low:
            return -1
    return 0


def welch_z(mean_a: float, var_a: float, n_a: float,
            mean_b: float, var_b: float, n_b: float) -> float | None:
    """Welch's z statistic of (b - a); None when it is undefined."""
    if n_a <= 0 or n_b <= 0:
        return None
    se2 = var_a / n_a + var_b / n_b
    if se2 <= 0:
        # Zero measured spread: any difference is "infinitely" many
        # standard errors; identical means are exactly zero.
        return 0.0 if mean_b == mean_a else math.copysign(math.inf,
                                                          mean_b - mean_a)
    return (mean_b - mean_a) / math.sqrt(se2)


def _mean_var_bases(metrics_a: dict, metrics_b: dict) -> list[str]:
    """Metric bases with ``_mean``/``_var``/``_n`` present in both rows."""
    bases = []
    for key in metrics_a:
        if not key.endswith("_mean"):
            continue
        base = key[: -len("_mean")]
        needed = (f"{base}_mean", f"{base}_var", f"{base}_n")
        if all(k in metrics_a and k in metrics_b for k in needed):
            bases.append(base)
    return sorted(bases)


def diff_rows(row_a: dict, row_b: dict) -> dict:
    """Variance-aware comparison of two history rows (a = old, b = new).

    Returns per-metric findings plus an overall verdict:

    * metrics with mean/var/n in both rows get a Welch test —
      ``regressed`` / ``improved`` when |z| > 2 in a metric whose good
      direction is known, ``ok`` otherwise (the reasoning string spells
      out the z value and the noise floor);
    * plain shared numeric metrics are only *noted* when they moved
      more than 10% — a single sample has no spread to test against;
    * overall: ``"regression"`` iff at least one tested metric
      regressed significantly, else ``"ok"``.
    """
    ma, mb = row_a.get("metrics", {}), row_b.get("metrics", {})
    findings = []
    consumed: set[str] = set()

    for base in _mean_var_bases(ma, mb):
        for suffix in ("_mean", "_var", "_n"):
            consumed.add(base + suffix)
        mean_a, var_a = ma[base + "_mean"], ma[base + "_var"]
        mean_b, var_b = mb[base + "_mean"], mb[base + "_var"]
        n_a, n_b = ma[base + "_n"], mb[base + "_n"]
        z = welch_z(mean_a, var_a, n_a, mean_b, var_b, n_b)
        direction = metric_direction(base)
        rel = (mean_b - mean_a) / mean_a if mean_a else 0.0
        significant = z is not None and abs(z) > Z_SIGNIFICANT
        if not significant:
            verdict = "ok"
            reason = (f"Δ={rel:+.1%} within noise "
                      f"(|z|={abs(z):.2f} <= {Z_SIGNIFICANT:.0f}, "
                      f"var {var_a:.3g}/{var_b:.3g}, "
                      f"n {n_a:.0f}/{n_b:.0f})")
        elif direction == 0:
            verdict = "changed"
            reason = (f"Δ={rel:+.1%} significant (z={z:+.2f}) but the "
                      "metric's good direction is unknown")
        else:
            good = (z > 0) == (direction > 0)
            verdict = "improved" if good else "regressed"
            reason = (f"Δ={rel:+.1%} significant (z={z:+.2f}, "
                      f"n {n_a:.0f}/{n_b:.0f}), "
                      + ("higher" if direction > 0 else "lower")
                      + " is better")
        findings.append({
            "metric": base, "kind": "welch", "verdict": verdict,
            "mean_a": mean_a, "mean_b": mean_b, "rel_change": rel,
            "z": None if z is None or math.isinf(z) else z,
            "reason": reason,
        })

    shared = sorted(set(ma) & set(mb) - consumed)
    for name in shared:
        a, b = ma[name], mb[name]
        rel = (b - a) / a if a else (0.0 if b == a else math.inf)
        if abs(rel) <= PLAIN_CHANGE_NOTE:
            continue
        findings.append({
            "metric": name, "kind": "plain", "verdict": "noted",
            "mean_a": a, "mean_b": b,
            "rel_change": rel if math.isfinite(rel) else None,
            "z": None,
            "reason": (f"Δ={rel:+.1%} but single samples carry no "
                       "variance — not gated" if math.isfinite(rel)
                       else "appeared from zero — not gated"),
        })

    regressions = [f for f in findings if f["verdict"] == "regressed"]
    return {
        "a": {"ts": row_a.get("ts"), "git": row_a.get("git"),
              "section": row_a.get("section")},
        "b": {"ts": row_b.get("ts"), "git": row_b.get("git"),
              "section": row_b.get("section")},
        "findings": findings,
        "tested": sum(1 for f in findings if f["kind"] == "welch"),
        "regressions": len(regressions),
        "verdict": "regression" if regressions else "ok",
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _fmt_row_id(row: dict) -> str:
    git = row.get("git") or "-"
    ts = row.get("ts")
    stamp = (time.strftime("%Y-%m-%d %H:%M", time.localtime(ts))
             if ts else "-")
    return f"{stamp} {git}"


def render_history(rows: list[dict], pattern: str = "_mean",
                   last: int = 12) -> str:
    """Trend table: per matching metric, a sparkline over the rows."""
    from repro.obs.diag import sparkline
    from repro.reporting import format_table

    rows = rows[-last:]
    series: dict[str, list[float]] = {}
    for row in rows:
        for name, value in row.get("metrics", {}).items():
            if pattern in name:
                series.setdefault(name, []).append(value)
    if not series:
        return (f"no metrics matching {pattern!r} in "
                f"{len(rows)} history row(s)")
    table = []
    for name, values in sorted(series.items()):
        delta = ((values[-1] - values[-2]) / values[-2]
                 if len(values) > 1 and values[-2] else None)
        table.append([
            name, len(values), sparkline(values, width=min(24, last)),
            f"{values[-1]:.4g}",
            f"{delta:+.1%}" if delta is not None else "-",
        ])
    lines = [
        f"{len(rows)} row(s), newest: {_fmt_row_id(rows[-1])} "
        f"[{rows[-1].get('section', '-')}]",
        "",
        format_table(["metric", "n", "trend", "latest", "Δ last"], table),
    ]
    return "\n".join(lines)


def render_diff(diff: dict) -> str:
    """Text report of :func:`diff_rows`."""
    from repro.reporting import format_table

    lines = [
        f"perf diff: {_fmt_row_id(diff['a'])} [{diff['a']['section']}]"
        f"  →  {_fmt_row_id(diff['b'])} [{diff['b']['section']}]",
    ]
    if diff["findings"]:
        rows = [
            [f["metric"], f["verdict"],
             f"{f['mean_a']:.4g}", f"{f['mean_b']:.4g}",
             f"{f['z']:+.2f}" if f["z"] is not None else "-",
             f["reason"]]
            for f in diff["findings"]
        ]
        lines.append("")
        lines.append(format_table(
            ["metric", "verdict", "old", "new", "z", "reasoning"], rows,
        ))
    lines.append("")
    lines.append(
        f"verdict: {diff['verdict'].upper()} — {diff['tested']} metric(s) "
        f"variance-tested, {diff['regressions']} significant regression(s)"
    )
    return "\n".join(lines)
