"""BENCH_perf.json emission.

One JSON file accumulates the measurements of the performance harness:
SA-loop throughput (cached vs. uncached evaluator), DSE worker scaling,
and whatever counters the run collected.  Benchmarks and the CLI
``--profile`` flag both write through :func:`emit_bench`, merging into
any existing file so independent runs compose into one record.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

DEFAULT_BENCH_PATH = "BENCH_perf.json"


def _machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def _preserve_corrupt(path: Path) -> None:
    """Set an unreadable bench file aside instead of clobbering it.

    The file holds accumulated measurements; a parse error (torn write,
    manual edit gone wrong) must not silently discard them.  The broken
    bytes move to ``<name>.corrupt-<n>`` and a warning lands on stderr;
    the emit then starts a fresh file.
    """
    n = 1
    while True:
        dest = path.with_name(f"{path.name}.corrupt-{n}")
        if not dest.exists():
            break
        n += 1
    try:
        os.replace(path, dest)
    except OSError as exc:
        print(f"warning: {path} is corrupt and could not be preserved "
              f"({exc}); overwriting", file=sys.stderr)
        return
    print(f"warning: {path} was corrupt; preserved as {dest}",
          file=sys.stderr)


def emit_bench(section: str, payload: dict,
               path: str | Path = DEFAULT_BENCH_PATH) -> Path:
    """Merge ``payload`` under ``section`` into the bench JSON file."""
    # Imported here, not at module scope: perf must stay importable
    # from the interconnect layer, which loads before repro.io can.
    from repro.io.atomic import atomic_write_text

    path = Path(path)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            _preserve_corrupt(path)
            data = {}
        if not isinstance(data, dict):
            _preserve_corrupt(path)
            data = {}
    data.setdefault("machine", _machine_info())
    data[section] = payload
    atomic_write_text(
        path, json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    # Every emit also appends one compact row to the sibling history
    # file, so the overwritten snapshot gains a trajectory.  The append
    # is best-effort telemetry and never raises.
    from repro.perf.history import append_history, history_path_for

    append_history(section, payload, history_path_for(path))
    return path


def read_bench(path: str | Path = DEFAULT_BENCH_PATH) -> dict:
    path = Path(path)
    if not path.exists():
        return {}
    return json.loads(path.read_text())
