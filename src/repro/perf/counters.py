"""Lightweight performance counters and timers for the hot paths.

The evaluation pipeline (SA loop, DSE fan-out, cache layers) reports
into a process-global :class:`PerfRegistry`.  Counters are plain named
integers/floats; timers accumulate wall-clock seconds per label.  The
registry is cheap enough to leave enabled permanently: incrementing a
counter is one dict lookup and an add.

Workers of a parallel DSE run each own their process-local registry;
snapshots from workers can be merged into the parent with
:meth:`PerfRegistry.merge`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager


class LruDict(OrderedDict):
    """A bounded dict evicting least-recently-used entries.

    Used by the evaluation caches (per-layer traffic blocks, group
    evaluations); recency is refreshed by :meth:`get_lru` and
    :meth:`put`, not by plain ``[]`` access.
    """

    def __init__(self, max_entries: int = 65536):
        super().__init__()
        self.max_entries = max_entries

    def get_lru(self, key):
        value = self.get(key)
        if value is not None:
            self.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)


class PerfRegistry:
    """Named counters plus labelled wall-clock timers."""

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}

    # -- counters ------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str) -> float:
        return self._counters.get(name, 0)

    # -- timers --------------------------------------------------------

    @contextmanager
    def time(self, label: str):
        """Accumulate the wall-clock time of the enclosed block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._timers[label] = self._timers.get(label, 0.0) + dt
            self._timer_calls[label] = self._timer_calls.get(label, 0) + 1

    def timer_seconds(self, label: str) -> float:
        return self._timers.get(label, 0.0)

    def timer_calls(self, label: str) -> int:
        return self._timer_calls.get(label, 0)

    # -- aggregate views ----------------------------------------------

    def hit_rate(self, prefix: str) -> float:
        """Hit rate of a cache reporting ``<prefix>.hits/.misses``."""
        hits = self.get(f"{prefix}.hits")
        misses = self.get(f"{prefix}.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """A JSON-friendly copy of every counter and timer."""
        out: dict = {"counters": dict(self._counters), "timers": {}}
        for label, secs in self._timers.items():
            out["timers"][label] = {
                "seconds": secs,
                "calls": self._timer_calls.get(label, 0),
            }
        return out

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry."""
        for name, value in snap.get("counters", {}).items():
            self.add(name, value)
        for label, rec in snap.get("timers", {}).items():
            self._timers[label] = self._timers.get(label, 0.0) + rec["seconds"]
            self._timer_calls[label] = (
                self._timer_calls.get(label, 0) + rec["calls"]
            )

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._timer_calls.clear()

    def rows(self) -> list[list]:
        """(kind, name, value) rows for tabular display."""
        rows = [["counter", k, v] for k, v in sorted(self._counters.items())]
        rows += [
            ["timer", k, f"{v:.4f}s x{self._timer_calls.get(k, 0)}"]
            for k, v in sorted(self._timers.items())
        ]
        return rows


#: The process-global registry every subsystem reports into.
PERF = PerfRegistry()
