"""Lightweight performance counters and timers for the hot paths.

The evaluation pipeline (SA loop, DSE fan-out, cache layers) reports
into a process-global :class:`PerfRegistry`.  Counters are plain named
integers/floats; timers accumulate wall-clock seconds per label.  The
registry is cheap enough to leave enabled permanently: incrementing a
counter is one dict lookup and an add.

Workers of a parallel DSE run each own their process-local registry;
snapshots from workers can be merged into the parent with
:meth:`PerfRegistry.merge`.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from weakref import WeakSet

#: Live named LruDicts; their hit/miss tallies are folded into
#: snapshots and :meth:`PerfRegistry.cache_stats` on demand, so the
#: hot-path cost of instrumentation is two integer adds.
_NAMED_LRUS: "WeakSet[LruDict]" = WeakSet()

#: Pluggable snapshot sections: ``key -> (collect, merge, reset)``.
#: Other subsystems (the span tracer in :mod:`repro.obs.trace`) ship
#: their process-local state through the same snapshot/merge channel
#: the counters use, so worker processes need exactly one round trip.
#: ``collect()`` returns a JSON-friendly payload (falsy = omit the
#: key), ``merge(payload)`` folds a shipped payload into this process,
#: ``reset()`` clears the local state alongside :meth:`PerfRegistry.reset`.
_SNAPSHOT_EXTRAS: dict[str, tuple] = {}


def register_snapshot_extra(key: str, collect, merge, reset) -> None:
    """Register a named extra section on the snapshot/merge channel."""
    _SNAPSHOT_EXTRAS[key] = (collect, merge, reset)


class LruDict(OrderedDict):
    """A bounded dict evicting least-recently-used entries.

    Used by the evaluation caches (per-layer traffic blocks, group
    evaluations); recency is refreshed by :meth:`get_lru` and
    :meth:`put`, not by plain ``[]`` access.

    Every dict tallies its own ``hits``/``misses``; a ``name``
    additionally registers it so snapshots and ``--profile`` report the
    tallies as ``lru.<name>.hits/.misses`` counters (summed over every
    live cache sharing the name).
    """

    def __init__(self, max_entries: int = 65536, name: str | None = None):
        super().__init__()
        self.max_entries = max_entries
        self.name = name
        self.hits = 0
        self.misses = 0
        if name is not None:
            _NAMED_LRUS.add(self)

    # Identity hash (dict itself is unhashable) so instances can live
    # in the registry WeakSet; value equality is never relied on.
    __hash__ = object.__hash__

    def get_lru(self, key):
        value = self.get(key)
        if value is not None:
            self.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return value

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.max_entries:
            self.popitem(last=False)


def _named_lru_counters() -> dict[str, float]:
    """``lru.<name>.hits/.misses`` totals over the live named caches."""
    out: dict[str, float] = {}
    for d in _NAMED_LRUS:
        hits_key = f"lru.{d.name}.hits"
        misses_key = f"lru.{d.name}.misses"
        out[hits_key] = out.get(hits_key, 0) + d.hits
        out[misses_key] = out.get(misses_key, 0) + d.misses
    return out


class PerfRegistry:
    """Named counters plus labelled wall-clock timers."""

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._timers: dict[str, float] = {}
        self._timer_calls: dict[str, int] = {}

    # -- counters ------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set(self, name: str, value: float) -> None:
        self._counters[name] = value

    def get(self, name: str) -> float:
        return self._counters.get(name, 0)

    # -- timers --------------------------------------------------------

    @contextmanager
    def time(self, label: str):
        """Accumulate the wall-clock time of the enclosed block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self._timers[label] = self._timers.get(label, 0.0) + dt
            self._timer_calls[label] = self._timer_calls.get(label, 0) + 1

    def add_time(self, label: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured wall time into a timer.

        Hot loops (the SA delta evaluator) accumulate a local float and
        report once per run instead of entering a context manager per
        iteration.
        """
        self._timers[label] = self._timers.get(label, 0.0) + seconds
        self._timer_calls[label] = self._timer_calls.get(label, 0) + calls

    def timer_seconds(self, label: str) -> float:
        return self._timers.get(label, 0.0)

    def timer_calls(self, label: str) -> int:
        return self._timer_calls.get(label, 0)

    # -- aggregate views ----------------------------------------------

    def hit_rate(self, prefix: str) -> float:
        """Hit rate of a cache reporting ``<prefix>.hits/.misses``."""
        hits = self.get(f"{prefix}.hits")
        misses = self.get(f"{prefix}.misses")
        total = hits + misses
        return hits / total if total else 0.0

    def cache_stats(self) -> dict[str, dict]:
        """Hit/miss/ratio per cache reporting ``<prefix>.hits/.misses``.

        Covers both the named :class:`LruDict` counters (``lru.*``,
        live caches plus whatever worker snapshots merged in) and
        hand-rolled pairs like ``intracore`` or ``traffic.layer``.
        """
        counters = dict(self._counters)
        for name, value in _named_lru_counters().items():
            counters[name] = counters.get(name, 0) + value
        out: dict[str, dict] = {}
        for name, value in counters.items():
            if name.endswith(".hits"):
                prefix = name[: -len(".hits")]
            elif name.endswith(".misses"):
                prefix = name[: -len(".misses")]
            else:
                continue
            if prefix in out:
                continue
            hits = counters.get(f"{prefix}.hits", 0)
            misses = counters.get(f"{prefix}.misses", 0)
            total = hits + misses
            out[prefix] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
            }
        return out

    def snapshot(self) -> dict:
        """A JSON-friendly copy of every counter and timer.

        Live named-:class:`LruDict` tallies are folded in as
        ``lru.*`` counters, so worker snapshots ship their cache
        behaviour without per-access counter updates.
        """
        counters = dict(self._counters)
        for name, value in _named_lru_counters().items():
            counters[name] = counters.get(name, 0) + value
        out: dict = {"counters": counters, "timers": {}, "pid": os.getpid()}
        for label, secs in self._timers.items():
            out["timers"][label] = {
                "seconds": secs,
                "calls": self._timer_calls.get(label, 0),
            }
        for key, (collect, _merge, _reset) in _SNAPSHOT_EXTRAS.items():
            payload = collect()
            if payload:
                out[key] = payload
        return out

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry."""
        for name, value in snap.get("counters", {}).items():
            self.add(name, value)
        for label, rec in snap.get("timers", {}).items():
            self._timers[label] = self._timers.get(label, 0.0) + rec["seconds"]
            self._timer_calls[label] = (
                self._timer_calls.get(label, 0) + rec["calls"]
            )
        for key, (_collect, merge_fn, _reset) in _SNAPSHOT_EXTRAS.items():
            payload = snap.get(key)
            if payload:
                merge_fn(payload)

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._timer_calls.clear()
        # Named caches survive a reset (they are long-lived working
        # sets) but their tallies restart, so successive snapshots ship
        # deltas rather than double-counting.
        for d in _NAMED_LRUS:
            d.hits = 0
            d.misses = 0
        for _collect, _merge, reset_fn in _SNAPSHOT_EXTRAS.values():
            reset_fn()

    def rows(self) -> list[list]:
        """(kind, name, value) rows for tabular display."""
        rows = [["counter", k, v] for k, v in sorted(self._counters.items())]
        rows += [
            ["timer", k, f"{v:.4f}s x{self._timer_calls.get(k, 0)}"]
            for k, v in sorted(self._timers.items())
        ]
        return rows


#: The process-global registry every subsystem reports into.
PERF = PerfRegistry()
