"""Packaging cost model (Sec V-C).

``Cost = (Area_total x f_scale) / Yield_package x C_package`` where the
substrate area is the total silicon area times an empirical fan-out
scaling factor [13], and ``C_package`` depends on the substrate class:

* monolithic chips use a basic fan-out substrate (0.005 $/mm^2);
* chiplet designs need high-density organic substrates whose unit price
  rises with substrate area (larger areas need more layers and more
  intricate manufacturing).

Package yield degrades slightly with every additional die bonded.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PackagingModel:
    #: Substrate area = total silicon area x f_scale (IO fanout, wiring).
    f_scale: float = 2.0
    #: Basic fan-out substrate for monolithic chips, $/mm^2.
    c_fanout: float = 0.005
    #: High-density organic substrate price tiers: (max area mm^2, $/mm^2).
    hd_tiers: tuple[tuple[float, float], ...] = (
        (500.0, 0.02),
        (1000.0, 0.03),
        (2000.0, 0.045),
        (float("inf"), 0.07),
    )
    #: Base packaging/assembly yield.
    base_yield: float = 0.98
    #: Per-bonded-die assembly yield.
    per_die_yield: float = 0.995

    def substrate_area(self, silicon_area_mm2: float) -> float:
        return silicon_area_mm2 * self.f_scale

    def unit_price(self, substrate_area_mm2: float, n_dies: int) -> float:
        if n_dies <= 1:
            return self.c_fanout
        for limit, price in self.hd_tiers:
            if substrate_area_mm2 <= limit:
                return price
        raise AssertionError("unreachable")  # pragma: no cover

    def package_yield(self, n_dies: int) -> float:
        return self.base_yield * self.per_die_yield ** max(0, n_dies - 1)

    def cost(self, silicon_area_mm2: float, n_dies: int) -> float:
        area = self.substrate_area(silicon_area_mm2)
        price = self.unit_price(area, n_dies)
        return area * price / self.package_yield(n_dies)


DEFAULT_PACKAGING = PackagingModel()
