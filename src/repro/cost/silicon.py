"""Chiplet silicon cost (Sec V-C).

``Cost_die = Area_die / Yield_die x C_silicon`` summed over all dies.
``C_silicon`` is the per-mm^2 price of processed 12 nm wafer silicon
(wafer price / usable area); we use 0.25 $/mm^2, in line with published
12 nm wafer cost estimates used by Chiplet Actuary [13].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.yield_model import DEFAULT_YIELD, YieldModel


@dataclass(frozen=True)
class SiliconCostModel:
    c_silicon_per_mm2: float = 0.25
    yield_model: YieldModel = DEFAULT_YIELD

    def die_cost(self, area_mm2: float) -> float:
        return (
            area_mm2
            * self.yield_model.good_die_cost_factor(area_mm2)
            * self.c_silicon_per_mm2
        )

    def cost(self, die_areas_mm2: list[float]) -> float:
        return sum(self.die_cost(a) for a in die_areas_mm2)


DEFAULT_SILICON = SiliconCostModel()
