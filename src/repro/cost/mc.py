"""The Monetary Cost Evaluator (Sec V-C).

Combines the silicon, DRAM and packaging models over the area model's
die list.  MC depends only on the architecture (not on workloads or
mapping), which is why the DSE evaluates it once per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.area import DEFAULT_AREA, AreaModel
from repro.arch.params import ArchConfig
from repro.cost.dram_cost import DEFAULT_DRAM_COST, DramCostModel
from repro.cost.packaging import DEFAULT_PACKAGING, PackagingModel
from repro.cost.silicon import DEFAULT_SILICON, SiliconCostModel


@dataclass(frozen=True)
class MCReport:
    """Monetary cost breakdown of one architecture, USD."""

    silicon: float
    dram: float
    packaging: float
    die_areas_mm2: tuple[float, ...]

    @property
    def total(self) -> float:
        return self.silicon + self.dram + self.packaging

    @property
    def total_silicon_area_mm2(self) -> float:
        return sum(self.die_areas_mm2)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MC ${self.total:.2f} = silicon ${self.silicon:.2f} + "
            f"DRAM ${self.dram:.2f} + package ${self.packaging:.2f} "
            f"({self.total_silicon_area_mm2:.1f} mm^2, "
            f"{len(self.die_areas_mm2)} dies)"
        )


@dataclass(frozen=True)
class MCEvaluator:
    """Assesses the production cost of an architecture candidate."""

    area: AreaModel = DEFAULT_AREA
    silicon: SiliconCostModel = DEFAULT_SILICON
    dram: DramCostModel = DEFAULT_DRAM_COST
    packaging: PackagingModel = DEFAULT_PACKAGING

    def evaluate(self, arch: ArchConfig) -> MCReport:
        dies = self.area.die_areas(arch)
        total_area = sum(dies)
        return MCReport(
            silicon=self.silicon.cost(dies),
            dram=self.dram.cost(arch.dram_bw),
            packaging=self.packaging.cost(total_area, len(dies)),
            die_areas_mm2=tuple(dies),
        )


DEFAULT_MC = MCEvaluator()
