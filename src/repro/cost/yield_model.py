"""Die yield model (Sec V-C, after Chiplet Actuary [13]).

``Yield(die) = Yield_unit ^ (Area_die / Area_unit)`` with the paper's
12 nm constants: ``Yield_unit = 0.9`` per ``Area_unit = 40 mm^2``.  This
reproduces the headline numbers the paper motivates chiplets with: at
7 nm-like defect densities an 800 mm^2 die yields ~18 % while a 200 mm^2
die yields ~75 % [13].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class YieldModel:
    yield_unit: float = 0.9
    area_unit_mm2: float = 40.0

    def die_yield(self, area_mm2: float) -> float:
        if area_mm2 <= 0:
            return 1.0
        return self.yield_unit ** (area_mm2 / self.area_unit_mm2)

    def good_die_cost_factor(self, area_mm2: float) -> float:
        """1 / yield: wafers needed per good die."""
        return 1.0 / self.die_yield(area_mm2)


DEFAULT_YIELD = YieldModel()
