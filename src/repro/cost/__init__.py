"""Monetary Cost Evaluator: yield, silicon, DRAM and packaging costs."""

from repro.cost.dram_cost import DEFAULT_DRAM_COST, DramCostModel
from repro.cost.mc import DEFAULT_MC, MCEvaluator, MCReport
from repro.cost.packaging import DEFAULT_PACKAGING, PackagingModel
from repro.cost.silicon import DEFAULT_SILICON, SiliconCostModel
from repro.cost.yield_model import DEFAULT_YIELD, YieldModel

__all__ = [
    "DEFAULT_DRAM_COST",
    "DEFAULT_MC",
    "DEFAULT_PACKAGING",
    "DEFAULT_SILICON",
    "DEFAULT_YIELD",
    "DramCostModel",
    "MCEvaluator",
    "MCReport",
    "PackagingModel",
    "SiliconCostModel",
    "YieldModel",
]
