"""DRAM cost model (Sec V-C).

``Cost = ceil(DRAM_BW / Unit_BW) x C_DRAM_die`` with the paper's GDDR6
constants: 32 GB/s and $3.5 per die [12].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import GB


@dataclass(frozen=True)
class DramCostModel:
    unit_bw: float = 32 * GB
    cost_per_die: float = 3.5

    def n_dies(self, dram_bw: float) -> int:
        return max(1, math.ceil(dram_bw / self.unit_bw))

    def cost(self, dram_bw: float) -> float:
        return self.n_dies(dram_bw) * self.cost_per_die


DEFAULT_DRAM_COST = DramCostModel()
