"""Setup shim: enables `pip install -e .` on environments whose
setuptools predates PEP-660 editable wheels (no `wheel` package offline).

The only metadata kept here is the optional-extras table: the core
package is dependency-light (numpy only), while model ingestion grows
capabilities with what's installed:

* ``pip install .[onnx]`` — import ``.onnx`` models through
  ``repro.frontend.onnx_import`` (otherwise ``repro import`` handles
  JSON/YAML specs only and ONNX tests self-skip);
* ``pip install .[yaml]`` — YAML model specs (JSON always works).
"""

from setuptools import find_packages, setup

setup(
    name="repro-gemini",
    version="0.2.0",
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.workloads": ["specs/*.json"]},
    install_requires=["numpy"],
    extras_require={
        "onnx": ["onnx>=1.14"],
        "yaml": ["pyyaml"],
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "pyyaml", "ruff"],
    },
)
