"""BENCH_history.jsonl: append-only trajectory + variance-aware diff."""

import json
import math

import pytest

from repro.cli.main import main
from repro.perf import emit_bench
from repro.perf.history import (
    append_history,
    diff_rows,
    extract_metrics,
    history_path_for,
    machine_fingerprint,
    metric_direction,
    read_history,
    render_diff,
    render_history,
    welch_z,
)


def throughput_payload(mean, var=4.0, n=3, wall=2.0):
    return {
        "TF_iters_per_sec_mean": mean,
        "TF_iters_per_sec_var": var,
        "TF_iters_per_sec_samples": list(range(n)),
        "wall_s": wall,
    }


class TestExtraction:
    def test_flattens_numeric_leaves_to_dotted_paths(self):
        metrics = extract_metrics({
            "a": 1, "nested": {"b": 2.5, "deeper": {"c": 3}},
            "text": "skip", "flag": True, "items": [1, 2, 3],
        })
        assert metrics == {"a": 1.0, "nested.b": 2.5, "nested.deeper.c": 3.0}

    def test_sample_lists_become_counts(self):
        metrics = extract_metrics({"x_samples": [9, 9, 9, 9]})
        assert metrics == {"x_n": 4.0}

    def test_non_finite_dropped_and_capped(self):
        metrics = extract_metrics(
            {"bad": float("nan"), "worse": float("inf"),
             **{f"m{i:03d}": i for i in range(50)}},
            cap=10,
        )
        assert len(metrics) == 10
        assert "bad" not in metrics and "worse" not in metrics


class TestAppendRead:
    def test_rows_accumulate_with_provenance(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        assert append_history("s", throughput_payload(100.0), path) == path
        assert append_history("s", throughput_payload(101.0), path) == path
        rows, skipped = read_history(path)
        assert skipped == 0 and len(rows) == 2
        for row in rows:
            assert row["section"] == "s"
            assert row["ts"] > 0
            assert row["machine"]["fingerprint"] == \
                machine_fingerprint({k: v for k, v in row["machine"].items()
                                     if k != "fingerprint"})
        assert rows[0]["metrics"]["TF_iters_per_sec_mean"] == 100.0
        assert rows[1]["metrics"]["TF_iters_per_sec_n"] == 3.0

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history("s", {"v": 1}, path)
        with open(path, "a") as fh:
            fh.write('{"ts": 1, "section": "s", "metr')
        rows, skipped = read_history(path)
        assert len(rows) == 1 and skipped == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "none.jsonl") == ([], 0)

    def test_append_failure_is_swallowed(self, tmp_path):
        from repro.perf import PERF

        blocker = tmp_path / "file"
        blocker.write_text("")
        before = PERF.get("perf.history.errors")
        # Parent "directory" is a regular file: the open must fail, the
        # call must not raise.
        assert append_history("s", {"v": 1}, blocker / "h.jsonl") is None
        assert PERF.get("perf.history.errors") == before + 1

    def test_emit_bench_appends_a_sibling_history_row(self, tmp_path):
        bench = tmp_path / "BENCH_perf.json"
        emit_bench("sa_throughput", throughput_payload(100.0), bench)
        emit_bench("sa_throughput", throughput_payload(101.0), bench)
        rows, skipped = read_history(history_path_for(bench))
        assert skipped == 0 and len(rows) == 2
        # The bench JSON itself still holds one overwritten section.
        data = json.loads(bench.read_text())
        assert data["sa_throughput"]["TF_iters_per_sec_mean"] == 101.0


class TestWelch:
    def test_direction_heuristic(self):
        assert metric_direction("TF_iters_per_sec") == 1
        assert metric_direction("suite_wall_s") == -1
        assert metric_direction("sa.session.committed") == 0

    def test_z_statistic(self):
        assert welch_z(10, 1, 4, 10, 1, 4) == 0.0
        z = welch_z(10, 1, 4, 11, 1, 4)
        assert z == pytest.approx(1 / math.sqrt(0.5))
        assert welch_z(10, 0, 4, 11, 0, 4) == math.inf
        assert welch_z(10, 1, 0, 11, 1, 4) is None

    def row(self, mean, var=1.0, n=5, **plain):
        return {"ts": 1.0, "git": "abc", "section": "s", "metrics": {
            "TF_iters_per_sec_mean": mean,
            "TF_iters_per_sec_var": var,
            "TF_iters_per_sec_n": n,
            **plain,
        }}

    def test_noise_is_ok(self):
        diff = diff_rows(self.row(100.0, var=25.0), self.row(98.0, var=25.0))
        (finding,) = diff["findings"]
        assert finding["verdict"] == "ok"
        assert diff["verdict"] == "ok"

    def test_significant_drop_in_higher_better_metric_regresses(self):
        diff = diff_rows(self.row(100.0, var=0.25), self.row(90.0, var=0.25))
        (finding,) = diff["findings"]
        assert finding["verdict"] == "regressed"
        assert finding["z"] < -2
        assert diff["verdict"] == "regression"
        assert diff["regressions"] == 1

    def test_significant_rise_improves(self):
        diff = diff_rows(self.row(100.0, var=0.25), self.row(110.0, var=0.25))
        assert diff["findings"][0]["verdict"] == "improved"
        assert diff["verdict"] == "ok"

    def test_plain_metrics_are_noted_never_gated(self):
        diff = diff_rows(
            self.row(100.0, wall_s=2.0), self.row(100.0, wall_s=3.0)
        )
        noted = [f for f in diff["findings"] if f["kind"] == "plain"]
        assert [f["verdict"] for f in noted] == ["noted"]
        assert diff["verdict"] == "ok"
        # A <=10% drift is not even noted.
        quiet = diff_rows(
            self.row(100.0, wall_s=2.0), self.row(100.0, wall_s=2.1)
        )
        assert all(f["kind"] != "plain" for f in quiet["findings"])

    def test_render_diff_mentions_the_verdict(self):
        text = render_diff(
            diff_rows(self.row(100.0, var=0.25), self.row(90.0, var=0.25))
        )
        assert "REGRESSION" in text
        assert "z" in text


class TestCli:
    def make_history(self, tmp_path, means=(100.0, 101.0)):
        path = tmp_path / "h.jsonl"
        for mean in means:
            append_history("sa_throughput", throughput_payload(mean), path)
        return path

    def test_history_trend_table(self, tmp_path, capsys):
        path = self.make_history(tmp_path)
        rc = main(["perf", "history", "--path", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TF_iters_per_sec_mean" in out
        assert "trend" in out

    def test_history_empty_file_is_graceful(self, tmp_path, capsys):
        rc = main(["perf", "history", "--path", str(tmp_path / "no.jsonl")])
        assert rc == 0
        assert "no history rows" in capsys.readouterr().out

    def test_diff_default_compares_last_two(self, tmp_path, capsys):
        path = self.make_history(tmp_path)
        rc = main(["perf", "diff", "--path", str(path)])
        assert rc == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_diff_writes_json_report(self, tmp_path, capsys):
        path = self.make_history(tmp_path, means=(100.0, 101.0, 102.0))
        out_file = tmp_path / "diff.json"
        rc = main(["perf", "diff", "0", "-1", "--path", str(path),
                   "--out", str(out_file)])
        assert rc == 0
        report = json.loads(out_file.read_text())
        assert report["verdict"] in ("ok", "regression")
        assert report["tested"] == 1

    def test_diff_needs_two_rows(self, tmp_path, capsys):
        path = self.make_history(tmp_path, means=(100.0,))
        rc = main(["perf", "diff", "--path", str(path)])
        assert rc == 0
        assert "need two rows" in capsys.readouterr().out

    def test_render_history_smoke(self, tmp_path):
        rows, _ = read_history(self.make_history(tmp_path))
        text = render_history(rows)
        assert "TF_iters_per_sec_mean" in text
