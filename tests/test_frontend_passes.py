"""IR-level pass pipeline tests, including degenerate-graph guards."""

import pytest

from repro.arch import g_arch
from repro.core import MappingEngine, MappingEngineSettings, SASettings
from repro.errors import InvalidWorkloadError
from repro.evalmodel import (
    EnergyBreakdown,
    average_concurrent_layers,
    d2d_energy_share,
    pipeline_fill_drain_loss,
)
from repro.evalmodel.delay import pipeline_utilization
from repro.frontend import GRAPH_INPUT, LoweringReport, OpGraph, OpNode
from repro.frontend.passes import (
    fold_structural,
    fuse_activations,
    infer_shapes,
    insert_input_adapters,
    lower_unknown,
    run_pipeline,
)
from repro.workloads.layer import LayerType


def make_graph(nodes, input_shape=(8, 8, 4), name="t"):
    g = OpGraph(name, input_shape)
    for n in nodes:
        g.add(n)
    return g


class TestFoldStructural:
    def test_reshape_chain_folds_away(self):
        g = make_graph([
            OpNode("c", "conv", [GRAPH_INPUT], {"k": 8, "kernel": 3}),
            OpNode("r", "reshape", ["c"]),
            OpNode("t", "transpose", ["r"]),
            OpNode("v", "softmax", ["t"]),
        ])
        report = LoweringReport()
        fold_structural(g, report)
        assert set(g.nodes) == {"c", "v"}
        assert g.node("v").inputs == ["c"]
        assert len(report.folded) == 2

    def test_fold_keeps_topology_valid(self):
        g = make_graph([
            OpNode("c", "conv", [GRAPH_INPUT], {"k": 4, "kernel": 1}),
            OpNode("f", "flatten", ["c"]),
            OpNode("a", "add", ["f", "c"]),
        ])
        fold_structural(g, LoweringReport())
        assert g.node("a").inputs == ["c", "c"]
        assert g.topological_order() == ["c", "a"]


class TestLowerUnknown:
    def test_unary_unknown_becomes_vector(self):
        g = make_graph([OpNode("x", "fancy_norm", [GRAPH_INPUT])])
        report = LoweringReport()
        lower_unknown(g, report)
        assert g.node("x").op == "vector"
        assert g.node("x").attrs["origin"] == "fancy_norm"
        assert not report.is_exact

    def test_binary_unknown_becomes_eltwise(self):
        g = make_graph([
            OpNode("a", "vector", [GRAPH_INPUT]),
            OpNode("b", "vector", [GRAPH_INPUT]),
            OpNode("x", "gated_mix", ["a", "b"]),
        ])
        report = LoweringReport()
        lower_unknown(g, report)
        assert g.node("x").op == "eltwise"
        assert [e.op for e in report.approximated] == ["gated_mix"]


class TestInferShapes:
    def test_conv_same_padding_and_stride(self):
        g = make_graph([
            OpNode("c", "conv", [GRAPH_INPUT],
                   {"k": 16, "kernel": 3, "stride": 2}),
        ], input_shape=(32, 32, 3))
        infer_shapes(g)
        assert g.node("c").shape == (16, 16, 16)

    def test_matmul_orientation_recovery(self):
        g = make_graph([
            OpNode("q", "conv", [GRAPH_INPUT], {"k": 16, "kernel": 1}),
            OpNode("k", "conv", [GRAPH_INPUT], {"k": 16, "kernel": 1}),
            # Both operands are (8, 1, 16): plain contraction cannot
            # fit (16 != 8), so inference must flip to transpose_b.
            OpNode("s", "matmul", ["q", "k"]),
        ], input_shape=(8, 1, 4))
        report = LoweringReport()
        infer_shapes(g, report=report)
        assert g.node("s").shape == (8, 1, 8)
        assert g.node("s").attrs["transpose_b"] is True
        assert any("orientation" in e.detail for e in report.lowered)

    def test_matmul_mismatch_raises(self):
        g = make_graph([
            OpNode("a", "conv", [GRAPH_INPUT], {"k": 6, "kernel": 1}),
            OpNode("b", "conv", [GRAPH_INPUT], {"k": 5, "kernel": 1}),
            OpNode("s", "matmul", ["a", "b"]),
        ], input_shape=(4, 1, 3))
        with pytest.raises(InvalidWorkloadError):
            infer_shapes(g)

    def test_eltwise_shape_mismatch_raises(self):
        g = make_graph([
            OpNode("a", "conv", [GRAPH_INPUT], {"k": 4, "kernel": 1}),
            OpNode("b", "conv", [GRAPH_INPUT], {"k": 8, "kernel": 1}),
            OpNode("s", "add", ["a", "b"]),
        ])
        with pytest.raises(InvalidWorkloadError):
            infer_shapes(g)

    def test_concat_and_upsample(self):
        g = make_graph([
            OpNode("a", "conv", [GRAPH_INPUT], {"k": 4, "kernel": 1}),
            OpNode("b", "conv", [GRAPH_INPUT], {"k": 6, "kernel": 1}),
            OpNode("cat", "concat", ["a", "b"]),
            OpNode("up", "upsample", ["cat"], {"scale": 2}),
        ])
        infer_shapes(g)
        assert g.node("cat").shape == (8, 8, 10)
        assert g.node("up").shape == (16, 16, 10)


class TestFusion:
    def test_activation_chain_fuses_into_pe_producer(self):
        g = make_graph([
            OpNode("c", "conv", [GRAPH_INPUT], {"k": 8, "kernel": 3}),
            OpNode("r", "relu", ["c"]),
            OpNode("cl", "clip", ["r"]),
            OpNode("p", "pool", ["cl"], {"kernel": 2}),
        ])
        report = LoweringReport()
        infer_shapes(g)
        fuse_activations(g, report)
        assert set(g.nodes) == {"c", "p"}
        assert g.node("c").attrs["fused"] == ["relu", "clip"]
        assert len(report.fused) == 2

    def test_activation_on_graph_input_stays(self):
        g = make_graph([OpNode("r", "relu", [GRAPH_INPUT])])
        infer_shapes(g)
        fuse_activations(g, LoweringReport())
        assert "r" in g.nodes

    def test_activation_after_pool_stays(self):
        g = make_graph([
            OpNode("p", "pool", [GRAPH_INPUT], {"kernel": 2}),
            OpNode("r", "relu", ["p"]),
        ])
        infer_shapes(g)
        fuse_activations(g, LoweringReport())
        assert "r" in g.nodes


class TestInputAdapters:
    def test_residual_against_graph_input(self):
        g = make_graph([
            OpNode("c", "conv", [GRAPH_INPUT], {"k": 4, "kernel": 3}),
            OpNode("a", "add", ["c", GRAPH_INPUT]),
        ])
        report = LoweringReport()
        infer_shapes(g)
        insert_input_adapters(g, report)
        adapter = [n for n in g.nodes.values() if n.op == "vector"]
        assert len(adapter) == 1
        assert g.node("a").inputs == ["c", adapter[0].name]
        graph, _ = run_pipeline(g, report)
        graph.validate()


class TestEndToEndPipeline:
    def test_full_pipeline_reports_and_validates(self):
        g = make_graph([
            OpNode("c1", "conv", [GRAPH_INPUT], {"k": 8, "kernel": 3}),
            OpNode("r1", "relu", ["c1"]),
            OpNode("rs", "reshape", ["r1"]),
            OpNode("my", "mystery_op", ["rs"]),
            OpNode("p", "pool", ["my"], {"kernel": 2}),
        ])
        graph, report = run_pipeline(g)
        graph.validate()
        assert len(report.fused) == 1
        assert len(report.folded) == 1
        assert len(report.approximated) == 1
        assert graph.layer("my").kind is LayerType.VECTOR


class TestDegenerateGraphGuards:
    """Zero-MAC ELTWISE/VECTOR-only graphs must evaluate cleanly."""

    def degenerate_result(self):
        g = make_graph([
            OpNode("v1", "vector", [GRAPH_INPUT]),
            OpNode("v2", "vector", [GRAPH_INPUT]),
            OpNode("e", "add", ["v1", "v2"]),
        ], input_shape=(4, 4, 8), name="degen")
        graph, _ = run_pipeline(g)
        engine = MappingEngine(
            g_arch(),
            settings=MappingEngineSettings(sa=SASettings(iterations=4)),
        )
        return engine.map(graph, batch=2)

    def test_maps_without_error(self):
        result = self.degenerate_result()
        assert result.delay > 0
        assert result.energy > 0

    def test_metrics_are_finite(self):
        result = self.degenerate_result()
        assert average_concurrent_layers(result) >= 0
        assert 0.0 <= d2d_energy_share(result) <= 1.0
        assert 0.0 <= pipeline_fill_drain_loss(result) <= 1.0

    def test_energy_fractions_guarded(self):
        zero = EnergyBreakdown()
        assert zero.fractions() == {
            "intra": 0.0, "noc": 0.0, "d2d": 0.0, "dram": 0.0,
        }
        mixed = EnergyBreakdown(intra=1.0, noc=1.0, d2d=0.0, dram=2.0)
        fr = mixed.fractions()
        assert fr["dram"] == pytest.approx(0.5)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_pipeline_utilization_guarded(self):
        assert pipeline_utilization(0, 1) == 0.0
        assert pipeline_utilization(0, 0) == 0.0
        assert pipeline_utilization(4, 1) == 1.0
        assert pipeline_utilization(4, 5) == pytest.approx(0.5)
