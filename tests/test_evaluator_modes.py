"""Tests for evaluator variants: max–min network model, SerDes D2D
energy model, and the GoogLeNet workload addition."""

import pytest

from repro.arch import ArchConfig, EnergyModel, g_arch
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.evalmodel import Evaluator
from repro.units import GB, MB
from repro.workloads.models import build


@pytest.fixture(scope="module")
def tf_setup():
    graph = build("TF")
    arch = g_arch()
    groups = partition_graph(graph, arch, batch=8)
    lms = initial_lms(graph, groups[1], arch)
    return graph, arch, lms


class TestMaxMinNetworkModel:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            Evaluator(g_arch(), network_model="magic")

    def test_maxmin_upper_bounds_analytic(self, tf_setup):
        graph, arch, lms = tf_setup
        bound = Evaluator(arch).evaluate_group(graph, lms, batch=8)
        maxmin = Evaluator(arch, network_model="maxmin").evaluate_group(
            graph, lms, batch=8
        )
        assert maxmin.network_time >= bound.network_time * (1 - 1e-9)
        assert maxmin.delay >= bound.delay * (1 - 1e-9)

    def test_maxmin_leaves_other_terms(self, tf_setup):
        graph, arch, lms = tf_setup
        bound = Evaluator(arch).evaluate_group(graph, lms, batch=8)
        maxmin = Evaluator(arch, network_model="maxmin").evaluate_group(
            graph, lms, batch=8
        )
        assert maxmin.compute_time == pytest.approx(bound.compute_time)
        assert maxmin.dram_time == pytest.approx(bound.dram_time)

    def test_maxmin_full_mapping(self, tf_setup):
        graph, arch, _ = tf_setup
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ev = Evaluator(arch, network_model="maxmin").evaluate_mapping(
            graph, lmss, batch=4
        )
        assert ev.delay > 0


class TestSerDesD2DModel:
    def test_clock_embedded_energy_is_power_times_latency(self):
        model = EnergyModel(clock_embedded_d2d=True)
        e = model.d2d_energy(volume_bytes=1e9, n_interfaces=10,
                             latency_s=2.0)
        assert e == pytest.approx(10 * model.p_d2d_serdes * 2.0)

    def test_clock_forwarding_energy_is_per_byte(self):
        model = EnergyModel(clock_embedded_d2d=False)
        e = model.d2d_energy(volume_bytes=1e9, n_interfaces=10,
                             latency_s=2.0)
        assert e == pytest.approx(1e9 * model.e_d2d)

    def test_serdes_charges_even_idle_links(self, tf_setup):
        """Clock-embedded D2D burns power regardless of traffic, so a
        mapping with little D2D traffic still pays (Sec V-B2)."""
        graph, arch, lms = tf_setup
        grs = Evaluator(arch, energy=EnergyModel()).evaluate_group(
            graph, lms, batch=8
        )
        serdes = Evaluator(
            arch, energy=EnergyModel(clock_embedded_d2d=True)
        ).evaluate_group(graph, lms, batch=8)
        assert serdes.energy.d2d > 0
        assert grs.energy.d2d > 0
        # Same mapping, same non-D2D energy.
        assert serdes.energy.intra == pytest.approx(grs.energy.intra)

    def test_monolithic_pays_no_serdes_power(self):
        graph = build("TF")
        arch = ArchConfig(
            cores_x=6, cores_y=6, xcut=1, ycut=1, dram_bw=144 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=2 * MB,
            macs_per_core=1024,
        )
        groups = partition_graph(graph, arch, batch=4)
        lms = initial_lms(graph, groups[0], arch)
        ev = Evaluator(
            arch, energy=EnergyModel(clock_embedded_d2d=True)
        ).evaluate_group(graph, lms, batch=4)
        assert ev.energy.d2d == 0.0


class TestGoogleNet:
    def test_known_stats(self):
        g = build("GN")
        g.validate()
        # ~1.5 GMACs, ~6.8M parameters for Inception-v1.
        assert 1.3e9 < g.total_macs(1) < 1.9e9
        assert 6e6 < g.total_weight_bytes() < 8e6

    def test_inception_modules_concat_channels(self):
        g = build("GN")
        cat = g.layer("i3a_cat")
        assert cat.out_k == 64 + 128 + 32 + 32

    def test_maps_end_to_end(self):
        g = build("GN")
        arch = g_arch()
        groups = partition_graph(g, arch, batch=2)
        lmss = [initial_lms(g, grp, arch) for grp in groups]
        ev = Evaluator(arch).evaluate_mapping(g, lmss, batch=2)
        assert ev.delay > 0 and ev.energy.total > 0
