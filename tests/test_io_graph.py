"""DNNGraph JSON round-trip over the whole model registry."""

import json

import pytest

from repro.io import (
    GRAPH_FORMAT,
    SerializationError,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.workloads.models import MODEL_REGISTRY, build


def assert_graphs_equal(a, b):
    assert a.name == b.name
    assert a.layer_names() == b.layer_names()
    for name in a.layer_names():
        assert a.layer(name) == b.layer(name)
        assert a.predecessors(name) == b.predecessors(name)
        assert a.combine_mode(name) == b.combine_mode(name)
        assert a.reads_graph_input(name) == b.reads_graph_input(name)
    assert a.total_macs(4) == b.total_macs(4)
    assert a.total_weight_bytes() == b.total_weight_bytes()


class TestRegistryRoundTrip:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_roundtrip(self, name):
        graph = build(name)
        back = graph_from_dict(graph_to_dict(graph))
        assert_graphs_equal(graph, back)

    def test_dict_is_json_serializable(self):
        data = graph_to_dict(build("UNet"))
        parsed = json.loads(json.dumps(data))
        assert parsed["format"] == GRAPH_FORMAT
        assert_graphs_equal(build("UNet"), graph_from_dict(parsed))


class TestGraphFiles:
    def test_file_roundtrip(self, tmp_path):
        graph = build("GPT-Dec")
        path = tmp_path / "g.json"
        save_graph(graph, path)
        assert_graphs_equal(graph, load_graph(path))

    def test_loader_recognizes_graph_json(self, tmp_path):
        from repro.frontend import load_model

        path = tmp_path / "g.json"
        save_graph(build("MBV2"), path)
        graph, report = load_model(str(path))
        assert report is None
        assert_graphs_equal(build("MBV2"), graph)

    def test_roundtripped_graph_maps(self, tmp_path):
        from repro.arch import g_arch
        from repro.core import (
            MappingEngine,
            MappingEngineSettings,
            SASettings,
        )

        path = tmp_path / "g.json"
        save_graph(build("UNet"), path)
        graph = load_graph(path)
        engine = MappingEngine(
            g_arch(),
            settings=MappingEngineSettings(sa=SASettings(iterations=4)),
        )
        result = engine.map(graph, batch=2)
        assert result.delay > 0 and result.energy > 0


class TestErrors:
    def test_wrong_format_marker(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "something-else", "name": "x",
                             "layers": []})

    def test_missing_format_marker_rejected(self):
        # A non-graph JSON (e.g. best_arch.json) must fail the marker
        # check, not a confusing missing-field error later.
        with pytest.raises(SerializationError, match="not a serialized"):
            graph_from_dict({"cores_x": 4, "cores_y": 4})

    def test_missing_fields(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format": GRAPH_FORMAT, "name": "x",
                             "layers": [{"name": "l"}]})

    def test_bad_kind(self):
        with pytest.raises(SerializationError):
            graph_from_dict({
                "format": GRAPH_FORMAT, "name": "x",
                "layers": [{
                    "name": "l", "kind": "warp-drive", "out_h": 1,
                    "out_w": 1, "out_k": 1, "in_c": 1,
                }],
            })
