"""Fabric subsystem: spec parsing, registry dispatch, default-mesh
bit-identity, cross-fabric evaluation identity, and serialization."""

import json
from dataclasses import replace

import pytest

from repro.arch import ArchConfig, build_topology, g_arch
from repro.errors import InvalidArchitectureError
from repro.evalmodel import Evaluator
from repro.fabric import (
    DEFAULT_FABRIC,
    FABRIC_REGISTRY,
    ConcentratedMeshTopology,
    FabricSpec,
    FoldedTorusTopology,
    MeshTopology,
    RingTopology,
    Topology,
    apply_fabric,
    format_fabric,
    parse_fabric,
    register_fabric,
)
from repro.io.serialization import arch_from_dict, arch_to_dict
from repro.units import GB, MB
from repro.workloads.models import build


def arch(x=4, y=4, xcut=2, ycut=1, **kw):
    defaults = dict(
        cores_x=x, cores_y=y, xcut=xcut, ycut=ycut, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )
    defaults.update(kw)
    return ArchConfig(**defaults)


#: Every shipped non-default fabric, as (spec string, topology class).
NON_DEFAULT_FABRICS = (
    ("folded-torus", FoldedTorusTopology),
    ("cmesh:c2", ConcentratedMeshTopology),
    ("ring", RingTopology),
)


class TestSpec:
    def test_parse_format_roundtrip(self):
        for text in ("mesh", "folded-torus", "folded-torus:yx",
                     "cmesh:c2", "cmesh:yx:c2", "ring",
                     "folded-torus:wrap=x",
                     "mesh:dimension-reversal"):
            spec = parse_fabric(text)
            assert format_fabric(spec) == text
            assert parse_fabric(format_fabric(spec)) == spec

    def test_parse_routing_alias(self):
        assert parse_fabric("mesh:dr").routing == "dimension-reversal"

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(InvalidArchitectureError):
            parse_fabric("hypercube")

    def test_parse_rejects_bad_token(self):
        with pytest.raises(InvalidArchitectureError):
            parse_fabric("mesh:zigzag")

    def test_parse_rejects_bad_knob_values(self):
        """Bad knob values must fail at parse time (CLI pre-flight),
        not vanish silently from a candidate grid or crash a worker."""
        with pytest.raises(InvalidArchitectureError):
            parse_fabric("folded-torus:wrap=z")
        with pytest.raises(InvalidArchitectureError):
            parse_fabric("cmesh:c0")

    def test_content_normalizes_unconsumed_knobs(self):
        """Specs that build identical hardware share digest content."""
        assert parse_fabric("mesh:c2").content() == \
            parse_fabric("mesh").content()
        assert parse_fabric("ring:yx").content() == \
            parse_fabric("ring").content()
        assert parse_fabric("mesh:wrap=x").content() == \
            parse_fabric("mesh").content()
        assert parse_fabric("cmesh:c2").content() != \
            parse_fabric("cmesh").content()
        assert parse_fabric("folded-torus:wrap=x").content() != \
            parse_fabric("folded-torus").content()

    def test_equivalent_fabrics_dedup_in_candidate_grid(self):
        from repro.dse import DseGrid, enumerate_candidates

        base = DseGrid(
            tops=72, cuts=(1,), dram_bw_per_tops=(2.0,),
            noc_bw_gbps=(32,), d2d_ratio=(0.5,), glb_kb=(1024,),
            macs_per_core=(1024,),
        )
        one = enumerate_candidates(base)
        doubled = enumerate_candidates(replace(
            base, fabrics=(parse_fabric("ring"), parse_fabric("ring:yx"))
        ))
        assert len(doubled) == len(one)  # same hardware, one candidate

    def test_default_formats_as_mesh(self):
        assert format_fabric(DEFAULT_FABRIC) == "mesh"

    def test_name_is_cosmetic_in_content(self):
        spec = FabricSpec(kind="ring", name="my ring")
        assert spec.content() == FabricSpec(kind="ring").content()

    def test_arch_rejects_bad_routing(self):
        with pytest.raises(InvalidArchitectureError):
            arch(fabric=FabricSpec(routing="north-last"))

    def test_arch_rejects_nondividing_concentration(self):
        with pytest.raises(InvalidArchitectureError):
            arch(x=6, y=6, xcut=1, fabric=FabricSpec(
                kind="cmesh", concentration=4))

    def test_arch_rejects_non_spec_fabric(self):
        with pytest.raises(InvalidArchitectureError):
            arch(fabric="mesh")


class TestPresetsAndCli:
    def test_torus_presets_declare_their_fabric(self):
        """The Sec VI-B2 accelerators are tori by construction — the
        presets must evaluate as such without extra flags."""
        from repro.arch import g_arch_120, t_arch

        for preset in (t_arch, g_arch_120):
            a = preset()
            assert a.fabric.kind == "folded-torus"
            assert type(build_topology(a)) is FoldedTorusTopology

    def test_sweep_routing_flag_is_not_dropped(self):
        """`repro sweep --routing yx` must reach the scenarios."""
        import argparse

        from repro.cli.main import sweep_fabrics

        ns = argparse.Namespace(fabric=["mesh", "folded-torus"],
                                routing="yx")
        assert sweep_fabrics(ns) == ["mesh:yx", "folded-torus:yx"]
        ns = argparse.Namespace(fabric=None, routing="yx")
        assert sweep_fabrics(ns) == ["mesh:yx"]
        ns = argparse.Namespace(fabric=None, routing=None)
        assert sweep_fabrics(ns) is None


class TestRegistry:
    def test_shipped_kinds_registered(self):
        for kind in ("mesh", "folded-torus", "cmesh", "ring"):
            assert kind in FABRIC_REGISTRY

    def test_build_dispatches_on_spec(self):
        for text, cls in (("mesh", MeshTopology), *NON_DEFAULT_FABRICS):
            a = apply_fabric(g_arch(), text)
            topo = build_topology(a)
            assert type(topo) is cls
            assert isinstance(topo, Topology)

    def test_register_rejects_duplicate_kind(self):
        class FakeMesh(MeshTopology):
            kind = "mesh"

        with pytest.raises(ValueError):
            register_fabric(FakeMesh)

    def test_register_requires_kind(self):
        class NoKind:
            pass

        with pytest.raises(ValueError):
            register_fabric(NoKind)

    def test_apply_fabric_routing_only(self):
        a = apply_fabric(g_arch(), routing="yx")
        assert a.fabric == FabricSpec(routing="yx")

    def test_apply_fabric_noop_returns_same_arch(self):
        a = g_arch()
        assert apply_fabric(a) is a
        assert apply_fabric(a, "mesh") is a


class TestDefaultMeshIdentity:
    """The refactor must not move a single bit on the default fabric."""

    def test_links_identical_to_hand_built_mesh(self):
        a = g_arch()
        built = build_topology(a)
        mesh = MeshTopology(a)
        assert type(built) is MeshTopology
        assert [
            (l.src, l.dst, l.bandwidth, l.is_d2d, l.is_io)
            for l in built.links
        ] == [
            (l.src, l.dst, l.bandwidth, l.is_d2d, l.is_io)
            for l in mesh.links
        ]

    def test_all_routes_identical_to_hand_built_mesh(self):
        a = arch(x=5, y=3, xcut=1, ycut=1, d2d_bw=32 * GB)
        built, mesh = build_topology(a), MeshTopology(a)
        nodes = built.core_nodes() + list(built.dram_nodes())
        for s in nodes:
            for d in nodes:
                assert built.route(s, d) == mesh.route(s, d)

    def test_evaluator_defaults_to_spec_topology(self):
        ev = Evaluator(g_arch())
        assert type(ev.topo) is MeshTopology
        assert ev.topo.kind == "mesh"

    def test_default_group_eval_bit_identical(self):
        """Spec-built and hand-built mesh evaluate float-exact equal."""
        from repro.core.graphpart import partition_graph
        from repro.core.initial import initial_lms

        a = g_arch()
        graph = build("MBV2")
        groups = partition_graph(graph, a, batch=2)
        lmss = [initial_lms(graph, g, a) for g in groups]
        by_spec = Evaluator(a).evaluate_mapping(graph, lmss, 2)
        by_hand = Evaluator(a, topo=MeshTopology(a)).evaluate_mapping(
            graph, lmss, 2
        )
        assert by_spec.delay == by_hand.delay
        assert by_spec.energy.total == by_hand.energy.total


class TestCrossFabricIdentity:
    """Compiled and object paths stay bit-identical on every fabric."""

    @pytest.mark.parametrize("text", [t for t, _ in NON_DEFAULT_FABRICS])
    def test_compiled_matches_uncached(self, text):
        from repro.core.graphpart import partition_graph
        from repro.core.initial import initial_lms

        a = apply_fabric(g_arch(), text)
        graph = build("MBV2")
        groups = partition_graph(graph, a, batch=2)
        lmss = [initial_lms(graph, g, a) for g in groups]
        compiled = Evaluator(a)  # compiled array-native path (default)
        objects = Evaluator(a, cache=False)  # reference object path
        stored: dict[str, int] = {}
        for lms in lmss:
            ev_c = compiled.evaluate_group(graph, lms, 2, stored)
            ev_o = objects.evaluate_group(graph, lms, 2, stored)
            assert ev_c.delay == ev_o.delay
            assert ev_c.energy.total == ev_o.energy.total
            assert ev_c.energy.noc == ev_o.energy.noc
            assert ev_c.energy.d2d == ev_o.energy.d2d
            assert ev_c.energy.dram == ev_o.energy.dram
            assert ev_c.stage_time == ev_o.stage_time
            assert tuple(ev_c.dram_round_bytes) == \
                tuple(ev_o.dram_round_bytes)
            for name in lms.group.layers:
                of = lms.scheme(name).fd.ofmap
                if of >= 0:
                    stored[name] = of

    @pytest.mark.parametrize("text", [t for t, _ in NON_DEFAULT_FABRICS])
    def test_sa_anneals_on_fabric(self, text):
        """The full engine (SA included) runs end-to-end per fabric."""
        from repro.core import MappingEngine, MappingEngineSettings, SASettings

        a = apply_fabric(g_arch(), text)
        engine = MappingEngine(
            a, settings=MappingEngineSettings(sa=SASettings(iterations=5))
        )
        result = engine.map(build("MBV2"), batch=1)
        assert result.delay > 0
        assert result.energy > 0


class TestSerialization:
    def test_default_fabric_omitted_from_dict(self):
        data = arch_to_dict(g_arch())
        assert "fabric" not in data

    def test_fabric_roundtrip(self):
        a = apply_fabric(g_arch(), "cmesh:yx:c2")
        data = arch_to_dict(a)
        assert data["fabric"]["kind"] == "cmesh"
        loaded = arch_from_dict(json.loads(json.dumps(data)))
        assert loaded == a
        assert loaded.fabric == a.fabric

    def test_prefabric_record_loads_mesh_default(self):
        data = arch_to_dict(g_arch())
        data.pop("fabric", None)  # what any old record looks like
        loaded = arch_from_dict(data)
        assert loaded.fabric == DEFAULT_FABRIC

    def test_named_fabric_roundtrips(self):
        a = replace(
            g_arch(), fabric=FabricSpec(kind="ring", name="ringo")
        )
        assert arch_from_dict(arch_to_dict(a)).fabric.name == "ringo"

    def test_save_load_arch_file(self, tmp_path):
        from repro.io.serialization import load_arch, save_arch

        a = apply_fabric(g_arch(), "folded-torus:wrap=x")
        save_arch(a, tmp_path / "a.json")
        assert load_arch(tmp_path / "a.json") == a


class TestScenarioFabric:
    def test_grid_scenarios_fabric_dimension(self):
        from repro.frontend.scenarios import grid_scenarios, scenario_arch

        scenarios = grid_scenarios(
            ["MBV2"], [1], ["g-arch"], fabrics=["", "folded-torus:yx"]
        )
        assert len(scenarios) == 2
        assert len({s.name for s in scenarios}) == 2
        plain, torus = scenarios
        assert scenario_arch(plain).fabric == DEFAULT_FABRIC
        assert scenario_arch(torus).fabric.kind == "folded-torus"
        assert scenario_arch(torus).fabric.routing == "yx"

    def test_grid_scenarios_reject_bad_fabric(self):
        from repro.frontend.scenarios import grid_scenarios

        with pytest.raises(InvalidArchitectureError):
            grid_scenarios(["MBV2"], [1], ["g-arch"], fabrics=["moebius"])

    def test_scenario_keys_differ_by_fabric(self):
        from repro.frontend.scenarios import _scenario_keys, grid_scenarios

        scenarios = grid_scenarios(
            ["MBV2"], [1], ["g-arch"], fabrics=["", "ring"]
        )
        keys = _scenario_keys(scenarios)
        assert len(set(keys.values())) == 2


class TestPerfSurface:
    def test_route_table_build_timed_per_fabric(self):
        from repro.perf import PERF

        PERF.reset()
        a = apply_fabric(g_arch(), "ring")
        topo = build_topology(a)
        topo.core_route_table()
        topo.dram_route_tables()
        snap = PERF.snapshot()
        assert "fabric.route_tables.ring" in snap["timers"]
        assert snap["counters"]["fabric.topologies.ring"] == 1

    def test_route_cache_hits_surface_in_cache_stats(self):
        from repro.perf import PERF

        PERF.reset()
        topo = build_topology(g_arch())
        src, dst = topo.core_node(0), topo.core_node(5)
        topo.route(src, dst)
        topo.route(src, dst)
        stats = PERF.cache_stats()
        assert stats["fabric.route"]["hits"] >= 1
        assert stats["fabric.route"]["misses"] >= 1
