"""Tests for reporting (heatmaps, tables) and instruction generation."""

import pytest

from repro.arch import ArchConfig, MeshTopology, g_arch
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.instructions import (
    Opcode,
    conservation_check,
    generate_programs,
)
from repro.noc import TrafficMap
from repro.reporting import (
    ComparisonRow,
    format_table,
    heat_summary,
    link_heat,
    render_ascii,
    to_csv,
)
from repro.units import GB, MB
from repro.workloads.models import build


@pytest.fixture(scope="module")
def tf_setup():
    graph = build("TF")
    arch = g_arch()
    groups = partition_graph(graph, arch, batch=8)
    lms = initial_lms(graph, groups[1], arch)
    return graph, arch, lms


class TestHeatmap:
    def topo(self):
        arch = ArchConfig(
            cores_x=4, cores_y=2, xcut=2, ycut=1, dram_bw=32 * GB,
            noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
            macs_per_core=1024,
        )
        return MeshTopology(arch)

    def test_link_heat_sorted_desc(self):
        topo = self.topo()
        tm = TrafficMap(topo)
        tm.add_flow(("core", 0, 0), ("core", 3, 0), 100.0)
        tm.add_flow(("core", 0, 1), ("core", 1, 1), 10.0)
        records = link_heat(tm)
        vols = [r.display_volume for r in records]
        assert vols == sorted(vols, reverse=True)

    def test_d2d_volume_doubled_for_display(self):
        topo = self.topo()
        tm = TrafficMap(topo)
        tm.add_flow(("core", 1, 0), ("core", 2, 0), 50.0)  # crosses the cut
        [record] = [r for r in link_heat(tm) if r.is_d2d]
        assert record.volume == 50.0
        assert record.display_volume == 100.0

    def test_summary_keys(self):
        topo = self.topo()
        tm = TrafficMap(topo)
        tm.add_flow(("core", 0, 0), ("core", 3, 0), 100.0)
        summary = heat_summary(tm)
        assert summary["total_hop_bytes"] == 300.0
        assert summary["d2d_bytes"] == 100.0

    def test_ascii_render_has_mesh_shape(self):
        topo = self.topo()
        tm = TrafficMap(topo)
        tm.add_flow(("core", 0, 0), ("core", 3, 0), 100.0)
        art = render_ascii(tm)
        assert art.count("o") == 8
        assert "[" in art  # D2D links bracketed


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_to_csv(self):
        out = to_csv(["a", "b"], [[1, 2]])
        assert out.splitlines() == ["a,b", "1,2"]

    def test_comparison_row_ratios(self):
        row = ComparisonRow("TF", 64, delay_ratio=0.5, energy_ratio=0.8)
        assert row.speedup == pytest.approx(2.0)
        assert row.efficiency_gain == pytest.approx(1.25)


class TestInstructionGen:
    def test_programs_cover_used_cores(self, tf_setup):
        graph, arch, lms = tf_setup
        programs = generate_programs(graph, lms, arch)
        used = lms.cores_used()
        assert used <= set(programs)

    def test_conservation(self, tf_setup):
        graph, arch, lms = tf_setup
        programs = generate_programs(graph, lms, arch)
        sent, received = conservation_check(programs)
        assert sent == pytest.approx(received)

    def test_every_program_ends_with_sync(self, tf_setup):
        graph, arch, lms = tf_setup
        programs = generate_programs(graph, lms, arch)
        for p in programs.values():
            assert p.instructions[-1].op is Opcode.SYNC

    def test_compute_precedes_send_per_layer(self, tf_setup):
        graph, arch, lms = tf_setup
        programs = generate_programs(graph, lms, arch)
        for p in programs.values():
            seen_compute: set[str] = set()
            for instr in p.instructions:
                if instr.op is Opcode.COMPUTE:
                    seen_compute.add(instr.layer)
                if instr.op is Opcode.SEND:
                    assert instr.layer in seen_compute

    def test_compute_macs_match_workload(self, tf_setup):
        graph, arch, lms = tf_setup
        programs = generate_programs(graph, lms, arch)
        total = sum(p.compute_macs() for p in programs.values())
        expected = sum(
            graph.layer(n).macs(lms.group.batch_unit)
            for n in lms.group.layers
        )
        assert total == pytest.approx(expected)
