"""Campaign crash-resume semantics.

The contract pinned here is the subsystem's reason to exist:

* an interrupted ``run`` resumed with the same arguments re-evaluates
  **zero** completed candidates (the ``dse.candidates`` PERF counter
  equals the pending count exactly);
* the resumed campaign's export is bit-identical to an uninterrupted
  run's;
* a second identical run completes entirely from the store.
"""

import pytest

from repro.campaign import (
    CampaignError,
    CampaignInterrupted,
    CampaignRunner,
    CampaignSpec,
    campaign_status,
    export_campaign,
)
from repro.core.sa import SASettings
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    Workload,
    enumerate_candidates,
)
from repro.errors import SearchError
from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_candidates():
    grid = DseGrid(
        tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
    )
    return enumerate_candidates(grid)


def make_spec(name="camp", warm_start=True, iterations=6):
    return CampaignSpec(
        name=name,
        candidates=small_candidates(),
        workloads=[Workload(tiny_graph(), batch=2)],
        sa=SASettings(iterations=iterations, seed=11),
        warm_start=warm_start,
    )


def export_bytes(home, name):
    paths = export_campaign(home, name)
    return {label: path.read_bytes() for label, path in paths.items()}


class TestCrashResume:
    def test_interrupt_resume_zero_reevaluation_and_bit_identity(
        self, tmp_path
    ):
        home_a = tmp_path / "uninterrupted"
        home_b = tmp_path / "interrupted"
        n = len(small_candidates())

        with CampaignRunner(make_spec(), home_a) as runner:
            report_a = runner.run(workers=1)
        assert report_a.evaluated == n
        assert report_a.store_hits == 0

        with pytest.raises(CampaignInterrupted):
            with CampaignRunner(make_spec(), home_b) as runner:
                runner.run(workers=1, fail_after=3)

        status = campaign_status(home_b, "camp")
        assert status["done"] == 3
        assert status["pending"] == n - 3

        # Resume: only the pending candidates are evaluated.
        PERF.reset()
        with CampaignRunner(make_spec(), home_b) as runner:
            report_b = runner.run(workers=1)
        assert report_b.evaluated == n - 3
        assert report_b.store_hits == 3
        assert PERF.get("dse.candidates") == n - 3
        assert PERF.get("campaign.store_hits") == 3

        # The final report is bit-identical to the uninterrupted run's.
        assert export_bytes(home_a, "camp") == export_bytes(home_b, "camp")
        assert [r.score for r in report_a.done] == [
            r.score for r in report_b.done
        ]

        # A second identical run completes entirely from the store.
        PERF.reset()
        with CampaignRunner(make_spec(), home_b) as runner:
            report_c = runner.run(workers=1)
        assert report_c.evaluated == 0
        assert report_c.store_hits == n
        assert PERF.get("dse.candidates") == 0

    def test_parallel_resume_matches_serial(self, tmp_path):
        home_s = tmp_path / "serial"
        home_p = tmp_path / "parallel"
        with CampaignRunner(make_spec(), home_s) as runner:
            runner.run(workers=1)
        with pytest.raises(CampaignInterrupted):
            with CampaignRunner(make_spec(), home_p) as runner:
                runner.run(workers=2, fail_after=2)
        with CampaignRunner(make_spec(), home_p) as runner:
            report = runner.run(workers=2)
        assert report.evaluated + report.store_hits >= len(small_candidates())
        assert export_bytes(home_s, "camp") == export_bytes(home_p, "camp")

    def test_failed_candidates_are_retried(self, tmp_path, monkeypatch):
        home = tmp_path / "camp"
        spec = make_spec()
        real = DesignSpaceExplorer.evaluate_candidate

        def flaky(self, arch, index=0, warm=None):
            if index == 1:
                raise SearchError("injected failure")
            return real(self, arch, index=index, warm=warm)

        monkeypatch.setattr(DesignSpaceExplorer, "evaluate_candidate", flaky)
        with CampaignRunner(spec, home) as runner:
            report = runner.run(workers=1)
        assert report.failed == 1
        assert report.results[1] is None
        assert campaign_status(home, "camp")["failed"] == 1

        monkeypatch.setattr(DesignSpaceExplorer, "evaluate_candidate", real)
        with CampaignRunner(make_spec(), home) as runner:
            report = runner.run(workers=1)
        assert report.evaluated == 1  # only the failed one
        assert report.failed == 0
        assert all(r is not None for r in report.results)


class TestWarmStart:
    def test_first_campaign_is_cold(self, tmp_path):
        PERF.reset()
        with CampaignRunner(make_spec(), tmp_path) as runner:
            report = runner.run(workers=1)
        assert not any(r.warm_started for r in report.done)
        assert PERF.get("sa.iters_to_best.warm.runs") == 0
        assert PERF.get("sa.iters_to_best.cold.runs") == len(report.done)

    def test_second_campaign_warm_starts_from_shared_store(self, tmp_path):
        with CampaignRunner(make_spec("one"), tmp_path) as runner:
            runner.run(workers=1)
        PERF.reset()
        spec2 = make_spec("two", iterations=8)
        with CampaignRunner(spec2, tmp_path) as runner:
            report = runner.run(workers=1)
        assert all(r.warm_started for r in report.done)
        assert PERF.get("sa.iters_to_best.warm.runs") == len(report.done)
        # Warm or cold, results stay valid and comparable.
        assert all(r.score > 0 for r in report.done)

    def test_warm_provenance_is_part_of_the_candidate_key(self, tmp_path):
        """A warm-started evaluation is a different computation than a
        cold one, so the two must never share a store record — even
        across homes (the store's last-record-wins merge relies on
        identical keys implying identical payloads)."""
        cold_home = tmp_path / "cold"
        warm_home = tmp_path / "warm"
        with CampaignRunner(make_spec("seed"), warm_home) as runner:
            runner.run(workers=1)
        with CampaignRunner(make_spec("x", iterations=8), cold_home) as r:
            cold_keys = r.candidate_keys
        with CampaignRunner(make_spec("x", iterations=8), warm_home) as r:
            warm_keys = r.candidate_keys
            assert any(sel for sel in r.warm_selection)
        assert set(cold_keys).isdisjoint(warm_keys)

    def test_mc_evaluator_is_part_of_the_candidate_key(self, tmp_path):
        from dataclasses import replace

        from repro.cost.mc import DEFAULT_MC
        from repro.cost.silicon import DEFAULT_SILICON

        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=4),
        )
        pricier = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=4),
            mc_evaluator=replace(
                DEFAULT_MC,
                silicon=replace(DEFAULT_SILICON, c_silicon_per_mm2=9.0),
            ),
        )
        arch = small_candidates()[0]
        assert explorer.candidate_key(arch) != pricier.candidate_key(arch)

    def test_warm_start_can_be_disabled(self, tmp_path):
        with CampaignRunner(make_spec("one"), tmp_path) as runner:
            runner.run(workers=1)
        with CampaignRunner(
            make_spec("two", warm_start=False), tmp_path
        ) as runner:
            report = runner.run(workers=1)
        assert not any(r.warm_started for r in report.done)

    def test_warm_snapshot_survives_interruption(self, tmp_path):
        """Resumed runs warm-start from the manifest snapshot, so an
        interrupted warm campaign still exports bit-identically to an
        uninterrupted one."""
        with CampaignRunner(make_spec("seed"), tmp_path) as runner:
            runner.run(workers=1)
        spec = lambda: make_spec("warm", iterations=8)  # noqa: E731
        home_b = tmp_path / "other"
        with CampaignRunner(make_spec("seed"), home_b) as runner:
            runner.run(workers=1)
        with CampaignRunner(spec(), home_b) as runner:
            runner.run(workers=1)
        with pytest.raises(CampaignInterrupted):
            with CampaignRunner(spec(), tmp_path) as runner:
                runner.run(workers=1, fail_after=2)
        with CampaignRunner(spec(), tmp_path) as runner:
            runner.run(workers=1)
        assert export_bytes(tmp_path, "warm") == export_bytes(home_b, "warm")


class TestSpecGuards:
    def test_changed_spec_is_rejected(self, tmp_path):
        with CampaignRunner(make_spec(), tmp_path) as runner:
            runner.run(workers=1)
        changed = make_spec(iterations=9)
        with pytest.raises(CampaignError):
            CampaignRunner(changed, tmp_path)

    def test_empty_candidates_rejected(self, tmp_path):
        spec = make_spec()
        spec.candidates = []
        with pytest.raises(CampaignError):
            CampaignRunner(spec, tmp_path)

    def test_status_without_manifest_errors(self, tmp_path):
        with pytest.raises(CampaignError):
            campaign_status(tmp_path, "nope")


class TestExplorerStoreIntegration:
    def test_explore_with_store_serves_hits(self, tmp_path):
        from repro.campaign.store import ResultStore

        candidates = small_candidates()
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=6, seed=11),
        )
        with ResultStore(tmp_path) as store:
            first = explorer.explore(candidates, store=store)
            PERF.reset()
            second = explorer.explore(candidates, store=store)
        assert PERF.get("dse.store_hits") == len(candidates)
        assert PERF.get("dse.candidates") == 0
        assert [r.score for r in first.results] == [
            r.score for r in second.results
        ]
        assert first.best.arch == second.best.arch

    def test_store_key_ignores_arch_name(self, tmp_path):
        from repro.campaign.store import ResultStore

        candidates = small_candidates()[:2]
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=4),
        )
        renamed = [a.with_name(f"c{i}") for i, a in enumerate(candidates)]
        with ResultStore(tmp_path) as store:
            explorer.explore(candidates, store=store)
            PERF.reset()
            explorer.explore(renamed, store=store)
        assert PERF.get("dse.store_hits") == len(candidates)


class TestCampaignCli:
    def test_run_interrupt_resume_status_export(self, tmp_path, capsys):
        from repro.cli.main import main
        from repro.io.serialization import save_graph

        model = tmp_path / "tiny.json"
        save_graph(tiny_graph(), model)
        common = [
            "campaign", "run", "--name", "smoke",
            "--out", str(tmp_path / "camps"),
            "--max-candidates", "2", "--models", str(model),
            "--batch", "2", "--iters", "2",
        ]
        assert main(common + ["--fail-after", "1"]) == 130
        assert main(common) == 0
        out = capsys.readouterr().out
        assert "served 1 from the store" in out
        assert "best architecture:" in out

        assert main([
            "campaign", "status", "--name", "smoke",
            "--out", str(tmp_path / "camps"),
        ]) == 0
        out = capsys.readouterr().out
        assert "2/2 done, 0 pending" in out

        assert main([
            "campaign", "export", "--name", "smoke",
            "--out", str(tmp_path / "camps"),
        ]) == 0
        export = tmp_path / "camps" / "smoke" / "export"
        for name in ("campaign.csv", "campaign.json",
                     "pareto.csv", "pareto.json"):
            assert (export / name).exists()

    def test_status_on_missing_campaign_exits(self, tmp_path):
        from repro.cli.main import main

        with pytest.raises(SystemExit):
            main(["campaign", "status", "--name", "ghost",
                  "--out", str(tmp_path)])


class TestCandidateRoundTrip:
    def test_store_round_trip_is_bitwise(self):
        from repro.io.serialization import (
            candidate_result_from_dict,
            candidate_result_to_dict,
        )
        import json

        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=5, seed=3),
        )
        result = explorer.evaluate_candidate(small_candidates()[0])
        wire = json.loads(json.dumps(candidate_result_to_dict(result)))
        back = candidate_result_from_dict(wire)
        assert back.arch == result.arch
        assert back.score == result.score
        assert back.energy == result.energy
        assert back.delay == result.delay
        assert back.mc.total == result.mc.total
        assert back.per_workload == result.per_workload
        assert back.mappings == result.mappings
