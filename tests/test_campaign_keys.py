"""Canonical digest regression tests.

The store is content-addressed, so digests must be stable across
processes, field ordering, cosmetic names and float-format drift — and
must *change* whenever anything that affects the evaluation changes.
"""

from dataclasses import replace

import pytest

from repro.arch import g_arch
from repro.campaign import keys as ck
from repro.core.sa import SASettings
from repro.dse.objective import OBJECTIVE_EDP, OBJECTIVE_MCED
from repro.units import GB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(name="tiny", n=2):
    g = DNNGraph(name)
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=16,
                  in_c=3 if prev is None else 16, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


class TestArchDigest:
    def test_with_name_rename_keeps_digest(self):
        a = g_arch()
        assert ck.arch_digest(a) == ck.arch_digest(a.with_name("renamed"))
        assert ck.arch_digest(a) == ck.arch_digest(a.with_name(""))

    def test_replace_identical_keeps_digest(self):
        a = g_arch()
        assert ck.arch_digest(a) == ck.arch_digest(replace(a))

    def test_float_format_drift_keeps_digest(self):
        """256.0 * GB (float) and int(256 * GB) must digest the same."""
        a = g_arch()
        drifted = replace(
            a,
            dram_bw=float(a.dram_bw),
            noc_bw=int(a.noc_bw),
            glb_bytes=a.glb_bytes,
        )
        assert ck.arch_digest(a) == ck.arch_digest(drifted)

    def test_int_float_equivalence_both_directions(self):
        a = replace(g_arch(), dram_bw=256 * GB)
        b = replace(g_arch(), dram_bw=256.0 * GB)
        assert ck.arch_digest(a) == ck.arch_digest(b)

    def test_real_change_changes_digest(self):
        a = g_arch()
        assert ck.arch_digest(a) != ck.arch_digest(
            replace(a, noc_bw=a.noc_bw * 2)
        )

    def test_digest_is_hex_sha256(self):
        d = ck.arch_digest(g_arch())
        assert len(d) == 64
        int(d, 16)


class TestCanonicalJson:
    def test_key_order_ignored(self):
        assert ck.content_digest({"a": 1, "b": 2}) == ck.content_digest(
            {"b": 2, "a": 1}
        )

    def test_tuple_list_equivalent(self):
        assert ck.content_digest((1, 2)) == ck.content_digest([1, 2])

    def test_bool_is_not_number(self):
        assert ck.content_digest(True) != ck.content_digest(1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ck.content_digest(float("nan"))

    def test_infinity_is_digestible_and_signed(self):
        """Cost models use inf tier bounds; digests must accept them."""
        assert ck.content_digest(float("inf")) != ck.content_digest(
            float("-inf")
        )
        assert ck.content_digest(float("inf")) == ck.content_digest(
            float("inf")
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            ck.content_digest(object())


class TestWorkloadAndSettingsDigests:
    def test_graph_digest_stable_and_shape_sensitive(self):
        assert ck.graph_digest(tiny_graph()) == ck.graph_digest(tiny_graph())
        assert ck.graph_digest(tiny_graph(n=2)) != ck.graph_digest(
            tiny_graph(n=3)
        )

    def test_batch_matters(self):
        g = tiny_graph()
        assert ck.workload_digest(g, 1) != ck.workload_digest(g, 64)

    def test_settings_seed_matters(self):
        assert ck.settings_digest(SASettings(seed=0)) != ck.settings_digest(
            SASettings(seed=1)
        )

    def test_objective_name_is_cosmetic(self):
        a = ck.settings_digest(SASettings(), objective=OBJECTIVE_MCED)
        b = ck.settings_digest(
            SASettings(), objective=replace(OBJECTIVE_MCED, name="renamed")
        )
        assert a == b
        assert a != ck.settings_digest(SASettings(), objective=OBJECTIVE_EDP)

    def test_candidate_key_covers_workload_order(self):
        arch = g_arch()
        sa = SASettings(iterations=4)
        d1 = ck.workload_digest(tiny_graph("a"), 1)
        d2 = ck.workload_digest(tiny_graph("b"), 1)
        assert ck.candidate_key(arch, [d1, d2], sa) != ck.candidate_key(
            arch, [d2, d1], sa
        )


class TestFabricDigests:
    """A fabric change is real; a fabric rename is cosmetic; records
    stored before the fabric field existed keep their digests."""

    def test_fabric_change_changes_arch_digest(self):
        from repro.fabric import apply_fabric

        a = g_arch()
        digests = {
            ck.arch_digest(apply_fabric(a, f))
            for f in ("mesh", "folded-torus", "folded-torus:yx",
                      "cmesh:c2", "ring")
        }
        assert len(digests) == 5

    def test_fabric_rename_keeps_arch_digest(self):
        from repro.fabric import FabricSpec

        a = replace(g_arch(), fabric=FabricSpec(kind="ring"))
        b = replace(g_arch(), fabric=FabricSpec(kind="ring", name="x"))
        assert ck.arch_digest(a) == ck.arch_digest(b)

    def test_named_default_fabric_digests_as_default(self):
        from repro.fabric import FabricSpec

        a = g_arch()
        named = replace(a, fabric=FabricSpec(name="just a label"))
        assert ck.arch_digest(a) == ck.arch_digest(named)

    def test_default_fabric_digest_matches_prefabric_records(self):
        """The digest of a default-fabric arch must equal the digest an
        older code version (no fabric field at all) computed."""
        from repro.io.serialization import arch_to_dict

        a = g_arch()
        data = arch_to_dict(a)
        assert "fabric" not in data  # serialized form is unchanged
        data.pop("name", None)
        assert ck.arch_digest(a) == ck.content_digest(data)

    def test_candidate_key_covers_fabric(self):
        from repro.fabric import apply_fabric

        sa = SASettings(iterations=4)
        d = ck.workload_digest(tiny_graph(), 1)
        mesh_key = ck.candidate_key(g_arch(), [d], sa)
        torus_key = ck.candidate_key(
            apply_fabric(g_arch(), "folded-torus"), [d], sa
        )
        assert mesh_key != torus_key

    def test_scenario_key_covers_fabric(self):
        from repro.fabric import apply_fabric

        g = tiny_graph()
        assert ck.scenario_key(g_arch(), g, 1, 10, 0) != ck.scenario_key(
            apply_fabric(g_arch(), "ring"), g, 1, 10, 0
        )

    def test_prefabric_store_record_loads_mesh_default(self):
        """Old candidate records (no fabric key) still load."""
        from repro.dse.explorer import CandidateResult
        from repro.cost.mc import MCReport
        from repro.fabric import DEFAULT_FABRIC
        from repro.io.serialization import (
            candidate_result_from_dict,
            candidate_result_to_dict,
        )

        result = CandidateResult(
            arch=g_arch(), mc=MCReport(1.0, 2.0, 3.0, (10.0,)),
            energy=0.5, delay=0.25, score=0.125,
        )
        record = candidate_result_to_dict(result)
        record["arch"].pop("fabric", None)  # what an old store holds
        loaded = candidate_result_from_dict(record)
        assert loaded.arch.fabric == DEFAULT_FABRIC
        assert loaded.arch == result.arch


class TestFamilies:
    def test_family_is_core_count(self):
        a = g_arch()
        assert ck.arch_family(a) == f"cores-{a.n_cores}"
        assert ck.arch_family(a) == ck.arch_family(
            replace(a, noc_bw=a.noc_bw * 2)
        )

    def test_distance_zero_for_identical(self):
        a = g_arch()
        assert ck.arch_distance(a, a) == 0.0
        assert ck.arch_distance(a, a.with_name("x")) == 0.0

    def test_distance_grows_with_bandwidth_gap(self):
        a = g_arch()
        near = replace(a, noc_bw=a.noc_bw * 2)
        far = replace(a, noc_bw=a.noc_bw * 8)
        assert 0 < ck.arch_distance(a, near) < ck.arch_distance(a, far)

    def test_fabric_change_adds_distance_but_rename_does_not(self):
        from repro.fabric import FabricSpec, apply_fabric

        a = g_arch()
        torus = apply_fabric(a, "folded-torus")
        assert ck.arch_distance(a, torus) == 2.0
        named = replace(a, fabric=FabricSpec(name="label"))
        assert ck.arch_distance(a, named) == 0.0
